//! # grape-aap
//!
//! A from-scratch Rust reproduction of **“Adaptive Asynchronous
//! Parallelization of Graph Algorithms”** (Fan et al., SIGMOD 2018) — the
//! AAP model and the GRAPE+ engine.
//!
//! The workspace is organised as one crate per subsystem; this facade
//! re-exports them under stable names:
//!
//! * [`graph`] — CSR property graphs, generators, partitioners, fragments;
//! * [`runtime`] — the PIE programming model and the multithreaded AAP
//!   engine with BSP / AP / SSP / AAP / Hsync policies;
//! * [`sim`] — the deterministic discrete-event simulator (timing
//!   diagrams, large virtual clusters);
//! * [`algos`] — CC, SSSP, BFS, PageRank, CF, and vertex-centric
//!   baselines;
//! * [`delta`] — dynamic-graph batches: in-place fragment mutation and
//!   warm-start incremental evaluation from retained state;
//! * [`snapshot`] — durable snapshots: persisted fragments + retained
//!   state + replayable delta logs, for warm restarts;
//! * [`mapreduce`] — MapReduce/PRAM on AAP (Theorem 4).
//!
//! ## Quickstart
//!
//! ```
//! use grape_aap::prelude::*;
//!
//! // A weighted power-law graph (Friendster stand-in, tiny here).
//! let g = grape_aap::graph::generate::rmat(8, 8, true, 42);
//!
//! // Partition into 4 fragments, build a GRAPE+ engine under AAP.
//! let assignment = grape_aap::graph::partition::hash_partition(&g, 4);
//! let frags = grape_aap::graph::partition::build_fragments(&g, &assignment);
//! let engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
//!
//! // Single-source shortest paths from vertex 0.
//! let run = engine.run(&Sssp, &0);
//! assert_eq!(run.out[0], 0);
//! println!("{}", run.stats.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aap_algos as algos;
pub use aap_core as runtime;
pub use aap_delta as delta;
pub use aap_graph as graph;
pub use aap_mapreduce as mapreduce;
pub use aap_sim as sim;
pub use aap_snapshot as snapshot;

/// Most-used items in one import.
pub mod prelude {
    pub use aap_algos::{Bfs, Cf, ConnectedComponents, PageRank, Sssp, VertexCentric};
    pub use aap_core::prelude::*;
    pub use aap_delta::{DeltaBuilder, GraphDelta};
    pub use aap_graph::{Fragment, Graph, GraphBuilder, VertexId};
    pub use aap_sim::{CostModel, SimEngine, SimOpts};
}
