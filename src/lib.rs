//! # grape-aap
//!
//! A from-scratch Rust reproduction of **“Adaptive Asynchronous
//! Parallelization of Graph Algorithms”** (Fan et al., SIGMOD 2018) — the
//! AAP model and the GRAPE+ engine.
//!
//! The workspace is organised as one crate per subsystem; this facade
//! re-exports them under stable names:
//!
//! * [`graph`] — CSR property graphs, generators, partitioners, fragments;
//! * [`runtime`] — the PIE programming model and the multithreaded AAP
//!   engine with BSP / AP / SSP / AAP / Hsync policies;
//! * [`sim`] — the deterministic discrete-event simulator (timing
//!   diagrams, large virtual clusters);
//! * [`algos`] — CC, SSSP, BFS, PageRank, CF, and vertex-centric
//!   baselines;
//! * [`delta`] — dynamic-graph batches: in-place fragment mutation and
//!   warm-start incremental evaluation from retained state;
//! * [`snapshot`] — durable snapshots: persisted fragments + retained
//!   state + replayable delta logs, for warm restarts;
//! * [`session`] — the serving facade: one [`Session`] owning the
//!   partition, the engine, multiple retained programs, and durability;
//! * [`balance`] — elastic partition rebalancing: drift monitor,
//!   cost-aware migration planner, in-place executor (wired into
//!   sessions via `SessionBuilder::balance` / `Session::rebalance`);
//! * [`mapreduce`] — MapReduce/PRAM on AAP (Theorem 4);
//! * [`trace`] — structured event tracing with Chrome/Perfetto export
//!   (wired through every layer above, off by default and free when off).
//!
//! ## Quickstart
//!
//! The serving surface is [`Session`]: partition once, register
//! programs, query, stream deltas.
//!
//! ```
//! use grape_aap::prelude::*;
//!
//! // A weighted power-law graph (Friendster stand-in, tiny here).
//! let g = grape_aap::graph::generate::rmat(8, 8, true, 42);
//!
//! let mut session = Session::builder(g)
//!     .partition(edge_cut(4))
//!     .mode(Mode::aap())
//!     .program("sssp", Sssp)
//!     .program("cc", ConnectedComponents)
//!     .open()
//!     .unwrap();
//!
//! // Single-source shortest paths from vertex 0; CC on the same
//! // fragments. Each program retains its fixpoint for the next delta.
//! let dist = session.query::<Sssp>("sssp", &0).unwrap();
//! assert_eq!(dist[0], 0);
//! let comps = session.query::<ConnectedComponents>("cc", &()).unwrap();
//! assert_eq!(comps.len(), 256);
//!
//! // One apply advances both programs warm.
//! let mut b = DeltaBuilder::new();
//! b.add_edge(0, 200, 3);
//! let report = session.apply(&b.build()).unwrap();
//! assert_eq!(report.programs.len(), 2);
//! ```
//!
//! The engine underneath is still available directly (`runtime`,
//! `delta`, `snapshot`) for hand-composed pipelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aap_algos as algos;
pub use aap_balance as balance;
pub use aap_core as runtime;
pub use aap_delta as delta;
pub use aap_graph as graph;
pub use aap_mapreduce as mapreduce;
pub use aap_session as session;
pub use aap_sim as sim;
pub use aap_snapshot as snapshot;
pub use aap_trace as trace;

pub use aap_session::{Session, SessionBuilder, SessionReader};

/// Most-used items in one import.
pub mod prelude {
    pub use aap_algos::{Bfs, Cf, ConnectedComponents, PageRank, Sssp, VertexCentric};
    pub use aap_core::prelude::*;
    pub use aap_delta::{DeltaBuilder, GraphDelta};
    pub use aap_graph::{Fragment, Graph, GraphBuilder, VertexId};
    pub use aap_balance::{BalancePolicy, BalanceReport};
    pub use aap_session::{
        edge_cut, vertex_cut, CheckpointHandle, CheckpointReport, DurabilityPolicy,
        RebalanceReport, Session, SessionBuilder, SessionError, SessionReader,
    };
    pub use aap_sim::{CostModel, ScheduleFuzz, SimEngine, SimError, SimOpts};
    pub use aap_trace::{Recorder, Tracer};
}
