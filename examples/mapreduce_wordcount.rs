//! Theorem 4 in action: MapReduce word count and a PRAM prefix sum running
//! on the AAP engine (BSP is a special case of AAP, so the simulation uses
//! the unmodified engine).
//!
//! ```sh
//! cargo run --release --example mapreduce_wordcount
//! ```

use grape_aap::mapreduce::jobs::{InvertedIndex, WordCount};
use grape_aap::mapreduce::pram;
use grape_aap::mapreduce::{run_mapreduce, MrConfig};

fn main() {
    let docs: Vec<String> = vec![
        "the adaptive asynchronous parallel model".into(),
        "bulk synchronous parallel and asynchronous parallel are special cases".into(),
        "the model reduces stragglers and stale computations".into(),
        "graph computations converge under the monotone condition".into(),
    ];

    println!("== word count over {} documents (1 subroutine) ==", docs.len());
    let (counts, stats) =
        run_mapreduce(&WordCount { docs: docs.clone() }, &MrConfig { workers: 4, threads: 4 });
    let mut top: Vec<_> = counts.iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (w, c) in top.iter().take(8) {
        println!("{c:>3}  {w}");
    }
    println!("supersteps: {}, messages: {}\n", stats.max_rounds(), stats.total_updates());

    println!("== inverted index (2 subroutines) ==");
    let (index, stats) =
        run_mapreduce(&InvertedIndex { docs }, &MrConfig { workers: 4, threads: 4 });
    for (w, postings) in
        index.iter().filter(|(w, _)| ["parallel", "model", "the"].contains(&w.as_str()))
    {
        println!("{w:>12} -> docs [{postings}]");
    }
    println!("supersteps: {}\n", stats.max_rounds());

    println!("== PRAM prefix sum via ⌈log n⌉ MapReduce rounds ==");
    let values: Vec<i64> = (1..=16).collect();
    let sums = pram::prefix_sum(&values, 4);
    println!("input : {values:?}");
    println!("output: {sums:?}");
    assert_eq!(*sums.last().unwrap(), (1..=16).sum::<i64>());
}
