//! Dynamic-graph streaming through the [`Session`] facade: open once,
//! query retaining state, then stream mutation batches — each
//! `session.apply` mutates the fragments once and advances **every**
//! registered program with its own strategy.
//!
//! Three programs ride the same session to make the strategies visible:
//! `sssp` and `cc` (full invalidation plans — deletions stay warm) and
//! `sssp-noplan`, an SSSP variant without a `plan_invalidation`
//! override, which resolves the *same* deletion batch via the
//! documented cold fallback.
//!
//! The tail of the example drives one batch through the **low-level
//! composition** (`Engine` + `run_incremental_with`) the session wraps,
//! and asserts both paths land in the same answer — this is the kept
//! low-level walkthrough.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use grape_aap::delta::generate::{insert_batch, remove_batch, Xorshift};
use grape_aap::delta::{run_incremental_with, WarmStrategy};
use grape_aap::graph::mutate::{EditBuffers, StateRemap};
use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;
use grape_aap::runtime::pie::{UpdateCtx, WarmStart};
use grape_aap::runtime::Messages;
use std::sync::Arc;
use std::time::Instant;

/// SSSP with the warm-increase path disabled: delegates everything to
/// [`Sssp`] but keeps the *default* `delta_strategy` (no invalidation
/// plan), so non-monotone batches take the documented cold fallback.
/// This is the "unsupported program" contrast case — the session API is
/// the same either way, only the reported strategy differs.
struct ColdFallbackSssp;

fn inner() -> Sssp {
    Sssp
}

impl PieProgram<(), u32> for ColdFallbackSssp {
    type Query = VertexId;
    type Val = u64;
    type State = grape_aap::algos::SsspState;
    type Out = Vec<u64>;

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        <Sssp as PieProgram<(), u32>>::combine(&inner(), a, b)
    }
    fn peval(&self, q: &VertexId, f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u64>) -> Self::State {
        <Sssp as PieProgram<(), u32>>::peval(&inner(), q, f, ctx)
    }
    fn inceval(
        &self,
        q: &VertexId,
        f: &Fragment<(), u32>,
        st: &mut Self::State,
        msgs: &mut Messages<u64>,
        ctx: &mut UpdateCtx<u64>,
    ) {
        <Sssp as PieProgram<(), u32>>::inceval(&inner(), q, f, st, msgs, ctx)
    }
    fn assemble(
        &self,
        q: &VertexId,
        frags: &[Arc<Fragment<(), u32>>],
        states: Vec<Self::State>,
    ) -> Vec<u64> {
        <Sssp as PieProgram<(), u32>>::assemble(&inner(), q, frags, states)
    }
}

impl WarmStart<(), u32> for ColdFallbackSssp {
    fn warm_eval(
        &self,
        q: &VertexId,
        f: &Fragment<(), u32>,
        prior: Self::State,
        remap: &StateRemap,
        seeds: &[LocalId],
        invalid: &[LocalId],
        ctx: &mut UpdateCtx<u64>,
    ) -> Self::State {
        <Sssp as WarmStart<(), u32>>::warm_eval(&inner(), q, f, prior, remap, seeds, invalid, ctx)
    }
    fn assemble_ref(
        &self,
        q: &VertexId,
        frags: &[Arc<Fragment<(), u32>>],
        states: &[Self::State],
    ) -> Vec<u64> {
        <Sssp as WarmStart<(), u32>>::assemble_ref(&inner(), q, frags, states)
    }
    // No `delta_strategy` / `plan_invalidation` override: removals → Cold.
}

fn main() -> Result<(), SessionError> {
    // A power-law graph: 2^13 vertices, ~64k stored edges.
    let g = generate::rmat(13, 8, true, 7);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    let mut session = Session::builder(g.clone())
        .partition(edge_cut(8))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .program("sssp-noplan", ColdFallbackSssp)
        .open()?;

    // Cold queries once; every program retains its fixpoint.
    let t0 = Instant::now();
    session.query::<Sssp>("sssp", &0)?;
    session.query::<ConnectedComponents>("cc", &())?;
    session.query::<ColdFallbackSssp>("sssp-noplan", &0)?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("cold PEval+IncEval x3 programs: {cold_ms:.2} ms");

    // Stream insert batches (~0.1% of the edge count each): one apply
    // per batch advances all three programs warm.
    let mut rng = Xorshift::new(0x9E3779B97F4A7C15);
    let batch_edges = (g.num_edges() / 1000).max(8);
    for batch in 0..5 {
        let delta = insert_batch(&g, batch_edges, 16, rng.next_u64());
        let ops = delta.len();
        let t = Instant::now();
        let report = session.apply(&delta)?;
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(report.programs.iter().all(|p| p.strategy == WarmStrategy::WarmDecrease));
        let total: u64 = report.programs.iter().map(|p| p.updates).sum();
        println!(
            "batch {batch}: {ops:>3} inserts -> all programs warm-decrease \
             in {warm_ms:>7.2} ms ({total:>6} updates across 3 programs)"
        );
    }

    // A deletion batch: the programs split by capability — sssp and cc
    // stay warm via their invalidation plans, sssp-noplan re-runs cold.
    // Same one apply.
    let delta = remove_batch(&g, batch_edges, rng.next_u64());
    let t = Instant::now();
    let report = session.apply(&delta)?;
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    for p in &report.programs {
        println!("deletion batch: {:<11} -> {} ({} updates)", p.name, p.strategy, p.updates);
    }
    assert_eq!(report.strategy("sssp"), Some(WarmStrategy::WarmIncrease));
    assert_eq!(report.strategy("cc"), Some(WarmStrategy::WarmIncrease));
    assert_eq!(report.strategy("sssp-noplan"), Some(WarmStrategy::Cold));
    println!("deletion batch applied once in {warm_ms:.2} ms (plans + 3 advances)");

    // Exactness spot-check: both SSSP lineages agree (the cold-fallback
    // program recomputed; the planned one invalidated + re-relaxed).
    let warm = session.query::<Sssp>("sssp", &0)?;
    let cold = session.query::<ColdFallbackSssp>("sssp-noplan", &0)?;
    assert_eq!(warm, cold, "warm-increase result must match the cold recompute");
    println!("warm-increase answer verified against the cold-fallback program");

    // ------------------------------------------------------------------
    // The low-level path the session wraps, kept exercised: hand-compose
    // Engine + run_incremental_with for one batch and compare.
    // ------------------------------------------------------------------
    let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 8));
    let mut engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
    let (_, mut state) = engine.run_retained(&Sssp, &0);
    let mut bufs = EditBuffers::default();
    let delta = insert_batch(&g, batch_edges, 16, 0x10E7);
    let low = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
    println!(
        "low-level driver: {} ops applied ({}), {} updates — same machinery, hand-threaded",
        delta.len(),
        low.strategy,
        low.stats.total_updates(),
    );
    let mut check = Session::builder(g)
        .partition(edge_cut(8))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .open()?;
    check.query::<Sssp>("sssp", &0)?;
    check.apply(&delta)?;
    assert_eq!(low.out, check.query::<Sssp>("sssp", &0)?, "session == hand-rolled composition");
    println!("session output == hand-rolled composition output");

    // The retained state keeps serving: an empty delta ships nothing.
    let empty = DeltaBuilder::new().build();
    let report = session.apply(&empty)?;
    assert!(report.programs.iter().all(|p| p.updates == 0));
    println!("empty delta: fixpoints replayed with zero messages — state stays hot");
    Ok(())
}
