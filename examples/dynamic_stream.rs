//! Dynamic-graph streaming: partition once, run one cold query retaining
//! state, then stream mutation batches through warm-start incremental
//! evaluation — comparing each delta round against a cold recompute.
//!
//! The stream ends with the payoff of the deletion-exact path: a
//! removal batch **stays warm** (`warm-increase` — affected-region
//! invalidation instead of a cold recompute), and the old cold fallback
//! is demonstrated through a program that declares no invalidation plan.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use grape_aap::delta::generate::{insert_batch, remove_batch, Xorshift};
use grape_aap::delta::{run_incremental_with, DeltaBuilder, WarmStrategy};
use grape_aap::graph::mutate::{EditBuffers, StateRemap};
use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;
use grape_aap::runtime::pie::{UpdateCtx, WarmStart};
use grape_aap::runtime::Messages;
use std::sync::Arc;
use std::time::Instant;

/// SSSP with the warm-increase path disabled: delegates everything to
/// [`Sssp`] but keeps the *default* `delta_strategy` (no invalidation
/// plan), so non-monotone batches take the documented cold fallback.
/// This is the "unsupported program" contrast case — the driver API is
/// one call either way.
struct ColdFallbackSssp;

fn inner() -> Sssp {
    Sssp
}

impl PieProgram<(), u32> for ColdFallbackSssp {
    type Query = VertexId;
    type Val = u64;
    type State = grape_aap::algos::SsspState;
    type Out = Vec<u64>;

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        <Sssp as PieProgram<(), u32>>::combine(&inner(), a, b)
    }
    fn peval(&self, q: &VertexId, f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u64>) -> Self::State {
        <Sssp as PieProgram<(), u32>>::peval(&inner(), q, f, ctx)
    }
    fn inceval(
        &self,
        q: &VertexId,
        f: &Fragment<(), u32>,
        st: &mut Self::State,
        msgs: &mut Messages<u64>,
        ctx: &mut UpdateCtx<u64>,
    ) {
        <Sssp as PieProgram<(), u32>>::inceval(&inner(), q, f, st, msgs, ctx)
    }
    fn assemble(
        &self,
        q: &VertexId,
        frags: &[Arc<Fragment<(), u32>>],
        states: Vec<Self::State>,
    ) -> Vec<u64> {
        <Sssp as PieProgram<(), u32>>::assemble(&inner(), q, frags, states)
    }
}

impl WarmStart<(), u32> for ColdFallbackSssp {
    fn warm_eval(
        &self,
        q: &VertexId,
        f: &Fragment<(), u32>,
        prior: Self::State,
        remap: &StateRemap,
        seeds: &[LocalId],
        invalid: &[LocalId],
        ctx: &mut UpdateCtx<u64>,
    ) -> Self::State {
        <Sssp as WarmStart<(), u32>>::warm_eval(&inner(), q, f, prior, remap, seeds, invalid, ctx)
    }
    fn assemble_ref(
        &self,
        q: &VertexId,
        frags: &[Arc<Fragment<(), u32>>],
        states: &[Self::State],
    ) -> Vec<u64> {
        <Sssp as WarmStart<(), u32>>::assemble_ref(&inner(), q, frags, states)
    }
    // No `delta_strategy` / `plan_invalidation` override: removals → Cold.
}

fn main() {
    // A power-law graph: 2^13 vertices, ~64k stored edges.
    let g = generate::rmat(13, 8, true, 7);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 8));
    let mut engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });

    // Cold run once, retaining per-fragment state.
    let t0 = Instant::now();
    let (run0, mut state) = engine.run_retained(&Sssp, &0);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "cold PEval+IncEval: {cold_ms:.2} ms, {} updates | {}",
        run0.stats.total_updates(),
        run0.stats.summary()
    );

    // Stream insert batches (~0.1% of the edge count each) through the
    // warm path, reusing pooled apply buffers across batches.
    let mut bufs = EditBuffers::default();
    let mut rng = Xorshift::new(0x9E3779B97F4A7C15);
    let batch_edges = (g.num_edges() / 1000).max(8);
    for batch in 0..5 {
        let delta = insert_batch(&g, batch_edges, 16, rng.next_u64());
        let ops = delta.len();
        let t = Instant::now();
        let out = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.strategy, WarmStrategy::WarmDecrease);
        let reachable = out.out.iter().filter(|&&d| d != u64::MAX).count();
        println!(
            "batch {batch}: {ops:>3} inserts -> {} {warm_ms:>7.2} ms ({:>6} updates, \
             {reachable} reachable), cold would pay ~{cold_ms:.2} ms",
            out.strategy,
            out.stats.total_updates(),
        );
    }

    // A deletion batch used to force a cold recompute; now the driver
    // invalidates the Ramalingam–Reps affected region and re-relaxes it
    // warm — same one-call API, answer still exact.
    let delta = remove_batch(&g, batch_edges, rng.next_u64());
    let t = Instant::now();
    let out = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.strategy, WarmStrategy::WarmIncrease, "deletions stay warm for SSSP");
    println!(
        "deletion batch: {} removals stay warm ({}) in {warm_ms:.2} ms, {} updates \
         — cold would pay ~{cold_ms:.2} ms",
        delta.len(),
        out.strategy,
        out.stats.total_updates(),
    );
    // Exactness spot-check: the warm answer equals a cold run on the
    // mutated fragments.
    let check = engine.run(&Sssp, &0);
    assert_eq!(out.out, check.out, "warm-increase result must match cold recompute");
    println!("warm-increase answer verified against a cold recompute");

    // The cold fallback still exists — for programs without an
    // invalidation plan. Same driver call, different strategy report.
    let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 8));
    let mut cold_engine =
        Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
    let (_, mut cold_state) = cold_engine.run_retained(&ColdFallbackSssp, &0);
    let delta = remove_batch(&g, batch_edges, 0xC01D);
    let out = run_incremental_with(
        &mut cold_engine,
        &ColdFallbackSssp,
        &0,
        &delta,
        &mut cold_state,
        &mut bufs,
    );
    assert_eq!(out.strategy, WarmStrategy::Cold, "no invalidation plan -> cold fallback");
    println!(
        "contrast: a program without an invalidation plan resolves the same batch via '{}'",
        out.strategy
    );

    // The retained state keeps serving after the deletion, too.
    let empty = DeltaBuilder::new().build();
    let out = run_incremental_with(&mut engine, &Sssp, &0, &empty, &mut state, &mut bufs);
    assert_eq!(out.stats.total_updates(), 0);
    println!("empty delta: fixpoint replayed with zero messages — state stays hot");
}
