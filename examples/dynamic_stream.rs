//! Dynamic-graph streaming: partition once, run one cold query retaining
//! state, then stream mutation batches through warm-start incremental
//! evaluation — comparing each delta round against a cold recompute.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use grape_aap::delta::generate::{insert_batch, Xorshift};
use grape_aap::delta::{run_incremental_with, DeltaBuilder};
use grape_aap::graph::mutate::EditBuffers;
use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;
use std::time::Instant;

fn main() {
    // A power-law graph: 2^13 vertices, ~64k stored edges.
    let g = generate::rmat(13, 8, true, 7);
    let n = g.num_vertices() as u32;
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 8));
    let mut engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });

    // Cold run once, retaining per-fragment state.
    let t0 = Instant::now();
    let (run0, mut state) = engine.run_retained(&Sssp, &0);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "cold PEval+IncEval: {cold_ms:.2} ms, {} updates | {}",
        run0.stats.total_updates(),
        run0.stats.summary()
    );

    // Stream insert batches (~0.1% of the edge count each) through the
    // warm path, reusing pooled apply buffers across batches.
    let mut bufs = EditBuffers::default();
    let mut rng = Xorshift::new(0x9E3779B97F4A7C15);
    let batch_edges = (g.num_edges() / 1000).max(8);
    for batch in 0..5 {
        let delta = insert_batch(&g, batch_edges, 16, rng.next_u64());
        let ops = delta.len();
        let t = Instant::now();
        let out = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        let reachable = out.out.iter().filter(|&&d| d != u64::MAX).count();
        println!(
            "batch {batch}: {ops:>3} inserts -> warm {warm_ms:>7.2} ms ({:>6} updates, \
             {reachable} reachable), cold would pay ~{cold_ms:.2} ms",
            out.stats.total_updates(),
        );
    }

    // A deletion batch breaks monotone-decreasing SSSP: the driver falls
    // back to a full recompute through the same call, refreshing `state`.
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    let victim = rng.below(n as u64) as u32;
    if let Some(&t) = g.neighbors(victim).first() {
        b.remove_edge(victim, t);
    } else {
        b.remove_vertex(victim);
    }
    let delta = b.build();
    let t = Instant::now();
    let out = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
    println!(
        "deletion batch: fell back to cold recompute in {:.2} ms | {}",
        t.elapsed().as_secs_f64() * 1e3,
        out.stats.summary()
    );

    // The retained state keeps serving after the fallback, too.
    let empty = DeltaBuilder::new().build();
    let out = run_incremental_with(&mut engine, &Sssp, &0, &empty, &mut state, &mut bufs);
    assert_eq!(out.stats.total_updates(), 0);
    println!("empty delta: fixpoint replayed with zero messages — state stays hot");
}
