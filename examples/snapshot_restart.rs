//! Kill-and-resume of the dynamic stream: a "serving process" snapshots
//! its partition + retained state, appends every applied delta to a
//! durable log, then dies mid-stream; a "restarted process" loads the
//! snapshot, replays the log, and keeps serving from exactly the state
//! the dead process held — no re-partitioning, no cold recompute.
//!
//! ```sh
//! cargo run --release --example snapshot_restart
//! ```

use grape_aap::delta::generate::{insert_batch, Xorshift};
use grape_aap::delta::{replay, run_incremental_with, DeltaBuilder};
use grape_aap::graph::mutate::EditBuffers;
use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;
use grape_aap::runtime::EngineOpts;
use grape_aap::snapshot::{restore_engine, save_engine, DeltaLog};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("aap_restart_{}.snap", std::process::id()));
    let log_path = dir.join(format!("aap_restart_{}.dlog", std::process::id()));

    // A power-law graph: 2^13 vertices, ~64k stored edges, 8 fragments.
    let g = generate::rmat(13, 8, true, 7);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());
    let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 8));

    // ------------------------------------------------------------------
    // Phase 1 — the serving process.
    // ------------------------------------------------------------------
    let mut engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
    let t = Instant::now();
    let (run0, mut state) = engine.run_retained(&Sssp, &0);
    println!("cold run: {:.2} ms | {}", t.elapsed().as_secs_f64() * 1e3, run0.stats.summary());

    // Durability begins: snapshot the fragments + state, open the log.
    let t = Instant::now();
    save_engine(&snap_path, &engine, Some(&state)).unwrap();
    let save_ms = t.elapsed().as_secs_f64() * 1e3;
    let snap_bytes = std::fs::metadata(&snap_path).unwrap().len();
    println!("snapshot: {snap_bytes} bytes in {save_ms:.2} ms -> {}", snap_path.display());
    let mut log = DeltaLog::create(&log_path).unwrap();

    // Stream batches, logging each delta the driver actually applied.
    let mut bufs = EditBuffers::default();
    let mut rng = Xorshift::new(0x5EED);
    let batch_edges = (g.num_edges() / 1000).max(8);
    for batch in 0..4 {
        let delta = insert_batch(&g, batch_edges, 16, rng.next_u64());
        let r = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
        log.write_delta(&delta).unwrap();
        println!(
            "batch {batch}: {} ops applied ({}), {} updates",
            delta.len(),
            r.strategy,
            r.stats.total_updates(),
        );
    }
    // A deletion batch exercises the warm-increase path across the log too.
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    let victim = rng.below(g.num_vertices() as u64) as u32;
    match g.neighbors(victim).first() {
        Some(&t) => b.remove_edge(victim, t),
        None => b.remove_vertex(victim),
    };
    let delta = b.build();
    let r = run_incremental_with(&mut engine, &Sssp, &0, &delta, &mut state, &mut bufs);
    log.write_delta(&delta).unwrap();
    println!("deletion batch: applied via {} (no cold recompute)", r.strategy);
    let final_out = r.out;

    // The process "dies" here: drop everything in memory.
    drop(log);
    drop(engine);
    drop(state);
    println!("\n-- crash -- (all in-memory state dropped)\n");

    // ------------------------------------------------------------------
    // Phase 2 — the restarted process.
    // ------------------------------------------------------------------
    let t = Instant::now();
    let (mut engine2, attached) = restore_engine::<(), u32, grape_aap::algos::SsspState, _>(
        &snap_path,
        EngineOpts { mode: Mode::aap(), ..Default::default() },
    )
    .unwrap();
    let (mut state2, remaps) = attached.expect("snapshot carried retained state");
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "loaded snapshot in {load_ms:.2} ms ({} fragments, remaps all identity: {})",
        engine2.fragments().len(),
        remaps.iter().all(|r| r.is_identity()),
    );

    let t = Instant::now();
    let deltas = DeltaLog::replay::<(), u32, _>(&log_path).unwrap();
    let replayed = replay(&mut engine2, &Sssp, &0, &deltas, &mut state2)
        .expect("log holds the streamed batches");
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("replayed {} logged deltas in {replay_ms:.2} ms", deltas.len());

    assert_eq!(replayed.out, final_out, "restart must land in the continuous process's state");
    println!("restart output == continuous output: warm restart is exact");

    // And it keeps serving: the next delta warm-starts from replayed state.
    let next = insert_batch(&g, batch_edges, 16, rng.next_u64());
    let r = run_incremental_with(&mut engine2, &Sssp, &0, &next, &mut state2, &mut bufs);
    println!(
        "post-restart batch: {} updates ({}) — the stream continues",
        r.stats.total_updates(),
        r.strategy,
    );

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&log_path).ok();
}
