//! Kill-and-resume of the dynamic stream, through the [`Session`]
//! facade: a durable session snapshots its partition at open and logs
//! every applied delta; the process "dies" mid-stream; a restored
//! session (`Session::restore` = load → attach → replay) lands in
//! exactly the state the dead process held — no re-partitioning, no
//! cold recompute — and keeps serving.
//!
//! ```sh
//! cargo run --release --example snapshot_restart
//! ```

use grape_aap::delta::generate::{insert_batch, Xorshift};
use grape_aap::delta::WarmStrategy;
use grape_aap::graph::generate;
use grape_aap::prelude::*;
use std::time::Instant;

fn main() -> Result<(), SessionError> {
    let dir = std::env::temp_dir().join(format!("aap_restart_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A power-law graph: 2^13 vertices, ~64k stored edges, 8 fragments.
    let g = generate::rmat(13, 8, true, 7);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    // ------------------------------------------------------------------
    // Phase 1 — the serving process. Durability is a builder flag: the
    // partition is snapshotted at open (epoch 0) and every apply is
    // logged.
    // ------------------------------------------------------------------
    let t = Instant::now();
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(8))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .durable(&dir)?
        .open()?;
    println!("durable open (partition + epoch-0 snapshot): {:.2} ms", ms(t));

    let t = Instant::now();
    let out0 = session.query::<Sssp>("sssp", &0)?;
    println!("cold query: {:.2} ms ({} vertices answered)", ms(t), out0.len());

    // Stream batches; each apply advances the retained fixpoint AND
    // appends the delta to the log.
    let mut rng = Xorshift::new(0x5EED);
    let batch_edges = (g.num_edges() / 1000).max(8);
    for batch in 0..4 {
        let delta = insert_batch(&g, batch_edges, 16, rng.next_u64());
        let report = session.apply(&delta)?;
        println!(
            "batch {batch}: {} ops applied ({}), {} updates",
            delta.len(),
            report.programs[0].strategy,
            report.programs[0].updates,
        );
    }
    // A deletion batch exercises the warm-increase path across the log too.
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    let victim = rng.below(g.num_vertices() as u64) as u32;
    match g.neighbors(victim).first() {
        Some(&t) => b.remove_edge(victim, t),
        None => b.remove_vertex(victim),
    };
    let report = session.apply(&b.build())?;
    assert_eq!(report.strategy("sssp"), Some(WarmStrategy::WarmIncrease));
    println!("deletion batch: applied via {} (no cold recompute)", report.programs[0].strategy);
    let final_out = session.query::<Sssp>("sssp", &0)?;

    // The process "dies" here: drop everything in memory.
    drop(session);
    println!("\n-- crash -- (all in-memory state dropped)\n");

    // ------------------------------------------------------------------
    // Phase 2 — the restarted process: same registrations, one call.
    // load -> attach per program -> replay the delta log.
    // ------------------------------------------------------------------
    let t = Instant::now();
    let mut restored: Session<(), u32, _> =
        Session::restore(&dir).mode(Mode::aap()).program("sssp", Sssp).open()?;
    println!(
        "restored in {:.2} ms ({} fragments, epoch {:?})",
        ms(t),
        restored.fragments().len(),
        restored.epoch(),
    );

    // The retained query serves WITHOUT re-running: replay landed the
    // state at the continuous process's fixpoint.
    let t = Instant::now();
    let replayed = restored.query::<Sssp>("sssp", &0)?;
    println!("first post-restart serve: {:.3} ms (cached fixpoint)", ms(t));
    assert_eq!(replayed, final_out, "restart must land in the continuous process's state");
    println!("restart output == continuous output: warm restart is exact");

    // And it keeps serving: the next delta warm-starts from replayed
    // state, and a checkpoint rotates the snapshot epoch so the log
    // never grows unboundedly.
    let next = insert_batch(&g, batch_edges, 16, rng.next_u64());
    let report = restored.apply(&next)?;
    println!(
        "post-restart batch: {} updates ({}) — the stream continues",
        report.programs[0].updates, report.programs[0].strategy,
    );
    let ckpt = restored.checkpoint()?;
    println!("checkpoint -> epoch {} (fresh snapshot, log reset)", ckpt.epoch);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
