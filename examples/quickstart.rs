//! Quickstart: partition a graph once, run several queries on the GRAPE+
//! engine under AAP, and inspect the run statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;

fn main() {
    // 2^12 vertices, ~32k edges, power-law degree distribution.
    let g = generate::rmat(12, 8, true, 7);
    println!("graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // Partition once; the engine is reusable across queries (§3).
    let assignment = partition::hash_partition(&g, 8);
    let frags = partition::build_fragments(&g, &assignment);
    let stats = grape_aap::graph::fragment::partition_stats(&frags);
    println!(
        "partition: m = {}, cut edges = {}, replication = {:.3}, skew r = {:.2}",
        stats.owned.len(),
        stats.cut_edges,
        stats.replication_factor,
        stats.skew_r
    );

    let engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });

    // SSSP from three different sources on the same engine.
    for src in [0u32, 17, 4095] {
        let run = engine.run(&Sssp, &src);
        let reachable = run.out.iter().filter(|&&d| d != u64::MAX).count();
        println!("SSSP from {src:>4}: {reachable:>5} reachable | {}", run.stats.summary());
    }

    // Connected components on the same fragments.
    let run = engine.run(&ConnectedComponents, &());
    let mut comps: Vec<u32> = run.out.clone();
    comps.sort_unstable();
    comps.dedup();
    println!("CC: {} components | {}", comps.len(), run.stats.summary());

    // PageRank, same engine again.
    let run = engine.run(&PageRank::default(), &());
    let mut top: Vec<(usize, f64)> = run.out.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("PageRank top-5: {:?}", &top[..5]);
    println!("{}", run.stats.summary());
}
