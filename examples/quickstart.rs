//! Quickstart: open a serving [`Session`] over a graph — partition
//! once, register programs, answer queries while each program retains
//! its fixpoint — then stream a mutation through all of them with one
//! `apply`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grape_aap::graph::generate;
use grape_aap::prelude::*;

fn main() -> Result<(), SessionError> {
    // 2^12 vertices, ~32k edges, power-law degree distribution.
    let g = generate::rmat(12, 8, true, 7);
    println!("graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // Partition once into 8 fragments; the session serves any number of
    // queries over them (§3: "G is partitioned once for all queries Q").
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(8))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()?;

    let stats = grape_aap::graph::fragment::partition_stats(session.fragments());
    println!(
        "partition: m = {}, cut edges = {}, replication = {:.3}, skew r = {:.2}",
        stats.owned.len(),
        stats.cut_edges,
        stats.replication_factor,
        stats.skew_r
    );

    // SSSP from three different sources on the same session. Each new
    // source replaces the retained fixpoint; repeating a source is a
    // cache hit (no engine run at all).
    for src in [0u32, 17, 4095] {
        let dist = session.query::<Sssp>("sssp", &src)?;
        let reachable = dist.iter().filter(|&&d| d != u64::MAX).count();
        println!("SSSP from {src:>4}: {reachable:>5} reachable");
    }

    // Connected components, retained concurrently on the same fragments.
    let cc = session.query::<ConnectedComponents>("cc", &())?;
    let mut comps: Vec<u32> = cc.clone();
    comps.sort_unstable();
    comps.dedup();
    println!("CC: {} components", comps.len());

    // A mutation batch: ONE apply advances every retained program warm
    // (SSSP from its last source, CC from its fixpoint).
    let mut b = DeltaBuilder::new();
    b.add_edge(0, 2048, 1);
    b.add_edge(17, 4095, 3);
    let report = session.apply(&b.build())?;
    for p in &report.programs {
        println!("apply: {:<5} advanced via {} ({} updates)", p.name, p.strategy, p.updates);
    }
    let dist = session.query::<Sssp>("sssp", &17)?;
    println!("SSSP from 17 after the delta: dist[4095] = {} (via the new edge)", dist[4095]);

    // The engine layer stays available for programs outside the
    // warm-start family — PageRank runs on a plain Engine.
    let frags = grape_aap::graph::partition::build_fragments(
        &g,
        &grape_aap::graph::partition::hash_partition(&g, 8),
    );
    let engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
    let run = engine.run(&PageRank::default(), &());
    let mut top: Vec<(usize, f64)> = run.out.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("PageRank top-5 (plain engine): {:?}", &top[..5]);
    println!("{}", run.stats.summary());
    Ok(())
}
