//! Elastic partitions end to end: a skewed delta stream drives one
//! fragment's load far above its peers, the drift monitor (maintained
//! incrementally inside [`Session::apply`]) watches it happen, and
//! [`Session::rebalance`] heals the skew **in place** — bounded
//! ownership migration with warm-state carry-over, instead of the
//! stop-the-world full re-partition it replaces. Serving answers are
//! identical before and after (outputs are partition-independent).
//!
//! ```sh
//! cargo run --release --example elastic
//! ```

use grape_aap::delta::generate::Xorshift;
use grape_aap::graph::partition::hash_partition;
use grape_aap::graph::{generate, VertexId};
use grape_aap::prelude::*;
use std::time::Instant;

const FRAGS: usize = 4;

fn main() -> Result<(), SessionError> {
    let g = generate::rmat(13, 8, true, 42);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    // The skew: every inserted edge leaves a vertex owned by fragment 0
    // under the edge-cut hash partition, so fragment 0's stored-edge
    // load grows with the stream while the others stand still.
    let assignment = hash_partition(&g, FRAGS);
    let hot: Vec<VertexId> =
        (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();

    let mut session = Session::builder(g.clone())
        .partition(edge_cut(FRAGS))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        // Explicit rebalancing: `.auto(true)` would instead fire inside
        // `apply()` whenever the threshold is crossed.
        .balance(BalancePolicy::new().max_imbalance(1.15).migration_budget(8192))
        .open()?;
    let dist0 = session.query::<Sssp>("sssp", &0)?;
    let comps0 = session.query::<ConnectedComponents>("cc", &())?;

    // -- the skewed stream -------------------------------------------
    let mut rng = Xorshift::new(7);
    let n = g.num_vertices() as u64;
    for _ in 0..64 {
        let mut b = DeltaBuilder::new();
        for _ in 0..512 {
            let u = hot[(rng.below(hot.len() as u64)) as usize];
            let v = rng.below(n) as u32;
            if u != v {
                b.add_edge(u, v, 1 + rng.below(9) as u32);
            }
        }
        session.apply(&b.build())?;
    }
    let before = session.balance_report().expect("balance policy configured");
    println!(
        "after stream: loads {:?}, imbalance {:.3} (threshold {:.2})",
        before.loads, before.imbalance, 1.15
    );
    assert!(before.imbalance > 1.15, "the skewed stream should overload fragment 0");

    // -- heal it in place --------------------------------------------
    let t = Instant::now();
    let report = session.rebalance()?;
    let took = t.elapsed();
    println!(
        "rebalance: moved {} vertices (~{} KiB) across {} repacked fragments in {:.1?}",
        report.vertices_migrated,
        report.migration_bytes / 1024,
        report.fragments_repacked,
        took
    );
    println!(
        "imbalance {:.3} -> {:.3}",
        report.imbalance_before, report.imbalance_after
    );
    assert!(report.imbalance_after < report.imbalance_before);

    // The answers did not move: ownership is a physical property,
    // fixpoints are logical.
    let dist_now = session.query::<Sssp>("sssp", &0)?;
    let comps_now = session.query::<ConnectedComponents>("cc", &())?;
    assert_eq!(dist_now.len(), dist0.len());
    assert_eq!(comps_now.len(), comps0.len());

    // Compare against the machinery rebalance replaces: a full
    // re-partition + cold rerun of both programs on a fresh session.
    let t = Instant::now();
    let mut repart = Session::builder({
        // Reassemble the current logical graph from the session's own
        // fragments (what a stop-the-world re-partition would do).
        grape_aap::graph::mutate::reassemble(
            &session.fragments().iter().map(|a| &**a).collect::<Vec<_>>(),
        )
    })
    .partition(edge_cut(FRAGS))
    .mode(Mode::aap())
    .program("sssp", Sssp)
    .program("cc", ConnectedComponents)
    .open()?;
    let dist_ref = repart.query::<Sssp>("sssp", &0)?;
    let comps_ref = repart.query::<ConnectedComponents>("cc", &())?;
    let full_took = t.elapsed();
    println!(
        "full re-partition + cold rerun: {:.1?} ({}x the in-place rebalance)",
        full_took,
        (full_took.as_nanos() / took.as_nanos().max(1)).max(1)
    );
    assert_eq!(dist_now, dist_ref, "rebalanced fixpoint == full re-partition fixpoint");
    assert_eq!(comps_now, comps_ref, "rebalanced fixpoint == full re-partition fixpoint");

    // And the stream goes on, warm, on the migrated layout.
    let mut b = DeltaBuilder::new();
    b.add_edge(0, (n / 2) as u32, 1);
    let rep = session.apply(&b.build())?;
    println!(
        "post-rebalance apply advanced {} programs warm; metrics: {:?}",
        rep.programs.len(),
        session.metrics()
    );
    println!("ok");
    Ok(())
}
