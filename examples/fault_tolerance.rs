//! Fault tolerance (§6): periodic coordinated checkpoints plus failure
//! injection and recovery in the simulator. The recovered run must reach
//! the same fixpoint (Theorem 2 + deterministic replay); denser
//! checkpoints bound the re-execution window.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;
use grape_aap::sim::{run_with_failure, FailurePlan, SimDurability};

fn main() {
    let g = generate::rmat(12, 8, true, 31);
    let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 8));
    let engine = SimEngine::new(frags, SimOpts::default()).expect("default sim opts are valid");

    let clean = engine.run(&ConnectedComponents, &());
    println!(
        "failure-free run: makespan {:.1} virtual units, {} rounds",
        clean.stats.makespan,
        clean.stats.total_rounds()
    );

    let fail_at = clean.stats.makespan * 0.75;
    println!("\ninjecting a failure at t = {fail_at:.1} with various checkpoint cadences:\n");
    println!("| checkpoint every | checkpoints | rolled back to | time lost | makespan |");
    println!("|---:|---:|---:|---:|---:|");
    for divisor in [2.0, 5.0, 10.0, 25.0] {
        let plan = FailurePlan {
            checkpoint_every: clean.stats.makespan / divisor,
            fail_at,
            recovery_delay: clean.stats.makespan * 0.05,
            ..FailurePlan::default()
        };
        let rec = run_with_failure(&engine, &ConnectedComponents, &(), &plan);
        assert_eq!(rec.output.out, clean.out, "recovery must reach the same fixpoint");
        println!(
            "| {:>8.1} | {:>3} | {:>8.1} | {:>7.1} | {:>8.1} |",
            plan.checkpoint_every,
            rec.checkpoints_taken,
            rec.rolled_back_to,
            rec.time_lost,
            rec.output.stats.makespan
        );
    }
    println!("\nevery recovered run converged to the same components — Theorem 2 in action");

    // Differential cadence: same checkpoint density, but only every 5th
    // epoch is a full baseline — the rest are churn-proportional links,
    // so dense checkpointing stops costing graph-sized writes.
    println!("\ndense cadence (x20) with a checkpoint cost model, full vs differential:\n");
    println!("| policy | full | diff | write overhead | chain resolved | time lost |");
    println!("|---|---:|---:|---:|---:|---:|");
    let full_cost = clean.stats.makespan * 0.04;
    for (label, compact_after) in [("full-every-epoch", None), ("compact_after=5", Some(5))] {
        let plan = FailurePlan {
            checkpoint_every: clean.stats.makespan / 20.0,
            fail_at,
            recovery_delay: clean.stats.makespan * 0.05,
            durability: SimDurability { full_cost, diff_cost: full_cost / 10.0, compact_after },
        };
        let rec = run_with_failure(&engine, &ConnectedComponents, &(), &plan);
        assert_eq!(rec.output.out, clean.out, "recovery must reach the same fixpoint");
        println!(
            "| {label} | {:>3} | {:>3} | {:>8.1} | {:>3} | {:>7.1} |",
            rec.full_checkpoints,
            rec.differential_checkpoints,
            rec.checkpoint_overhead,
            rec.chain_resolved,
            rec.time_lost,
        );
    }
}
