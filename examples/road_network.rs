//! Road-network routing (the `traffic` scenario of §7): SSSP on a
//! high-diameter 2-D lattice, comparing all execution modes on a skewed
//! partition — the setting where the paper reports AAP's largest wins,
//! because BSP pays a straggler every superstep and AP burns rounds on
//! stale distances.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;

fn main() {
    // ~40k intersections with uniform random segment lengths.
    let g = generate::lattice2d(200, 200, 99);
    println!(
        "road network: {} intersections, {} segments (stored directed)",
        g.num_vertices(),
        g.num_edges()
    );

    // A deliberately skewed partition: fragment 0 is ~4x the others,
    // mimicking the paper's reshuffled inputs.
    let assignment = partition::skewed_partition(&g, 8, 4.0);
    let frags = partition::build_fragments(&g, &assignment);
    let pstats = grape_aap::graph::fragment::partition_stats(&frags);
    println!("partition skew r = {:.2}\n", pstats.skew_r);

    let src = 0u32;
    let reference = grape_aap::algos::seq::dijkstra(&g, src);

    for mode in [Mode::Bsp, Mode::Ap, Mode::Ssp { c: 2 }, Mode::aap()] {
        let frags = partition::build_fragments(&g, &assignment);
        let engine = Engine::new(frags, EngineOpts { mode: mode.clone(), ..Default::default() });
        let run = engine.run(&Sssp, &src);
        assert_eq!(run.out, reference, "Church–Rosser: every mode must agree");
        println!("{}", run.stats.summary());
    }

    println!("\nall modes agreed with sequential Dijkstra ({} vertices)", reference.len());
}
