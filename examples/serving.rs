//! The serving story end to end: one durable [`Session`] holding
//! **multiple programs** (SSSP + CC) over one partition, answering
//! queries while a mutation stream mixes inserts, weight changes, and
//! deletions — every batch applied once, every program advanced with
//! its own strategy — with a mid-stream `checkpoint()`, a crash, and a
//! `restore()` that resumes serving byte-identically.
//!
//! This is the paper's AAP model as a long-lived process, where PRs 1–4
//! required hand-threading `Engine` + `run_incremental` + `save_engine`
//! + `DeltaLog` per program.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use grape_aap::delta::generate::Xorshift;
use grape_aap::delta::WarmStrategy;
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;
use std::time::Instant;

/// One "traffic" batch: a few inserts, a weight change, and (in later
/// batches) deletions of existing edges — the mixed serving workload.
fn traffic(g: &Graph<(), u32>, rng: &mut Xorshift, deletions: bool) -> GraphDelta<(), u32> {
    let n = g.num_vertices() as u32;
    let mut b = DeltaBuilder::new();
    for _ in 0..24 {
        let (u, v) = (rng.below(n as u64) as u32, rng.below(n as u64) as u32);
        if u != v {
            b.add_edge(u, v, 1 + rng.below(9) as u32);
        }
    }
    let u = rng.below(n as u64) as u32;
    if let Some((&t, &w)) = g.neighbors(u).first().zip(g.edge_data(u).first()) {
        b.set_weight(u, t, w.saturating_add(rng.below(5) as u32).max(1));
    }
    if deletions {
        for _ in 0..8 {
            let u = rng.below(n as u64) as u32;
            if let Some(&t) = g.neighbors(u).first() {
                if u != t {
                    b.remove_edge(u, t);
                }
            }
        }
    }
    b.build()
}

fn main() -> Result<(), SessionError> {
    let dir = std::env::temp_dir().join(format!("aap_serving_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let g = generate::rmat(13, 8, true, 21);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    // -- open: one partition, two programs, durable ---------------------
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(8))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .durable(&dir)?
        .open()?;
    println!(
        "session open: programs = [{}], durable epoch {:?}",
        session.program_names().collect::<Vec<_>>().join(", "),
        session.epoch()
    );

    // -- serve ----------------------------------------------------------
    let dist = session.query::<Sssp>("sssp", &0)?;
    let cc = session.query::<ConnectedComponents>("cc", &())?;
    let reachable = dist.iter().filter(|&&d| d != u64::MAX).count();
    let comps = {
        let mut c = cc.clone();
        c.sort_unstable();
        c.dedup();
        c.len()
    };
    println!("serving: SSSP(0) reaches {reachable} vertices; CC finds {comps} components");

    // -- stream traffic, checkpoint mid-stream --------------------------
    let mut rng = Xorshift::new(0xFEED);
    for batch in 0..6 {
        let deletions = batch >= 2;
        let delta = traffic(&g, &mut rng, deletions);
        let t = Instant::now();
        let report = session.apply(&delta)?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let tags: Vec<String> =
            report.programs.iter().map(|p| format!("{}:{}", p.name, p.strategy)).collect();
        println!(
            "batch {batch}: {:>2} ops, one apply -> [{}] in {ms:.2} ms",
            delta.len(),
            tags.join(", ")
        );
        if deletions {
            assert!(
                report.programs.iter().all(|p| p.strategy != WarmStrategy::Cold),
                "SSSP and CC both have invalidation plans: deletions never recompute cold"
            );
        }
        if batch == 2 {
            let ckpt = session.checkpoint()?;
            println!("  checkpoint -> epoch {} (snapshot rotated, log reset)", ckpt.epoch);
        }
    }
    let served_sssp = session.query::<Sssp>("sssp", &0)?;
    let served_cc = session.query::<ConnectedComponents>("cc", &())?;

    // -- crash ----------------------------------------------------------
    drop(session);
    println!("\n-- crash -- (in-memory state gone; {} holds the truth)\n", dir.display());

    // -- restore: load -> attach x2 -> replay, one call -----------------
    let t = Instant::now();
    let mut restored: Session<(), u32, _> = Session::restore(&dir)
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()?;
    println!("restored both programs in {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(restored.query::<Sssp>("sssp", &0)?, served_sssp);
    assert_eq!(restored.query::<ConnectedComponents>("cc", &())?, served_cc);
    println!("restored serve == pre-crash serve, for BOTH programs");

    // -- and the stream continues ---------------------------------------
    let delta = traffic(&g, &mut rng, true);
    let report = restored.apply(&delta)?;
    let tags: Vec<String> =
        report.programs.iter().map(|p| format!("{}:{}", p.name, p.strategy)).collect();
    println!("post-restore batch: [{}] — serving never went cold", tags.join(", "));

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
