//! Recommender training (the movieLens/Netflix scenario of §5.2/§7):
//! collaborative filtering by distributed SGD with replicated item factors,
//! run under bounded staleness (SSP and AAP+bound) — CF is the one workload
//! in the paper that *needs* the staleness bound for convergence.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use grape_aap::algos::cf::{Cf, CfQuery};
use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;

fn main() {
    // 2k users x 300 items, 40 ratings per user, planted rank-8 structure.
    let ratings = generate::bipartite_ratings(2000, 300, 40, 8, 11);
    println!(
        "ratings: {} users, {} items, {} ratings",
        ratings.num_users,
        ratings.num_items,
        ratings.graph.num_edges()
    );

    let assignment = partition::hash_partition(&ratings.graph, 8);
    let q = CfQuery { item_base: ratings.item_base() };
    let cf = Cf { dim: 8, lr: 0.03, lambda: 0.01, epochs: 15, seed: 42 };

    let untrained = {
        let engine = Engine::new(
            partition::build_fragments(&ratings.graph, &assignment),
            EngineOpts { mode: Mode::Bsp, ..Default::default() },
        );
        engine.run(&Cf { epochs: 0, ..cf }, &q).out.rmse
    };
    println!("untrained RMSE: {untrained:.4}\n");

    for (name, mode) in [
        ("BSP", Mode::Bsp),
        ("SSP c=3", Mode::Ssp { c: 3 }),
        (
            "AAP c=3",
            Mode::Aap(AapConfig {
                staleness_bound: Some(3),
                l_floor_frac: Some(0.6), // the Appendix-B starting point
                ..AapConfig::default()
            }),
        ),
    ] {
        let engine = Engine::new(
            partition::build_fragments(&ratings.graph, &assignment),
            EngineOpts { mode, ..Default::default() },
        );
        let run = engine.run(&cf, &q);
        println!("{name:>8}: RMSE {:.4} | {}", run.out.rmse, run.stats.summary());
    }

    let seq = grape_aap::algos::seq::cf_sgd(&ratings, 8, 0.03, 0.01, 15, 42);
    println!("\nsequential SGD reference RMSE: {seq:.4}");
}
