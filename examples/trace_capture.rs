//! Trace capture: attach a bounded [`Recorder`] to a serving session,
//! run a query/apply workload, and export the capture as Chrome
//! trace-event JSON — loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release --example trace_capture
//! ```
//!
//! Writes `trace_capture.trace.json` next to the working directory and
//! validates it with the bench harness's format checker before exiting,
//! so a malformed export fails the run (CI uploads the file as an
//! artifact).

use grape_aap::graph::generate;
use grape_aap::prelude::*;
use grape_aap::trace::{pid, write_chrome_trace};
use std::sync::Arc;

const OUT: &str = "trace_capture.trace.json";

fn main() -> Result<(), SessionError> {
    // A bounded ring: memory stays capped no matter how long the traced
    // run streams; `dropped()` says if the window was too small.
    let recorder = Arc::new(Recorder::with_capacity(1 << 18));

    let g = generate::rmat(11, 8, true, 7);
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(4))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .trace(Arc::clone(&recorder))
        .open()?;

    // Queries retain fixpoints (engine round/eval/route spans), repeats
    // hit the answer cache (session spans only), applies stream deltas
    // through the warm-start planner (strategy instants, repack spans).
    let reader = session.reader();
    for round in 0..3u64 {
        for src in [0u32, 17, 0] {
            session.query::<Sssp>("sssp", &src)?;
        }
        session.query::<ConnectedComponents>("cc", &())?;
        reader.request::<Sssp>("sssp", &(100 + round as u32))?;
        let admitted = session.serve_admitted()?;
        let delta = grape_aap::delta::generate::insert_batch(&g, 64, 9, 0xACE ^ round);
        let report = session.apply(&delta)?;
        println!(
            "round {round}: admitted {admitted}, applied {} program(s), version {}",
            report.programs.len(),
            session.version()
        );
    }
    let metrics = session.metrics();
    println!(
        "metrics: {} fresh, {} cache hits, {} publications",
        metrics.fresh_queries, metrics.answer_cache_hits, metrics.publications
    );
    drop(session);

    assert_eq!(recorder.dropped(), 0, "recorder window too small for this run");
    let events = recorder.events();
    write_chrome_trace(OUT, &events).expect("write trace file");

    // Round-trip the exported file through the bench format checker:
    // balanced B/E nesting and monotone timestamps per (pid, tid) track.
    let text = std::fs::read_to_string(OUT).expect("read trace back");
    let check = aap_bench::tracecheck::check_chrome_trace(&text).expect("well-formed trace");
    assert!(check.pids.contains(&pid::ENGINE) && check.pids.contains(&pid::SESSION));
    assert!(check.has("round") && check.has("strategy") && check.has("apply"));
    println!(
        "wrote {OUT}: {} events, {} tracks, {} span pairs, {} counter samples",
        check.events, check.tracks, check.spans, check.counters
    );
    Ok(())
}
