//! Social-network ranking (the Friendster scenario of §7): delta-based
//! PageRank on a power-law graph, PIE vs the vertex-centric baseline.
//!
//! The PIE program propagates residual mass through the whole fragment per
//! round; the vertex-centric baseline (Giraph-style) advances one hop per
//! superstep and recomputes every vertex for a fixed iteration budget —
//! compare the round and message counts.
//!
//! ```sh
//! cargo run --release --example social_rank
//! ```

use grape_aap::algos::vertex_centric::VcPageRank;
use grape_aap::graph::{generate, partition};
use grape_aap::prelude::*;

fn main() {
    let g = generate::rmat(13, 12, true, 3);
    println!("social graph: {} users, {} follows", g.num_vertices(), g.num_edges());
    let assignment = partition::hash_partition(&g, 8);

    // PIE delta-PageRank under AAP (GRAPE+).
    let engine = Engine::new(
        partition::build_fragments(&g, &assignment),
        EngineOpts { mode: Mode::aap(), ..Default::default() },
    );
    let pie = engine.run(&PageRank { damping: 0.85, epsilon: 1e-7 }, &());
    println!("PIE   {}", pie.stats.summary());

    // Vertex-centric PageRank under BSP (Giraph baseline).
    let engine = Engine::new(
        partition::build_fragments(&g, &assignment),
        EngineOpts { mode: Mode::Bsp, ..Default::default() },
    );
    let vc = engine.run(&VertexCentric(VcPageRank { damping: 0.85, iterations: 30 }), &());
    println!("VC    {}", vc.stats.summary());

    // Same ranking? Compare the top-10 sets.
    let top = |scores: &[f64]| {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        idx.truncate(10);
        idx
    };
    let (tp, tv) = (top(&pie.out), top(&vc.out));
    let overlap = tp.iter().filter(|v| tv.contains(v)).count();
    println!("\ntop-10 overlap between PIE and vertex-centric: {overlap}/10");
    println!("top-10 by PIE PageRank: {tp:?}");
    println!(
        "messages: PIE {} vs vertex-centric {} ({}x)",
        pie.stats.total_updates(),
        vc.stats.total_updates(),
        vc.stats.total_updates().max(1) / pie.stats.total_updates().max(1)
    );
}
