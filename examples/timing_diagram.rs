//! Reproduce Fig 1(a): runs of the CC PIE program under BSP, AP, SSP and
//! AAP on three workers where P1/P2 take 3 time units per round, P3 takes
//! 6, and messages take 1 unit — rendered as ASCII Gantt charts
//! (`#`/`=` compute rounds, `.` delay stretches).
//!
//! ```sh
//! cargo run --release --example timing_diagram
//! ```

use grape_aap::graph::partition::build_fragments_n;
use grape_aap::graph::GraphBuilder;
use grape_aap::prelude::*;

/// The Fig 1(b) instance: a chain of eight components spread over three
/// fragments so that the minimal cid (0) needs several cross-fragment hops
/// to reach component 7.
fn fig1_fragments() -> Vec<Fragment<(), u32>> {
    // Chain of 8 rings ("components" 0..8) linked in the dotted pattern of
    // Fig 1(b); vertices 10c..10c+9 form ring c.
    let n = 80;
    let mut b = GraphBuilder::new_undirected(n);
    for c in 0..8u32 {
        for i in 0..10u32 {
            b.add_edge(10 * c + i, 10 * c + (i + 1) % 10, 1);
        }
    }
    // Cross-component links forming the Fig 1(b) chain: the minimal cid 0
    // (at F3) must hop through F1/F2 alternately before reaching
    // component 7 (back at F3).
    let links = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)];
    for (a, bb) in links {
        b.add_edge(10 * a, 10 * bb, 1);
    }
    let g = b.build();
    // Components 1,3,5 -> worker 0; 2,4,6 -> worker 1; 0,7 -> worker 2.
    let frag_of = |c: u32| match c {
        1 | 3 | 5 => 0u16,
        2 | 4 | 6 => 1,
        _ => 2,
    };
    let assignment: Vec<u16> = (0..n as u32).map(|v| frag_of(v / 10)).collect();
    build_fragments_n(&g, &assignment, 3)
}

fn main() {
    println!("Fig 1(a): CC on 3 workers; compute 3/3/6 units, latency 1\n");
    for (name, mode) in [
        ("(1) BSP", Mode::Bsp),
        ("(2) AP", Mode::Ap),
        ("(3) SSP (c=1)", Mode::Ssp { c: 1 }),
        ("(4) AAP", Mode::aap()),
    ] {
        let opts = SimOpts {
            mode,
            latency: 1.0,
            cost: CostModel::FixedPerWorker(vec![3.0, 3.0, 6.0]),
            max_rounds: Some(10_000),
            ..SimOpts::default()
        };
        let sim = SimEngine::new(fig1_fragments(), opts).expect("valid opts");
        let out = sim.run(&ConnectedComponents, &());
        assert!(out.out.iter().all(|&c| c == 0), "one connected component");
        println!(
            "{name}: makespan {:.1}, rounds/worker {:?}",
            out.stats.makespan,
            out.stats.workers.iter().map(|w| w.rounds).collect::<Vec<_>>()
        );
        print!("{}", grape_aap::sim::render_gantt(&out.timelines, 72));
        println!();
    }
}
