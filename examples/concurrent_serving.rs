//! Concurrent serving end to end (ISSUE 6): **N reader threads** serve
//! SSSP answers from cheap [`SessionReader`] clones — lock-free
//! epoch-published fixpoints, `&self` all the way — while **one
//! writer** streams mutation batches through `apply()`, admits
//! reader-requested query values in windows (`serve_admitted`), and
//! takes a mid-stream durable `checkpoint()` without ever pausing the
//! readers.
//!
//! Every read observes a complete pre- or post-apply fixpoint (never a
//! torn mix); the final tally prints how many reads each thread served
//! and which publication versions it saw.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```

use grape_aap::delta::generate::Xorshift;
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const READERS: usize = 4;
const BATCHES: usize = 12;

fn traffic(g: &Graph<(), u32>, rng: &mut Xorshift) -> GraphDelta<(), u32> {
    let n = g.num_vertices() as u32;
    let mut b = DeltaBuilder::new();
    for _ in 0..16 {
        let (u, v) = (rng.below(n as u64) as u32, rng.below(n as u64) as u32);
        if u != v {
            b.add_edge(u, v, 1 + rng.below(9) as u32);
        }
    }
    b.build()
}

fn main() -> Result<(), SessionError> {
    let dir = std::env::temp_dir().join(format!("aap_concurrent_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let g = generate::rmat(12, 8, true, 33);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    // One writer: a durable session with the retained SSSP fixpoint.
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(4))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .durable(&dir)?
        .open()?;
    session.query::<Sssp>("sssp", &0)?;
    println!("retained query 0 materialized (version {})", session.version());

    // N readers: each thread owns a SessionReader clone and serves by
    // `&self` — no locks shared with the writer, no data clones.
    let readers: Vec<_> = (0..READERS).map(|_| session.reader()).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();

    let tallies: Vec<(usize, u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = readers
            .into_iter()
            .enumerate()
            .map(|(k, reader)| {
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let (mut reads, mut first_v, mut last_v) = (0u64, 0u64, 0u64);
                    // Each reader also wants its own source vertex served.
                    let own_src = 1 + k as u32;
                    reader.request::<Sssp>("sssp", &own_src).unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(dist) = reader.query::<Sssp>("sssp", &0).unwrap() {
                            assert_eq!(dist[0], 0, "retained source is distance 0");
                            reads += 1;
                            let v = reader.version("sssp").unwrap().unwrap_or(0);
                            if first_v == 0 {
                                first_v = v;
                            }
                            last_v = last_v.max(v);
                        }
                        // The admitted answer appears once the writer's
                        // window lands; it drops again after each apply.
                        if let Some(own) = reader.query::<Sssp>("sssp", &own_src).unwrap() {
                            assert_eq!(own[own_src as usize], 0);
                            reader.request::<Sssp>("sssp", &own_src).unwrap();
                        }
                        std::thread::yield_now();
                    }
                    (k, reads, first_v, last_v)
                })
            })
            .collect();

        // The writer: admit, mutate, advance, publish — and checkpoint
        // mid-stream while the readers keep serving.
        let mut rng = Xorshift::new(0xAB1E);
        let mut cur = g.clone();
        for batch in 0..BATCHES {
            let admitted = session.serve_admitted().unwrap();
            let delta = traffic(&cur, &mut rng);
            cur = grape_aap::delta::apply_to_graph(&cur, &delta);
            let report = session.apply(&delta).unwrap();
            println!(
                "batch {batch:2}: {:?} strategy={:?} admitted={admitted} version={}",
                report.summary,
                report.strategy("sssp").unwrap(),
                session.version(),
            );
            if batch == BATCHES / 2 {
                let ckpt = session.checkpoint().unwrap();
                println!(
                    "         mid-stream checkpoint -> epoch {} (readers undisturbed)",
                    ckpt.epoch
                );
            }
        }
        session.serve_admitted().unwrap();
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = t0.elapsed();
    let total: u64 = tallies.iter().map(|(_, r, _, _)| r).sum();
    for (k, reads, first_v, last_v) in &tallies {
        println!("reader {k}: {reads} reads, versions {first_v}..={last_v}");
    }
    println!(
        "{total} concurrent reads across {READERS} threads in {elapsed:?} \
         while the writer applied {BATCHES} batches"
    );

    // The durable directory restores to the writer's serving state.
    drop(session);
    let mut restored: Session<(), u32, _> = Session::restore(&dir).program("sssp", Sssp).open()?;
    let dist = restored.query::<Sssp>("sssp", &0)?;
    println!("restored: {} distances served from epoch snapshot + log replay", dist.len());
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
