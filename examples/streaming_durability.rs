//! Streaming durability end to end: a long delta stream over a durable
//! [`Session`] whose [`DurabilityPolicy`] checkpoints **differentially**
//! every 8 applies on a **background** thread and **compacts** the epoch
//! chain every 4 links — so the directory stays proportional to churn,
//! not to stream length. Then a kill -9 style abandon (the process
//! "dies" with a committed cut the writer never acknowledged) and a
//! [`Session::restore`] that resumes serving byte-identically.
//!
//! ```sh
//! cargo run --release --example streaming_durability
//! ```

use grape_aap::delta::generate::{insert_batch, insert_batch_within, Xorshift};
use grape_aap::graph::partition::hash_partition;
use grape_aap::graph::{generate, VertexId};
use grape_aap::prelude::*;
use std::path::Path;

/// Count the files (and their total bytes) in the durable directory.
fn dir_files(dir: &Path) -> (usize, u64) {
    let mut files = 0usize;
    let mut bytes = 0u64;
    for entry in std::fs::read_dir(dir).expect("read durable dir") {
        let md = entry.expect("dir entry").metadata().expect("metadata");
        if md.is_file() {
            files += 1;
            bytes += md.len();
        }
    }
    (files, bytes)
}

fn main() -> Result<(), SessionError> {
    let dir = std::env::temp_dir().join(format!("aap_streaming_dur_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let g = generate::rmat(12, 8, true, 42);
    println!("graph: {} vertices, {} stored edges", g.num_vertices(), g.num_edges());

    // Most of the stream is *localized* — every endpoint owned by
    // fragment 0 under the edge-cut hash partition — which is exactly
    // the churn differential checkpoints are built for.
    let assignment = hash_partition(&g, 4);
    let pool: Vec<VertexId> =
        (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();

    // -- open: checkpoint every 8 applies, in the background, keep the
    //    epoch chain at most 4 links long ------------------------------
    let policy = DurabilityPolicy::new(&dir).checkpoint_every(8).compact_after(4).background(true);
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(4))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .durability(policy)?
        .open()?;
    session.query::<Sssp>("sssp", &0)?;
    session.query::<ConnectedComponents>("cc", &())?;

    // -- the long stream: background cuts fire on cadence --------------
    // Rare global churn: one batch in sixteen dirties every fragment,
    // so alternate 8-apply checkpoint windows stay purely localized —
    // those are the epochs where the differential writer gets to skip.
    let mut rng = Xorshift::new(0xD00D);
    for batch in 0..64u64 {
        let delta = if batch % 16 == 15 {
            insert_batch(&g, 16, 9, 0xACE0 + batch)
        } else {
            insert_batch_within(&pool, 16, 9, 0xACE0 + batch)
        };
        session.apply(&delta)?;
        let _ = rng.next_u64();
    }
    // Settle the last in-flight cut before reading the books.
    session.finish_checkpoint()?;
    let m = session.metrics();
    let chain = session.epoch_chain().expect("durable session").to_vec();
    let (files, bytes) = dir_files(&dir);
    println!(
        "streamed 64 batches: {} checkpoints (auto, background), \
         {} fragments written / {} skipped, {} log records compacted",
        m.checkpoints,
        m.checkpoint_fragments_written,
        m.checkpoint_fragments_skipped,
        m.log_records_compacted
    );
    println!("directory after the stream: {files} files, {bytes} bytes, epoch chain {chain:?}");
    assert!(m.checkpoints >= 4, "the 8-apply cadence must have fired");
    assert!(m.checkpoint_fragments_skipped > 0, "localized batches must skip fragments");
    assert!(m.log_records_compacted > 0, "checkpoints must truncate the delta log");
    assert!(chain.len() <= 4, "compact_after(4) must bound the chain, got {chain:?}");
    assert!(files <= 20, "the directory must stay proportional to churn, found {files} files");

    // -- compaction, caught in the act ---------------------------------
    // Differential checkpoints grow the chain link by link; when it
    // reaches 4, the next checkpoint rewrites a fresh full baseline and
    // sweeps the superseded epochs (and their logs).
    while session.epoch_chain().expect("durable").len() < 4 {
        session.apply(&insert_batch_within(&pool, 8, 9, rng.next_u64()))?;
        let report = session.checkpoint()?;
        assert!(report.differential, "below the threshold every epoch is a link");
    }
    let (files_before, bytes_before) = dir_files(&dir);
    session.apply(&insert_batch_within(&pool, 8, 9, rng.next_u64()))?;
    let rebase = session.checkpoint()?;
    let (files_after, bytes_after) = dir_files(&dir);
    assert!(!rebase.differential, "at the threshold the checkpoint must compact");
    assert_eq!(session.epoch_chain().expect("durable").len(), 1, "chain collapsed");
    assert!(files_after < files_before, "compaction must sweep the superseded chain");
    println!(
        "compaction: epoch {} rebased the chain, {files_before} files / {bytes_before} bytes \
         -> {files_after} files / {bytes_after} bytes",
        rebase.epoch
    );

    // -- kill -9 --------------------------------------------------------
    // Five more batches land in the delta log only; a background cut
    // commits on disk; then the process "dies" before the writer ever
    // harvests it — the on-disk MANIFEST is ahead of what the session
    // knew when it vanished.
    for i in 0..5u64 {
        session.apply(&insert_batch(&g, 16, 9, 0xBEEF + i))?;
    }
    let live_sssp = session.query::<Sssp>("sssp", &0)?;
    let live_cc = session.query::<ConnectedComponents>("cc", &())?;
    let handle = session.checkpoint_background()?;
    let committed = handle.wait()?;
    drop(session); // kill -9: no finish_checkpoint, no goodbye
    println!(
        "\n-- kill -9 -- (cut for epoch {} committed, writer never acknowledged it)\n",
        committed.epoch
    );

    // -- restore --------------------------------------------------------
    let mut restored: Session<(), u32, _> = Session::restore(&dir)
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()?;
    assert_eq!(restored.query::<Sssp>("sssp", &0)?, live_sssp);
    assert_eq!(restored.query::<ConnectedComponents>("cc", &())?, live_cc);
    println!("restored serve == pre-kill serve, for BOTH programs");

    // The directory is healthy: the stream and the checkpoints go on.
    restored.apply(&insert_batch(&g, 16, 9, 0xCAFE))?;
    let next = restored.checkpoint()?;
    println!("post-restore checkpoint -> epoch {} — the stream never noticed", next.epoch);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
