//! PRAM simulation (the other half of Theorem 4): the canonical
//! O(log n)-step EREW PRAM algorithm — Hillis–Steele parallel prefix sum —
//! expressed as a `⌈log₂ n⌉`-round MapReduce job and therefore runnable on
//! the AAP engine with no asymptotic overhead.
//!
//! PRAM step `s` computes `x_s[i] = x_{s-1}[i] + x_{s-1}[i − 2^{s-1}]`;
//! in MapReduce form, round `s` maps each `(i, v)` to itself plus
//! `(i + 2^{s-1}, v)` and reduces by summation — after `⌈log₂ n⌉` rounds
//! every position holds its inclusive prefix sum.

use crate::job::{run_mapreduce, MapReduceJob, MrConfig};

/// Hillis–Steele prefix sum as a multi-round MapReduce job.
pub struct PrefixSumJob {
    /// The input sequence.
    pub values: Vec<i64>,
}

impl PrefixSumJob {
    fn rounds_needed(&self) -> usize {
        let n = self.values.len();
        if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        }
    }
}

impl MapReduceJob for PrefixSumJob {
    type K = u64; // position
    type V = i64;

    fn num_rounds(&self) -> usize {
        self.rounds_needed()
    }

    fn input(&self, worker: usize, n: usize) -> Vec<(u64, i64)> {
        self.values
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == worker)
            .map(|(i, &v)| (i as u64, v))
            .collect()
    }

    fn map(&self, r: usize, key: &u64, value: &i64, emit: &mut dyn FnMut(u64, i64)) {
        emit(*key, *value);
        let stride = 1u64 << r;
        let target = key + stride;
        if (target as usize) < self.values.len() {
            emit(target, *value);
        }
    }

    fn reduce(&self, _r: usize, k: &u64, vs: &[i64], emit: &mut dyn FnMut(u64, i64)) {
        emit(*k, vs.iter().sum());
    }
}

/// Run the PRAM prefix-sum on `workers` simulated processors; returns the
/// inclusive prefix sums.
pub fn prefix_sum(values: &[i64], workers: usize) -> Vec<i64> {
    if values.is_empty() {
        return Vec::new();
    }
    let job = PrefixSumJob { values: values.to_vec() };
    let (pairs, _) = run_mapreduce(&job, &MrConfig { workers, threads: workers.min(8) });
    let mut out = vec![0i64; values.len()];
    for (k, v) in pairs {
        out[k as usize] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(values: &[i64]) -> Vec<i64> {
        values
            .iter()
            .scan(0i64, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .collect()
    }

    #[test]
    fn prefix_sum_matches_scan() {
        let values: Vec<i64> = (0..37).map(|i| (i * 7 % 13) - 5).collect();
        assert_eq!(prefix_sum(&values, 4), reference(&values));
    }

    #[test]
    fn power_of_two_length() {
        let values: Vec<i64> = (1..=32).collect();
        assert_eq!(prefix_sum(&values, 5), reference(&values));
    }

    #[test]
    fn singleton_and_empty() {
        assert_eq!(prefix_sum(&[42], 3), vec![42]);
        assert_eq!(prefix_sum(&[], 3), Vec::<i64>::new());
    }

    #[test]
    fn log_n_rounds() {
        let job = PrefixSumJob { values: (0..100).collect() };
        assert_eq!(job.num_rounds(), 7); // ceil(log2 100)
    }
}
