//! The MapReduce job abstraction and its compilation onto a PIE program
//! over a clique `GW` (Theorem 4).

use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_core::{Engine, EngineOpts, Mode};
use aap_graph::fxhash::hash_u64;
use aap_graph::partition::build_fragments_n;
use aap_graph::{FragId, Fragment, GraphBuilder, LocalId};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A MapReduce algorithm `A = (B1, ..., Bk)`; each subroutine `Br` is a
/// mapper `µr` plus a reducer `ρr` (§ Theorem 4 proof, after [20, 32]).
///
/// Keys must be hashable (for the shuffle) and ordered (reducers see
/// values sorted, keeping runs deterministic under any schedule).
pub trait MapReduceJob: Sync {
    /// Key type.
    type K: Clone + Send + Sync + Hash + Eq + Ord + 'static;
    /// Value type.
    type V: Clone + Send + Sync + Ord + 'static;

    /// Number of subroutines `k`.
    fn num_rounds(&self) -> usize;

    /// Input pairs held by `worker` out of `n` (the initial distribution).
    fn input(&self, worker: usize, n: usize) -> Vec<(Self::K, Self::V)>;

    /// Mapper `µ(round)` over one input pair.
    fn map(
        &self,
        round: usize,
        key: &Self::K,
        value: &Self::V,
        emit: &mut dyn FnMut(Self::K, Self::V),
    );

    /// Reducer `ρ(round)` over one key group (values sorted).
    fn reduce(
        &self,
        round: usize,
        key: &Self::K,
        values: &[Self::V],
        emit: &mut dyn FnMut(Self::K, Self::V),
    );
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct MrConfig {
    /// Number of simulated MapReduce processors (= fragments of `GW`).
    pub workers: usize,
    /// OS threads for the engine.
    pub threads: usize,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig { workers: 4, threads: 4 }
    }
}

/// Tuples in flight: `⟨r, key, value⟩` exactly as in the Theorem 4 proof.
type Tuples<K, V> = Vec<(u32, K, V)>;

struct MrPie<'a, J> {
    job: &'a J,
    workers: usize,
}

/// Per-worker state: pairs waiting for each upcoming reducer round, plus
/// the final output.
struct MrState<K, V> {
    /// Self-addressed tuples (the engine has no self-messages; the paper's
    /// processors likewise keep local data local).
    pending_local: Tuples<K, V>,
    /// Output of the final reducer.
    output: Vec<(K, V)>,
}

impl<J: MapReduceJob> MrPie<'_, J> {
    fn shuffle(
        &self,
        frag: &Fragment<(), ()>,
        round: u32,
        pairs: Vec<(J::K, J::V)>,
        pending_local: &mut Tuples<J::K, J::V>,
        ctx: &mut UpdateCtx<Tuples<J::K, J::V>>,
    ) {
        // Group by destination worker = hash(key) % n.
        let me = frag.id() as usize;
        let mut buckets: BTreeMap<usize, Tuples<J::K, J::V>> = BTreeMap::new();
        for (k, v) in pairs {
            let mut h = aap_graph::fxhash::FxHasher::default();
            k.hash(&mut h);
            let dest = (hash_u64(h.finish()) % self.workers as u64) as usize;
            if dest == me {
                pending_local.push((round, k, v));
            } else {
                buckets.entry(dest).or_default().push((round, k, v));
            }
        }
        for (dest, tuples) in buckets {
            // The clique gives us a mirror of every other worker-node.
            let l = frag.local(dest as u32).expect("clique fragment mirrors every worker node");
            ctx.send(l, tuples);
        }
        if !pending_local.is_empty() {
            ctx.request_local_round();
        }
    }

    /// Run reducer `round` over grouped tuples, then mapper `round + 1`
    /// (program branches, as the proof puts it). Returns pairs to shuffle
    /// for the next round, or the final output.
    fn reduce_then_map(
        &self,
        round: u32,
        tuples: Tuples<J::K, J::V>,
        output: &mut Vec<(J::K, J::V)>,
    ) -> Option<Vec<(J::K, J::V)>> {
        let mut groups: BTreeMap<J::K, Vec<J::V>> = BTreeMap::new();
        for (r, k, v) in tuples {
            debug_assert_eq!(r, round, "BSP keeps rounds aligned");
            groups.entry(k).or_default().push(v);
        }
        let mut reduced: Vec<(J::K, J::V)> = Vec::new();
        for (k, mut vs) in groups {
            vs.sort();
            self.job.reduce(round as usize, &k, &vs, &mut |k2, v2| reduced.push((k2, v2)));
        }
        if (round as usize + 1) < self.job.num_rounds() {
            let mut mapped = Vec::new();
            for (k, v) in &reduced {
                self.job.map(round as usize + 1, k, v, &mut |k2, v2| mapped.push((k2, v2)));
            }
            Some(mapped)
        } else {
            output.extend(reduced);
            None
        }
    }
}

impl<J: MapReduceJob> PieProgram<(), ()> for MrPie<'_, J> {
    type Query = ();
    type Val = Tuples<J::K, J::V>;
    type State = MrState<J::K, J::V>;
    type Out = Vec<(J::K, J::V)>;

    fn combine(&self, a: &mut Self::Val, b: Self::Val) -> bool {
        a.extend(b);
        true
    }

    fn peval(
        &self,
        _q: &(),
        frag: &Fragment<(), ()>,
        ctx: &mut UpdateCtx<Self::Val>,
    ) -> Self::State {
        let mut st = MrState { pending_local: Vec::new(), output: Vec::new() };
        if self.job.num_rounds() == 0 {
            return st;
        }
        // PEval = mapper µ1 over this worker's input partition.
        let me = frag.id() as usize;
        let mut mapped = Vec::new();
        for (k, v) in self.job.input(me, self.workers) {
            self.job.map(0, &k, &v, &mut |k2, v2| mapped.push((k2, v2)));
        }
        let mut pending = std::mem::take(&mut st.pending_local);
        self.shuffle(frag, 0, mapped, &mut pending, ctx);
        st.pending_local = pending;
        st
    }

    fn inceval(
        &self,
        _q: &(),
        frag: &Fragment<(), ()>,
        st: &mut Self::State,
        msgs: &mut Messages<Self::Val>,
        ctx: &mut UpdateCtx<Self::Val>,
    ) {
        // Collect this superstep's tuples: everything shipped to our
        // worker-node plus the self-addressed remainder.
        let mut tuples = std::mem::take(&mut st.pending_local);
        for (_, t) in msgs.drain(..) {
            tuples.extend(t);
        }
        if tuples.is_empty() {
            return;
        }
        let round = tuples.iter().map(|&(r, _, _)| r).min().expect("nonempty");
        ctx.note_effective(tuples.len() as u64);
        let mut pending = Vec::new();
        if let Some(mapped) = self.reduce_then_map(round, tuples, &mut st.output) {
            self.shuffle(frag, round + 1, mapped, &mut pending, ctx);
        }
        st.pending_local = pending;
    }

    fn assemble(
        &self,
        _q: &(),
        _frags: &[Arc<Fragment<(), ()>>],
        states: Vec<Self::State>,
    ) -> Vec<(J::K, J::V)> {
        let mut out: Vec<(J::K, J::V)> = states.into_iter().flat_map(|s| s.output).collect();
        out.sort();
        out
    }
}

/// Sorted output pairs of a job plus the engine statistics.
pub type MrResult<J> = (Vec<(<J as MapReduceJob>::K, <J as MapReduceJob>::V)>, aap_core::RunStats);

/// Build the clique `GW` over `n` worker-nodes and run the job to
/// completion under BSP (a special case of AAP, §3), returning the sorted
/// final pairs and the engine statistics.
pub fn run_mapreduce<J: MapReduceJob>(job: &J, cfg: &MrConfig) -> MrResult<J> {
    let n = cfg.workers.max(1);
    let mut b = GraphBuilder::new_directed(n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if i != j {
                b.add_edge(i, j, ());
            }
        }
    }
    let g = b.build();
    let assignment: Vec<FragId> = (0..n as u32).map(|v| v as FragId).collect();
    let frags = build_fragments_n(&g, &assignment, n);
    let engine = Engine::new(
        frags,
        EngineOpts { threads: cfg.threads, mode: Mode::Bsp, max_rounds: Some(1_000_000) },
    );
    let pie = MrPie { job, workers: n };
    let run = engine.run(&pie, &());
    (run.out, run.stats)
}

/// Convenience: local id of a worker-node in a clique fragment.
#[allow(dead_code)]
fn worker_local(frag: &Fragment<(), ()>, w: usize) -> LocalId {
    frag.local(w as u32).expect("clique contains every worker node")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity single-round job: shuffles everything by key and counts.
    struct CountJob {
        data: Vec<(String, u64)>,
    }

    impl MapReduceJob for CountJob {
        type K = String;
        type V = u64;
        fn num_rounds(&self) -> usize {
            1
        }
        fn input(&self, worker: usize, n: usize) -> Vec<(String, u64)> {
            self.data
                .iter()
                .enumerate()
                .filter(|(i, _)| i % n == worker)
                .map(|(_, p)| p.clone())
                .collect()
        }
        fn map(&self, _r: usize, k: &String, v: &u64, emit: &mut dyn FnMut(String, u64)) {
            emit(k.clone(), *v);
        }
        fn reduce(&self, _r: usize, k: &String, vs: &[u64], emit: &mut dyn FnMut(String, u64)) {
            emit(k.clone(), vs.iter().sum());
        }
    }

    #[test]
    fn count_job_sums_per_key() {
        let job = CountJob {
            data: vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("a".into(), 3),
                ("c".into(), 4),
                ("b".into(), 5),
            ],
        };
        let (out, stats) = run_mapreduce(&job, &MrConfig { workers: 3, threads: 3 });
        assert_eq!(out, vec![("a".into(), 4u64), ("b".into(), 7), ("c".into(), 4)]);
        // One PEval superstep + one reduce superstep (plus termination).
        assert!(stats.max_rounds() <= 3, "rounds {}", stats.max_rounds());
    }

    #[test]
    fn empty_job_returns_nothing() {
        let job = CountJob { data: vec![] };
        let (out, _) = run_mapreduce(&job, &MrConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let job = CountJob { data: vec![("x".into(), 2), ("x".into(), 3)] };
        let (out, stats) = run_mapreduce(&job, &MrConfig { workers: 1, threads: 1 });
        assert_eq!(out, vec![("x".into(), 5u64)]);
        assert_eq!(stats.total_updates(), 0, "nothing to ship with one worker");
    }
}
