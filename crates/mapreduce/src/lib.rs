//! # aap-mapreduce
//!
//! MapReduce (and, through it, PRAM) simulated on top of AAP, following the
//! constructive proof of **Theorem 4**: a MapReduce algorithm
//! `A = (B1, ..., Bk)` with `n` processors becomes a PIE program over a
//! clique graph `GW` of `n` worker-nodes whose status variables carry
//! `⟨r, key, value⟩` tuples — `PEval` runs the first mapper, `IncEval`
//! treats the subroutines as program branches (reducer `ρr` then mapper
//! `µr+1`), and the clique's update parameters realise the shuffle.
//!
//! Because BSP is a special case of AAP (fix `δ` per §3), the runner
//! executes the job under `Mode::Bsp` on the unmodified AAP engine: one
//! superstep per subroutine, cost within a constant factor of the original
//! job — the *optimal simulation* claim.
//!
//! [`pram`] demonstrates the PRAM half of the theorem with the canonical
//! O(log n)-step PRAM algorithm (Hillis–Steele prefix sum) expressed as a
//! `log n`-round MapReduce job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod jobs;
pub mod pram;

pub use job::{run_mapreduce, MapReduceJob, MrConfig};
