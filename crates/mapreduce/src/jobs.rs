//! Ready-made MapReduce jobs: word count and inverted index.

use crate::job::MapReduceJob;

/// Classic word count over a corpus of documents (one MapReduce round).
pub struct WordCount {
    /// Input documents.
    pub docs: Vec<String>,
}

impl MapReduceJob for WordCount {
    type K = String;
    type V = u64;

    fn num_rounds(&self) -> usize {
        1
    }

    fn input(&self, worker: usize, n: usize) -> Vec<(String, u64)> {
        self.docs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == worker)
            .map(|(i, d)| (format!("doc{i}:{d}"), 0))
            .collect()
    }

    fn map(&self, _r: usize, key: &String, _v: &u64, emit: &mut dyn FnMut(String, u64)) {
        let text = key.split_once(':').map(|(_, t)| t).unwrap_or(key);
        for w in text.split_whitespace() {
            let w: String =
                w.chars().filter(|c| c.is_alphanumeric()).flat_map(|c| c.to_lowercase()).collect();
            if !w.is_empty() {
                emit(w, 1);
            }
        }
    }

    fn reduce(&self, _r: usize, k: &String, vs: &[u64], emit: &mut dyn FnMut(String, u64)) {
        emit(k.clone(), vs.iter().sum());
    }
}

/// Inverted index: word -> sorted list of document ids (two rounds: build
/// postings, then deduplicate/sort them — exercising a multi-subroutine
/// job, i.e. several supersteps of the simulation).
pub struct InvertedIndex {
    /// Input documents.
    pub docs: Vec<String>,
}

impl MapReduceJob for InvertedIndex {
    type K = String;
    type V = String;

    fn num_rounds(&self) -> usize {
        2
    }

    fn input(&self, worker: usize, n: usize) -> Vec<(String, String)> {
        self.docs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == worker)
            .map(|(i, d)| (format!("{i}"), d.clone()))
            .collect()
    }

    fn map(&self, r: usize, key: &String, value: &String, emit: &mut dyn FnMut(String, String)) {
        match r {
            0 => {
                for w in value.split_whitespace() {
                    let w: String = w
                        .chars()
                        .filter(|c| c.is_alphanumeric())
                        .flat_map(|c| c.to_lowercase())
                        .collect();
                    if !w.is_empty() {
                        emit(w, key.clone());
                    }
                }
            }
            _ => emit(key.clone(), value.clone()),
        }
    }

    fn reduce(&self, r: usize, k: &String, vs: &[String], emit: &mut dyn FnMut(String, String)) {
        match r {
            0 => {
                // postings with duplicates, one value per occurrence
                for v in vs {
                    emit(k.clone(), v.clone());
                }
            }
            _ => {
                let mut ids: Vec<&String> = vs.iter().collect();
                ids.sort();
                ids.dedup();
                let posting = ids.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(",");
                emit(k.clone(), posting);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_mapreduce, MrConfig};

    #[test]
    fn word_count_matches_reference() {
        let docs = vec![
            "the quick brown fox".to_string(),
            "the lazy dog and the quick cat".to_string(),
            "Fox! fox?".to_string(),
        ];
        let mut expect = std::collections::BTreeMap::new();
        for d in &docs {
            for w in d.split_whitespace() {
                let w: String = w
                    .chars()
                    .filter(|c| c.is_alphanumeric())
                    .flat_map(|c| c.to_lowercase())
                    .collect();
                if !w.is_empty() {
                    *expect.entry(w).or_insert(0u64) += 1;
                }
            }
        }
        let (out, _) = run_mapreduce(&WordCount { docs }, &MrConfig { workers: 4, threads: 4 });
        let got: std::collections::BTreeMap<String, u64> = out.into_iter().collect();
        assert_eq!(got, expect);
        assert_eq!(got["the"], 3);
        assert_eq!(got["fox"], 3);
    }

    #[test]
    fn inverted_index_collects_sorted_doc_ids() {
        let docs = vec![
            "alpha beta".to_string(),
            "beta gamma".to_string(),
            "alpha beta gamma".to_string(),
        ];
        let (out, stats) =
            run_mapreduce(&InvertedIndex { docs }, &MrConfig { workers: 3, threads: 3 });
        let got: std::collections::BTreeMap<String, String> = out.into_iter().collect();
        assert_eq!(got["alpha"], "0,2");
        assert_eq!(got["beta"], "0,1,2");
        assert_eq!(got["gamma"], "1,2");
        // two subroutines => at most PEval + 2 reduce supersteps
        assert!(stats.max_rounds() <= 4);
    }
}
