//! Snapshot-format robustness: corrupted inputs must come back as
//! *tagged* errors (truncation, bad magic/version, checksum mismatch —
//! all carrying the offending path, mirroring `aap_graph::io`), and
//! intact inputs must round-trip byte-identically on both partition
//! kinds.

use aap_algos::SsspState;
use aap_core::{Engine, EngineOpts, PortableRunState, RunState};
use aap_graph::partition::{
    build_fragments_n, build_fragments_vertex_cut, hash_partition, vertex_cut_partition,
};
use aap_graph::{generate, Fragment, Graph};
use aap_snapshot::{
    load_snapshot, save_snapshot, snapshot_from_bytes, snapshot_to_bytes, DeltaLog, ErrorKind,
    SnapshotError,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aap_snap_{}_{name}", std::process::id()))
}

fn sample_frags() -> Vec<Fragment<(), u32>> {
    let g = generate::small_world(60, 2, 0.2, 5);
    build_fragments_n(&g, &hash_partition(&g, 3), 3)
}

fn sample_bytes() -> Vec<u8> {
    snapshot_to_bytes::<(), u32, SsspState, _>(&sample_frags(), None)
}

fn decode(bytes: &[u8]) -> Result<(), SnapshotError> {
    snapshot_from_bytes::<(), u32, SsspState>(bytes).map(|_| ())
}

#[test]
fn truncated_snapshot_is_tagged() {
    let bytes = sample_bytes();
    // Every strict prefix must fail with Truncated (or, for a cut that
    // lands exactly on a section boundary, a checksum/corrupt error) —
    // never a panic, never silent success.
    for cut in [0, 4, 11, 13, bytes.len() / 2, bytes.len() - 1] {
        let err = decode(&bytes[..cut]).expect_err("prefix must not parse");
        assert!(
            matches!(
                err.kind(),
                ErrorKind::Truncated { .. }
                    | ErrorKind::Checksum { .. }
                    | ErrorKind::Corrupt { .. }
            ),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn cross_fragment_inconsistency_is_tagged_not_a_panic() {
    // Hand-build a partition where each fragment passes every local
    // check but fragment 0's mirror claims an owner that lacks the
    // vertex — loading must reject it instead of panicking inside the
    // routing-table rebuild.
    use aap_graph::Graph;
    let g0: Graph<(), u32> = Graph::from_csr(true, vec![(), ()], vec![0, 1, 1], vec![1], vec![7]);
    let f0 = Fragment::from_saved_parts(
        0,
        2,
        false,
        g0,
        vec![0, 5], // mirror of global 5, supposedly owned by fragment 1
        1,
        vec![],
        vec![0],
        vec![1],
        vec![0, 0],
        vec![],
    );
    let g1: Graph<(), u32> = Graph::from_csr(true, vec![()], vec![0, 0], vec![], vec![]);
    let f1 = Fragment::from_saved_parts(
        1,
        2,
        false,
        g1,
        vec![9],
        1,
        vec![],
        vec![],
        vec![],
        vec![0, 0],
        vec![],
    );
    let bytes = snapshot_to_bytes::<(), u32, SsspState, _>(&[f0, f1], None);
    let err = decode(&bytes).expect_err("incoherent partition must not load");
    assert!(matches!(err.kind(), ErrorKind::Corrupt { .. }), "{err}");
}

#[test]
fn trailing_garbage_after_last_section_is_tagged() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(b"junk appended after a valid snapshot");
    let err = decode(&bytes).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::Corrupt { .. }), "{err}");
}

#[test]
fn bad_magic_is_tagged() {
    let mut bytes = sample_bytes();
    bytes[0] ^= 0xFF;
    let err = decode(&bytes).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::BadMagic), "{err}");
}

#[test]
fn bad_version_is_tagged() {
    let mut bytes = sample_bytes();
    bytes[8] = 0x2A; // version word sits right after the 8-byte magic
    bytes[9] = 0;
    let err = decode(&bytes).unwrap_err();
    match err.kind() {
        ErrorKind::BadVersion { found: 0x2A, supported: 1 } => {}
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn checksum_mismatch_is_tagged() {
    let mut bytes = sample_bytes();
    // Flip one payload byte deep inside the fragment section (past
    // magic + version + tag + length).
    let at = 12 + 4 + 8 + 40;
    bytes[at] ^= 0x01;
    let err = decode(&bytes).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::Checksum { .. }), "{err}");
}

#[test]
fn file_errors_carry_the_path() {
    let err = load_snapshot::<(), u32, SsspState, _>("/definitely/not/a/file.snap").unwrap_err();
    assert!(err.to_string().contains("/definitely/not/a/file.snap"));

    // Parse-side errors are path-tagged too, not just I/O ones.
    let path = tmp("badmagic");
    std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxx").unwrap();
    let err = load_snapshot::<(), u32, SsspState, _>(&path).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::BadMagic), "{err}");
    assert!(err.to_string().contains(path.to_str().unwrap()));
    std::fs::remove_file(&path).ok();
}

#[test]
fn delta_log_torn_tail_and_corruption_are_tagged() {
    use aap_delta::DeltaBuilder;
    let path = tmp("log");
    let mut log = DeltaLog::create(&path).unwrap();
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(1, 2, 9);
    let d1 = b.build();
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.remove_vertex(4);
    b.set_weight(2, 3, 1);
    let d2 = b.build();
    log.write_delta(&d1).unwrap();
    log.write_delta(&d2).unwrap();
    drop(log);

    // Intact log replays both deltas, in order.
    let deltas = DeltaLog::replay::<(), u32, _>(&path).unwrap();
    assert_eq!(deltas.len(), 2);
    assert_eq!(deltas[0].edges_added(), d1.edges_added());
    assert_eq!(deltas[1].vertices_removed(), d2.vertices_removed());
    assert_eq!(deltas[1].weight_updates(), d2.weight_updates());

    // Torn tail (simulated crash mid-append): tagged, not silent.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let err = DeltaLog::replay::<(), u32, _>(&path).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::Truncated { .. }), "{err}");
    assert!(err.to_string().contains(path.to_str().unwrap()));

    // Flipped record byte: checksum catches it.
    let mut flipped = bytes.clone();
    let at = flipped.len() - 6;
    flipped[at] ^= 0x80;
    std::fs::write(&path, &flipped).unwrap();
    let err = DeltaLog::replay::<(), u32, _>(&path).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::Checksum { .. }), "{err}");

    // Appending to a non-log file is rejected up front.
    std::fs::write(&path, b"hello world, not a log").unwrap();
    let err = DeltaLog::open_append(&path).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::BadMagic), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_append_continues_an_existing_log() {
    use aap_delta::DeltaBuilder;
    let path = tmp("append");
    let mut log = DeltaLog::create(&path).unwrap();
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(0, 1, 1);
    log.write_delta(&b.build()).unwrap();
    drop(log);

    let mut log = DeltaLog::open_append(&path).unwrap();
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(2, 3, 7);
    log.write_delta(&b.build()).unwrap();
    drop(log);

    let deltas = DeltaLog::replay::<(), u32, _>(&path).unwrap();
    assert_eq!(deltas.len(), 2);
    assert_eq!(deltas[1].edges_added(), &[(2, 3, 7)]);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = Graph<(), u32>> {
    prop_oneof![
        (10usize..100, 2usize..8, 0u64..50).prop_map(|(n, ef, s)| generate::uniform(
            n,
            n * ef,
            true,
            s
        )),
        (10usize..100, 1usize..3, 0u64..50).prop_map(|(n, k, s)| generate::small_world(
            n,
            k.min(n - 1).max(1),
            0.3,
            s
        )),
    ]
}

fn assert_fragments_equal(a: &[Fragment<(), u32>], b: &[Fragment<(), u32>]) {
    assert_eq!(a.len(), b.len());
    for (fa, fb) in a.iter().zip(b) {
        assert_eq!(fa.id(), fb.id());
        assert_eq!(fa.is_vertex_cut(), fb.is_vertex_cut());
        assert_eq!(fa.globals(), fb.globals());
        assert_eq!(fa.owned_count(), fb.owned_count());
        assert_eq!(fa.inner_in(), fb.inner_in());
        assert_eq!(fa.inner_out(), fb.inner_out());
        assert_eq!(fa.mirror_owners(), fb.mirror_owners());
        assert_eq!(fa.holder_csr(), fb.holder_csr());
        for l in fa.local_vertices() {
            assert_eq!(fa.neighbors(l), fb.neighbors(l));
            assert_eq!(fa.edge_data(l), fb.edge_data(l));
            // Routing was re-derived, not loaded: it must still agree.
            assert_eq!(fa.routing().fanout(l), fb.routing().fanout(l));
        }
        assert_eq!(fa.routing().dests(), fb.routing().dests());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// save → load → save is byte-identical, and the loaded fragments
    /// (with re-derived routing) are structurally equal — for edge-cut
    /// and vertex-cut partitions, with and without retained RunState.
    #[test]
    fn snapshot_roundtrips_byte_identically(g in arb_graph(), m in 2usize..6, vc in 0u8..2) {
        let vertex_cut = vc == 1;
        let frags = if vertex_cut {
            build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, m))
        } else {
            build_fragments_n(&g, &hash_partition(&g, m), m)
        };

        // Real retained state from a real run, so dist vectors have the
        // genuine shape (owned + mirrors per fragment).
        let engine = Engine::new(frags, EngineOpts { threads: 2, ..Default::default() });
        let (_, state): (_, RunState<SsspState>) = engine.run_retained(&aap_algos::Sssp, &0);
        let portable = state.export(engine.fragments());

        let bytes = snapshot_to_bytes(engine.fragments(), Some(&portable));
        let loaded = snapshot_from_bytes::<(), u32, SsspState>(&bytes).unwrap();
        let refs: Vec<&Fragment<(), u32>> = engine.fragments().iter().map(|a| &**a).collect();
        assert_fragments_equal(&refs.iter().map(|f| (*f).clone()).collect::<Vec<_>>(), &loaded.fragments);

        // Re-encoding the loaded snapshot reproduces the bytes exactly.
        let loaded_state = loaded.state.expect("state section present");
        let again = snapshot_to_bytes(&loaded.fragments, Some(&loaded_state));
        prop_assert_eq!(&bytes, &again, "re-encode must be byte-identical");

        // And the re-attached state is the saved state, remap-free.
        let (restored, remaps) = loaded_state.attach(engine.fragments()).unwrap();
        prop_assert!(remaps.iter().all(|r| r.is_identity()));
        for (a, b) in restored.states().iter().zip(state.states()) {
            prop_assert_eq!(&a.dist, &b.dist);
        }
    }

    /// A topology-only snapshot (no state section) round-trips too.
    #[test]
    fn topology_only_roundtrip(g in arb_graph(), m in 2usize..5) {
        let frags = build_fragments_n(&g, &hash_partition(&g, m), m);
        let bytes = snapshot_to_bytes::<(), u32, SsspState, _>(&frags, None);
        let loaded = snapshot_from_bytes::<(), u32, SsspState>(&bytes).unwrap();
        prop_assert!(loaded.state.is_none());
        let again = snapshot_to_bytes::<(), u32, SsspState, _>(&loaded.fragments, None);
        prop_assert_eq!(&bytes, &again);
    }

    /// File round-trip: what `save_snapshot` writes, `load_snapshot`
    /// reads back unchanged.
    #[test]
    fn file_roundtrip(seed in 0u64..1000) {
        let g = generate::small_world(40, 2, 0.2, seed);
        let frags = build_fragments_n(&g, &hash_partition(&g, 3), 3);
        let path = tmp(&format!("prop_{seed}"));
        save_snapshot::<(), u32, SsspState, _, _>(&path, &frags, None).unwrap();
        let loaded = load_snapshot::<(), u32, SsspState, _>(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_fragments_equal(&frags, &loaded.fragments);
    }
}

#[test]
fn attach_remaps_across_a_renumbered_partition() {
    // The stable-vertex-id contract: state exported against one
    // partition attaches to a *different* partition of the same graph
    // through real (non-identity) remaps keyed by global id.
    let g = generate::small_world(50, 2, 0.2, 9);
    let frags_a = build_fragments_n(&g, &hash_partition(&g, 3), 3);
    let engine_a = Engine::new(frags_a, EngineOpts::default());
    let (_, state): (_, RunState<SsspState>) = engine_a.run_retained(&aap_algos::Sssp, &0);
    let portable: PortableRunState<SsspState> = state.export(engine_a.fragments());

    // Same fragment count, different assignment rule -> different
    // locals. Attach must succeed for every owned vertex (ownership
    // moved, so old owned may be missing -> that IS an error), so remap
    // against a partition that keeps ownership but reorders mirrors:
    // vertex-cut of the same graph has different layout entirely, so
    // instead verify the error surfaces cleanly there.
    let frags_b = build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 3));
    let engine_b = Engine::new(frags_b, EngineOpts::default());
    match portable.attach(engine_b.fragments()) {
        // Either a clean remap (all saved vertices found somewhere) ...
        Ok((restored, remaps)) => {
            assert_eq!(restored.len(), 3);
            assert!(!remaps.iter().all(|r| r.is_identity()), "layouts genuinely differ");
        }
        // ... or a tagged missing-vertex error; never a panic.
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("absent"), "{msg}");
        }
    }
}

// ---------------------------------------------------------------------
// Per-program state files (the multi-program session format).
// ---------------------------------------------------------------------

#[test]
fn program_state_roundtrips_and_reattaches() {
    use aap_snapshot::{program_state_from_bytes, program_state_to_bytes};
    let g = generate::small_world(60, 2, 0.2, 5);
    let frags = build_fragments_n(&g, &hash_partition(&g, 3), 3);
    let engine = Engine::new(frags, EngineOpts::default());
    let (_, state): (_, RunState<SsspState>) = engine.run_retained(&aap_algos::Sssp, &7);
    let portable = state.export(engine.fragments());

    let bytes = program_state_to_bytes(&7u32, &portable);
    let (q, decoded) = program_state_from_bytes::<u32, SsspState>(&bytes).unwrap();
    assert_eq!(q, 7, "the query travels with the state");
    assert_eq!(&bytes, &program_state_to_bytes(&q, &decoded), "re-encode is byte-identical");
    let (restored, remaps) = decoded.attach(engine.fragments()).unwrap();
    assert!(remaps.iter().all(|r| r.is_identity()));
    assert_eq!(restored, state, "re-attached state equals the exported one");
}

#[test]
fn program_state_file_errors_are_tagged() {
    use aap_snapshot::{load_program_state, program_state_to_bytes, save_program_state};
    let g = generate::small_world(40, 2, 0.2, 3);
    let frags = build_fragments_n(&g, &hash_partition(&g, 2), 2);
    let engine = Engine::new(frags, EngineOpts::default());
    let (_, state): (_, RunState<SsspState>) = engine.run_retained(&aap_algos::Sssp, &0);
    let portable = state.export(engine.fragments());
    let path = tmp("program_state");
    save_program_state(&path, &0u32, &portable).unwrap();
    let (q, loaded) = load_program_state::<u32, SsspState, _>(&path).unwrap();
    assert_eq!(q, 0);
    assert_eq!(loaded.len(), 2);

    // Truncations at every framing boundary are tagged, never a panic.
    let bytes = program_state_to_bytes(&0u32, &portable);
    for cut in [0, 4, 11, 13, bytes.len() / 2, bytes.len() - 1] {
        let err = aap_snapshot::program_state_from_bytes::<u32, SsspState>(&bytes[..cut])
            .expect_err("prefix must not parse");
        assert!(
            matches!(
                err.kind(),
                ErrorKind::Truncated { .. }
                    | ErrorKind::Checksum { .. }
                    | ErrorKind::Corrupt { .. }
            ),
            "cut at {cut}: {err}"
        );
    }
    // A foreign file (snapshot magic) is a BadMagic, path-tagged.
    let err = aap_snapshot::program_state_from_bytes::<u32, SsspState>(&sample_bytes())
        .expect_err("snapshot file is not a program-state file");
    assert!(matches!(err.kind(), ErrorKind::BadMagic), "{err}");
    // Checksum flip in the payload.
    let mut flipped = bytes.clone();
    let mid = flipped.len() - 10;
    flipped[mid] ^= 0x40;
    let err = aap_snapshot::program_state_from_bytes::<u32, SsspState>(&flipped)
        .expect_err("flipped payload byte must fail");
    assert!(matches!(err.kind(), ErrorKind::Checksum { .. } | ErrorKind::Corrupt { .. }), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn log_recover_drops_only_a_torn_tail() {
    use aap_delta::DeltaBuilder;
    let path = tmp("recover");
    let mut log = DeltaLog::create(&path).unwrap();
    for i in 0..3u32 {
        let mut b: aap_delta::DeltaBuilder<(), u32> = DeltaBuilder::new();
        b.add_edge(i, i + 1, 1);
        log.write_delta(&b.build()).unwrap();
    }
    drop(log);
    let intact = std::fs::metadata(&path).unwrap().len();

    // An intact log recovers everything, untouched.
    let (deltas, torn) = DeltaLog::recover::<(), u32, _>(&path).unwrap();
    assert_eq!((deltas.len(), torn), (3, false));
    assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);

    // Tear the tail (crash mid-append): the strict read refuses, the
    // restart read drops exactly the torn record and truncates.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    assert!(DeltaLog::replay::<(), u32, _>(&path).is_err(), "strict replay must refuse");
    let (deltas, torn) = DeltaLog::recover::<(), u32, _>(&path).unwrap();
    assert_eq!((deltas.len(), torn), (2, true));
    // The file is now the valid prefix: appendable and strictly readable.
    let mut log = DeltaLog::open_append(&path).unwrap();
    let mut b: aap_delta::DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(9, 10, 1);
    log.write_delta(&b.build()).unwrap();
    drop(log);
    assert_eq!(DeltaLog::replay::<(), u32, _>(&path).unwrap().len(), 3);

    // Mid-file corruption is NOT a torn tail: a bit flip in an early
    // record (acknowledged history, more records follow) must fail
    // loudly, never silently truncate the acknowledged suffix away.
    let intact_bytes = std::fs::read(&path).unwrap();
    let mut flipped = intact_bytes.clone();
    flipped[20] ^= 0x01; // inside record 0's payload
    std::fs::write(&path, &flipped).unwrap();
    let err = DeltaLog::recover::<(), u32, _>(&path)
        .expect_err("mid-file corruption must not be forgiven");
    assert!(matches!(err.kind(), ErrorKind::Checksum { .. } | ErrorKind::Corrupt { .. }), "{err}");
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        intact_bytes.len() as u64,
        "a refused recover must not touch the file"
    );

    // A corrupted LENGTH field that claims past EOF is tail-shaped but
    // must not be forgiven either: acknowledged records follow it (the
    // resync scan finds them), so recover fails loudly and leaves the
    // file alone instead of truncating 2 acknowledged records away.
    let mut lenflip = intact_bytes.clone();
    lenflip[15] = 0x40; // record 0's len high byte -> frame "reaches EOF"
    std::fs::write(&path, &lenflip).unwrap();
    let err = DeltaLog::recover::<(), u32, _>(&path)
        .expect_err("a mid-file length-field flip must not be forgiven");
    assert!(matches!(err.kind(), ErrorKind::Truncated { .. }), "{err}");
    assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_bytes.len() as u64);

    // A foreign file still fails recover outright (not a torn tail).
    std::fs::write(&path, sample_bytes()).unwrap();
    assert!(matches!(
        DeltaLog::recover::<(), u32, _>(&path).unwrap_err().kind(),
        ErrorKind::BadMagic
    ));
    std::fs::remove_file(&path).ok();
}
