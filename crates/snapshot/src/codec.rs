//! Value (de)serialization over the wire layer: the [`Codec`] trait and
//! its implementations for the primitive node/edge/state payloads the
//! engines actually ship. Program states implement it too (SSSP, CC),
//! so a retained [`aap_core::PortableRunState`] persists alongside the
//! fragments it belongs to.

use crate::wire::{Reader, Writer};
use crate::SnapshotError;
use aap_algos::{CcState, SsspState};

/// A value with a stable little-endian byte encoding. Implementations
/// must round-trip exactly: `decode(encode(v)) == v`, consuming
/// precisely the bytes written — snapshot sections concatenate values
/// with no delimiters.
pub trait Codec: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Read one value back. Errors are tagged, never panics, on
    /// malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;
    /// The smallest possible encoding of one value, in bytes — bounds
    /// length prefixes so corrupt lengths fail fast. Zero-size values
    /// (`()`) return 0.
    fn min_encoded_bytes() -> usize;
}

macro_rules! int_codec {
    ($ty:ty, $put:ident, $get:ident, $bytes:expr) => {
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
                r.$get()
            }
            fn min_encoded_bytes() -> usize {
                $bytes
            }
        }
    };
}

int_codec!(u8, put_u8, get_u8, 1);
int_codec!(u16, put_u16, get_u16, 2);
int_codec!(u32, put_u32, get_u32, 4);
int_codec!(u64, put_u64, get_u64, 8);
int_codec!(f64, put_f64, get_f64, 8);

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_len(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(r.get_u64()? as usize)
    }
    fn min_encoded_bytes() -> usize {
        8
    }
}

impl Codec for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(r.get_u64()? as i64)
    }
    fn min_encoded_bytes() -> usize {
        8
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(r.get_u8()? != 0)
    }
    fn min_encoded_bytes() -> usize {
        1
    }
}

impl Codec for () {
    fn encode(&self, _w: &mut Writer) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
    fn min_encoded_bytes() -> usize {
        0
    }
}

/// Encode a slice exactly as `Vec<T>::encode` would (length prefix +
/// per-item encoding) without cloning the data into a `Vec` first —
/// the save-path form for borrowed arrays.
pub fn encode_slice<T: Codec>(s: &[T], w: &mut Writer) {
    w.put_len(s.len());
    for v in s {
        v.encode(w);
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        encode_slice(self, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len(T::min_encoded_bytes())?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
    fn min_encoded_bytes() -> usize {
        8
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.get_u8()? {
            0 => None,
            _ => Some(T::decode(r)?),
        })
    }
    fn min_encoded_bytes() -> usize {
        1
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
    fn min_encoded_bytes() -> usize {
        A::min_encoded_bytes() + B::min_encoded_bytes()
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
    fn min_encoded_bytes() -> usize {
        A::min_encoded_bytes() + B::min_encoded_bytes() + C::min_encoded_bytes()
    }
}

impl Codec for SsspState {
    fn encode(&self, w: &mut Writer) {
        self.dist.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(SsspState { dist: Vec::<u64>::decode(r)? })
    }
    fn min_encoded_bytes() -> usize {
        8
    }
}

impl Codec for CcState {
    fn encode(&self, w: &mut Writer) {
        encode_slice(self.comp_of(), w);
        encode_slice(self.comp_cid(), w);
        encode_slice(self.comp_border(), w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let comp_of = Vec::<u32>::decode(r)?;
        let comp_cid = Vec::<u32>::decode(r)?;
        let comp_border = Vec::<Vec<u32>>::decode(r)?;
        CcState::try_from_parts(comp_of, comp_cid, comp_border)
            .map_err(|e| SnapshotError::corrupt(format!("CcState: {e}")))
    }
    fn min_encoded_bytes() -> usize {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert!(r.is_exhausted(), "decode must consume exactly what encode wrote");
    }

    #[test]
    fn primitive_and_composite_roundtrips() {
        roundtrip(0xABu8);
        roundtrip(u64::MAX);
        roundtrip(-3i64);
        roundtrip(2.75f64);
        roundtrip(true);
        roundtrip(());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some((7u32, 9u64)));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, 2u16, vec![3u32]));
    }

    #[test]
    fn sssp_state_roundtrips() {
        let mut w = Writer::new();
        SsspState { dist: vec![0, 5, u64::MAX] }.encode(&mut w);
        let bytes = w.into_bytes();
        let got = SsspState::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.dist, vec![0, 5, u64::MAX]);
    }

    #[test]
    fn cc_state_roundtrips_and_rejects_corrupt_indices() {
        let st = CcState::from_parts(vec![0, 0, 1], vec![0, 2], vec![vec![0], vec![2]]);
        let mut w = Writer::new();
        st.encode(&mut w);
        let bytes = w.into_bytes();
        let got = CcState::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.comp_of(), st.comp_of());
        assert_eq!(got.comp_cid(), st.comp_cid());

        // An out-of-range component index must be a tagged error, not a
        // panic inside CcState::from_parts.
        let bad = CcState::from_parts(vec![0, 1], vec![0, 2], vec![vec![0], vec![1]]);
        let mut w = Writer::new();
        bad.comp_of().to_vec().encode(&mut w);
        vec![0u32].encode(&mut w); // only one component now
        bad.comp_border().to_vec().encode(&mut w);
        let bytes = w.into_bytes();
        assert!(CcState::decode(&mut Reader::new(&bytes)).is_err());
    }
}
