//! The wire layer: a little-endian byte writer/reader pair, CRC32
//! checksums, and the section framing shared by snapshot files and
//! delta logs. Everything is hand-rolled — the build environment
//! vendors no serialization crates, and the format is simple enough
//! that owning it outright keeps the on-disk contract auditable.

use crate::{ErrorKind, SnapshotError};

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup table, generated at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 checksum of `bytes` (IEEE, as used by zip/png — a strong
/// corruption detector, not a cryptographic digest).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte sink. Sections are assembled in
/// memory so their checksum can be computed before anything hits disk.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the accumulated bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }
}

/// Cursor over a byte slice, mirroring [`Writer`]. Every read is
/// bounds-checked and reports a tagged [`ErrorKind::Truncated`] instead
/// of panicking — snapshot bytes are untrusted input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::new(ErrorKind::Truncated { what }));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        self.take(n, what)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().unwrap()))
    }

    /// Read a length (`u64` on disk), checked against the remaining
    /// input so corrupt lengths fail fast instead of driving a huge
    /// allocation. `min_elem_bytes` is the smallest possible encoding of
    /// one element of the collection about to be read (1 for unknown).
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        let bound = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if v > bound {
            return Err(SnapshotError::new(ErrorKind::Corrupt {
                what: format!("length {v} exceeds remaining input"),
            }));
        }
        Ok(v as usize)
    }
}

/// Frame one section: tag, payload length, payload, CRC32 of the
/// payload. The reader side is [`read_section`].
pub fn write_section(out: &mut Writer, tag: [u8; 4], payload: &[u8]) {
    out.put_bytes(&tag);
    out.put_len(payload.len());
    out.put_bytes(payload);
    out.put_u32(crc32(payload));
}

/// Un-frame one section, verifying tag and checksum. `what` names the
/// section in error messages.
pub fn read_section<'a>(
    r: &mut Reader<'a>,
    tag: [u8; 4],
    what: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    let found = r.get_bytes(4, what)?;
    if found != tag {
        return Err(SnapshotError::new(ErrorKind::Corrupt {
            what: format!("expected section {:?}, found {:?}", tag_str(tag), found),
        }));
    }
    let len = r.get_len(1)?;
    let payload = r.get_bytes(len, what)?;
    let want = r.get_u32()?;
    if crc32(payload) != want {
        return Err(SnapshotError::new(ErrorKind::Checksum { what }));
    }
    Ok(payload)
}

fn tag_str(tag: [u8; 4]) -> String {
    tag.iter().map(|&b| b as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-1.5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_are_tagged() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::Truncated { .. }), "{err}");
    }

    #[test]
    fn section_roundtrip_and_checksum() {
        let mut w = Writer::new();
        write_section(&mut w, *b"TEST", b"hello");
        let mut bytes = w.into_bytes();
        let got = read_section(&mut Reader::new(&bytes), *b"TEST", "test").unwrap();
        assert_eq!(got, b"hello");

        // Flip a payload byte: checksum must catch it.
        bytes[4 + 8] ^= 0x40;
        let err = read_section(&mut Reader::new(&bytes), *b"TEST", "test").unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::Checksum { .. }), "{err}");
    }

    #[test]
    fn absurd_length_is_corrupt_not_oom() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let err = Reader::new(&bytes).get_len(1).unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::Corrupt { .. }), "{err}");
    }
}
