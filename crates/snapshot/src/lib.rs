//! # aap-snapshot
//!
//! Durable snapshots for the GRAPE+ dynamic pipeline: persist a
//! partitioned fragment set and the engine's retained [`RunState`] to a
//! versioned, checksummed binary file, and keep an append-only
//! [`DeltaLog`] of applied [`GraphDelta`](aap_delta::GraphDelta)s — so
//! a serving process can
//! restart **warm** (`load → attach → replay`) instead of re-partitioning
//! and cold-running, landing in exactly the state a continuous process
//! would hold.
//!
//! The format is owned outright (little-endian writer/reader, CRC32
//! framing, no external dependencies — see [`wire`]); layout is
//! documented in [`fragments`] (snapshot file) and [`log`] (delta log).
//! Derivable structures — dense routing tables, `g2l` maps — are *not*
//! persisted: loaders re-derive them, so the file cannot hold a
//! contradictory copy.
//!
//! ```no_run
//! use aap_core::{Engine, EngineOpts};
//! use aap_delta::DeltaBuilder;
//! use aap_graph::partition::{build_fragments, hash_partition};
//! use aap_graph::generate;
//! use aap_snapshot::{restore_engine, save_engine, DeltaLog};
//!
//! // --- serving process ---
//! let g = generate::small_world(500, 2, 0.1, 7);
//! let frags = build_fragments(&g, &hash_partition(&g, 4));
//! let mut engine = Engine::new(frags, EngineOpts::default());
//! let (_, mut state) = engine.run_retained(&aap_algos::Sssp, &0);
//! save_engine("g.snap", &engine, Some(&state)).unwrap();
//! let mut log = DeltaLog::create("g.dlog").unwrap();
//! let mut b = DeltaBuilder::new();
//! b.add_edge(0, 250, 2);
//! let delta = b.build();
//! let run = aap_delta::run_incremental(&mut engine, &aap_algos::Sssp, &0, &delta, &mut state);
//! log.write_delta(&delta).unwrap();
//!
//! // --- restarted process (e.g. after a crash) ---
//! let (mut engine2, attached) =
//!     restore_engine::<(), u32, aap_algos::SsspState, _>("g.snap", EngineOpts::default())
//!         .unwrap();
//! let (mut state2, _remaps) = attached.unwrap();
//! let deltas = DeltaLog::replay::<(), u32, _>("g.dlog").unwrap();
//! let replayed =
//!     aap_delta::replay(&mut engine2, &aap_algos::Sssp, &0, &deltas, &mut state2).unwrap();
//! assert_eq!(replayed.out, run.out);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fragments;
pub mod log;
pub mod program;
pub mod wire;

pub use codec::Codec;
pub use fragments::{
    diff_snapshot_to_bytes, fragment_parts_from_bytes, load_fragment_parts, load_snapshot,
    resolve_fragment_chain, save_diff_snapshot, save_snapshot, snapshot_from_bytes,
    snapshot_to_bytes, FragmentParts, LoadedSnapshot, DIFF_FRAG_TAG, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use log::{recover_bytes, replay_bytes, DeltaLog, RecoveredLog, LOG_MAGIC, LOG_VERSION};
pub use program::{
    diff_program_state_to_bytes, frag_state_crc, load_program_state, load_program_state_parts,
    program_state_from_bytes, program_state_parts_from_bytes, program_state_to_bytes,
    resolve_state_chain, save_diff_program_state, save_program_state, ProgramStateParts,
    DIFF_STAT_TAG, PROGRAM_STATE_MAGIC, PROGRAM_STATE_VERSION,
};

use aap_core::engine::{EngineOpts, RunState};
use aap_core::Engine;
use aap_graph::mutate::StateRemap;
use std::path::{Path, PathBuf};

/// What went wrong with a snapshot or delta-log operation. Mirrors the
/// path-tagged `aap_graph::io::IoError` style: file-level entry points
/// attach the offending path to every error, including parse-side ones.
#[derive(Debug)]
pub struct SnapshotError {
    path: Option<PathBuf>,
    kind: ErrorKind,
}

/// The failure class of a [`SnapshotError`].
#[derive(Debug)]
pub enum ErrorKind {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is not supported by this build.
    BadVersion {
        /// Version recorded in the file.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// The input ended mid-structure (torn write, truncated copy).
    Truncated {
        /// Which structure was being read.
        what: &'static str,
    },
    /// A CRC32 checksum did not match its payload.
    Checksum {
        /// Which section/record failed verification.
        what: &'static str,
    },
    /// Checksummed but semantically inconsistent data (a writer bug or
    /// deliberate tampering — random corruption is caught by CRC first).
    Corrupt {
        /// What was inconsistent.
        what: String,
    },
}

impl SnapshotError {
    pub(crate) fn new(kind: ErrorKind) -> Self {
        SnapshotError { path: None, kind }
    }

    pub(crate) fn corrupt(what: impl Into<String>) -> Self {
        SnapshotError::new(ErrorKind::Corrupt { what: what.into() })
    }

    pub(crate) fn io(path: &Path, e: std::io::Error) -> Self {
        SnapshotError { path: Some(path.to_path_buf()), kind: ErrorKind::Io(e) }
    }

    /// Tag this error with the file it came from (file-level wrappers).
    pub(crate) fn at(mut self, path: &Path) -> Self {
        self.path.get_or_insert_with(|| path.to_path_buf());
        self
    }

    /// The failure class.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// The file involved, when the error came through a path-taking
    /// entry point.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = &self.path {
            write!(f, "{}: ", p.display())?;
        }
        match &self.kind {
            ErrorKind::Io(e) => write!(f, "i/o error: {e}"),
            ErrorKind::BadMagic => write!(f, "not a snapshot/delta-log file (bad magic)"),
            ErrorKind::BadVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads {supported})")
            }
            ErrorKind::Truncated { what } => write!(f, "truncated input while reading {what}"),
            ErrorKind::Checksum { what } => write!(f, "checksum mismatch in {what}"),
            ErrorKind::Corrupt { what } => write!(f, "corrupt data: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Write `bytes` to `path` atomically with respect to the destination:
/// bytes go to a sibling temp file, are **synced to disk**, then
/// renamed over `path`, and (on Unix) the parent directory is synced —
/// so re-writing the same path can never leave a torn file in place of
/// the previous good one, and the rename itself is durable across a
/// crash, not merely atomic. The directory sync matters for commit
/// points like the session manifest, whose writers delete superseded
/// files immediately after the rename: without it a power loss could
/// persist the deletions while losing the rename. Used by every
/// durable-file writer in the pipeline (snapshots, program states, the
/// session manifest).
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let io = |e| SnapshotError::io(path, e);
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    std::io::Write::write_all(&mut file, bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)?;
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent).and_then(|d| d.sync_all()).map_err(io)?;
    }
    Ok(())
}

/// Snapshot an engine: persist its fragment set and, when given, the
/// retained state of a completed `run_retained`/`run_incremental`
/// (exported into the portable, global-id-keyed form).
pub fn save_engine<V, E, St, P>(
    path: P,
    engine: &Engine<V, E>,
    state: Option<&RunState<St>>,
) -> Result<(), SnapshotError>
where
    V: Codec + Clone + Send + Sync,
    E: Codec + Clone + Send + Sync,
    St: Codec + Clone,
    P: AsRef<Path>,
{
    let portable = state.map(|s| s.export(engine.fragments()));
    save_snapshot(path, engine.fragments(), portable.as_ref())
}

/// Rebuild an engine from a snapshot file. When the snapshot carried
/// retained state, it is re-anchored against the loaded fragments and
/// returned with one [`StateRemap`] per fragment.
///
/// The remaps are identity when the loaded layout matches the exported
/// one — always the case for an unmodified snapshot — and the state is
/// immediately usable: stream the delta log through
/// `aap_delta::replay`. If a remap is *not* identity (state attached to
/// a re-derived partition), run one settle round first —
/// `engine.run_incremental(prog, q, &remaps, &empty_seeds,
/// &empty_invalid, &mut state)` — so `warm_eval` migrates the values
/// into the new local-id space.
#[allow(clippy::type_complexity)]
pub fn restore_engine<V, E, St, P>(
    path: P,
    opts: EngineOpts,
) -> Result<(Engine<V, E>, Option<(RunState<St>, Vec<StateRemap>)>), SnapshotError>
where
    V: Codec + Clone + Send + Sync,
    E: Codec + Clone + Send + Sync,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let loaded = load_snapshot::<V, E, St, _>(path)?;
    let engine = Engine::new(loaded.fragments, opts);
    let state = match loaded.state {
        None => None,
        Some(portable) => Some(
            portable
                .attach(engine.fragments())
                .map_err(|e| SnapshotError::corrupt(e.to_string()).at(path))?,
        ),
    };
    Ok((engine, state))
}

/// Convenience: export + save + open a fresh delta log in one call —
/// the "begin durable serving" gesture. Returns the open log.
pub fn save_engine_with_log<V, E, St, P, Q>(
    snapshot_path: P,
    log_path: Q,
    engine: &Engine<V, E>,
    state: Option<&RunState<St>>,
) -> Result<DeltaLog, SnapshotError>
where
    V: Codec + Clone + Send + Sync,
    E: Codec + Clone + Send + Sync,
    St: Codec + Clone,
    P: AsRef<Path>,
    Q: AsRef<Path>,
{
    save_engine(snapshot_path, engine, state)?;
    DeltaLog::create(log_path)
}
