//! The snapshot file proper: persisted fragment sets and retained
//! run state.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8 bytes  b"AAPSNAP\0"
//! version  u16      1
//! flags    u16      reserved, 0
//! FRAG section      the partitioned fragment set
//! STAT section      retained PortableRunState (optional; absent when
//!                   the snapshot carries topology only)
//! ```
//!
//! Each section is framed by the wire layer: `tag(4) len(u64) payload
//! crc32(u32)` — see [`crate::wire::write_section`]. The FRAG payload
//! holds, per fragment, exactly the parts
//! [`Fragment::from_saved_parts`] consumes: local CSR adjacency with
//! node/edge data, the globals array, owned count, border sets
//! (`Fi.I`, `Fi.O'`), mirror owners and the holder CSR. Dense routing
//! tables are *derivable* and therefore not persisted; the loader
//! re-derives them with [`rebuild_routing_tables`] — trading a little
//! load CPU for a format that cannot hold contradictory routing.
//!
//! The STAT payload is an [`aap_core::PortableRunState`]: per fragment,
//! the exported globals layout, owned count, and the program state via
//! its [`Codec`] — keyed by *global* ids so it survives renumbering
//! (see `PortableRunState::attach`).

use crate::codec::{encode_slice, Codec};
use crate::wire::{read_section, write_section, Reader, Writer};
use crate::{ErrorKind, SnapshotError};
use aap_core::{PortableFragState, PortableRunState};
use aap_graph::partition::rebuild_routing_tables;
use aap_graph::{FragId, Fragment, Graph, LocalId, VertexId};
use std::borrow::Borrow;
use std::path::Path;

/// File magic of snapshot files.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AAPSNAP\0";
/// Current (and only) format version.
pub const SNAPSHOT_VERSION: u16 = 1;
const FRAG_TAG: [u8; 4] = *b"FRAG";
const STAT_TAG: [u8; 4] = *b"STAT";
/// Section tag of a *differential* fragment payload: a subset of the
/// partition's fragments, each embedding its own id, resolved against
/// older epochs by [`resolve_fragment_chain`].
pub const DIFF_FRAG_TAG: [u8; 4] = *b"DFRG";

/// A snapshot loaded back into memory: the fragment set (with routing
/// tables re-derived) and, if the file carried one, the retained state.
#[derive(Debug)]
pub struct LoadedSnapshot<V, E, St> {
    /// The persisted partition, ready to back an engine.
    pub fragments: Vec<Fragment<V, E>>,
    /// Retained run state, if the snapshot carried one. Re-anchor it
    /// with [`aap_core::PortableRunState::attach`].
    pub state: Option<PortableRunState<St>>,
}

fn encode_graph<V: Codec, E: Codec>(g: &Graph<V, E>, w: &mut Writer) {
    g.is_directed().encode(w);
    w.put_len(g.num_vertices());
    for v in g.nodes() {
        v.encode(w);
    }
    w.put_len(g.num_edges());
    for &o in g.offsets() {
        w.put_u64(o as u64);
    }
    for &t in g.targets() {
        w.put_u32(t);
    }
    for d in g.edge_data_all() {
        d.encode(w);
    }
}

fn decode_graph<V: Codec, E: Codec>(r: &mut Reader<'_>) -> Result<Graph<V, E>, SnapshotError> {
    let directed = bool::decode(r)?;
    let n = r.get_len(V::min_encoded_bytes())?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(V::decode(r)?);
    }
    let m = r.get_len(1)?;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(r.get_u64()? as usize);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(r.get_u32()?);
    }
    let mut edge_data = Vec::with_capacity(m);
    for _ in 0..m {
        edge_data.push(E::decode(r)?);
    }
    Graph::try_from_csr(directed, nodes, offsets, targets, edge_data)
        .map_err(|e| SnapshotError::corrupt(format!("CSR adjacency: {e}")))
}

fn encode_fragment<V: Codec, E: Codec>(f: &Fragment<V, E>, w: &mut Writer) {
    w.put_u16(f.id());
    w.put_u16(f.num_frags());
    f.is_vertex_cut().encode(w);
    encode_graph(f.local_graph(), w);
    w.put_len(f.globals().len());
    for &g in f.globals() {
        w.put_u32(g);
    }
    w.put_len(f.owned_count());
    encode_slice(f.inner_in(), w);
    encode_slice(f.inner_out(), w);
    encode_slice(f.mirror_owners(), w);
    let (holder_offsets, holders) = f.holder_csr();
    encode_slice(holder_offsets, w);
    encode_slice(holders, w);
}

fn decode_fragment<V: Codec, E: Codec>(
    r: &mut Reader<'_>,
) -> Result<Fragment<V, E>, SnapshotError> {
    let id = r.get_u16()?;
    let num_frags = r.get_u16()?;
    let vertex_cut = bool::decode(r)?;
    let graph = decode_graph::<V, E>(r)?;
    let n = r.get_len(4)?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(r.get_u32()?);
    }
    let owned = r.get_len(0)?;
    let inner_in = Vec::<LocalId>::decode(r)?;
    let inner_out = Vec::<LocalId>::decode(r)?;
    let mirror_owner = Vec::<FragId>::decode(r)?;
    let holder_offsets = Vec::<u32>::decode(r)?;
    let holders = Vec::<FragId>::decode(r)?;
    Fragment::try_from_saved_parts(
        id,
        num_frags,
        vertex_cut,
        graph,
        globals,
        owned,
        inner_in,
        inner_out,
        mirror_owner,
        holder_offsets,
        holders,
    )
    .map_err(SnapshotError::corrupt)
}

/// Cross-fragment coherence: every routing destination must actually
/// hold a copy of the vertex, or the routing-table rebuild would panic
/// on its `peer_local` lookup. Per-fragment checks can't see this —
/// each fragment is internally consistent while naming a peer that
/// lacks the vertex — so it runs once over the decoded partition.
fn validate_partition<V, E>(frags: &[Fragment<V, E>]) -> Result<(), SnapshotError> {
    for f in frags {
        for m in f.mirrors() {
            let g = f.global(m);
            let owner = &frags[f.owner(m) as usize];
            if owner.local(g).is_none() {
                return Err(SnapshotError::corrupt(format!(
                    "fragment {}: mirror of vertex {g} names owner {} which lacks it",
                    f.id(),
                    owner.id()
                )));
            }
        }
        for l in f.owned_vertices() {
            let g = f.global(l);
            for &h in f.mirror_holders(l) {
                if frags[h as usize].local(g).is_none() {
                    return Err(SnapshotError::corrupt(format!(
                        "fragment {}: holder list of vertex {g} names fragment {h} which lacks it",
                        f.id()
                    )));
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn encode_frag_state<St: Codec>(entry: &PortableFragState<St>, w: &mut Writer) {
    entry.globals.encode(w);
    w.put_len(entry.owned);
    entry.state.encode(w);
}

pub(crate) fn decode_frag_state<St: Codec>(
    r: &mut Reader<'_>,
) -> Result<PortableFragState<St>, SnapshotError> {
    let globals = Vec::<VertexId>::decode(r)?;
    let owned = r.get_len(0)?;
    if owned > globals.len() {
        return Err(SnapshotError::corrupt("owned count exceeds globals"));
    }
    let state = St::decode(r)?;
    Ok(PortableFragState { globals, owned, state })
}

pub(crate) fn encode_portable_state<St: Codec>(state: &PortableRunState<St>, w: &mut Writer) {
    w.put_len(state.len());
    for entry in state.entries() {
        encode_frag_state(entry, w);
    }
}

pub(crate) fn decode_portable_state<St: Codec>(
    r: &mut Reader<'_>,
) -> Result<PortableRunState<St>, SnapshotError> {
    let m = r.get_len(8)?;
    let mut entries = Vec::with_capacity(m);
    for _ in 0..m {
        entries.push(decode_frag_state::<St>(r)?);
    }
    Ok(PortableRunState::from_entries(entries))
}

/// Serialize a snapshot to bytes. `frags` accepts both `&[Fragment]`
/// and `&[Arc<Fragment>]` (anything borrowing a fragment).
pub fn snapshot_to_bytes<V, E, St, F>(frags: &[F], state: Option<&PortableRunState<St>>) -> Vec<u8>
where
    V: Codec,
    E: Codec,
    St: Codec,
    F: Borrow<Fragment<V, E>>,
{
    let mut out = Writer::new();
    out.put_bytes(&SNAPSHOT_MAGIC);
    out.put_u16(SNAPSHOT_VERSION);
    out.put_u16(0); // flags, reserved

    let mut frag_payload = Writer::new();
    frag_payload.put_u16(frags.len() as u16);
    for f in frags {
        encode_fragment(f.borrow(), &mut frag_payload);
    }
    write_section(&mut out, FRAG_TAG, frag_payload.bytes());

    if let Some(state) = state {
        let mut stat_payload = Writer::new();
        encode_portable_state(state, &mut stat_payload);
        write_section(&mut out, STAT_TAG, stat_payload.bytes());
    }
    out.into_bytes()
}

/// Parse a snapshot from bytes, re-deriving the routing tables.
pub fn snapshot_from_bytes<V, E, St>(
    bytes: &[u8],
) -> Result<LoadedSnapshot<V, E, St>, SnapshotError>
where
    V: Codec,
    E: Codec,
    St: Codec,
{
    let mut r = Reader::new(bytes);
    let magic = r.get_bytes(8, "file header")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::new(ErrorKind::BadMagic));
    }
    let version = r.get_u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::new(ErrorKind::BadVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        }));
    }
    let _flags = r.get_u16()?;

    let frag_payload = read_section(&mut r, FRAG_TAG, "fragment section")?;
    let mut fr = Reader::new(frag_payload);
    let m = fr.get_u16()? as usize;
    let mut fragments: Vec<Fragment<V, E>> = Vec::with_capacity(m);
    for i in 0..m {
        let f = decode_fragment::<V, E>(&mut fr)?;
        if f.id() as usize != i || f.num_frags() as usize != m {
            return Err(SnapshotError::corrupt("fragment ids disagree with partition size"));
        }
        fragments.push(f);
    }
    if !fr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in fragment section"));
    }

    let state = if r.remaining() > 0 {
        let stat_payload = read_section(&mut r, STAT_TAG, "state section")?;
        let mut sr = Reader::new(stat_payload);
        let st = decode_portable_state::<St>(&mut sr)?;
        if !sr.is_exhausted() {
            return Err(SnapshotError::corrupt("trailing bytes in state section"));
        }
        if st.len() != fragments.len() {
            return Err(SnapshotError::corrupt("state fragment count mismatch"));
        }
        Some(st)
    } else {
        None
    };
    if !r.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes after the last section"));
    }

    validate_partition(&fragments)?;
    rebuild_routing_tables(&mut fragments);
    Ok(LoadedSnapshot { fragments, state })
}

/// Write a snapshot file: the persisted fragment set plus (optionally)
/// retained run state. I/O errors carry the path, mirroring
/// `aap_graph::io`.
///
/// The write is atomic with respect to the destination: bytes go to a
/// sibling temp file, are synced to disk, then renamed over `path` —
/// so re-snapshotting to the same path can never leave a torn file in
/// place of the previous good snapshot, even across a crash mid-save.
pub fn save_snapshot<V, E, St, F, P>(
    path: P,
    frags: &[F],
    state: Option<&PortableRunState<St>>,
) -> Result<(), SnapshotError>
where
    V: Codec,
    E: Codec,
    St: Codec,
    F: Borrow<Fragment<V, E>>,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let bytes = snapshot_to_bytes(frags, state);
    crate::write_file_atomic(path, &bytes)
}

/// Read a snapshot file back; every error — I/O, framing, checksum —
/// is tagged with the path.
pub fn load_snapshot<V, E, St, P>(path: P) -> Result<LoadedSnapshot<V, E, St>, SnapshotError>
where
    V: Codec,
    E: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    snapshot_from_bytes(&bytes).map_err(|e| e.at(path))
}

/// The fragments carried by one snapshot file in an epoch chain: either
/// a full partition (`FRAG` section) or a differential subset (`DFRG`).
/// Produced by [`fragment_parts_from_bytes`]; fed newest-first to
/// [`resolve_fragment_chain`].
#[derive(Debug)]
pub struct FragmentParts<V, E> {
    /// Total fragment count of the partition the file belongs to.
    pub num_frags: u16,
    /// The fragments this file carries (all of them for a full file).
    pub fragments: Vec<Fragment<V, E>>,
    /// True if the file held a `DFRG` (subset) section.
    pub differential: bool,
}

/// Serialize a *differential* snapshot: the subset of fragments whose
/// bytes changed since the parent epoch. `num_frags` is the partition's
/// total fragment count (the file may carry fewer). Restore resolves
/// the newest version of each fragment across the epoch chain with
/// [`resolve_fragment_chain`].
pub fn diff_snapshot_to_bytes<V, E, F>(num_frags: u16, frags: &[F]) -> Vec<u8>
where
    V: Codec,
    E: Codec,
    F: Borrow<Fragment<V, E>>,
{
    let mut out = Writer::new();
    out.put_bytes(&SNAPSHOT_MAGIC);
    out.put_u16(SNAPSHOT_VERSION);
    out.put_u16(0); // flags, reserved
    let mut payload = Writer::new();
    payload.put_u16(num_frags);
    payload.put_u16(frags.len() as u16);
    for f in frags {
        encode_fragment(f.borrow(), &mut payload);
    }
    write_section(&mut out, DIFF_FRAG_TAG, payload.bytes());
    out.into_bytes()
}

/// Write a differential snapshot file (atomic temp-file + rename).
pub fn save_diff_snapshot<V, E, F, P>(
    path: P,
    num_frags: u16,
    frags: &[F],
) -> Result<(), SnapshotError>
where
    V: Codec,
    E: Codec,
    F: Borrow<Fragment<V, E>>,
    P: AsRef<Path>,
{
    crate::write_file_atomic(path.as_ref(), &diff_snapshot_to_bytes(num_frags, frags))
}

/// Parse the fragments of one chain file — full (`FRAG`) or
/// differential (`DFRG`) — *without* cross-fragment validation or
/// routing rebuild; those run once over the assembled partition in
/// [`resolve_fragment_chain`]. A trailing `STAT` section on a full file
/// is skipped (its frame is still checksum-verified).
pub fn fragment_parts_from_bytes<V, E>(bytes: &[u8]) -> Result<FragmentParts<V, E>, SnapshotError>
where
    V: Codec,
    E: Codec,
{
    let mut r = Reader::new(bytes);
    let magic = r.get_bytes(8, "file header")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::new(ErrorKind::BadMagic));
    }
    let version = r.get_u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::new(ErrorKind::BadVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        }));
    }
    let _flags = r.get_u16()?;

    // Peek the section tag to pick the payload shape.
    let differential = {
        let mut probe = Reader::new(bytes);
        probe.get_bytes(12, "file header")?;
        probe.get_bytes(4, "section tag")? == DIFF_FRAG_TAG
    };
    let (num_frags, count, payload) = if differential {
        let payload = read_section(&mut r, DIFF_FRAG_TAG, "differential fragment section")?;
        let mut fr = Reader::new(payload);
        let total = fr.get_u16()?;
        let count = fr.get_u16()? as usize;
        (total, count, fr)
    } else {
        let payload = read_section(&mut r, FRAG_TAG, "fragment section")?;
        let mut fr = Reader::new(payload);
        let m = fr.get_u16()?;
        (m, m as usize, fr)
    };
    let mut fr = payload;
    let mut fragments: Vec<Fragment<V, E>> = Vec::with_capacity(count);
    for _ in 0..count {
        let f = decode_fragment::<V, E>(&mut fr)?;
        if f.id() >= num_frags || f.num_frags() != num_frags {
            return Err(SnapshotError::corrupt("fragment ids disagree with partition size"));
        }
        fragments.push(f);
    }
    if !fr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in fragment section"));
    }
    if differential {
        let mut seen = vec![false; num_frags as usize];
        for f in &fragments {
            if std::mem::replace(&mut seen[f.id() as usize], true) {
                return Err(SnapshotError::corrupt("duplicate fragment id in differential file"));
            }
        }
    }
    if !differential {
        // Full files must cover ids 0..m in order (same rule as
        // `snapshot_from_bytes`).
        for (i, f) in fragments.iter().enumerate() {
            if f.id() as usize != i {
                return Err(SnapshotError::corrupt("fragment ids disagree with partition size"));
            }
        }
        // Skip (but still frame-verify) a trailing STAT section.
        if r.remaining() > 0 {
            read_section(&mut r, STAT_TAG, "state section")?;
        }
    }
    if !r.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes after the last section"));
    }
    Ok(FragmentParts { num_frags, fragments, differential })
}

/// Read one chain file's fragments; errors carry the path.
pub fn load_fragment_parts<V, E, P>(path: P) -> Result<FragmentParts<V, E>, SnapshotError>
where
    V: Codec,
    E: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    fragment_parts_from_bytes(&bytes).map_err(|e| e.at(path))
}

/// Resolve an epoch chain — files ordered **newest first**, ending at a
/// full baseline — into the current partition: for each fragment id the
/// newest version wins, coverage must be complete, and the assembled
/// set is cross-validated with routing tables re-derived (exactly what
/// [`snapshot_from_bytes`] guarantees for a single full file).
pub fn resolve_fragment_chain<V, E>(
    parts_newest_first: Vec<FragmentParts<V, E>>,
) -> Result<Vec<Fragment<V, E>>, SnapshotError> {
    let Some(first) = parts_newest_first.first() else {
        return Err(SnapshotError::corrupt("empty snapshot chain"));
    };
    let m = first.num_frags as usize;
    let mut resolved: Vec<Option<Fragment<V, E>>> = (0..m).map(|_| None).collect();
    let mut missing = m;
    for parts in parts_newest_first {
        if parts.num_frags as usize != m {
            return Err(SnapshotError::corrupt("chain files disagree on partition size"));
        }
        for f in parts.fragments {
            let slot = &mut resolved[f.id() as usize];
            if slot.is_none() {
                *slot = Some(f);
                missing -= 1;
            }
        }
        if missing == 0 {
            break;
        }
    }
    if missing > 0 {
        return Err(SnapshotError::corrupt(format!(
            "snapshot chain leaves {missing} of {m} fragments unresolved"
        )));
    }
    let mut fragments: Vec<Fragment<V, E>> =
        resolved.into_iter().map(|f| f.expect("coverage checked")).collect();
    validate_partition(&fragments)?;
    rebuild_routing_tables(&mut fragments);
    Ok(fragments)
}
