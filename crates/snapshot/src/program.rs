//! Per-program retained-state files: the durable form of one registered
//! program in a multi-program session (`aap-session`).
//!
//! A session snapshot splits what `save_engine` stored in one file into
//! a *shared* topology snapshot (the FRAG-only snapshot file, saved
//! once) plus one of these files per program — each carrying the query
//! the retained state answers and the state itself in the portable,
//! global-id-keyed [`PortableRunState`] form. Splitting keeps the
//! fragment set single-sourced: every program re-anchors against the
//! same loaded partition with `PortableRunState::attach`.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8 bytes  b"AAPPROG\0"
//! version  u16      1
//! flags    u16      reserved, 0
//! QURY section      the query the state was computed for (its Codec)
//! STAT section      the PortableRunState (same payload as a snapshot
//!                   file's STAT section)
//! ```
//!
//! Sections are framed by the wire layer (`tag(4) len(u64) payload
//! crc32(u32)`), so truncation and corruption surface as tagged errors
//! exactly like the snapshot/delta-log formats.

use crate::codec::Codec;
use crate::fragments::{decode_portable_state, encode_portable_state};
use crate::wire::{read_section, write_section, Reader, Writer};
use crate::{ErrorKind, SnapshotError};
use aap_core::PortableRunState;
use std::path::Path;

/// File magic of per-program state files.
pub const PROGRAM_STATE_MAGIC: [u8; 8] = *b"AAPPROG\0";
/// Current (and only) program-state format version.
pub const PROGRAM_STATE_VERSION: u16 = 1;
const QUERY_TAG: [u8; 4] = *b"QURY";
const STAT_TAG: [u8; 4] = *b"STAT";

/// Serialize one program's durable form — its query plus portable
/// retained state — to bytes.
pub fn program_state_to_bytes<Q: Codec, St: Codec>(
    query: &Q,
    state: &PortableRunState<St>,
) -> Vec<u8> {
    let mut out = Writer::new();
    out.put_bytes(&PROGRAM_STATE_MAGIC);
    out.put_u16(PROGRAM_STATE_VERSION);
    out.put_u16(0); // flags, reserved
    let mut qp = Writer::new();
    query.encode(&mut qp);
    write_section(&mut out, QUERY_TAG, qp.bytes());
    let mut sp = Writer::new();
    encode_portable_state(state, &mut sp);
    write_section(&mut out, STAT_TAG, sp.bytes());
    out.into_bytes()
}

/// Parse a program-state file back into its query and portable state.
pub fn program_state_from_bytes<Q: Codec, St: Codec>(
    bytes: &[u8],
) -> Result<(Q, PortableRunState<St>), SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r.get_bytes(8, "file header")?;
    if magic != PROGRAM_STATE_MAGIC {
        return Err(SnapshotError::new(ErrorKind::BadMagic));
    }
    let version = r.get_u16()?;
    if version != PROGRAM_STATE_VERSION {
        return Err(SnapshotError::new(ErrorKind::BadVersion {
            found: version,
            supported: PROGRAM_STATE_VERSION,
        }));
    }
    let _flags = r.get_u16()?;

    let qp = read_section(&mut r, QUERY_TAG, "query section")?;
    let mut qr = Reader::new(qp);
    let query = Q::decode(&mut qr)?;
    if !qr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in query section"));
    }
    let sp = read_section(&mut r, STAT_TAG, "state section")?;
    let mut sr = Reader::new(sp);
    let state = decode_portable_state::<St>(&mut sr)?;
    if !sr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in state section"));
    }
    if !r.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes after the last section"));
    }
    Ok((query, state))
}

/// Write a program-state file (atomic temp-file + rename, like
/// [`crate::save_snapshot`]); errors carry the path.
pub fn save_program_state<Q, St, P>(
    path: P,
    query: &Q,
    state: &PortableRunState<St>,
) -> Result<(), SnapshotError>
where
    Q: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    crate::write_file_atomic(path, &program_state_to_bytes(query, state))
}

/// Read a program-state file back; every error is tagged with the path.
pub fn load_program_state<Q, St, P>(path: P) -> Result<(Q, PortableRunState<St>), SnapshotError>
where
    Q: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    program_state_from_bytes(&bytes).map_err(|e| e.at(path))
}
