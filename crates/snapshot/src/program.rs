//! Per-program retained-state files: the durable form of one registered
//! program in a multi-program session (`aap-session`).
//!
//! A session snapshot splits what `save_engine` stored in one file into
//! a *shared* topology snapshot (the FRAG-only snapshot file, saved
//! once) plus one of these files per program — each carrying the query
//! the retained state answers and the state itself in the portable,
//! global-id-keyed [`PortableRunState`] form. Splitting keeps the
//! fragment set single-sourced: every program re-anchors against the
//! same loaded partition with `PortableRunState::attach`.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8 bytes  b"AAPPROG\0"
//! version  u16      1
//! flags    u16      reserved, 0
//! QURY section      the query the state was computed for (its Codec)
//! STAT section      the PortableRunState (same payload as a snapshot
//!                   file's STAT section)
//! ```
//!
//! Sections are framed by the wire layer (`tag(4) len(u64) payload
//! crc32(u32)`), so truncation and corruption surface as tagged errors
//! exactly like the snapshot/delta-log formats.

use crate::codec::Codec;
use crate::fragments::{
    decode_frag_state, decode_portable_state, encode_frag_state, encode_portable_state,
};
use crate::wire::{read_section, write_section, Reader, Writer};
use crate::{ErrorKind, SnapshotError};
use aap_core::{PortableFragState, PortableRunState};
use std::path::Path;

/// File magic of per-program state files.
pub const PROGRAM_STATE_MAGIC: [u8; 8] = *b"AAPPROG\0";
/// Current (and only) program-state format version.
pub const PROGRAM_STATE_VERSION: u16 = 1;
const QUERY_TAG: [u8; 4] = *b"QURY";
const STAT_TAG: [u8; 4] = *b"STAT";
/// Section tag of a *differential* state payload: a subset of the
/// per-fragment state shards, each tagged with its fragment id,
/// resolved against older epochs by [`resolve_state_chain`].
pub const DIFF_STAT_TAG: [u8; 4] = *b"DSTA";

/// Serialize one program's durable form — its query plus portable
/// retained state — to bytes.
pub fn program_state_to_bytes<Q: Codec, St: Codec>(
    query: &Q,
    state: &PortableRunState<St>,
) -> Vec<u8> {
    let mut out = Writer::new();
    out.put_bytes(&PROGRAM_STATE_MAGIC);
    out.put_u16(PROGRAM_STATE_VERSION);
    out.put_u16(0); // flags, reserved
    let mut qp = Writer::new();
    query.encode(&mut qp);
    write_section(&mut out, QUERY_TAG, qp.bytes());
    let mut sp = Writer::new();
    encode_portable_state(state, &mut sp);
    write_section(&mut out, STAT_TAG, sp.bytes());
    out.into_bytes()
}

/// Parse a program-state file back into its query and portable state.
pub fn program_state_from_bytes<Q: Codec, St: Codec>(
    bytes: &[u8],
) -> Result<(Q, PortableRunState<St>), SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r.get_bytes(8, "file header")?;
    if magic != PROGRAM_STATE_MAGIC {
        return Err(SnapshotError::new(ErrorKind::BadMagic));
    }
    let version = r.get_u16()?;
    if version != PROGRAM_STATE_VERSION {
        return Err(SnapshotError::new(ErrorKind::BadVersion {
            found: version,
            supported: PROGRAM_STATE_VERSION,
        }));
    }
    let _flags = r.get_u16()?;

    let qp = read_section(&mut r, QUERY_TAG, "query section")?;
    let mut qr = Reader::new(qp);
    let query = Q::decode(&mut qr)?;
    if !qr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in query section"));
    }
    let sp = read_section(&mut r, STAT_TAG, "state section")?;
    let mut sr = Reader::new(sp);
    let state = decode_portable_state::<St>(&mut sr)?;
    if !sr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in state section"));
    }
    if !r.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes after the last section"));
    }
    Ok((query, state))
}

/// Write a program-state file (atomic temp-file + rename, like
/// [`crate::save_snapshot`]); errors carry the path.
pub fn save_program_state<Q, St, P>(
    path: P,
    query: &Q,
    state: &PortableRunState<St>,
) -> Result<(), SnapshotError>
where
    Q: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    crate::write_file_atomic(path, &program_state_to_bytes(query, state))
}

/// Read a program-state file back; every error is tagged with the path.
pub fn load_program_state<Q, St, P>(path: P) -> Result<(Q, PortableRunState<St>), SnapshotError>
where
    Q: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    program_state_from_bytes(&bytes).map_err(|e| e.at(path))
}

/// One program-state chain file parsed into resolvable parts: the query
/// plus (fragment id, shard) pairs — all ids for a full (`STAT`) file,
/// a subset for a differential (`DSTA`) one.
#[derive(Debug)]
pub struct ProgramStateParts<Q, St> {
    /// The query the retained state answers.
    pub query: Q,
    /// Total fragment count of the partition the state belongs to.
    pub total: u16,
    /// The shards this file carries, tagged with their fragment ids.
    pub entries: Vec<(u16, PortableFragState<St>)>,
    /// True if the file held a `DSTA` (subset) section.
    pub differential: bool,
}

/// Serialize a *differential* program-state file: only the shards whose
/// bytes changed since the parent epoch, each tagged with its fragment
/// id. `total` is the partition's fragment count.
pub fn diff_program_state_to_bytes<Q: Codec, St: Codec>(
    query: &Q,
    total: u16,
    entries: &[(u16, &PortableFragState<St>)],
) -> Vec<u8> {
    let mut out = Writer::new();
    out.put_bytes(&PROGRAM_STATE_MAGIC);
    out.put_u16(PROGRAM_STATE_VERSION);
    out.put_u16(0); // flags, reserved
    let mut qp = Writer::new();
    query.encode(&mut qp);
    write_section(&mut out, QUERY_TAG, qp.bytes());
    let mut sp = Writer::new();
    sp.put_u16(total);
    sp.put_u16(entries.len() as u16);
    for (id, entry) in entries {
        sp.put_u16(*id);
        encode_frag_state(entry, &mut sp);
    }
    write_section(&mut out, DIFF_STAT_TAG, sp.bytes());
    out.into_bytes()
}

/// Write a differential program-state file (atomic temp-file + rename).
pub fn save_diff_program_state<Q, St, P>(
    path: P,
    query: &Q,
    total: u16,
    entries: &[(u16, &PortableFragState<St>)],
) -> Result<(), SnapshotError>
where
    Q: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    crate::write_file_atomic(path.as_ref(), &diff_program_state_to_bytes(query, total, entries))
}

/// CRC32 fingerprint of one shard's encoded bytes — what differential
/// state checkpoints compare across epochs to decide which shards a
/// [`diff_program_state_to_bytes`] file must carry.
pub fn frag_state_crc<St: Codec>(entry: &PortableFragState<St>) -> u32 {
    let mut w = Writer::new();
    encode_frag_state(entry, &mut w);
    crate::wire::crc32(w.bytes())
}

/// Parse one program-state chain file — full (`STAT`) or differential
/// (`DSTA`) — into id-tagged shards for [`resolve_state_chain`].
pub fn program_state_parts_from_bytes<Q: Codec, St: Codec>(
    bytes: &[u8],
) -> Result<ProgramStateParts<Q, St>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r.get_bytes(8, "file header")?;
    if magic != PROGRAM_STATE_MAGIC {
        return Err(SnapshotError::new(ErrorKind::BadMagic));
    }
    let version = r.get_u16()?;
    if version != PROGRAM_STATE_VERSION {
        return Err(SnapshotError::new(ErrorKind::BadVersion {
            found: version,
            supported: PROGRAM_STATE_VERSION,
        }));
    }
    let _flags = r.get_u16()?;

    let qp = read_section(&mut r, QUERY_TAG, "query section")?;
    let mut qr = Reader::new(qp);
    let query = Q::decode(&mut qr)?;
    if !qr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in query section"));
    }

    // Peek the next section tag to pick the payload shape.
    let differential = {
        let consumed = bytes.len() - r.remaining();
        bytes.get(consumed..consumed + 4) == Some(&DIFF_STAT_TAG)
    };
    let (total, entries) = if differential {
        let sp = read_section(&mut r, DIFF_STAT_TAG, "differential state section")?;
        let mut sr = Reader::new(sp);
        let total = sr.get_u16()?;
        let count = sr.get_u16()? as usize;
        let mut entries = Vec::with_capacity(count);
        let mut seen = vec![false; total as usize];
        for _ in 0..count {
            let id = sr.get_u16()?;
            if id >= total || std::mem::replace(&mut seen[id as usize], true) {
                return Err(SnapshotError::corrupt("bad fragment id in differential state"));
            }
            entries.push((id, decode_frag_state::<St>(&mut sr)?));
        }
        if !sr.is_exhausted() {
            return Err(SnapshotError::corrupt("trailing bytes in state section"));
        }
        (total, entries)
    } else {
        let sp = read_section(&mut r, STAT_TAG, "state section")?;
        let mut sr = Reader::new(sp);
        let state = decode_portable_state::<St>(&mut sr)?;
        if !sr.is_exhausted() {
            return Err(SnapshotError::corrupt("trailing bytes in state section"));
        }
        let entries: Vec<(u16, PortableFragState<St>)> =
            state.into_entries().into_iter().enumerate().map(|(i, e)| (i as u16, e)).collect();
        (entries.len() as u16, entries)
    };
    if !r.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes after the last section"));
    }
    Ok(ProgramStateParts { query, total, entries, differential })
}

/// Read one program-state chain file; errors carry the path.
pub fn load_program_state_parts<Q, St, P>(
    path: P,
) -> Result<ProgramStateParts<Q, St>, SnapshotError>
where
    Q: Codec,
    St: Codec,
    P: AsRef<Path>,
{
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    program_state_parts_from_bytes(&bytes).map_err(|e| e.at(path))
}

/// Resolve a program's state across an epoch chain — parts ordered
/// **newest first**, ending at a full baseline — into the current
/// [`PortableRunState`]: the newest shard per fragment id wins and
/// coverage must be complete.
pub fn resolve_state_chain<Q, St>(
    parts_newest_first: Vec<ProgramStateParts<Q, St>>,
) -> Result<PortableRunState<St>, SnapshotError> {
    let Some(first) = parts_newest_first.first() else {
        return Err(SnapshotError::corrupt("empty program-state chain"));
    };
    let total = first.total as usize;
    let mut resolved: Vec<Option<PortableFragState<St>>> = (0..total).map(|_| None).collect();
    let mut missing = total;
    for parts in parts_newest_first {
        if parts.total as usize != total {
            return Err(SnapshotError::corrupt("chain files disagree on partition size"));
        }
        for (id, entry) in parts.entries {
            let slot = &mut resolved[id as usize];
            if slot.is_none() {
                *slot = Some(entry);
                missing -= 1;
            }
        }
        if missing == 0 {
            break;
        }
    }
    if missing > 0 {
        return Err(SnapshotError::corrupt(format!(
            "program-state chain leaves {missing} of {total} shards unresolved"
        )));
    }
    Ok(PortableRunState::from_entries(
        resolved.into_iter().map(|e| e.expect("coverage checked")).collect(),
    ))
}
