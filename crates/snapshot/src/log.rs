//! The append-only delta log: the replayable half of a durable
//! dynamic-graph pipeline. A serving process snapshots its fragment set
//! and retained state at time `t0`, then appends every applied
//! [`GraphDelta`] here; a restarted process loads the snapshot and
//! replays the log (`aap_delta::replay`) to land in exactly the state a
//! continuous process would hold.
//!
//! # Layout (version 1)
//!
//! ```text
//! magic    8 bytes  b"AAPDLOG\0"
//! version  u16      1
//! flags    u16      reserved, 0
//! record*           len(u32) payload crc32(u32)
//! ```
//!
//! Each record payload is one encoded delta (the five sorted op lists of
//! [`GraphDelta`], each length-prefixed). Records are synced to disk
//! (`sync_data`) on every [`DeltaLog::write_delta`], so even an OS
//! crash or power loss loses at most the in-flight record; a torn tail
//! surfaces as a tagged `Truncated`/`Checksum` error on replay rather
//! than silently dropping suffix deltas.

use crate::codec::{encode_slice, Codec};
use crate::wire::{crc32, Reader, Writer};
use crate::{ErrorKind, SnapshotError};
use aap_delta::GraphDelta;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// File magic of delta-log files.
pub const LOG_MAGIC: [u8; 8] = *b"AAPDLOG\0";
/// Current (and only) log format version.
pub const LOG_VERSION: u16 = 1;

fn encode_delta<V: Codec, E: Codec>(delta: &GraphDelta<V, E>, w: &mut Writer) {
    w.put_len(delta.vertices_added().len());
    for (id, d) in delta.vertices_added() {
        w.put_u32(*id);
        d.encode(w);
    }
    encode_slice(delta.vertices_removed(), w);
    w.put_len(delta.edges_added().len());
    for (u, v, d) in delta.edges_added() {
        w.put_u32(*u);
        w.put_u32(*v);
        d.encode(w);
    }
    encode_slice(delta.edges_removed(), w);
    w.put_len(delta.weight_updates().len());
    for (u, v, d) in delta.weight_updates() {
        w.put_u32(*u);
        w.put_u32(*v);
        d.encode(w);
    }
}

fn decode_delta<V: Codec, E: Codec>(r: &mut Reader<'_>) -> Result<GraphDelta<V, E>, SnapshotError> {
    let n = r.get_len(4)?;
    let mut vertices_added = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.get_u32()?;
        vertices_added.push((id, V::decode(r)?));
    }
    let vertices_removed = Vec::<u32>::decode(r)?;
    let n = r.get_len(8)?;
    let mut edges_added = Vec::with_capacity(n);
    for _ in 0..n {
        let (u, v) = (r.get_u32()?, r.get_u32()?);
        edges_added.push((u, v, E::decode(r)?));
    }
    let edges_removed = Vec::<(u32, u32)>::decode(r)?;
    let n = r.get_len(8)?;
    let mut weight_updates = Vec::with_capacity(n);
    for _ in 0..n {
        let (u, v) = (r.get_u32()?, r.get_u32()?);
        weight_updates.push((u, v, E::decode(r)?));
    }
    // The sortedness contract is data here, not a programmer error:
    // the fallible constructor turns violations into Corrupt.
    GraphDelta::try_from_parts(
        vertices_added,
        vertices_removed,
        edges_added,
        edges_removed,
        weight_updates,
    )
    .map_err(|e| SnapshotError::corrupt(format!("delta record: {e}")))
}

/// An open, append-only delta log. Create one next to the snapshot at
/// save time; [`DeltaLog::write_delta`] every batch the serving process
/// applies; replay the file on restart with [`DeltaLog::replay`].
#[derive(Debug)]
pub struct DeltaLog {
    file: File,
    path: PathBuf,
}

impl DeltaLog {
    /// Create (truncate) a log file and write its header.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(|e| SnapshotError::io(&path, e))?;
        let mut header = Writer::new();
        header.put_bytes(&LOG_MAGIC);
        header.put_u16(LOG_VERSION);
        header.put_u16(0);
        file.write_all(header.bytes()).map_err(|e| SnapshotError::io(&path, e))?;
        file.sync_data().map_err(|e| SnapshotError::io(&path, e))?;
        Ok(DeltaLog { file, path })
    }

    /// Open an existing log for appending, validating its header first
    /// (so a typo'd path or foreign file fails here, not at replay).
    pub fn open_append<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let path = path.as_ref().to_path_buf();
        let mut probe = File::open(&path).map_err(|e| SnapshotError::io(&path, e))?;
        let mut header = [0u8; 12];
        probe.read_exact(&mut header).map_err(|_| {
            SnapshotError::new(ErrorKind::Truncated { what: "log header" }).at(&path)
        })?;
        check_log_header(&header).map_err(|e| e.at(&path))?;
        let file =
            OpenOptions::new().append(true).open(&path).map_err(|e| SnapshotError::io(&path, e))?;
        Ok(DeltaLog { file, path })
    }

    /// Append one delta as a checksummed record and flush it.
    ///
    /// Log the same `GraphDelta` you hand to the incremental drivers:
    /// a built delta is already deduplicated, and `apply_to_fragments`
    /// applies it verbatim, so the logged batch *is* the batch that hit
    /// the graph. What the drivers additionally report back
    /// (`aap_delta::IncrementalOutput::applied` and `warm`) is how the
    /// batch resolved — weight-change directions, remaps, seeds, and
    /// which evaluation path ran — useful beside the log, not instead
    /// of it.
    pub fn write_delta<V: Codec, E: Codec>(
        &mut self,
        delta: &GraphDelta<V, E>,
    ) -> Result<(), SnapshotError> {
        let mut payload = Writer::new();
        encode_delta(delta, &mut payload);
        let payload = payload.into_bytes();
        let len = u32::try_from(payload.len()).map_err(|_| {
            SnapshotError::corrupt("delta record exceeds the 4 GiB record limit").at(&self.path)
        })?;
        let mut record = Writer::new();
        record.put_u32(len);
        record.put_bytes(&payload);
        record.put_u32(crc32(&payload));
        self.file
            .write_all(record.bytes())
            // sync_data, not flush: File's flush is a no-op, and the
            // module doc promises a crash loses at most the in-flight
            // record — that requires the page cache to be drained.
            .and_then(|()| self.file.sync_data())
            .map_err(|e| SnapshotError::io(&self.path, e))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every delta recorded in the log at `path`, in append order.
    /// A truncated or corrupted record is a tagged error — replaying a
    /// prefix of history silently would defeat the durability story.
    pub fn replay<V: Codec, E: Codec, P: AsRef<Path>>(
        path: P,
    ) -> Result<Vec<GraphDelta<V, E>>, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
        replay_bytes(&bytes).map_err(|e| e.at(path))
    }

    /// The *restart* read: parse the longest valid record prefix,
    /// **truncate the file to it** when a torn tail follows, and return
    /// the prefix plus whether a tail was dropped.
    ///
    /// A crash mid-append (the exact scenario a durable log exists for)
    /// leaves a partial or checksum-failing final record; each record
    /// is synced before the append is acknowledged, so that tail was
    /// never acknowledged and dropping it is correct — whereas the
    /// strict [`DeltaLog::replay`] (the audit read) refuses the file
    /// outright. Header problems (bad magic/version, unreadable file)
    /// still fail: those mean a foreign or unusable file, not a torn
    /// write. Truncating also makes a follow-up
    /// [`DeltaLog::open_append`] safe — appending after garbage would
    /// corrupt the next record boundary.
    pub fn recover<V: Codec, E: Codec, P: AsRef<Path>>(
        path: P,
    ) -> Result<(Vec<GraphDelta<V, E>>, bool), SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
        let rec = recover_bytes::<V, E>(&bytes).map_err(|e| e.at(path))?;
        if rec.torn_tail {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| SnapshotError::io(path, e))?;
            file.set_len(rec.valid_len).map_err(|e| SnapshotError::io(path, e))?;
            file.sync_all().map_err(|e| SnapshotError::io(path, e))?;
        }
        Ok((rec.deltas, rec.torn_tail))
    }
}

fn check_log_header(header: &[u8]) -> Result<(), SnapshotError> {
    if header.len() < 12 {
        return Err(SnapshotError::new(ErrorKind::Truncated { what: "log header" }));
    }
    if header[..8] != LOG_MAGIC {
        return Err(SnapshotError::new(ErrorKind::BadMagic));
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != LOG_VERSION {
        return Err(SnapshotError::new(ErrorKind::BadVersion {
            found: version,
            supported: LOG_VERSION,
        }));
    }
    Ok(())
}

/// Does any offset in `bytes[from..]` hold a complete, checksum-valid,
/// fully-decodable record frame? Used by `recover_bytes` to tell a
/// genuine torn tail (nothing parseable follows the failure) from
/// mid-file corruption that merely *looks* tail-shaped (e.g. a bit flip
/// in a length field claiming past EOF while acknowledged records sit
/// after it). O(tail × record) worst case — restore-time, failure-path
/// only.
fn resync_finds_record<V: Codec, E: Codec>(bytes: &[u8], from: usize) -> bool {
    for o in from..bytes.len().saturating_sub(8) {
        let mut r = Reader::new(&bytes[o..]);
        if read_record::<V, E>(&mut r).is_ok() {
            return true;
        }
    }
    false
}

fn read_record<V: Codec, E: Codec>(r: &mut Reader<'_>) -> Result<GraphDelta<V, E>, SnapshotError> {
    let len = r.get_u32()? as usize;
    let payload = r.get_bytes(len, "log record")?;
    let want = r.get_u32()?;
    if crc32(payload) != want {
        return Err(SnapshotError::new(ErrorKind::Checksum { what: "log record" }));
    }
    let mut pr = Reader::new(payload);
    let delta = decode_delta::<V, E>(&mut pr)?;
    if !pr.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes in log record"));
    }
    Ok(delta)
}

/// Parse a delta log from bytes (the file form minus I/O).
pub fn replay_bytes<V: Codec, E: Codec>(
    bytes: &[u8],
) -> Result<Vec<GraphDelta<V, E>>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let header = r.get_bytes(12, "log header")?;
    check_log_header(header)?;
    let mut out = Vec::new();
    while !r.is_exhausted() {
        out.push(read_record::<V, E>(&mut r)?);
    }
    Ok(out)
}

/// A delta log read tolerantly for restart (`recover_bytes`): the
/// longest valid record prefix, where it ends, and whether bytes after
/// it were dropped.
pub struct RecoveredLog<V, E> {
    /// The valid prefix's deltas, in append order.
    pub deltas: Vec<GraphDelta<V, E>>,
    /// Byte length of the valid prefix (header + whole records) — what
    /// the file should be truncated to before appending again.
    pub valid_len: u64,
    /// True when the file held bytes past the valid prefix (a torn
    /// tail from a crash mid-append).
    pub torn_tail: bool,
}

/// The bytes form of [`DeltaLog::recover`]: parse the longest valid
/// prefix, forgiving only a genuine torn **tail**.
///
/// A crash mid-append persists some prefix (or, with out-of-order page
/// writes, a hole-y image) of the *final* record — so the only
/// recoverable failure is a frame that claims to reach or pass EOF and
/// fails as `Truncated` or `Checksum`. Everything else — a failing
/// record with further bytes after its frame, or a record whose
/// checksum *passes* but whose payload doesn't decode — is mid-file
/// corruption or a writer bug, and fails loudly exactly like
/// [`replay_bytes`]: acknowledged history must never be silently cut
/// short. Header errors also fail — they mean a foreign file.
pub fn recover_bytes<V: Codec, E: Codec>(
    bytes: &[u8],
) -> Result<RecoveredLog<V, E>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let header = r.get_bytes(12, "log header")?;
    check_log_header(header)?;
    let mut deltas = Vec::new();
    let mut valid_len = bytes.len() - r.remaining();
    while !r.is_exhausted() {
        let offset = bytes.len() - r.remaining();
        // Does this frame claim to reach (or pass) EOF? Only then can a
        // parse failure be the partial final append a crash leaves.
        let reaches_eof = r.remaining() < 8 || {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            offset.saturating_add(8).saturating_add(len) >= bytes.len()
        };
        match read_record::<V, E>(&mut r) {
            Ok(delta) => {
                deltas.push(delta);
                valid_len = bytes.len() - r.remaining();
            }
            Err(e) => {
                // A tail-shaped failure must still not hide acknowledged
                // records: a corrupted *length field* mid-file can claim
                // to reach EOF too. Resync: if any later offset parses
                // as a complete valid record, acknowledged data follows
                // the failure — corruption, fail loudly. (The scan can
                // only err toward refusing: a record image embedded in a
                // genuinely torn tail makes recover fail, never lose.)
                let torn = reaches_eof
                    && matches!(e.kind(), ErrorKind::Truncated { .. } | ErrorKind::Checksum { .. })
                    && !resync_finds_record::<V, E>(bytes, valid_len + 1);
                if !torn {
                    return Err(e);
                }
                break;
            }
        }
    }
    Ok(RecoveredLog { deltas, valid_len: valid_len as u64, torn_tail: valid_len < bytes.len() })
}
