//! Executable counterparts of the §4 convergence conditions.
//!
//! The paper proves (Thms 1–2) that a PIE program terminates and has the
//! Church–Rosser property under:
//!
//! * **T1** — update parameters range over a finite domain;
//! * **T2** — `IncEval` is *contracting* w.r.t. a partial order on partial
//!   results;
//! * **T3** — `IncEval` is *monotonic*.
//!
//! These are properties of programs, not of the engine, so they cannot be
//! checked fully automatically; what we can do — and what this module does —
//! is (a) let programs declare their partial order and have runs *assert*
//! per-round contraction, and (b) empirically verify Church–Rosser by
//! running the same query under many execution modes/schedules and
//! comparing fixpoints.

use crate::engine::{Engine, EngineOpts};
use crate::pie::PieProgram;
use crate::policy::{AapConfig, Mode};

/// A partial order on a program's per-vertex values, used by contraction
/// checks (T2). `Some(Less)` means "strictly better / later in the
/// computation" under the program's order `⪯`.
pub trait ValueOrder {
    /// The value type being ordered.
    type Val;
    /// Compare old vs new value. Contraction requires every accepted update
    /// to move values monotonically in one direction (`new ⪯ old`).
    fn leq(&self, new: &Self::Val, old: &Self::Val) -> bool;
}

/// Outcome of a Church–Rosser experiment.
#[derive(Debug)]
pub struct ChurchRosserReport {
    /// Number of runs executed.
    pub runs: usize,
    /// Whether every run agreed with the first.
    pub all_equal: bool,
    /// Modes that disagreed, if any.
    pub disagreements: Vec<String>,
}

/// Run `prog` under a spread of modes (BSP, AP, SSP with several bounds,
/// AAP with several floors, Hsync) and check that every run converges to
/// the same output — the empirical Church–Rosser property of Theorem 2.
///
/// `fragments` is a factory because the engine consumes a fragment vector
/// per engine; `eq` compares outputs (allowing tolerance for float work).
pub fn church_rosser_check<V, E, P, FF, EQ>(
    prog: &P,
    q: &P::Query,
    fragments: FF,
    threads: usize,
    eq: EQ,
) -> ChurchRosserReport
where
    V: Send + Sync,
    E: Send + Sync,
    P: PieProgram<V, E>,
    FF: Fn() -> Vec<aap_graph::Fragment<V, E>>,
    EQ: Fn(&P::Out, &P::Out) -> bool,
{
    let modes: Vec<Mode> = vec![
        Mode::Bsp,
        Mode::Ap,
        Mode::Ssp { c: 1 },
        Mode::Ssp { c: 4 },
        Mode::aap(),
        Mode::aap_with_floor(2.0),
        Mode::Aap(AapConfig { staleness_bound: Some(2), ..AapConfig::default() }),
        Mode::Hsync(crate::policy::HsyncConfig::default()),
    ];
    let mut reference: Option<P::Out> = None;
    let mut disagreements = Vec::new();
    let runs = modes.len();
    for mode in modes {
        let name = format!("{mode:?}");
        let engine =
            Engine::new(fragments(), EngineOpts { threads, mode, max_rounds: Some(1_000_000) });
        let out = engine.run(prog, q).out;
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                if !eq(r, &out) {
                    disagreements.push(name);
                }
            }
        }
    }
    ChurchRosserReport { runs, all_equal: disagreements.is_empty(), disagreements }
}

/// Assert that a sequence of accepted values for one parameter is a chain
/// under the program's order — the observable consequence of T2. Returns
/// the index of the first violation, if any.
pub fn check_contraction<O: ValueOrder>(order: &O, history: &[O::Val]) -> Option<usize> {
    history.windows(2).position(|w| !order.leq(&w[1], &w[0])).map(|i| i + 1)
}

/// T1 helper: assert that a value domain is finite by bounding the number
/// of distinct values a parameter may take. Programs over vertex ids or
/// bounded integers satisfy this trivially; float programs (PageRank, CF)
/// satisfy it up to their convergence threshold, which is the paper's own
/// argument for PageRank termination (§5.3).
pub fn finite_domain_bound(num_vertices: usize) -> u64 {
    num_vertices as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MinOrder;
    impl ValueOrder for MinOrder {
        type Val = u64;
        fn leq(&self, new: &u64, old: &u64) -> bool {
            new <= old
        }
    }

    #[test]
    fn contraction_detects_violation() {
        assert_eq!(check_contraction(&MinOrder, &[5, 4, 4, 2]), None);
        assert_eq!(check_contraction(&MinOrder, &[5, 6]), Some(1));
        assert_eq!(check_contraction(&MinOrder, &[5, 3, 4]), Some(2));
        assert_eq!(check_contraction(&MinOrder, &[]), None);
    }
}
