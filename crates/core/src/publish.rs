//! Epoch publication: the assembled-output handle behind concurrent
//! serving (§6.1's "one logical writer, many logical readers" reading of
//! AAP, applied to the serving tier instead of the workers).
//!
//! A single writer repeatedly *publishes* immutable values (`Arc<T>`);
//! any number of readers observe, at every instant, exactly one complete
//! published value — never a torn mix of two. The structure is a
//! hand-rolled arc-swap in safe Rust:
//!
//! * the **epoch** is a monotonically increasing [`AtomicU64`], bumped
//!   with `Release` ordering *after* the slot holds the new value;
//! * the **slot** is a `Mutex<Option<Arc<T>>>` touched by readers only
//!   when the epoch tells them their cached `Arc` is stale.
//!
//! The steady-state read is therefore one `Acquire` load of the epoch
//! plus a borrow of a reader-local `Arc` — no lock, no contended
//! refcount, no allocation. The mutex is on the *cold* path (one clone
//! per reader per publication), which keeps the fast path wait-free in
//! practice without any `unsafe` (every crate in this workspace forbids
//! it; a classic `AtomicPtr` arc-swap cannot be written safely).
//!
//! Ordering argument: a reader that observes epoch `e` via `Acquire`
//! synchronizes with the writer's `Release` bump to `e`, so the slot —
//! written *before* the bump — holds the value of epoch `>= e`. A reader
//! can thus momentarily cache a value *newer* than the epoch it read
//! (writer raced between the load and the lock); it never caches an
//! older one, and every cached value is a complete published `Arc`.
//!
//! ```
//! use aap_core::publish::EpochCell;
//! use std::sync::Arc;
//!
//! let cell: Arc<EpochCell<Vec<u32>>> = Arc::new(EpochCell::new());
//! cell.publish(Arc::new(vec![1, 2, 3]));
//!
//! let mut reader = cell.reader();
//! assert_eq!(reader.with(|v| v[0]), Some(1));
//!
//! cell.publish(Arc::new(vec![9]));
//! assert_eq!(reader.with(|v| v[0]), Some(9)); // epoch changed, re-fetched
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single-writer, many-reader publication cell (see module docs).
///
/// Writers call [`EpochCell::publish`]; readers either poll
/// [`EpochCell::load`] directly or, for the lock-free steady state, hold
/// an [`EpochReader`] from [`EpochCell::reader`].
pub struct EpochCell<T: ?Sized> {
    epoch: AtomicU64,
    slot: Mutex<Option<Arc<T>>>,
}

impl<T: ?Sized> Default for EpochCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ?Sized> EpochCell<T> {
    /// An empty cell: epoch 0, nothing published.
    pub fn new() -> Self {
        EpochCell { epoch: AtomicU64::new(0), slot: Mutex::new(None) }
    }

    /// Publish `value` as the new current epoch. Callers are logically a
    /// single writer; concurrent publishers are still memory-safe (the
    /// slot is a mutex) but readers then observe *some* interleaving.
    pub fn publish(&self, value: Arc<T>) {
        *self.slot.lock() = Some(value);
        // Release: pairs with readers' Acquire epoch loads, ordering the
        // slot store above before the epoch becomes visible.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current epoch: 0 until the first publish, then monotone.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshot the current value (cold path: takes the slot lock).
    /// Returns the epoch *observed before* the clone, so the value is of
    /// that epoch or newer — never older.
    pub fn load(&self) -> (u64, Option<Arc<T>>) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let value = self.slot.lock().clone();
        (epoch, value)
    }

    /// A reader handle caching the current value until the epoch moves.
    pub fn reader(self: &Arc<Self>) -> EpochReader<T> {
        EpochReader { cell: Arc::clone(self), seen: 0, cached: None }
    }
}

/// A reader-local cache over an [`EpochCell`]: re-clones through the
/// cell's mutex only when the epoch has moved, so steady-state reads are
/// one atomic load plus a local borrow. Cheap to clone (the clone starts
/// with a cold cache); `Send` but deliberately not shared — each thread
/// holds its own.
pub struct EpochReader<T: ?Sized> {
    cell: Arc<EpochCell<T>>,
    seen: u64,
    cached: Option<Arc<T>>,
}

impl<T: ?Sized> Clone for EpochReader<T> {
    fn clone(&self) -> Self {
        EpochReader { cell: Arc::clone(&self.cell), seen: 0, cached: None }
    }
}

impl<T: ?Sized> EpochReader<T> {
    /// Refresh the local cache if the cell has moved past the epoch this
    /// reader last saw. Returns the epoch the cache now reflects (or
    /// newer — see the module-level ordering argument).
    fn refresh(&mut self) -> u64 {
        let now = self.cell.epoch.load(Ordering::Acquire);
        if now != self.seen || (self.cached.is_none() && now != 0) {
            self.cached = self.cell.slot.lock().clone();
            self.seen = now;
        }
        self.seen
    }

    /// Borrow the current value without bumping any shared refcount —
    /// the lock-free steady-state read. `None` until the first publish.
    pub fn with<R>(&mut self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.refresh();
        self.cached.as_deref().map(f)
    }

    /// The current value as an owned `Arc` (one refcount bump), with the
    /// epoch it was read at. Use when the value must outlive the call.
    pub fn load(&mut self) -> (u64, Option<Arc<T>>) {
        let e = self.refresh();
        (e, self.cached.clone())
    }

    /// The epoch of the currently cached value (0 before any read).
    pub fn seen_epoch(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_cell_serves_none() {
        let cell: Arc<EpochCell<u32>> = Arc::new(EpochCell::new());
        assert_eq!(cell.epoch(), 0);
        let mut r = cell.reader();
        assert_eq!(r.with(|v| *v), None);
        assert_eq!(r.load(), (0, None));
    }

    #[test]
    fn readers_track_publications() {
        let cell: Arc<EpochCell<Vec<u32>>> = Arc::new(EpochCell::new());
        let mut r = cell.reader();
        cell.publish(Arc::new(vec![1]));
        assert_eq!(r.with(|v| v.clone()), Some(vec![1]));
        // Steady state: same epoch, same value, no refetch needed.
        assert_eq!(r.seen_epoch(), 1);
        assert_eq!(r.with(|v| v[0]), Some(1));
        cell.publish(Arc::new(vec![2, 3]));
        assert_eq!(r.with(|v| v.len()), Some(2));
        assert_eq!(r.seen_epoch(), 2);
        // A fresh clone starts cold but converges to the same value.
        let mut r2 = r.clone();
        assert_eq!(r2.with(|v| v[0]), Some(2));
    }

    /// Concurrent hammer: values are (tag, payload) pairs with an
    /// invariant linking the halves; readers must never see a torn pair,
    /// and epochs must be non-decreasing per reader.
    #[test]
    fn concurrent_reads_see_complete_values() {
        let cell: Arc<EpochCell<(u64, Vec<u64>)>> = Arc::new(EpochCell::new());
        cell.publish(Arc::new((0, vec![0; 16])));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let mut r = cell.reader();
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let (e, v) = r.load();
                        let (tag, payload) = &*v.expect("published");
                        assert!(payload.iter().all(|&p| p == *tag), "torn value");
                        assert!(e >= last, "epoch went backwards");
                        last = e;
                    }
                });
            }
            for tag in 1..500u64 {
                cell.publish(Arc::new((tag, vec![tag; 16])));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 500);
    }
}
