//! The PIE programming model of GRAPE (§2), adopted unchanged by AAP.
//!
//! A graph computation is expressed as three *sequential* functions plus two
//! declarations:
//!
//! * [`PieProgram::peval`] — batch partial evaluation over one fragment;
//! * [`PieProgram::inceval`] — incremental evaluation given message-induced
//!   changes `Mi` to the update parameters;
//! * [`PieProgram::assemble`] — collect partial results into the answer;
//! * update parameters `Ci.x̄` — emitted through [`UpdateCtx::send`];
//! * the aggregate function `faggr` — [`PieProgram::combine`], used to
//!   resolve conflicting values for the same parameter, both inside message
//!   buffers and against local state.
//!
//! The engine (threaded or simulated) is generic over this trait; writing a
//! new algorithm means writing ordinary sequential code against a single
//! [`Fragment`], exactly the paper's pitch.

use crate::engine::PlanCache;
use crate::scratch::Scratch;
use aap_graph::mutate::{DeltaSummary, StateRemap};
use aap_graph::{FragId, Fragment, LocalId, VertexId};

/// Round identifier. `0` is the `PEval` round; `IncEval` rounds start at 1.
pub type Round = u32;

/// Collects the changed update parameters produced by one `PEval`/`IncEval`
/// invocation, before the engine routes them (§3 message passing).
#[derive(Debug)]
pub struct UpdateCtx<Val> {
    updates: Vec<(LocalId, Val)>,
    local_work: bool,
    effective: u64,
    redundant: u64,
    work: u64,
}

impl<Val> Default for UpdateCtx<Val> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Val> UpdateCtx<Val> {
    /// Fresh, empty context (engines create one per round).
    pub fn new() -> Self {
        Self::with_buffer(Vec::new())
    }

    /// Context reusing a (cleared) update vector — engines round-trip the
    /// vector through [`Scratch`] so steady-state rounds don't allocate it.
    pub fn with_buffer(mut buffer: Vec<(LocalId, Val)>) -> Self {
        buffer.clear();
        UpdateCtx { updates: buffer, local_work: false, effective: 0, redundant: 0, work: 0 }
    }

    /// Report that an incoming update improved a parameter (statistics for
    /// the stale-computation analysis of §7). Optional but recommended.
    #[inline]
    pub fn note_effective(&mut self, n: u64) {
        self.effective += n;
    }

    /// Report that an incoming update was redundant/stale — it did not
    /// improve the parameter it targeted.
    #[inline]
    pub fn note_redundant(&mut self, n: u64) {
        self.redundant += n;
    }

    /// `(effective, redundant)` counters reported so far.
    pub fn effect_counts(&self) -> (u64, u64) {
        (self.effective, self.redundant)
    }

    /// Charge `n` abstract work units (edges relaxed, residual pushes,
    /// vertices scanned ...). Drives the simulator's work-proportional
    /// cost model; the threaded engine measures real time and ignores it.
    #[inline]
    pub fn charge_work(&mut self, n: u64) {
        self.work += n;
    }

    /// Total work units charged this round.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Record that the status variable of local vertex `l` changed to `v`.
    /// The engine ships it to every fragment holding a copy of `l`
    /// (mirror -> owner, owner -> mirrors; see [`Fragment::route`]).
    #[inline]
    pub fn send(&mut self, l: LocalId, v: Val) {
        self.updates.push((l, v));
    }

    /// Number of updates recorded so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if no updates were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Declare that this worker still has *local* work pending even if no
    /// messages arrive (used by the vertex-centric adapter, whose supersteps
    /// exchange purely local messages between rounds).
    #[inline]
    pub fn request_local_round(&mut self) {
        self.local_work = true;
    }

    /// Consume the context, yielding the recorded updates and the
    /// local-work flag (engine use).
    pub fn take(self) -> (Vec<(LocalId, Val)>, bool) {
        (self.updates, self.local_work)
    }
}

/// The aggregated message set `Mi` delivered to one `IncEval` round: per
/// local vertex, the `faggr`-combination of all buffered values for it,
/// sorted by local id. Passed to `IncEval` as `&mut` so programs can
/// `drain(..)` it for by-value access while the engine recycles the
/// vector's capacity across rounds.
pub type Messages<Val> = Vec<(LocalId, Val)>;

/// A PIE program for a query class `Q` (the paper's `ρ = (PEval, IncEval,
/// Assemble)`).
///
/// `Val` is the domain of the update parameters. [`PieProgram::combine`]
/// must be associative and commutative; for the convergence guarantees of
/// §4 (conditions T1–T3) it should also be *contracting* with respect to
/// the program's partial order (e.g. `min`, or monotone accumulation like
/// `+` over positive deltas).
pub trait PieProgram<V, E>: Sync {
    /// The query type (e.g. the source vertex for SSSP).
    type Query: Clone + Sync;
    /// Update-parameter value type.
    type Val: Clone + Send + 'static;
    /// Per-fragment state (status variables and partial results).
    type State: Send + 'static;
    /// The assembled answer `Q(G)`.
    type Out;

    /// `faggr`: fold `b` into `a`; return `true` iff `a` changed. The
    /// "changed" bit feeds the redundant/stale-computation statistics.
    fn combine(&self, a: &mut Self::Val, b: Self::Val) -> bool;

    /// Partial evaluation over one fragment; returns the fragment state and
    /// emits the initial values of the update parameters.
    fn peval(
        &self,
        q: &Self::Query,
        frag: &Fragment<V, E>,
        ctx: &mut UpdateCtx<Self::Val>,
    ) -> Self::State;

    /// Incremental evaluation: apply the aggregated changes `msgs` to the
    /// local partial result, emitting further changed parameters.
    ///
    /// `msgs` is mutable so programs can consume values with
    /// `msgs.drain(..)`; the engine reclaims the vector's capacity either
    /// way.
    fn inceval(
        &self,
        q: &Self::Query,
        frag: &Fragment<V, E>,
        state: &mut Self::State,
        msgs: &mut Messages<Self::Val>,
        ctx: &mut UpdateCtx<Self::Val>,
    );

    /// Assemble the final answer from all partial results. `states[i]`
    /// corresponds to `frags[i]`.
    fn assemble(
        &self,
        q: &Self::Query,
        frags: &[std::sync::Arc<Fragment<V, E>>],
        states: Vec<Self::State>,
    ) -> Self::Out;

    /// Serialized size of one value, for communication accounting. The
    /// default covers fixed-size values; programs with heap-allocated values
    /// (e.g. factor vectors in CF) should override it.
    fn val_bytes(&self, _v: &Self::Val) -> usize {
        std::mem::size_of::<Self::Val>()
    }
}

/// How a delta batch will be evaluated from retained state — the
/// three-way strategy drivers (`aap-delta`) report in their output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStrategy {
    /// Monotone-decreasing batch (insertions, weight decreases): the warm
    /// round re-relaxes from the delta-affected seeds only. Exact for
    /// contracting `min`-style programs by monotonicity alone.
    WarmDecrease,
    /// Non-monotone batch (removals, weight increases) handled exactly by
    /// an *affected-region invalidation*: [`WarmStart::plan_invalidation`]
    /// names every vertex whose retained value may no longer be an upper
    /// bound; all of its copies are reset to the program's "unknown"
    /// baseline before the warm round re-derives them.
    WarmIncrease,
    /// The program cannot evaluate this batch from retained state; the
    /// driver re-runs a cold retained evaluation on the mutated graph.
    Cold,
}

impl WarmStrategy {
    /// True for both warm variants (no cold recompute).
    pub fn is_warm(&self) -> bool {
        !matches!(self, WarmStrategy::Cold)
    }

    /// Stable lowercase tag (`warm-decrease` / `warm-increase` / `cold`).
    pub fn name(&self) -> &'static str {
        match self {
            WarmStrategy::WarmDecrease => "warm-decrease",
            WarmStrategy::WarmIncrease => "warm-increase",
            WarmStrategy::Cold => "cold",
        }
    }
}

impl std::fmt::Display for WarmStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The non-monotone part of a delta batch, resolved against the
/// **pre-apply** graph — the input to [`WarmStart::plan_invalidation`].
/// Edges are logical (undirected ops name each edge once); weight
/// updates are pre-classified by direction so programs see only the ones
/// that can raise values.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaChanges<'a> {
    /// Logical edges removed by the batch.
    pub removed_edges: &'a [(VertexId, VertexId)],
    /// Vertices isolated by the batch (every incident edge dies; the
    /// dense id survives).
    pub removed_vertices: &'a [VertexId],
    /// Weight updates that *increase* a stored weight (or are
    /// incomparable under `PartialOrd`). Pure decreases are monotone and
    /// excluded.
    pub increased_edges: &'a [(VertexId, VertexId)],
}

/// Warm-start extension of [`PieProgram`] for **dynamic graphs**: programs
/// implementing this trait can resume from retained per-fragment state
/// after a batch of graph mutations, instead of re-running `PEval` cold.
///
/// The engine's `run_incremental` replaces round 0 with
/// [`WarmStart::warm_eval`]: the retained state is migrated across the
/// mutation via the fragment's [`StateRemap`] and re-evaluated from the
/// delta-affected `seeds` only — the §2 promise that `IncEval` reacts to
/// *changes to the graph*, realised batch-style. Untouched fragments get
/// an identity remap, empty seeds and an empty invalidated set, and
/// should return their state unchanged without emitting messages.
///
/// Exactness contract, by [`WarmStart::delta_strategy`]:
///
/// * [`WarmStrategy::WarmDecrease`] — the warm fixpoint must equal the
///   cold fixpoint on the mutated graph by monotonicity alone (the batch
///   can only shrink values).
/// * [`WarmStrategy::WarmIncrease`] — the program pairs the warm round
///   with [`WarmStart::plan_invalidation`]: every vertex whose retained
///   value may exceed validity is reset (all copies, every fragment) and
///   re-derived, Ramalingam–Reps style. The warm fixpoint from the
///   invalidated state must equal the cold fixpoint.
/// * [`WarmStrategy::Cold`] — drivers (see `aap-delta`) re-run a cold
///   retained evaluation instead.
pub trait WarmStart<V, E>: PieProgram<V, E> {
    /// Migrate `prior` across the mutation described by `remap`, discard
    /// the retained values of the `invalid` vertices (new id space; empty
    /// unless the delta ran [`WarmStrategy::WarmIncrease`]), and
    /// re-evaluate from the `seeds` (delta-affected local vertices, in
    /// the **new** id space), emitting changed parameters. Seed border
    /// vertices should re-announce their current value even when
    /// unchanged — a peer may have gained a fresh, uninitialised copy.
    #[allow(clippy::too_many_arguments)]
    fn warm_eval(
        &self,
        q: &Self::Query,
        frag: &Fragment<V, E>,
        prior: Self::State,
        remap: &StateRemap,
        seeds: &[LocalId],
        invalid: &[LocalId],
        ctx: &mut UpdateCtx<Self::Val>,
    ) -> Self::State;

    /// Assemble from borrowed states, so retained runs can keep them for
    /// the next delta.
    fn assemble_ref(
        &self,
        q: &Self::Query,
        frags: &[std::sync::Arc<Fragment<V, E>>],
        states: &[Self::State],
    ) -> Self::Out;

    /// How a delta of this shape is evaluated from retained state. The
    /// default handles monotone-decreasing batches warm and rejects the
    /// rest — right for `min`-aggregated contracting programs without an
    /// invalidation plan. Programs overriding this to return
    /// [`WarmStrategy::WarmIncrease`] must implement
    /// [`WarmStart::plan_invalidation`].
    fn delta_strategy(&self, summary: &DeltaSummary) -> WarmStrategy {
        if summary.is_monotone_decreasing() {
            WarmStrategy::WarmDecrease
        } else {
            WarmStrategy::Cold
        }
    }

    /// The affected-region pass backing [`WarmStrategy::WarmIncrease`]:
    /// given the **pre-apply** fragments, the retained states (old local
    /// id space) and the batch's non-monotone changes, return — per
    /// fragment, in **old** local ids — every local copy whose retained
    /// value must be discarded before the warm round. Drivers map the
    /// sets through the apply's [`StateRemap`]s and hand them to
    /// [`WarmStart::warm_eval`] as `invalid`.
    ///
    /// `cache` is the retained state's [`PlanCache`]: programs whose
    /// plan starts from a global owner-value gather (SSSP, CC) read it
    /// from the cache when a previous round's
    /// [`WarmStart::refresh_plan_cache`] left it there, skipping the
    /// per-batch `O(n)` sweep on tiny deletion batches.
    ///
    /// Soundness contract: the sets must cover, at **every** fragment
    /// holding a copy, every vertex whose exact value on the mutated
    /// graph could be *worse* than its retained value (larger distance,
    /// higher component id, ...). Over-approximation costs recompute,
    /// never exactness.
    fn plan_invalidation(
        &self,
        _q: &Self::Query,
        frags: &[&Fragment<V, E>],
        _states: &[Self::State],
        _changes: &DeltaChanges<'_>,
        _cache: &mut PlanCache,
    ) -> Vec<Vec<LocalId>> {
        frags.iter().map(|_| Vec::new()).collect()
    }

    /// Refresh the retained state's [`PlanCache`] from a completed run's
    /// assembled output. Drivers call this after every retained run
    /// (warm or cold) — state writes cleared the cache, and for programs
    /// whose `Assemble` already *is* the owner-value gather their
    /// [`WarmStart::plan_invalidation`] needs, re-caching the output is
    /// a flat copy instead of the per-fragment sweep. The default caches
    /// nothing (programs without an invalidation plan need no gather).
    fn refresh_plan_cache(&self, _out: &Self::Out, _cache: &mut PlanCache) {}
}

/// One message batch `M(i, j)`: the changed parameters a worker ships to a
/// peer at the end of one round (§3, "designated messages").
///
/// Updates are addressed in the **receiver's** local id space, resolved at
/// partition time through [`aap_graph::RoutingTable`] — the receiver's
/// drain indexes straight into dense arrays without a `g2l` lookup. Pairs
/// are sorted by local id and carry at most one value per vertex (the
/// sender pre-combines with `faggr`).
#[derive(Debug, Clone)]
pub struct Batch<Val> {
    /// Sending fragment.
    pub src: FragId,
    /// The round at the sender that produced these values.
    pub round: Round,
    /// `(receiver-local vertex, value)` pairs, sorted, deduplicated.
    pub updates: Vec<(LocalId, Val)>,
}

/// Route one round's update set into per-destination batches, appended to
/// `out` as `(destination fragment, batch)` pairs sorted by destination.
///
/// This is the zero-hash fast path: a stamp-based dedup pass combines
/// repeated updates to the same vertex with `faggr` in place, then the
/// fragment's [`aap_graph::RoutingTable`] fans each unique update out to
/// dense per-destination buffers in the receiver's id space. With a warm
/// [`Scratch`] the whole routine performs no heap allocation.
///
/// `updates` is drained (left empty, capacity kept) so engines can recycle
/// it as the next round's `UpdateCtx` buffer.
pub fn route_updates_into<V, E, P: PieProgram<V, E> + ?Sized>(
    prog: &P,
    frag: &Fragment<V, E>,
    round: Round,
    updates: &mut Vec<(LocalId, P::Val)>,
    scratch: &mut Scratch<P::Val>,
    out: &mut Vec<(FragId, Batch<P::Val>)>,
) {
    scratch.ensure(frag);
    let routing = frag.routing();

    // Pass 1: stamp-dedup into `scratch.uniq`, combining duplicates with
    // `faggr` in place. Interior vertices (no fan-out) are skipped before
    // they cost a stamp write.
    scratch.next_epoch();
    scratch.uniq.clear();
    for (l, v) in updates.drain(..) {
        if routing.fanout_len(l) == 0 {
            continue;
        }
        let idx = scratch.uniq.len() as u32;
        match scratch.touch(l, idx) {
            Some(prev) => {
                prog.combine(&mut scratch.uniq[prev as usize].1, v);
            }
            None => {
                if scratch.uniq.len() == scratch.uniq.capacity() {
                    scratch.grow_events += 1;
                }
                scratch.uniq.push((l, v));
            }
        }
    }

    // Pass 2: fan out to dense per-destination buffers, moving the value
    // into the last (usually only) destination instead of cloning it.
    let mut uniq = std::mem::take(&mut scratch.uniq);
    for (l, v) in uniq.drain(..) {
        let (slots, remotes) = routing.fanout(l);
        if let ([slot], [remote]) = (slots, remotes) {
            // Single destination — the edge-cut mirror->owner hop that
            // dominates real traffic; no clone, no iterator setup.
            push_update(&mut scratch.bufs[*slot as usize], &mut scratch.grow_events, *remote, v);
            continue;
        }
        let (&last_slot, rest_slots) = slots.split_last().expect("fanout checked non-empty");
        let (&last_remote, rest_remotes) = remotes.split_last().expect("parallel slices");
        for (&slot, &remote) in rest_slots.iter().zip(rest_remotes) {
            let v = v.clone();
            push_update(&mut scratch.bufs[slot as usize], &mut scratch.grow_events, remote, v);
        }
        push_update(
            &mut scratch.bufs[last_slot as usize],
            &mut scratch.grow_events,
            last_remote,
            v,
        );
    }
    scratch.uniq = uniq;

    // Pass 3: emit non-empty buffers as batches. `dests` is sorted, so the
    // output order is deterministic without a final sort.
    let out_start = out.len();
    for (slot, dst) in routing.dests().iter().enumerate() {
        if scratch.bufs[slot].is_empty() {
            continue;
        }
        scratch.bufs[slot].sort_unstable_by_key(|&(l, _)| l);
        let replacement = scratch.take_vec();
        let body = std::mem::replace(&mut scratch.bufs[slot], replacement);
        if out.len() == out.capacity() {
            scratch.grow_events += 1;
        }
        out.push((*dst, Batch { src: frag.id(), round, updates: body }));
    }
    scratch.out_hint = scratch.out_hint.max(out.len() - out_start);
}

#[inline]
fn push_update<Val>(buf: &mut Vec<(LocalId, Val)>, grow_events: &mut u64, remote: LocalId, v: Val) {
    if buf.len() == buf.capacity() {
        *grow_events += 1;
    }
    buf.push((remote, v));
}

/// Convenience wrapper over [`route_updates_into`] allocating fresh
/// buffers — fine for tests and one-shot calls; engines use the `_into`
/// form with a per-worker [`Scratch`].
pub fn route_updates<V, E, P: PieProgram<V, E> + ?Sized>(
    prog: &P,
    frag: &Fragment<V, E>,
    round: Round,
    mut updates: Vec<(LocalId, P::Val)>,
) -> Vec<(FragId, Batch<P::Val>)> {
    let mut scratch = Scratch::default();
    let mut out = Vec::new();
    route_updates_into(prog, frag, round, &mut updates, &mut scratch, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::partition::build_fragments;
    use aap_graph::GraphBuilder;
    use std::sync::Arc;

    /// Minimal min-propagation program for testing the plumbing.
    struct MinProg;

    impl PieProgram<(), u32> for MinProg {
        type Query = ();
        type Val = u64;
        type State = ();
        type Out = ();

        fn combine(&self, a: &mut u64, b: u64) -> bool {
            if b < *a {
                *a = b;
                true
            } else {
                false
            }
        }

        fn peval(&self, _: &(), _: &Fragment<(), u32>, _: &mut UpdateCtx<u64>) {}

        fn inceval(
            &self,
            _: &(),
            _: &Fragment<(), u32>,
            _: &mut (),
            _: &mut Messages<u64>,
            _: &mut UpdateCtx<u64>,
        ) {
        }

        fn assemble(&self, _: &(), _: &[Arc<Fragment<(), u32>>], _: Vec<()>) {}
    }

    #[test]
    fn route_combines_duplicates_and_targets_owner() {
        // path 0-1-2-3 split {0,1} | {2,3}; fragment 0 has a mirror of 2.
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let frags = build_fragments(&g, &[0, 0, 1, 1]);
        let f0 = &frags[0];
        let m = f0.local(2).unwrap();
        let batches = route_updates(&MinProg, f0, 3, vec![(m, 9u64), (m, 4), (m, 7)]);
        assert_eq!(batches.len(), 1);
        let (dst, b0) = &batches[0];
        assert_eq!(*dst, 1);
        assert_eq!(b0.src, 0);
        assert_eq!(b0.round, 3);
        // Updates arrive pre-translated into fragment 1's local id space.
        let at_dest = frags[1].local(2).unwrap();
        assert_eq!(b0.updates, vec![(at_dest, 4u64)]);
    }

    #[test]
    fn route_owned_border_to_mirror_holders() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let frags = build_fragments(&g, &[0, 0, 1, 1]);
        let f0 = &frags[0];
        let border = f0.local(1).unwrap();
        let batches = route_updates(&MinProg, f0, 1, vec![(border, 1u64)]);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].0, 1);
        let at_dest = frags[1].local(1).unwrap();
        assert_eq!(batches[0].1.updates, vec![(at_dest, 1u64)]);
    }

    #[test]
    fn interior_updates_route_nowhere() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let frags = build_fragments(&g, &[0, 0, 1, 1]);
        let f0 = &frags[0];
        let interior = f0.local(0).unwrap();
        let batches = route_updates(&MinProg, f0, 1, vec![(interior, 1u64)]);
        assert!(batches.is_empty());
    }
}
