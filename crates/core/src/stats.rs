//! Run statistics: response time, communication volume, rounds, and the
//! stale/redundant-computation measures reported throughout §7.

/// Per-worker counters, gathered by the engine's statistics collector (§6).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Rounds executed (PEval counts as round 0).
    pub rounds: u64,
    /// Time spent computing (seconds, or virtual units in the simulator).
    pub compute_time: f64,
    /// Time spent deliberately suspended by `δ` (delay stretches).
    pub suspend_time: f64,
    /// Message batches received.
    pub batches_in: u64,
    /// Raw parameter updates received (before `faggr` dedup).
    pub updates_in: u64,
    /// Aggregated updates delivered to `IncEval`.
    pub updates_delivered: u64,
    /// Message batches sent.
    pub batches_out: u64,
    /// Parameter updates sent.
    pub updates_out: u64,
    /// Serialized bytes sent (values + per-update key + per-batch header).
    pub bytes_out: u64,
    /// Updates that did not improve the receiving parameter — the paper's
    /// redundant *stale* work (programs report this via `UpdateCtx`).
    pub redundant_updates: u64,
    /// Updates that did improve a parameter.
    pub effective_updates: u64,
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Execution mode name ("BSP", "AP", "SSP", "AAP", "Hsync").
    pub mode: String,
    /// Wall-clock (threaded) or virtual (simulated) completion time.
    pub makespan: f64,
    /// Per-worker counters.
    pub workers: Vec<WorkerStats>,
    /// True if the run hit the `max_rounds` safety valve instead of
    /// reaching a fixpoint.
    pub aborted: bool,
}

impl RunStats {
    /// Total rounds across workers.
    pub fn total_rounds(&self) -> u64 {
        self.workers.iter().map(|w| w.rounds).sum()
    }

    /// Largest per-worker round count (how long the straggler took).
    pub fn max_rounds(&self) -> u64 {
        self.workers.iter().map(|w| w.rounds).max().unwrap_or(0)
    }

    /// Total bytes shipped between workers.
    pub fn total_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.bytes_out).sum()
    }

    /// Total message batches shipped.
    pub fn total_batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches_out).sum()
    }

    /// Total parameter updates shipped.
    pub fn total_updates(&self) -> u64 {
        self.workers.iter().map(|w| w.updates_out).sum()
    }

    /// Total compute time across workers.
    pub fn total_compute(&self) -> f64 {
        self.workers.iter().map(|w| w.compute_time).sum()
    }

    /// Fraction of received updates that were redundant (stale), i.e. did
    /// not improve any parameter.
    pub fn stale_ratio(&self) -> f64 {
        let red: u64 = self.workers.iter().map(|w| w.redundant_updates).sum();
        let eff: u64 = self.workers.iter().map(|w| w.effective_updates).sum();
        if red + eff == 0 {
            0.0
        } else {
            red as f64 / (red + eff) as f64
        }
    }

    /// Total idle time: makespan × workers − compute − suspend.
    pub fn total_idle(&self) -> f64 {
        let busy: f64 = self.workers.iter().map(|w| w.compute_time + w.suspend_time).sum();
        (self.makespan * self.workers.len() as f64 - busy).max(0.0)
    }

    /// Machine-readable JSON rendering (hand-rolled; no serde in-tree).
    ///
    /// Exposes the effective/redundant update counters — total and
    /// per-round — alongside the usual volume metrics, so staleness (§7)
    /// can be tracked across PRs by diffing bench-runner JSON output.
    pub fn to_json(&self) -> String {
        let eff: u64 = self.workers.iter().map(|w| w.effective_updates).sum();
        let red: u64 = self.workers.iter().map(|w| w.redundant_updates).sum();
        let rounds = self.total_rounds().max(1);
        let mut s = format!(
            "{{\"mode\":\"{}\",\"makespan\":{:.6},\"aborted\":{},\"rounds_max\":{},\
             \"rounds_total\":{},\"updates\":{},\"bytes\":{},\"effective_updates\":{},\
             \"redundant_updates\":{},\"effective_per_round\":{:.3},\
             \"redundant_per_round\":{:.3},\"stale_ratio\":{:.6},\"workers\":[",
            self.mode,
            self.makespan,
            self.aborted,
            self.max_rounds(),
            self.total_rounds(),
            self.total_updates(),
            self.total_bytes(),
            eff,
            red,
            eff as f64 / rounds as f64,
            red as f64 / rounds as f64,
            self.stale_ratio(),
        );
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let wr = w.rounds.max(1);
            s.push_str(&format!(
                "{{\"rounds\":{},\"effective_updates\":{},\"redundant_updates\":{},\
                 \"effective_per_round\":{:.3},\"redundant_per_round\":{:.3},\
                 \"updates_in\":{},\"updates_out\":{},\"bytes_out\":{}}}",
                w.rounds,
                w.effective_updates,
                w.redundant_updates,
                w.effective_updates as f64 / wr as f64,
                w.redundant_updates as f64 / wr as f64,
                w.updates_in,
                w.updates_out,
                w.bytes_out,
            ));
        }
        s.push_str("]}");
        s
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:>5}: time {:>10.3}  rounds(max) {:>5}  rounds(total) {:>7}  msgs {:>9}  bytes {:>12}  stale {:>5.1}%",
            self.mode,
            self.makespan,
            self.max_rounds(),
            self.total_rounds(),
            self.total_updates(),
            self.total_bytes(),
            100.0 * self.stale_ratio(),
        )
    }
}

/// Per-update-key overhead used for byte accounting: 4-byte vertex id +
/// 4-byte round tag (matching the paper's `(x, val, r)` triples).
pub const UPDATE_KEY_BYTES: usize = 8;

/// Per-batch header overhead: source, destination, round, length.
pub const BATCH_HEADER_BYTES: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut s = RunStats { mode: "AAP".into(), makespan: 2.0, workers: vec![], aborted: false };
        for i in 0..3u64 {
            s.workers.push(WorkerStats {
                rounds: i + 1,
                bytes_out: 100 * i,
                updates_out: 10,
                redundant_updates: 5,
                effective_updates: 15,
                compute_time: 1.0,
                ..WorkerStats::default()
            });
        }
        assert_eq!(s.total_rounds(), 6);
        assert_eq!(s.max_rounds(), 3);
        assert_eq!(s.total_bytes(), 300);
        assert_eq!(s.total_updates(), 30);
        assert!((s.stale_ratio() - 0.25).abs() < 1e-12);
        assert!((s.total_idle() - (6.0 - 3.0)).abs() < 1e-12);
        assert!(s.summary().contains("AAP"));
    }

    #[test]
    fn empty_run_is_sane() {
        let s = RunStats::default();
        assert_eq!(s.total_rounds(), 0);
        assert_eq!(s.stale_ratio(), 0.0);
    }

    #[test]
    fn json_includes_staleness_counters() {
        let s = RunStats {
            mode: "AAP".into(),
            makespan: 1.5,
            workers: vec![WorkerStats {
                rounds: 4,
                effective_updates: 6,
                redundant_updates: 2,
                ..WorkerStats::default()
            }],
            aborted: false,
        };
        let j = s.to_json();
        assert!(j.contains("\"effective_updates\":6"));
        assert!(j.contains("\"redundant_updates\":2"));
        assert!(j.contains("\"effective_per_round\":1.500"));
        assert!(j.contains("\"mode\":\"AAP\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
