//! The multithreaded AAP engine — GRAPE+ (§3 workflow, §6 implementation).
//!
//! `m` virtual workers (one per fragment) are scheduled onto `n ≤ m` OS
//! threads. Message passing is point-to-point and push-based: a completing
//! round locks only the destination's inbox, so no global synchronisation
//! barrier exists on the async path. Each worker's next round is gated by
//! the delay-stretch function `δ` of [`crate::policy`]; a suspended worker
//! releases its thread to other virtual workers, which is exactly the
//! paper's "resources are allocated to other (virtual) workers to do useful
//! computation".
//!
//! Two execution paths:
//!
//! * **BSP** runs an honest superstep barrier (messages produced in
//!   superstep `r` become visible only in `r + 1`) — this is GRAPE, and the
//!   baseline the paper calls `GRAPE+BSP`.
//! * **AP / SSP / AAP / Hsync** run the asynchronous scheduler where `δ`
//!   makes per-worker decisions; termination follows §3's
//!   inactive/terminate protocol (a worker with an empty buffer becomes
//!   inactive; any arriving message revives it; the run ends when no worker
//!   is active and no messages are buffered).

use crate::inbox::Inbox;
use crate::pie::{route_updates_into, Batch, PieProgram, UpdateCtx, WarmStart};
use crate::policy::{self, Decision, Mode, PolicyState, SharedRates};
use crate::scratch::{Scratch, SharedPool};
use crate::stats::{RunStats, WorkerStats, BATCH_HEADER_BYTES, UPDATE_KEY_BYTES};
use aap_graph::mutate::StateRemap;
use aap_graph::{Fragment, LocalId, VertexId};
use aap_trace::{cat, pid, Args, Tracer};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineOpts {
    /// Physical worker threads (`n`); virtual workers (`m`) = fragments.
    pub threads: usize,
    /// Execution mode (the `δ` policy).
    pub mode: Mode,
    /// Abort the run if any worker exceeds this many rounds (safety valve
    /// for non-terminating programs; `None` = unbounded).
    pub max_rounds: Option<u32>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4),
            mode: Mode::aap(),
            max_rounds: None,
        }
    }
}

/// Result of one engine run.
#[derive(Debug)]
pub struct RunOutput<Out> {
    /// The assembled answer `ρ(Q, G)`.
    pub out: Out,
    /// Statistics collected during the run.
    pub stats: RunStats,
}

/// A type-erased cache slot that travels with a [`RunState`], holding a
/// value *derived from* the retained states — today the global
/// owner-value gather `WarmStart::plan_invalidation` needs per
/// non-monotone batch (`O(n)` to rebuild from scratch).
///
/// Invalidation contract: any write to the states ([`RunState::set_states`],
/// [`RunState::take_states`]) clears the slot, so a stale derivation can
/// never be observed. Re-population is the *driver's* job: after a run,
/// `aap-delta`'s drivers call [`crate::WarmStart::refresh_plan_cache`]
/// with the freshly assembled output — for SSSP/CC that output *is* the
/// owner-value gather, so tiny deletion batches skip the per-batch
/// `O(n)` fragment sweep entirely and plan from the cache.
#[derive(Default)]
pub struct PlanCache {
    slot: Option<Box<dyn std::any::Any + Send>>,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("filled", &self.slot.is_some())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl PlanCache {
    /// Borrow the cached `T` if one is present *and* `valid` accepts it;
    /// otherwise rebuild it with `make` and cache the result. The
    /// validity probe lets callers reject a cache whose shape no longer
    /// matches the fragments (e.g. a stale vertex count) without a
    /// dedicated invalidation channel.
    pub fn get_or_insert_with<T, VF, MF>(&mut self, valid: VF, make: MF) -> &T
    where
        T: std::any::Any + Send,
        VF: FnOnce(&T) -> bool,
        MF: FnOnce() -> T,
    {
        let usable = self.slot.as_ref().and_then(|b| b.downcast_ref::<T>()).is_some_and(valid);
        if usable {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.slot = Some(Box::new(make()));
        }
        self.slot
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .expect("slot was just verified/replaced with a T")
    }

    /// Replace the cached value (driver refresh after a run).
    pub fn put<T: std::any::Any + Send>(&mut self, value: T) {
        self.slot = Some(Box::new(value));
    }

    /// Drop the cached value (the invalidate-on-write hook).
    pub fn clear(&mut self) {
        self.slot = None;
    }

    /// True if a value is currently cached.
    pub fn is_filled(&self) -> bool {
        self.slot.is_some()
    }

    /// How many [`PlanCache::get_or_insert_with`] calls were served from
    /// the cache (observability for tests and benches).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many [`PlanCache::get_or_insert_with`] calls had to rebuild.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Retained per-fragment program states from a completed run (one entry
/// per fragment, in fragment order). Produced by `run_retained`; fed back
/// into `run_incremental` after a graph delta so the next evaluation
/// warm-starts from the previous fixpoint instead of a cold `PEval`.
///
/// A `RunState` is only meaningful against the engine (and query) that
/// produced it, modulo the [`StateRemap`]s of deltas applied in between.
///
/// Also carries a [`PlanCache`] for state-derived planning artifacts;
/// the cache is cleared on every state write and does not participate
/// in `Clone`/`PartialEq`.
#[derive(Debug)]
pub struct RunState<St> {
    states: Vec<St>,
    plan_cache: PlanCache,
}

impl<St: Clone> Clone for RunState<St> {
    fn clone(&self) -> Self {
        // The clone starts with a cold cache: it is an independent
        // lineage of writes from here on.
        RunState { states: self.states.clone(), plan_cache: PlanCache::default() }
    }
}

impl<St: PartialEq> PartialEq for RunState<St> {
    fn eq(&self, other: &Self) -> bool {
        self.states == other.states
    }
}

impl<St> RunState<St> {
    /// Wrap per-fragment states (engine/simulator use).
    pub fn new(states: Vec<St>) -> Self {
        RunState { states, plan_cache: PlanCache::default() }
    }

    /// Number of per-fragment states (the fragment count of the run).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if no states are held.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Borrow the retained states, in fragment order.
    pub fn states(&self) -> &[St] {
        &self.states
    }

    /// Move the states out, leaving this `RunState` empty (engine use).
    /// A write: the plan cache is invalidated.
    pub fn take_states(&mut self) -> Vec<St> {
        self.plan_cache.clear();
        std::mem::take(&mut self.states)
    }

    /// Replace the retained states after a run (engine use). A write:
    /// the plan cache is invalidated.
    pub fn set_states(&mut self, states: Vec<St>) {
        self.plan_cache.clear();
        self.states = states;
    }

    /// The state-derived plan cache (read side).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The state-derived plan cache (driver refresh side).
    pub fn plan_cache_mut(&mut self) -> &mut PlanCache {
        &mut self.plan_cache
    }

    /// Borrow the states and the plan cache *simultaneously* — the shape
    /// `plan_invalidation` drivers need (states read-only, cache
    /// writable), which a pair of accessor calls cannot express.
    pub fn states_and_plan_cache(&mut self) -> (&[St], &mut PlanCache) {
        (&self.states, &mut self.plan_cache)
    }

    /// Detach the retained states from this fragment set's local-id
    /// space, pairing each with the fragment's global-id layout so a
    /// later [`PortableRunState::attach`] can re-anchor them — the
    /// export half of durable snapshots (`aap-snapshot`).
    pub fn export<V, E>(&self, frags: &[Arc<Fragment<V, E>>]) -> PortableRunState<St>
    where
        St: Clone,
    {
        assert_eq!(self.states.len(), frags.len(), "RunState must match the fragment count");
        PortableRunState {
            entries: frags
                .iter()
                .zip(&self.states)
                .map(|(f, s)| PortableFragState {
                    globals: f.globals().to_vec(),
                    owned: f.owned_count(),
                    state: s.clone(),
                })
                .collect(),
        }
    }
}

/// One fragment's worth of portable retained state: the state plus the
/// local-id layout (global ids, owned-first) it was computed against.
#[derive(Debug, Clone)]
pub struct PortableFragState<St> {
    /// Global id of each local at export time (owned first, then mirrors).
    pub globals: Vec<VertexId>,
    /// How many of `globals` were owned at export time.
    pub owned: usize,
    /// The per-fragment program state.
    pub state: St,
}

/// A [`RunState`] detached from any particular fragment set: each
/// per-fragment state travels with the **global** vertex ids that its
/// local ids meant at export time. This is the stable on-disk contract
/// for retained state — local ids are an artifact of partition
/// construction, global ids are not.
///
/// [`PortableRunState::attach`] re-anchors the states against a loaded
/// fragment set and returns one [`StateRemap`] per fragment: identity
/// when the layouts agree byte-for-byte (the common case — snapshots
/// persist the partition exactly), a real old→new table when they do
/// not. The remaps feed [`Engine::run_incremental`] (with empty seeds
/// and empty invalidated sets), whose `warm_eval` migrates the state
/// values — so an attach followed by one warm run lands in exactly the
/// state a continuous process would hold.
#[derive(Debug, Clone)]
pub struct PortableRunState<St> {
    entries: Vec<PortableFragState<St>>,
}

/// Why a [`PortableRunState::attach`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttachError {
    /// The portable state holds a different number of fragments.
    FragmentCount {
        /// Fragments recorded in the portable state.
        saved: usize,
        /// Fragments in the set being attached to.
        live: usize,
    },
    /// A saved global vertex no longer exists in the target fragment
    /// (the partition diverged beyond renumbering).
    MissingVertex {
        /// The fragment at fault.
        frag: usize,
        /// The global id with no local counterpart.
        vertex: VertexId,
    },
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::FragmentCount { saved, live } => {
                write!(f, "portable state has {saved} fragments, target partition has {live}")
            }
            AttachError::MissingVertex { frag, vertex } => {
                write!(f, "fragment {frag}: saved vertex {vertex} is absent from the target")
            }
        }
    }
}

impl std::error::Error for AttachError {}

impl<St> PortableRunState<St> {
    /// Wrap per-fragment entries (deserializer use; [`RunState::export`]
    /// is the ordinary constructor).
    pub fn from_entries(entries: Vec<PortableFragState<St>>) -> Self {
        PortableRunState { entries }
    }

    /// The per-fragment entries (serializer use).
    pub fn entries(&self) -> &[PortableFragState<St>] {
        &self.entries
    }

    /// Move the per-fragment entries out (chain-resolution use).
    pub fn into_entries(self) -> Vec<PortableFragState<St>> {
        self.entries
    }

    /// Number of per-fragment entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-anchor the states against `frags`, returning the [`RunState`]
    /// plus one [`StateRemap`] per fragment (identity where the local-id
    /// layout is unchanged). Feed both to `run_incremental` with empty
    /// seeds and empty invalidated sets to migrate the state values
    /// through `warm_eval`.
    ///
    /// Fails if the fragment count differs or a saved vertex has no
    /// local id in its target fragment; *dropped* locals (a saved vertex
    /// the target lost, e.g. a mirror) are not an error — the remap
    /// discards their values, exactly as a delta-driven renumbering
    /// would.
    pub fn attach<V, E>(
        self,
        frags: &[Arc<Fragment<V, E>>],
    ) -> Result<(RunState<St>, Vec<StateRemap>), AttachError> {
        if self.entries.len() != frags.len() {
            return Err(AttachError::FragmentCount {
                saved: self.entries.len(),
                live: frags.len(),
            });
        }
        let mut states = Vec::with_capacity(self.entries.len());
        let mut remaps = Vec::with_capacity(self.entries.len());
        for (i, (entry, frag)) in self.entries.into_iter().zip(frags).enumerate() {
            let PortableFragState { globals, owned, state } = entry;
            if globals == frag.globals() {
                remaps.push(StateRemap::identity(frag.local_count()));
            } else {
                let mut table = Vec::with_capacity(globals.len());
                for (old, &g) in globals.iter().enumerate() {
                    match frag.local(g) {
                        Some(l) => table.push(l),
                        // A vanished *mirror* is a legitimate drop; a
                        // vanished owned vertex means the partition
                        // diverged (owned ids are never deleted, only
                        // isolated).
                        None if old >= owned => table.push(LocalId::MAX),
                        None => {
                            return Err(AttachError::MissingVertex { frag: i, vertex: g });
                        }
                    }
                }
                remaps.push(StateRemap::from_table(table, frag.local_count()));
            }
            states.push(state);
        }
        Ok((RunState::new(states), remaps))
    }
}

/// The GRAPE+ engine over a fixed partition. A graph is partitioned once
/// and the engine reused for any number of queries (§3: "G is partitioned
/// once for all queries Q posed on G").
pub struct Engine<V, E> {
    frags: Vec<Arc<Fragment<V, E>>>,
    opts: EngineOpts,
    /// Structured-event tracer; disabled by default (one branch per
    /// emission site, nothing allocated — see `tests/alloc_trace.rs`).
    tracer: Tracer,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Ready,
    Running,
    /// Suspended with an optional wake deadline; `None` = held until the
    /// global round bounds move or a message arrives.
    Suspended(Option<Instant>),
    Inactive,
}

struct Cell<Val, St> {
    inbox: Mutex<Inbox<Val>>,
    /// Mirror of `inbox.eta()`, readable without the inbox lock.
    eta: AtomicUsize,
    state: Mutex<Option<St>>,
    stats: Mutex<WorkerStats>,
    /// Reusable routing/drain buffers. Only the thread currently running
    /// this virtual worker touches it, so the lock is uncontended; it
    /// exists to satisfy `Sync` for the scoped-thread sharing.
    scratch: Mutex<Scratch<Val>>,
    /// Completed rounds (`ri`); PEval completion sets this to 1.
    rounds: AtomicU32,
}

impl<Val, St> Cell<Val, St> {
    fn new() -> Self {
        Cell {
            inbox: Mutex::new(Inbox::default()),
            eta: AtomicUsize::new(0),
            state: Mutex::new(None),
            stats: Mutex::new(WorkerStats::default()),
            scratch: Mutex::new(Scratch::default()),
            rounds: AtomicU32::new(0),
        }
    }
}

struct Coord {
    status: Vec<Status>,
    suspend_began: Vec<Option<Instant>>,
    /// Vertex-centric adapters may have local-only work pending.
    local_work: Vec<bool>,
    pstates: Vec<PolicyState>,
    ready: VecDeque<usize>,
    /// Workers in {Ready, Running, Suspended}.
    pending: usize,
    done: bool,
    aborted: bool,
    rmin: u32,
    rmax: u32,
}

impl Coord {
    /// Recompute `rmin`/`rmax` over non-inactive workers (§3 "bounds rmin
    /// and rmax"); inactive workers would otherwise pin `rmin` forever and
    /// deadlock lockstep modes. Returns whether either bound moved.
    fn recompute_bounds<Val, St>(&mut self, cells: &[Cell<Val, St>]) -> bool {
        let mut rmin = u32::MAX;
        let mut rmax = 0;
        for (w, st) in self.status.iter().enumerate() {
            let r = cells[w].rounds.load(Ordering::Relaxed);
            rmax = rmax.max(r);
            if !matches!(st, Status::Inactive) {
                rmin = rmin.min(r);
            }
        }
        if rmin == u32::MAX {
            rmin = rmax;
        }
        let changed = rmin != self.rmin || rmax != self.rmax;
        self.rmin = rmin;
        self.rmax = rmax;
        changed
    }
}

impl<V, E> Engine<V, E>
where
    V: Send + Sync,
    E: Send + Sync,
{
    /// Create an engine over pre-built fragments.
    pub fn new(frags: Vec<Fragment<V, E>>, opts: EngineOpts) -> Self {
        Engine { frags: frags.into_iter().map(Arc::new).collect(), opts, tracer: Tracer::default() }
    }

    /// Attach a structured-event tracer; every subsequent run emits
    /// per-worker round/phase spans, message-batch instants, and policy
    /// decisions on the `pid::ENGINE` tracks. Pass `Tracer::default()`
    /// to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer runs report into (disabled unless
    /// [`Engine::set_tracer`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The fragments this engine computes over.
    pub fn fragments(&self) -> &[Arc<Fragment<V, E>>] {
        &self.frags
    }

    /// Exclusive access to the fragments, for in-place delta application
    /// (`aap-delta`). Returns `None` while any `Arc` is shared — i.e. a
    /// run output still borrows the fragments somewhere.
    pub fn fragments_mut(&mut self) -> Option<Vec<&mut Fragment<V, E>>> {
        let mut out = Vec::with_capacity(self.frags.len());
        for a in self.frags.iter_mut() {
            match Arc::get_mut(a) {
                Some(f) => out.push(f),
                None => return None,
            }
        }
        Some(out)
    }

    /// Copy-on-write access to the fragments, for in-place delta
    /// application *while a consistent cut is being serialized*: a
    /// shared `Arc` (the cut holds a clone) is detached by deep-cloning
    /// the fragment — the cut keeps the pre-apply bytes, the engine
    /// moves on — and an exclusively-held one is borrowed in place with
    /// no copy, so the cost is proportional to the overlap between the
    /// in-flight snapshot and the fragments the next delta touches.
    pub fn fragments_cow(&mut self) -> Vec<&mut Fragment<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        self.frags.iter_mut().map(Arc::make_mut).collect()
    }

    /// Engine options.
    pub fn opts(&self) -> &EngineOpts {
        &self.opts
    }

    /// Evaluate one query with the PIE program `prog` (§3 parallel model:
    /// PEval everywhere, asynchronous IncEval until fixpoint, Assemble).
    pub fn run<P>(&self, prog: &P, q: &P::Query) -> RunOutput<P::Out>
    where
        P: PieProgram<V, E>,
    {
        let eval0 = |_w: usize, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<P::Val>| {
            prog.peval(q, frag, ctx)
        };
        let (stats, states) = self.run_with(prog, q, &eval0);
        RunOutput { out: prog.assemble(q, &self.frags, states), stats }
    }

    /// Like [`Engine::run`], but also return the per-fragment states so a
    /// later [`Engine::run_incremental`] can warm-start from this fixpoint.
    pub fn run_retained<P>(&self, prog: &P, q: &P::Query) -> (RunOutput<P::Out>, RunState<P::State>)
    where
        P: WarmStart<V, E>,
    {
        let eval0 = |_w: usize, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<P::Val>| {
            prog.peval(q, frag, ctx)
        };
        let (stats, states) = self.run_with(prog, q, &eval0);
        let out = prog.assemble_ref(q, &self.frags, &states);
        (RunOutput { out, stats }, RunState::new(states))
    }

    /// Warm-start incremental evaluation after a graph delta, under any
    /// execution mode (BSP/AP/SSP/AAP/Hsync).
    ///
    /// Round 0 runs [`WarmStart::warm_eval`] instead of `PEval`: each
    /// fragment's retained state is migrated across the mutation via
    /// `remaps[i]`, stripped of the invalidated vertices `invalid[i]`
    /// (non-empty only for `WarmStrategy::WarmIncrease` batches — the
    /// affected region of a removal / weight increase), and re-evaluated
    /// from `seeds[i]` (the delta-affected vertices, in new local ids).
    /// Messages then drive ordinary `IncEval` rounds to the fixpoint;
    /// `state` is updated in place for the next delta. See `aap-delta`
    /// for the driver that derives `remaps`/`seeds`/`invalid` from a
    /// `GraphDelta` and picks the strategy.
    pub fn run_incremental<P>(
        &self,
        prog: &P,
        q: &P::Query,
        remaps: &[StateRemap],
        seeds: &[Vec<LocalId>],
        invalid: &[Vec<LocalId>],
        state: &mut RunState<P::State>,
    ) -> RunOutput<P::Out>
    where
        P: WarmStart<V, E>,
    {
        let m = self.frags.len();
        assert_eq!(state.len(), m, "RunState must match the fragment count");
        assert_eq!(remaps.len(), m);
        assert_eq!(seeds.len(), m);
        assert_eq!(invalid.len(), m);
        let priors: Vec<Mutex<Option<P::State>>> =
            state.take_states().into_iter().map(|s| Mutex::new(Some(s))).collect();
        let eval0 = |w: usize, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<P::Val>| {
            let prior = priors[w].lock().take().expect("warm state taken once per worker");
            prog.warm_eval(q, frag, prior, &remaps[w], &seeds[w], &invalid[w], ctx)
        };
        let (stats, states) = self.run_with(prog, q, &eval0);
        let out = prog.assemble_ref(q, &self.frags, &states);
        state.set_states(states);
        RunOutput { out, stats }
    }

    fn run_with<P, F>(&self, prog: &P, q: &P::Query, eval0: &F) -> (RunStats, Vec<P::State>)
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State + Sync,
    {
        match self.opts.mode {
            Mode::Bsp => self.run_bsp(prog, q, eval0),
            _ => self.run_async(prog, q, eval0),
        }
    }

    // ------------------------------------------------------------------
    // BSP path: honest supersteps with a barrier (GRAPE / GRAPE+BSP).
    // ------------------------------------------------------------------
    fn run_bsp<P, F>(&self, prog: &P, q: &P::Query, eval0: &F) -> (RunStats, Vec<P::State>)
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State + Sync,
    {
        let m = self.frags.len();
        let start = Instant::now();
        let cells: Vec<Cell<P::Val, P::State>> = (0..m).map(|_| Cell::new()).collect();
        attach_shared_pool(&cells);
        let nthreads = self.opts.threads.clamp(1, m.max(1));
        let mut aborted = false;
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.instant(
                pid::ENGINE,
                0,
                cat::POLICY,
                "mode",
                Args::new()
                    .with("mode", self.opts.mode.name())
                    .with("workers", m)
                    .with("threads", nthreads),
            );
        }

        // Superstep 0: PEval everywhere.
        let mut active: Vec<usize> = (0..m).collect();
        let mut superstep: u32 = 0;
        while !active.is_empty() {
            if let Some(maxr) = self.opts.max_rounds {
                if superstep > maxr {
                    aborted = true;
                    break;
                }
            }
            // Outgoing batches per executing worker, delivered post-barrier.
            type Outbox<Val> = Mutex<Vec<(aap_graph::FragId, Batch<Val>)>>;
            let outs: Vec<Outbox<P::Val>> = active.iter().map(|_| Mutex::new(Vec::new())).collect();
            let next_work: Vec<Mutex<bool>> = active.iter().map(|_| Mutex::new(false)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..nthreads {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= active.len() {
                            return;
                        }
                        let w = active[i];
                        let frag = &self.frags[w];
                        let cell = &cells[w];
                        let mut scratch = cell.scratch.lock();
                        let t0 = Instant::now();
                        if traced {
                            self.tracer.begin(
                                pid::ENGINE,
                                w as u32,
                                cat::ROUND,
                                "round",
                                Args::new().with("round", superstep).with("frag", w),
                            );
                            self.tracer.begin(
                                pid::ENGINE,
                                w as u32,
                                cat::PHASE,
                                "drain",
                                Args::new(),
                            );
                        }
                        {
                            let mut inbox = cell.inbox.lock();
                            let info = inbox.drain_into(prog, frag, &mut scratch);
                            cell.eta.store(0, Ordering::Relaxed);
                            scratch.reserve_for_traffic(info.raw_updates, info.batches);
                            if traced {
                                self.tracer.end(
                                    pid::ENGINE,
                                    w as u32,
                                    cat::PHASE,
                                    "drain",
                                    Args::new()
                                        .with("batches", info.batches)
                                        .with("updates", info.raw_updates),
                                );
                            }
                        }
                        let mut msgs = scratch.take_msgs();
                        let delivered = msgs.len() as u64;
                        let mut ctx = UpdateCtx::with_buffer(scratch.take_updates_buf());
                        let eval_name = if superstep == 0 { "eval0" } else { "inceval" };
                        if traced {
                            self.tracer.begin(
                                pid::ENGINE,
                                w as u32,
                                cat::PHASE,
                                eval_name,
                                Args::new(),
                            );
                        }
                        if superstep == 0 {
                            let st = eval0(w, frag, &mut ctx);
                            *cell.state.lock() = Some(st);
                        } else {
                            let mut guard = cell.state.lock();
                            let st = guard.as_mut().expect("state initialised by PEval");
                            prog.inceval(q, frag, st, &mut msgs, &mut ctx);
                        }
                        scratch.give_msgs(msgs);
                        let dt = t0.elapsed().as_secs_f64();
                        let (effective, redundant) = ctx.effect_counts();
                        let (mut updates, local_work) = ctx.take();
                        if traced {
                            self.tracer.end(
                                pid::ENGINE,
                                w as u32,
                                cat::PHASE,
                                eval_name,
                                Args::new()
                                    .with("effective", effective)
                                    .with("redundant", redundant),
                            );
                            self.tracer.begin(
                                pid::ENGINE,
                                w as u32,
                                cat::PHASE,
                                "route",
                                Args::new(),
                            );
                        }
                        let mut batches = std::mem::take(&mut scratch.out);
                        route_updates_into(
                            prog,
                            frag,
                            superstep,
                            &mut updates,
                            &mut scratch,
                            &mut batches,
                        );
                        scratch.give_updates_buf(updates);
                        if traced {
                            self.tracer.end(
                                pid::ENGINE,
                                w as u32,
                                cat::PHASE,
                                "route",
                                Args::new().with("batches", batches.len()),
                            );
                        }
                        {
                            let mut st = cell.stats.lock();
                            st.rounds += 1;
                            st.compute_time += dt;
                            st.updates_delivered += delivered;
                            st.effective_updates += effective;
                            st.redundant_updates += redundant;
                            for (_, b) in &batches {
                                st.batches_out += 1;
                                st.updates_out += b.updates.len() as u64;
                                st.bytes_out += (BATCH_HEADER_BYTES
                                    + b.updates
                                        .iter()
                                        .map(|(_, v)| UPDATE_KEY_BYTES + prog.val_bytes(v))
                                        .sum::<usize>())
                                    as u64;
                            }
                        }
                        cell.rounds.fetch_add(1, Ordering::Relaxed);
                        *outs[i].lock() = batches;
                        *next_work[i].lock() = local_work;
                        if traced {
                            self.tracer.end(
                                pid::ENGINE,
                                w as u32,
                                cat::ROUND,
                                "round",
                                Args::new(),
                            );
                        }
                    });
                }
            });
            // Barrier: deliver all batches, then find the next active set.
            let mut next: Vec<usize> = Vec::new();
            let mut want_local: Vec<bool> = vec![false; m];
            for (i, out) in outs.iter().enumerate() {
                want_local[active[i]] = *next_work[i].lock();
                let mut out = std::mem::take(&mut *out.lock());
                for (dst, b) in out.drain(..) {
                    if traced {
                        self.tracer.instant(
                            pid::ENGINE,
                            active[i] as u32,
                            cat::MSG,
                            "batch",
                            Args::new().with("dst", dst as u32).with("updates", b.updates.len()),
                        );
                    }
                    let cell = &cells[dst as usize];
                    {
                        let mut st = cell.stats.lock();
                        st.batches_in += 1;
                        st.updates_in += b.updates.len() as u64;
                    }
                    let mut inbox = cell.inbox.lock();
                    let eta = inbox.push(b);
                    cell.eta.store(eta, Ordering::Relaxed);
                }
                // Hand the (emptied) batch list back to its worker.
                cells[active[i]].scratch.lock().out = out;
            }
            next.extend(
                (0..m).filter(|&w| cells[w].eta.load(Ordering::Relaxed) > 0 || want_local[w]),
            );
            active = next;
            superstep += 1;
        }

        collect(cells, &self.opts.mode, start, aborted)
    }

    // ------------------------------------------------------------------
    // Asynchronous path: AP / SSP / AAP / Hsync via δ.
    // ------------------------------------------------------------------
    fn run_async<P, F>(&self, prog: &P, q: &P::Query, eval0: &F) -> (RunStats, Vec<P::State>)
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State + Sync,
    {
        let m = self.frags.len();
        let start = Instant::now();
        let cells: Vec<Cell<P::Val, P::State>> = (0..m).map(|_| Cell::new()).collect();
        attach_shared_pool(&cells);
        let rates = SharedRates::new(m);
        let l0 = match &self.opts.mode {
            Mode::Aap(cfg) => policy::l_floor(cfg, m),
            _ => 0.0,
        };
        let coord = Mutex::new(Coord {
            status: vec![Status::Ready; m],
            suspend_began: vec![None; m],
            local_work: vec![false; m],
            pstates: (0..m).map(|_| PolicyState::new(l0)).collect(),
            ready: (0..m).collect(),
            pending: m,
            done: m == 0,
            aborted: false,
            rmin: 0,
            rmax: 0,
        });
        let cv = Condvar::new();
        let nthreads = self.opts.threads.clamp(1, m.max(1));
        if self.tracer.enabled() {
            self.tracer.instant(
                pid::ENGINE,
                0,
                cat::POLICY,
                "mode",
                Args::new()
                    .with("mode", self.opts.mode.name())
                    .with("workers", m)
                    .with("threads", nthreads),
            );
        }

        std::thread::scope(|s| {
            for _ in 0..nthreads {
                s.spawn(|| {
                    self.async_worker_loop(prog, q, eval0, &cells, &coord, &cv, &rates, start)
                });
            }
        });

        let aborted = coord.lock().aborted;
        collect(cells, &self.opts.mode, start, aborted)
    }

    #[allow(clippy::too_many_arguments)]
    fn async_worker_loop<P, F>(
        &self,
        prog: &P,
        q: &P::Query,
        eval0: &F,
        cells: &[Cell<P::Val, P::State>],
        coord: &Mutex<Coord>,
        cv: &Condvar,
        rates: &SharedRates,
        start: Instant,
    ) where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State + Sync,
    {
        loop {
            // --- acquire a runnable virtual worker ---
            let w = {
                let mut c = coord.lock();
                loop {
                    if c.done {
                        return;
                    }
                    promote_due(&mut c, cells, Instant::now());
                    if let Some(w) = c.ready.pop_front() {
                        c.status[w] = Status::Running;
                        break w;
                    }
                    // Sleep until the earliest suspend deadline (or a
                    // notification from another thread).
                    let deadline = c
                        .status
                        .iter()
                        .filter_map(|s| match s {
                            Status::Suspended(Some(t)) => Some(*t),
                            _ => None,
                        })
                        .min();
                    match deadline {
                        Some(t) => {
                            cv.wait_until(&mut c, t);
                        }
                        None => {
                            cv.wait(&mut c);
                        }
                    }
                }
            };

            // --- execute one round of worker w ---
            let frag = &self.frags[w];
            let cell = &cells[w];
            let mut scratch = cell.scratch.lock();
            let now0 = start.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let round = cell.rounds.load(Ordering::Relaxed);
            let traced = self.tracer.enabled();
            if traced {
                self.tracer.begin(
                    pid::ENGINE,
                    w as u32,
                    cat::ROUND,
                    "round",
                    Args::new().with("round", round).with("frag", w),
                );
            }
            // PEval (round 0) must NOT drain: messages from faster peers'
            // PEval rounds may already be buffered and belong to IncEval.
            let mut msgs = if round == 0 {
                scratch.take_msgs()
            } else {
                if traced {
                    self.tracer.begin(pid::ENGINE, w as u32, cat::PHASE, "drain", Args::new());
                }
                let info = {
                    let mut inbox = cell.inbox.lock();
                    let info = inbox.drain_into(prog, frag, &mut scratch);
                    cell.eta.store(0, Ordering::Relaxed);
                    info
                };
                // Keep send/recycle capacity in line with observed traffic
                // so the next round's routing starts warm.
                scratch.reserve_for_traffic(info.raw_updates, info.batches);
                let mut c = coord.lock();
                let avg = rates.avg_rate();
                let fast = rates.fast_count();
                policy::on_drain(
                    &self.opts.mode,
                    &mut c.pstates[w],
                    info.batches,
                    now0,
                    cells.len(),
                    avg,
                    fast,
                );
                if traced {
                    self.tracer.end(
                        pid::ENGINE,
                        w as u32,
                        cat::PHASE,
                        "drain",
                        Args::new().with("batches", info.batches).with("updates", info.raw_updates),
                    );
                }
                scratch.take_msgs()
            };
            let delivered = msgs.len() as u64;
            let mut ctx = UpdateCtx::with_buffer(scratch.take_updates_buf());
            let eval_name = if round == 0 { "eval0" } else { "inceval" };
            if traced {
                self.tracer.begin(pid::ENGINE, w as u32, cat::PHASE, eval_name, Args::new());
            }
            if round == 0 {
                let st = eval0(w, frag, &mut ctx);
                *cell.state.lock() = Some(st);
            } else {
                let mut guard = cell.state.lock();
                let st = guard.as_mut().expect("state initialised by PEval");
                prog.inceval(q, frag, st, &mut msgs, &mut ctx);
            }
            scratch.give_msgs(msgs);
            let dt = t0.elapsed().as_secs_f64();
            let (effective, redundant) = ctx.effect_counts();
            let (mut updates, local_work) = ctx.take();
            if traced {
                self.tracer.end(
                    pid::ENGINE,
                    w as u32,
                    cat::PHASE,
                    eval_name,
                    Args::new().with("effective", effective).with("redundant", redundant),
                );
                self.tracer.begin(pid::ENGINE, w as u32, cat::PHASE, "route", Args::new());
            }
            let mut batches = std::mem::take(&mut scratch.out);
            route_updates_into(prog, frag, round, &mut updates, &mut scratch, &mut batches);
            scratch.give_updates_buf(updates);
            if traced {
                self.tracer.end(
                    pid::ENGINE,
                    w as u32,
                    cat::PHASE,
                    "route",
                    Args::new().with("batches", batches.len()),
                );
            }

            // --- self stats ---
            {
                let mut st = cell.stats.lock();
                st.rounds += 1;
                st.compute_time += dt;
                st.updates_delivered += delivered;
                st.effective_updates += effective;
                st.redundant_updates += redundant;
                for (_, b) in &batches {
                    st.batches_out += 1;
                    st.updates_out += b.updates.len() as u64;
                    st.bytes_out += (BATCH_HEADER_BYTES
                        + b.updates
                            .iter()
                            .map(|(_, v)| UPDATE_KEY_BYTES + prog.val_bytes(v))
                            .sum::<usize>()) as u64;
                }
            }

            // --- deliver messages (push-based, immediate) ---
            // `batches` comes out of routing sorted by destination with at
            // most one batch per destination, so the wake-up list below
            // needs no sort/dedup pass.
            let mut dests = std::mem::take(&mut scratch.touched_dests);
            dests.clear();
            for (dst, b) in batches.drain(..) {
                if traced {
                    self.tracer.instant(
                        pid::ENGINE,
                        w as u32,
                        cat::MSG,
                        "batch",
                        Args::new().with("dst", dst as u32).with("updates", b.updates.len()),
                    );
                }
                let dcell = &cells[dst as usize];
                {
                    let mut st = dcell.stats.lock();
                    st.batches_in += 1;
                    st.updates_in += b.updates.len() as u64;
                }
                let mut inbox = dcell.inbox.lock();
                let eta = inbox.push(b);
                dcell.eta.store(eta, Ordering::Relaxed);
                drop(inbox);
                dests.push(dst);
            }
            scratch.out = batches;
            if traced {
                self.tracer.end(pid::ENGINE, w as u32, cat::ROUND, "round", Args::new());
            }

            // --- post-round coordination ---
            let now1 = start.elapsed().as_secs_f64();
            {
                let mut c = coord.lock();
                cell.rounds.store(round + 1, Ordering::Relaxed);
                if let Some(maxr) = self.opts.max_rounds {
                    if round + 1 > maxr {
                        c.done = true;
                        c.aborted = true;
                        cv.notify_all();
                        return;
                    }
                }
                c.local_work[w] = local_work;
                policy::on_round_complete(&self.opts.mode, &mut c.pstates[w], dt, now1);
                rates.publish(w, c.pstates[w].s_rate, c.pstates[w].t_round);
                if let Mode::Hsync(cfg) = &self.opts.mode {
                    rates.hsync_on_round(cfg);
                }
                c.recompute_bounds(cells);

                // Decide the fate of this worker.
                let d = self.decide::<P>(&c, cells, rates, w, now1);
                if traced {
                    self.tracer.instant(
                        pid::ENGINE,
                        w as u32,
                        cat::POLICY,
                        "decision",
                        Args::new().with("decision", decision_name(&d)).with("round", round + 1),
                    );
                }
                apply_decision(&mut c, cells, cv, w, d, true);

                // Message arrivals re-evaluate their targets (§3: "when Pi
                // receives a new message, DSi is adjusted").
                for &dst in &dests {
                    let dst = dst as usize;
                    if matches!(c.status[dst], Status::Ready | Status::Running) {
                        continue;
                    }
                    let d = self.decide::<P>(&c, cells, rates, dst, now1);
                    apply_decision(&mut c, cells, cv, dst, d, false);
                }
                scratch.touched_dests = dests;

                // Round-bound movement can release held workers (BSP-like
                // holds, SSP bounds, AAP staleness predicate).
                c.recompute_bounds(cells);
                let held: Vec<usize> = c
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, Status::Suspended(_)))
                    .map(|(i, _)| i)
                    .collect();
                for h in held {
                    let d = self.decide::<P>(&c, cells, rates, h, now1);
                    apply_decision(&mut c, cells, cv, h, d, false);
                }

                if c.pending == 0 {
                    c.done = true;
                    cv.notify_all();
                }
            }
        }
    }

    fn decide<P>(
        &self,
        c: &Coord,
        cells: &[Cell<P::Val, P::State>],
        rates: &SharedRates,
        w: usize,
        now: f64,
    ) -> Decision
    where
        P: PieProgram<V, E>,
    {
        let inputs = policy::DeltaInputs {
            eta: cells[w].eta.load(Ordering::Relaxed),
            local_work: c.local_work[w],
            ri: cells[w].rounds.load(Ordering::Relaxed),
            rmin: c.rmin,
            rmax: c.rmax,
            now,
            avg_rate: rates.avg_rate(),
            hsync_sync: rates.hsync_sync(),
        };
        policy::delta(&self.opts.mode, &c.pstates[w], &inputs)
    }
}

/// Static label for a δ decision (trace instants must be heap-free).
fn decision_name(d: &Decision) -> &'static str {
    match d {
        Decision::Run => "run",
        Decision::Delay(_) => "delay",
        Decision::Hold => "hold",
        Decision::Inactive => "inactive",
    }
}

/// Tear the per-worker cells down into run statistics + final states
/// (the shared tail of the BSP and async paths).
fn collect<Val, St>(
    cells: Vec<Cell<Val, St>>,
    mode: &Mode,
    start: Instant,
    aborted: bool,
) -> (RunStats, Vec<St>) {
    let makespan = start.elapsed().as_secs_f64();
    let mut workers = Vec::with_capacity(cells.len());
    let mut states = Vec::with_capacity(cells.len());
    for cell in cells {
        workers.push(cell.stats.into_inner());
        states.push(cell.state.into_inner().expect("round 0 ran on every fragment"));
    }
    (RunStats { mode: mode.name().to_string(), makespan, workers, aborted }, states)
}

/// Share one batch-body recycling pool across all workers of a run, so
/// send-heavy workers reuse the memory receive-heavy workers drain (see
/// [`crate::scratch::SharedPool`]).
fn attach_shared_pool<Val, St>(cells: &[Cell<Val, St>]) {
    let pool: SharedPool<Val> = SharedPool::default();
    for cell in cells {
        cell.scratch.lock().attach_shared_pool(pool.clone());
    }
}

/// Move suspended workers whose deadline has passed to the ready queue.
fn promote_due<Val, St>(c: &mut Coord, cells: &[Cell<Val, St>], now: Instant) {
    for w in 0..c.status.len() {
        if let Status::Suspended(Some(t)) = c.status[w] {
            if t <= now {
                record_suspend_end(c, cells, w, now);
                c.status[w] = Status::Ready;
                c.ready.push_back(w);
            }
        }
    }
}

fn record_suspend_end<Val, St>(c: &mut Coord, cells: &[Cell<Val, St>], w: usize, now: Instant) {
    if let Some(began) = c.suspend_began[w].take() {
        let dt = now.saturating_duration_since(began).as_secs_f64();
        cells[w].stats.lock().suspend_time += dt;
    }
}

/// Apply a δ decision to worker `w`'s scheduler status, maintaining the
/// `pending` count that drives termination.
fn apply_decision<Val, St>(
    c: &mut Coord,
    cells: &[Cell<Val, St>],
    cv: &Condvar,
    w: usize,
    d: Decision,
    was_running: bool,
) {
    let now = Instant::now();
    let old = c.status[w];
    let new_status = match d {
        Decision::Run => Status::Ready,
        Decision::Delay(ds) => {
            let dl = now + std::time::Duration::from_secs_f64(ds.clamp(0.0, 3600.0));
            Status::Suspended(Some(dl))
        }
        Decision::Hold => Status::Suspended(None),
        Decision::Inactive => Status::Inactive,
    };
    // Suspend-time accounting across the transition.
    match (old, new_status) {
        (Status::Suspended(_), Status::Suspended(_)) => {} // keep original start
        (Status::Suspended(_), _) => record_suspend_end(c, cells, w, now),
        (_, Status::Suspended(_)) => c.suspend_began[w] = Some(now),
        _ => {}
    }
    if matches!(new_status, Status::Ready) && (was_running || !matches!(old, Status::Ready)) {
        c.ready.push_back(w);
        cv.notify_one();
    }
    if matches!(new_status, Status::Suspended(Some(_))) {
        // A sleeping scheduler thread may need to adopt this (possibly
        // earlier) wake deadline.
        cv.notify_one();
    }
    c.status[w] = new_status;
    let was_pending = was_running || !matches!(old, Status::Inactive);
    let is_pending = !matches!(new_status, Status::Inactive);
    match (was_pending, is_pending) {
        (true, false) => c.pending -= 1,
        (false, true) => c.pending += 1,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pie::Messages;
    use aap_graph::partition::{build_fragments_n, hash_partition};
    use aap_graph::{GraphBuilder, LocalId};

    /// Minimal min-label propagation (toy CC) for engine-level tests.
    struct MinLabel;

    impl PieProgram<(), u32> for MinLabel {
        type Query = ();
        type Val = u32;
        type State = Vec<u32>;
        type Out = Vec<u32>;

        fn combine(&self, a: &mut u32, b: u32) -> bool {
            if b < *a {
                *a = b;
                true
            } else {
                false
            }
        }

        fn peval(&self, _q: &(), f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u32>) -> Vec<u32> {
            let mut lab: Vec<u32> = (0..f.local_count() as u32).map(|l| f.global(l)).collect();
            propagate(f, &mut lab, (0..f.local_count() as LocalId).collect(), ctx);
            lab
        }

        fn inceval(
            &self,
            _q: &(),
            f: &Fragment<(), u32>,
            lab: &mut Vec<u32>,
            msgs: &mut Messages<u32>,
            ctx: &mut UpdateCtx<u32>,
        ) {
            let mut dirty = Vec::new();
            for (l, v) in msgs.drain(..) {
                if v < lab[l as usize] {
                    lab[l as usize] = v;
                    dirty.push(l);
                    ctx.note_effective(1);
                } else {
                    ctx.note_redundant(1);
                }
            }
            propagate(f, lab, dirty, ctx);
        }

        fn assemble(
            &self,
            _q: &(),
            frags: &[Arc<Fragment<(), u32>>],
            states: Vec<Vec<u32>>,
        ) -> Vec<u32> {
            let n = frags.iter().map(|f| f.owned_count()).sum();
            let mut out = vec![0; n];
            for (f, lab) in frags.iter().zip(states) {
                for l in f.owned_vertices() {
                    out[f.global(l) as usize] = lab[l as usize];
                }
            }
            out
        }
    }

    fn propagate(
        f: &Fragment<(), u32>,
        lab: &mut [u32],
        mut work: Vec<LocalId>,
        ctx: &mut UpdateCtx<u32>,
    ) {
        let mut changed = std::collections::BTreeSet::new();
        for &l in &work {
            if f.is_border(l) {
                changed.insert(l);
            }
        }
        while let Some(u) = work.pop() {
            for &v in f.neighbors(u) {
                if lab[u as usize] < lab[v as usize] {
                    lab[v as usize] = lab[u as usize];
                    work.push(v);
                    if f.is_border(v) {
                        changed.insert(v);
                    }
                }
            }
        }
        for b in changed {
            ctx.send(b, lab[b as usize]);
        }
    }

    fn ring_frags(n: usize, m: usize) -> Vec<Fragment<(), u32>> {
        let mut b = GraphBuilder::new_undirected(n);
        for v in 0..n as u32 {
            b.add_edge(v, (v + 1) % n as u32, 1);
        }
        let g = b.build();
        build_fragments_n(&g, &hash_partition(&g, m), m)
    }

    #[test]
    fn one_thread_hosts_many_virtual_workers() {
        // n (threads) < m (virtual workers): the paper's multiplexed setup.
        let engine = Engine::new(
            ring_frags(200, 12),
            EngineOpts { threads: 1, mode: Mode::aap(), max_rounds: Some(100_000) },
        );
        let out = engine.run(&MinLabel, &());
        assert!(out.out.iter().all(|&l| l == 0));
    }

    #[test]
    fn thread_count_does_not_change_the_fixpoint() {
        let expect: Vec<u32> = vec![0; 150];
        for threads in [1usize, 2, 8, 32] {
            let engine = Engine::new(
                ring_frags(150, 6),
                EngineOpts { threads, mode: Mode::Ap, max_rounds: Some(100_000) },
            );
            assert_eq!(engine.run(&MinLabel, &()).out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn bsp_rounds_are_lockstep() {
        let engine = Engine::new(
            ring_frags(300, 5),
            EngineOpts { threads: 4, mode: Mode::Bsp, max_rounds: Some(100_000) },
        );
        let out = engine.run(&MinLabel, &());
        assert!(out.out.iter().all(|&l| l == 0));
        // Under supersteps, no worker can be more than the full superstep
        // count ahead of another that stayed active throughout.
        let max = out.stats.max_rounds();
        for w in &out.stats.workers {
            assert!(w.rounds <= max);
            assert!(w.rounds >= 1, "every worker ran PEval");
        }
    }

    #[test]
    fn redundant_updates_are_counted() {
        // A dense ring partitioned finely generates plenty of redundant
        // min-updates under AP.
        let engine = Engine::new(
            ring_frags(400, 8),
            EngineOpts { threads: 4, mode: Mode::Ap, max_rounds: Some(100_000) },
        );
        let out = engine.run(&MinLabel, &());
        let eff: u64 = out.stats.workers.iter().map(|w| w.effective_updates).sum();
        assert!(eff > 0, "some updates must have improved labels");
    }

    #[test]
    fn empty_engine_terminates() {
        let engine: Engine<(), u32> = Engine::new(Vec::new(), EngineOpts::default());
        let out = engine.run(&MinLabel, &());
        assert!(out.out.is_empty());
        assert_eq!(out.stats.workers.len(), 0);
    }
}
