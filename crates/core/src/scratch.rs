//! Per-worker reusable scratch memory for the message hot path.
//!
//! Every virtual worker owns one [`Scratch`]: the dense buffers that
//! [`crate::pie::route_updates_into`] and [`crate::inbox::Inbox::drain_into`]
//! work in. All buffers retain their capacity across rounds, so once a
//! worker has warmed up, a steady-state round performs **zero heap
//! allocations** in routing and drain:
//!
//! * dedup/aggregation uses an epoch-stamped sparse set (`stamp`/`slot`)
//!   sized to the fragment's `local_count()` — no hash maps anywhere;
//! * per-destination send buffers are a dense array indexed by the
//!   fragment's [`aap_graph::RoutingTable`] destination slots;
//! * message batch vectors are recycled through a bounded [`Scratch`] pool:
//!   vectors received from peers are emptied by drain and reused for this
//!   worker's own outgoing batches. Traffic need not be symmetric: workers
//!   that receive more batches than they send overflow into an engine-wide
//!   [`SharedPool`], where send-heavy workers replenish — batch-vector
//!   memory circulates sender → receiver → (shared pool) → sender;
//! * the `IncEval` message vector and the `UpdateCtx` update vector are
//!   round-tripped through the scratch as well.
//!
//! The `grow_events` counter records every buffer growth (a reallocation);
//! tests assert it stays flat across steady-state rounds.

use crate::pie::Batch;
use aap_graph::{FragId, Fragment, LocalId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Engine-wide overflow pool of recycled batch bodies, shared by every
/// worker's [`Scratch`] (see [`Scratch::attach_shared_pool`]). Lets
/// memory flow from receive-heavy workers back to send-heavy ones, so the
/// zero-allocation steady state holds for asymmetric traffic (directed
/// graphs, skewed partitions) as well.
pub type SharedPool<Val> = Arc<Mutex<Vec<Vec<(LocalId, Val)>>>>;

/// Epoch-stamped scratch buffers for one virtual worker. Create once per
/// worker (or per run) with [`Scratch::default`]; buffers size themselves
/// to the fragment on first use via [`Scratch::ensure`].
#[derive(Debug)]
pub struct Scratch<Val> {
    /// Current epoch; `stamp[l] == epoch` means `slot[l]` is live.
    epoch: u32,
    /// Per local vertex: epoch of its last touch.
    stamp: Vec<u32>,
    /// Per local vertex: index into the dense vector currently being built
    /// (`uniq` while routing, `msgs` while draining).
    slot: Vec<u32>,
    /// Per peer fragment: epoch stamp for distinct-source counting.
    src_stamp: Vec<u32>,
    /// Deduplicated update set, built by the routing pre-pass.
    pub(crate) uniq: Vec<(LocalId, Val)>,
    /// Per-destination send buffers, parallel to `RoutingTable::dests()`.
    pub(crate) bufs: Vec<Vec<(LocalId, Val)>>,
    /// Aggregated inbound messages (the `Mi` handed to `IncEval`),
    /// round-tripped through the engine so its capacity is reused.
    pub(crate) msgs: Vec<(LocalId, Val)>,
    /// Routed outgoing batches, reused across rounds.
    pub(crate) out: Vec<(FragId, Batch<Val>)>,
    /// Destinations touched by the last delivery (engine wake-up list),
    /// reused across rounds.
    pub(crate) touched_dests: Vec<FragId>,
    /// Recycled update vectors: drained inbound batches come back here and
    /// are handed out again as outgoing batch bodies.
    pool: Vec<Vec<(LocalId, Val)>>,
    /// Engine-wide overflow pool balancing senders against receivers.
    shared: Option<SharedPool<Val>>,
    /// High-water mark of batches this worker sends per round; the local
    /// pool keeps only this many bodies (a receive-heavy worker hoarding
    /// vectors it will never send would starve the senders).
    pub(crate) out_hint: usize,
    /// Spare vector for the next round's `UpdateCtx`.
    pub(crate) updates_spare: Vec<(LocalId, Val)>,
    /// Buffer-growth (reallocation) events observed by the routing/drain
    /// code; flat counts across rounds prove allocation-free steady state.
    pub(crate) grow_events: u64,
}

/// Upper bound on locally pooled vectors; beyond this, drained batch
/// bodies overflow to the [`SharedPool`] (bounds per-worker memory on
/// bursty inboxes).
const POOL_CAP: usize = 64;

/// Upper bound on the engine-wide [`SharedPool`]; beyond this, bodies are
/// dropped.
const SHARED_POOL_CAP: usize = 1024;

impl<Val> Default for Scratch<Val> {
    fn default() -> Self {
        Scratch {
            epoch: 0,
            stamp: Vec::new(),
            slot: Vec::new(),
            src_stamp: Vec::new(),
            uniq: Vec::new(),
            bufs: Vec::new(),
            msgs: Vec::new(),
            out: Vec::new(),
            touched_dests: Vec::new(),
            pool: Vec::new(),
            shared: None,
            out_hint: 0,
            updates_spare: Vec::new(),
            grow_events: 0,
        }
    }
}

impl<Val> Scratch<Val> {
    /// Size the stamp arrays and destination buffers for `frag`. Idempotent
    /// and cheap after the first call; engines call it at round start.
    pub fn ensure<V, E>(&mut self, frag: &Fragment<V, E>) {
        let n = frag.local_count();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.slot.resize(n, 0);
        }
        let m = frag.num_frags() as usize;
        if self.src_stamp.len() < m {
            self.src_stamp.resize(m, 0);
        }
        let d = frag.routing().num_dests();
        if self.bufs.len() < d {
            self.bufs.resize_with(d, Vec::new);
        }
    }

    /// Advance to a fresh epoch, invalidating all stamps in O(1) (except on
    /// the ~4-billionth call, where the arrays are rewritten to keep the
    /// invariant `stamp[l] != epoch` for untouched vertices).
    #[inline]
    pub(crate) fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(u32::MAX);
            self.src_stamp.fill(u32::MAX);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Whether local vertex `l` was touched this epoch; if not, mark it and
    /// record `idx` as its slot. Returns the previously recorded slot on a
    /// repeat touch.
    #[inline]
    pub(crate) fn touch(&mut self, l: LocalId, idx: u32) -> Option<u32> {
        let i = l as usize;
        if self.stamp[i] == self.epoch {
            Some(self.slot[i])
        } else {
            self.stamp[i] = self.epoch;
            self.slot[i] = idx;
            None
        }
    }

    /// Epoch-stamped distinct-source check for drain statistics.
    #[inline]
    pub(crate) fn touch_source(&mut self, src: FragId) -> bool {
        let i = src as usize;
        debug_assert!(
            i < self.src_stamp.len(),
            "batch src {i} out of range: partition has {} fragments",
            self.src_stamp.len()
        );
        if self.src_stamp[i] == self.epoch {
            false
        } else {
            self.src_stamp[i] = self.epoch;
            true
        }
    }

    /// Join an engine-wide [`SharedPool`]; engines attach the same pool to
    /// every worker's scratch at run start.
    pub fn attach_shared_pool(&mut self, pool: SharedPool<Val>) {
        self.shared = Some(pool);
    }

    /// Take a recycled vector for an outgoing batch body: local pool
    /// first, then the shared pool, then a fresh allocation.
    #[inline]
    pub(crate) fn take_vec(&mut self) -> Vec<(LocalId, Val)> {
        if let Some(v) = self.pool.pop() {
            return v;
        }
        if let Some(shared) = &self.shared {
            if let Some(v) = shared.lock().pop() {
                return v;
            }
        }
        Vec::new()
    }

    /// Return an emptied batch body to the local pool, overflowing to the
    /// shared pool (capacity kept either way). The local pool holds at most
    /// as many bodies as this worker ships per round (`out_hint`); the rest
    /// go back to the engine-wide pool where send-heavy workers find them.
    #[inline]
    pub(crate) fn recycle_vec(&mut self, mut v: Vec<(LocalId, Val)>) {
        v.clear();
        if v.capacity() == 0 {
            return;
        }
        if self.pool.len() < self.out_hint.min(POOL_CAP) {
            self.pool.push(v);
        } else if let Some(shared) = &self.shared {
            let mut shared = shared.lock();
            if shared.len() < SHARED_POOL_CAP {
                shared.push(v);
            }
        } else if self.pool.len() < POOL_CAP {
            // No shared pool (standalone scratch): fall back to hoarding
            // locally so one-shot callers still recycle.
            self.pool.push(v);
        }
    }

    /// Recycle a delivered (or undeliverable) batch's body into the pool,
    /// for external engine loops driving the routing path directly.
    pub fn recycle_batch(&mut self, batch: Batch<Val>) {
        self.recycle_vec(batch.updates);
    }

    /// Buffer-growth (reallocation) events so far. The routing/drain code
    /// bumps this whenever a push is about to exceed a buffer's capacity —
    /// a two-load check cheap enough to keep in release builds, which lets
    /// integration tests verify the zero-allocation claim without a custom
    /// allocator.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Hand out a (possibly recycled) empty vector for `UpdateCtx`.
    pub fn take_updates_buf(&mut self) -> Vec<(LocalId, Val)> {
        std::mem::take(&mut self.updates_spare)
    }

    /// Return the `UpdateCtx` vector after routing consumed its contents.
    pub fn give_updates_buf(&mut self, mut v: Vec<(LocalId, Val)>) {
        v.clear();
        self.updates_spare = v;
    }

    /// Take the aggregated-message buffer (drain output / `IncEval` input).
    pub fn take_msgs(&mut self) -> Vec<(LocalId, Val)> {
        std::mem::take(&mut self.msgs)
    }

    /// Return the message buffer after `IncEval` consumed it.
    pub fn give_msgs(&mut self, mut v: Vec<(LocalId, Val)>) {
        v.clear();
        self.msgs = v;
    }

    /// Take the reusable outgoing-batch list (for
    /// [`crate::pie::route_updates_into`]'s `out` parameter).
    pub fn take_out(&mut self) -> Vec<(FragId, Batch<Val>)> {
        std::mem::take(&mut self.out)
    }

    /// Return the (drained) outgoing-batch list after delivery.
    pub fn give_out(&mut self, mut v: Vec<(FragId, Batch<Val>)>) {
        v.clear();
        self.out = v;
    }

    /// Pre-size the per-destination buffers and the batch pool from
    /// observed traffic (`updates`: expected raw updates per round,
    /// `batches`: expected inbound batches per round). Called by engines
    /// with [`crate::inbox::DrainInfo`] history so the first post-warmup
    /// rounds already have capacity.
    pub fn reserve_for_traffic(&mut self, updates: usize, batches: usize) {
        let per_dest = updates / self.bufs.len().max(1) + 1;
        for b in &mut self.bufs {
            if b.capacity() < per_dest {
                b.reserve(per_dest - b.len());
            }
        }
        while self.pool.len() < batches.min(POOL_CAP) {
            self.pool.push(Vec::with_capacity(per_dest));
        }
    }
}
