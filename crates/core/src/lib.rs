//! # aap-core
//!
//! The PIE programming model (§2) and the **Adaptive Asynchronous Parallel**
//! runtime (§3, §6) of
//! *Adaptive Asynchronous Parallelization of Graph Algorithms* (SIGMOD'18) —
//! i.e. the GRAPE+ engine.
//!
//! * [`pie`] — the `PEval`/`IncEval`/`Assemble` programming model with
//!   update parameters and aggregate functions;
//! * [`policy`] — execution modes (BSP, AP, SSP, AAP, Hsync) expressed as
//!   instances of the delay-stretch function `δ` (Eq. 1);
//! * [`inbox`] — the per-worker message buffer `Bx̄i` with staleness
//!   tracking;
//! * [`engine`] — the multithreaded shared-memory engine: `m` virtual
//!   workers over `n` threads, push-based point-to-point messages, and the
//!   inactive/terminate protocol;
//! * [`stats`] — the statistics collector (response time, communication,
//!   rounds, stale computation);
//! * [`publish`] — the epoch-published assembled-output handle behind
//!   concurrent serving (single writer, lock-free steady-state readers);
//! * [`theory`] — executable checks for the convergence conditions T1–T3
//!   and the Church–Rosser property (§4).
//!
//! ```
//! use aap_core::prelude::*;
//! use aap_graph::{generate, partition};
//!
//! // Min-label propagation (a toy CC) over a small power-law graph.
//! struct MinLabel;
//! impl PieProgram<(), u32> for MinLabel {
//!     type Query = ();
//!     type Val = u32;
//!     type State = Vec<u32>;
//!     type Out = Vec<u32>;
//!     fn combine(&self, a: &mut u32, b: u32) -> bool { if b < *a { *a = b; true } else { false } }
//!     fn peval(&self, _q: &(), f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u32>) -> Vec<u32> {
//!         let mut lab: Vec<u32> = (0..f.local_count() as u32).map(|l| f.global(l)).collect();
//!         propagate(f, &mut lab, (0..f.local_count() as u32).collect(), ctx);
//!         lab
//!     }
//!     fn inceval(&self, _q: &(), f: &Fragment<(), u32>, lab: &mut Vec<u32>,
//!                msgs: &mut Messages<u32>, ctx: &mut UpdateCtx<u32>) {
//!         let mut dirty = Vec::new();
//!         for (l, v) in msgs.drain(..) {
//!             if v < lab[l as usize] { lab[l as usize] = v; dirty.push(l); }
//!         }
//!         propagate(f, lab, dirty, ctx);
//!     }
//!     fn assemble(&self, _q: &(), frags: &[std::sync::Arc<Fragment<(), u32>>],
//!                 states: Vec<Vec<u32>>) -> Vec<u32> {
//!         let n = frags.iter().map(|f| f.owned_count()).sum();
//!         let mut out = vec![0; n];
//!         for (f, lab) in frags.iter().zip(states) {
//!             for l in f.owned_vertices() { out[f.global(l) as usize] = lab[l as usize]; }
//!         }
//!         out
//!     }
//! }
//!
//! fn propagate(f: &Fragment<(), u32>, lab: &mut [u32], mut work: Vec<u32>, ctx: &mut UpdateCtx<u32>) {
//!     let mut changed_border = std::collections::BTreeSet::new();
//!     while let Some(u) = work.pop() {
//!         for &v in f.neighbors(u) {
//!             if lab[u as usize] < lab[v as usize] {
//!                 lab[v as usize] = lab[u as usize];
//!                 work.push(v);
//!                 if f.is_border(v) { changed_border.insert(v); }
//!             }
//!         }
//!         if f.is_border(u) { changed_border.insert(u); }
//!     }
//!     for b in changed_border { ctx.send(b, lab[b as usize]); }
//! }
//!
//! let g = generate::small_world(200, 3, 0.1, 7);
//! let frags = partition::build_fragments(&g, &partition::hash_partition(&g, 4));
//! let engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
//! let out = engine.run(&MinLabel, &());
//! assert!(out.out.iter().all(|&l| l == 0)); // connected: everything reaches label 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod inbox;
pub mod pie;
pub mod policy;
pub mod publish;
pub mod scratch;
pub mod stats;
pub mod theory;

/// Convenient re-exports for engine users and PIE program authors.
pub mod prelude {
    pub use crate::engine::{Engine, EngineOpts, RunOutput, RunState};
    pub use crate::pie::{Messages, PieProgram, Round, UpdateCtx, WarmStart, WarmStrategy};
    pub use crate::policy::{AapConfig, HsyncConfig, Mode};
    pub use crate::stats::{RunStats, WorkerStats};
    pub use aap_graph::{FragId, Fragment, LocalId, Route, VertexId};
}

pub use engine::{
    AttachError, Engine, EngineOpts, PlanCache, PortableFragState, PortableRunState, RunOutput,
    RunState,
};
pub use pie::{
    Batch, DeltaChanges, Messages, PieProgram, Round, UpdateCtx, WarmStart, WarmStrategy,
};
pub use policy::{AapConfig, Decision, HsyncConfig, Mode};
pub use publish::{EpochCell, EpochReader};
pub use scratch::Scratch;
pub use stats::{RunStats, WorkerStats};
