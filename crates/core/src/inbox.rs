//! The per-worker message buffer `Bx̄i` of §3.
//!
//! Workers receive batches `M(j, i)` at any time and stash them here without
//! blocking. The *staleness* `ηi` — "the number of messages in buffer
//! `Bx̄i` received by `Pi` from distinct workers" — is the number of
//! buffered batches (each batch is one designated message from one worker's
//! round). Draining applies `faggr` across all buffered values per vertex,
//! producing the aggregated change set `Mi = faggr(Bx̄i ∪ Ci.x̄)` that
//! `IncEval` consumes.
//!
//! Batches arrive addressed in *this* fragment's local id space (the
//! sender's routing table translated them; see
//! [`aap_graph::RoutingTable`]), so draining is pure dense-array work: an
//! epoch-stamped sparse set combines values per vertex with no hash-map
//! traversal and — with a warm [`Scratch`] — no heap allocation.

use crate::pie::{Batch, Messages, PieProgram, Round};
use crate::scratch::Scratch;
use aap_graph::Fragment;

/// Message buffer for one virtual worker. The batch vector's capacity is
/// retained across drains (`Vec::drain`), so a steady-state inbox never
/// regrows from zero.
#[derive(Debug)]
pub struct Inbox<Val> {
    batches: Vec<Batch<Val>>,
    /// Total raw updates buffered (for stats).
    buffered_updates: usize,
}

impl<Val> Default for Inbox<Val> {
    fn default() -> Self {
        Inbox { batches: Vec::new(), buffered_updates: 0 }
    }
}

/// Summary of one drain, feeding the δ-function statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainInfo {
    /// Batches consumed (the staleness `ηi` at drain time).
    pub batches: usize,
    /// Raw updates consumed (before `faggr` deduplication).
    pub raw_updates: usize,
    /// Distinct sending workers.
    pub distinct_sources: usize,
    /// Highest round tag among consumed batches.
    pub max_round: Round,
}

impl<Val> Inbox<Val> {
    /// Buffer one incoming batch. Returns the new staleness `ηi`.
    pub fn push(&mut self, batch: Batch<Val>) -> usize {
        self.buffered_updates += batch.updates.len();
        self.batches.push(batch);
        self.batches.len()
    }

    /// Current staleness `ηi` (number of buffered batches).
    #[inline]
    pub fn eta(&self) -> usize {
        self.batches.len()
    }

    /// True if no messages are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Raw buffered update count.
    #[inline]
    pub fn buffered_updates(&self) -> usize {
        self.buffered_updates
    }

    /// Drain everything into `scratch.msgs`, combining values per local
    /// vertex with the program's `faggr`; the result is sorted by local id.
    /// Batch bodies are recycled into the scratch's pool so the worker's
    /// own sends reuse their capacity. Updates for vertices outside the
    /// fragment are impossible by construction of the routing tables and
    /// are rejected in debug builds.
    pub fn drain_into<V, E, P>(
        &mut self,
        prog: &P,
        frag: &Fragment<V, E>,
        scratch: &mut Scratch<P::Val>,
    ) -> DrainInfo
    where
        P: PieProgram<V, E, Val = Val> + ?Sized,
    {
        scratch.ensure(frag);
        scratch.next_epoch();
        scratch.msgs.clear();
        let mut distinct_sources = 0usize;
        let mut max_round = 0;
        let info_batches = self.batches.len();
        let info_raw = self.buffered_updates;
        let local_count = frag.local_count();
        for batch in self.batches.drain(..) {
            if scratch.touch_source(batch.src) {
                distinct_sources += 1;
            }
            max_round = max_round.max(batch.round);
            let mut updates = batch.updates;
            for (l, v) in updates.drain(..) {
                debug_assert!(
                    (l as usize) < local_count,
                    "update for local {l} outside fragment (local_count {local_count})"
                );
                let idx = scratch.msgs.len() as u32;
                match scratch.touch(l, idx) {
                    Some(prev) => {
                        prog.combine(&mut scratch.msgs[prev as usize].1, v);
                    }
                    None => {
                        if scratch.msgs.len() == scratch.msgs.capacity() {
                            scratch.grow_events += 1;
                        }
                        scratch.msgs.push((l, v));
                    }
                }
            }
            scratch.recycle_vec(updates);
        }
        self.buffered_updates = 0;
        scratch.msgs.sort_unstable_by_key(|&(l, _)| l);
        DrainInfo { batches: info_batches, raw_updates: info_raw, distinct_sources, max_round }
    }

    /// Convenience wrapper over [`Inbox::drain_into`] with a throwaway
    /// scratch — for tests and one-shot callers; engines keep a per-worker
    /// [`Scratch`].
    pub fn drain<V, E, P>(
        &mut self,
        prog: &P,
        frag: &Fragment<V, E>,
    ) -> (Messages<P::Val>, DrainInfo)
    where
        P: PieProgram<V, E, Val = Val> + ?Sized,
    {
        let mut scratch = Scratch::default();
        let info = self.drain_into(prog, frag, &mut scratch);
        (scratch.take_msgs(), info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::partition::build_fragments;
    use aap_graph::GraphBuilder;

    struct Min;
    impl PieProgram<(), u32> for Min {
        type Query = ();
        type Val = u64;
        type State = ();
        type Out = ();
        fn combine(&self, a: &mut u64, b: u64) -> bool {
            if b < *a {
                *a = b;
                true
            } else {
                false
            }
        }
        fn peval(&self, _: &(), _: &Fragment<(), u32>, _: &mut crate::pie::UpdateCtx<u64>) {}
        fn inceval(
            &self,
            _: &(),
            _: &Fragment<(), u32>,
            _: &mut (),
            _: &mut Messages<u64>,
            _: &mut crate::pie::UpdateCtx<u64>,
        ) {
        }
        fn assemble(&self, _: &(), _: &[std::sync::Arc<Fragment<(), u32>>], _: Vec<()>) {}
    }

    fn frag() -> Fragment<(), u32> {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let mut frags = build_fragments(&g, &[0, 0, 1, 1]);
        frags.swap_remove(1) // fragment 1, owns {2, 3}, mirrors {1}
    }

    #[test]
    fn eta_counts_batches_not_updates() {
        let f = frag();
        let l2 = f.local(2).unwrap();
        let l3 = f.local(3).unwrap();
        let mut inbox: Inbox<u64> = Inbox::default();
        inbox.push(Batch { src: 0, round: 1, updates: vec![(l2, 5)] });
        inbox.push(Batch { src: 0, round: 2, updates: vec![(l2, 4), (l3, 9)] });
        assert_eq!(inbox.eta(), 2);
        assert_eq!(inbox.buffered_updates(), 3);
        let (msgs, info) = inbox.drain(&Min, &f);
        assert_eq!(info.batches, 2);
        assert_eq!(info.raw_updates, 3);
        assert_eq!(info.distinct_sources, 1);
        assert_eq!(info.max_round, 2);
        // values combined per-vertex with min
        let mut expect = vec![(l2, 4u64), (l3, 9)];
        expect.sort_unstable_by_key(|&(l, _)| l);
        assert_eq!(msgs, expect);
        assert!(inbox.is_empty());
        assert_eq!(inbox.eta(), 0);
    }

    #[test]
    fn drain_on_empty_is_noop() {
        let f = frag();
        let mut inbox: Inbox<u64> = Inbox::default();
        let (msgs, info) = inbox.drain(&Min, &f);
        assert!(msgs.is_empty());
        assert_eq!(info.batches, 0);
    }

    #[test]
    fn distinct_sources_counted_per_drain() {
        let f = frag();
        let l2 = f.local(2).unwrap();
        let mut inbox: Inbox<u64> = Inbox::default();
        let mut scratch: Scratch<u64> = Scratch::default();
        for src in [0u16, 0, 1, 1, 0] {
            inbox.push(Batch { src, round: 1, updates: vec![(l2, src as u64)] });
        }
        let info = inbox.drain_into(&Min, &f, &mut scratch);
        assert_eq!(info.distinct_sources, 2);
        assert_eq!(scratch.take_msgs(), vec![(l2, 0u64)]);
        // A second drain must not be confused by the previous epoch.
        inbox.push(Batch { src: 1, round: 2, updates: vec![(l2, 7)] });
        let info = inbox.drain_into(&Min, &f, &mut scratch);
        assert_eq!(info.distinct_sources, 1);
    }

    #[test]
    fn steady_state_drains_do_not_grow_buffers() {
        let f = frag();
        let l2 = f.local(2).unwrap();
        let l3 = f.local(3).unwrap();
        let mut inbox: Inbox<u64> = Inbox::default();
        let mut scratch: Scratch<u64> = Scratch::default();
        // Warm-up round sizes every buffer.
        for round in 0..3u32 {
            inbox.push(Batch { src: 0, round, updates: vec![(l2, 5), (l3, 1)] });
            inbox.push(Batch { src: 1, round, updates: vec![(l2, 4)] });
            let _ = inbox.drain_into(&Min, &f, &mut scratch);
        }
        let after_warmup = scratch.grow_events();
        for round in 3..50u32 {
            // Note: pushing fresh vec![] here allocates *in the test*, but
            // the drain itself must not grow any scratch buffer.
            inbox.push(Batch { src: 0, round, updates: vec![(l2, 5), (l3, 1)] });
            inbox.push(Batch { src: 1, round, updates: vec![(l2, 4)] });
            let _ = inbox.drain_into(&Min, &f, &mut scratch);
        }
        assert_eq!(scratch.grow_events(), after_warmup, "steady-state drain reallocated");
    }
}
