//! The per-worker message buffer `Bx̄i` of §3.
//!
//! Workers receive batches `M(j, i)` at any time and stash them here without
//! blocking. The *staleness* `ηi` — "the number of messages in buffer
//! `Bx̄i` received by `Pi` from distinct workers" — is the number of
//! buffered batches (each batch is one designated message from one worker's
//! round). Draining applies `faggr` across all buffered values per vertex,
//! producing the aggregated change set `Mi = faggr(Bx̄i ∪ Ci.x̄)` that
//! `IncEval` consumes.

use crate::pie::{Batch, Messages, PieProgram, Round};
use aap_graph::{FragId, Fragment, FxHashMap, FxHashSet};

/// Message buffer for one virtual worker.
#[derive(Debug)]
pub struct Inbox<Val> {
    batches: Vec<Batch<Val>>,
    /// Total raw updates buffered (for stats).
    buffered_updates: usize,
}

impl<Val> Default for Inbox<Val> {
    fn default() -> Self {
        Inbox { batches: Vec::new(), buffered_updates: 0 }
    }
}

/// Summary of one drain, feeding the δ-function statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainInfo {
    /// Batches consumed (the staleness `ηi` at drain time).
    pub batches: usize,
    /// Raw updates consumed (before `faggr` deduplication).
    pub raw_updates: usize,
    /// Distinct sending workers.
    pub distinct_sources: usize,
    /// Highest round tag among consumed batches.
    pub max_round: Round,
}

impl<Val> Inbox<Val> {
    /// Buffer one incoming batch. Returns the new staleness `ηi`.
    pub fn push(&mut self, batch: Batch<Val>) -> usize {
        self.buffered_updates += batch.updates.len();
        self.batches.push(batch);
        self.batches.len()
    }

    /// Current staleness `ηi` (number of buffered batches).
    #[inline]
    pub fn eta(&self) -> usize {
        self.batches.len()
    }

    /// True if no messages are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Raw buffered update count.
    #[inline]
    pub fn buffered_updates(&self) -> usize {
        self.buffered_updates
    }

    /// Drain everything, combining values per *local* vertex with the
    /// program's `faggr`. Updates for vertices unknown to `frag` are
    /// impossible by construction of the routing tables and are rejected in
    /// debug builds.
    pub fn drain<V, E, P>(
        &mut self,
        prog: &P,
        frag: &Fragment<V, E>,
    ) -> (Messages<P::Val>, DrainInfo)
    where
        P: PieProgram<V, E, Val = Val> + ?Sized,
    {
        let mut map: FxHashMap<aap_graph::LocalId, Val> = FxHashMap::default();
        let mut sources: FxHashSet<FragId> = FxHashSet::default();
        let mut max_round = 0;
        let info_batches = self.batches.len();
        let info_raw = self.buffered_updates;
        for batch in self.batches.drain(..) {
            sources.insert(batch.src);
            max_round = max_round.max(batch.round);
            for (g, v) in batch.updates {
                let Some(l) = frag.local(g) else {
                    debug_assert!(false, "update for vertex {g} not present in fragment");
                    continue;
                };
                match map.entry(l) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        prog.combine(e.get_mut(), v);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
        }
        self.buffered_updates = 0;
        let mut msgs: Messages<Val> = map.into_iter().collect();
        msgs.sort_unstable_by_key(|&(l, _)| l);
        let info = DrainInfo {
            batches: info_batches,
            raw_updates: info_raw,
            distinct_sources: sources.len(),
            max_round,
        };
        (msgs, info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::partition::build_fragments;
    use aap_graph::GraphBuilder;

    struct Min;
    impl PieProgram<(), u32> for Min {
        type Query = ();
        type Val = u64;
        type State = ();
        type Out = ();
        fn combine(&self, a: &mut u64, b: u64) -> bool {
            if b < *a {
                *a = b;
                true
            } else {
                false
            }
        }
        fn peval(
            &self,
            _: &(),
            _: &Fragment<(), u32>,
            _: &mut crate::pie::UpdateCtx<u64>,
        ) {
        }
        fn inceval(
            &self,
            _: &(),
            _: &Fragment<(), u32>,
            _: &mut (),
            _: Messages<u64>,
            _: &mut crate::pie::UpdateCtx<u64>,
        ) {
        }
        fn assemble(
            &self,
            _: &(),
            _: &[std::sync::Arc<Fragment<(), u32>>],
            _: Vec<()>,
        ) {
        }
    }

    fn frag() -> Fragment<(), u32> {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let mut frags = build_fragments(&g, &[0, 0, 1, 1]);
        frags.swap_remove(1) // fragment 1, owns {2, 3}, mirrors {1}
    }

    #[test]
    fn eta_counts_batches_not_updates() {
        let f = frag();
        let mut inbox: Inbox<u64> = Inbox::default();
        inbox.push(Batch { src: 0, round: 1, updates: vec![(2, 5)] });
        inbox.push(Batch { src: 0, round: 2, updates: vec![(2, 4), (3, 9)] });
        assert_eq!(inbox.eta(), 2);
        assert_eq!(inbox.buffered_updates(), 3);
        let (msgs, info) = inbox.drain(&Min, &f);
        assert_eq!(info.batches, 2);
        assert_eq!(info.raw_updates, 3);
        assert_eq!(info.distinct_sources, 1);
        assert_eq!(info.max_round, 2);
        // values combined per-vertex with min
        let l2 = f.local(2).unwrap();
        let l3 = f.local(3).unwrap();
        let mut expect = vec![(l2, 4u64), (l3, 9)];
        expect.sort_unstable_by_key(|&(l, _)| l);
        assert_eq!(msgs, expect);
        assert!(inbox.is_empty());
        assert_eq!(inbox.eta(), 0);
    }

    #[test]
    fn drain_on_empty_is_noop() {
        let f = frag();
        let mut inbox: Inbox<u64> = Inbox::default();
        let (msgs, info) = inbox.drain(&Min, &f);
        assert!(msgs.is_empty());
        assert_eq!(info.batches, 0);
    }
}
