//! Execution modes and the delay-stretch function `δ` (§3, Eq. 1).
//!
//! Every worker `Pi` keeps a delay stretch `DSi`: how long to stay suspended
//! accumulating updates before its next `IncEval` round. The paper's Eq. (1):
//!
//! ```text
//!        ⎧ +∞             ¬S(ri, rmin, rmax) ∨ (ηi = 0)
//! DSi = ⎨ T_Li − T_idle   S(...) ∧ (1 ≤ ηi < Li)
//!        ⎩ 0               S(...) ∧ (ηi ≥ Li)
//! ```
//!
//! with `T_Li ≈ (Li − ηi) / si` (time to accumulate `Li` batches at arrival
//! rate `si`) and `T_idle` the idle time since the last round. `Li` is
//! adjusted every round from the predicted round time `ti` and arrival rate
//! `si` (both EWMA estimates here, standing in for the paper's aggregated
//! statistics / random-forest predictor).
//!
//! **BSP, AP and SSP are special cases** (§3 "Special cases"): fixing `δ`
//! appropriately recovers each, which is exactly how [`delta`] implements
//! them — one function, five modes. Hsync (PowerSwitch) is simulated by a
//! global AP/BSP switch driven by the observed straggler ratio.

use crate::pie::Round;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Parallel-execution mode: which `δ` the workers run under.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Bulk Synchronous Parallel: global supersteps (`DSi = ∞` iff
    /// `ri > rmin`). Pregel/GRAPE behaviour.
    Bsp,
    /// Asynchronous Parallel: run whenever the buffer is non-empty
    /// (`DSi = 0`). GraphLab-async/Maiter behaviour.
    Ap,
    /// Stale Synchronous Parallel with bound `c`: the fastest worker may
    /// lead the slowest by at most `c` rounds.
    Ssp {
        /// Bounded staleness: maximum lead in rounds.
        c: u32,
    },
    /// Adaptive Asynchronous Parallel (the paper's contribution): dynamic
    /// `DSi` per Eq. (1).
    Aap(AapConfig),
    /// Hsync/PowerSwitch: globally switch between AP and BSP phases based
    /// on the observed straggler ratio.
    Hsync(HsyncConfig),
}

impl Mode {
    /// Default AAP mode.
    pub fn aap() -> Self {
        Mode::Aap(AapConfig::default())
    }

    /// Short machine-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Bsp => "BSP",
            Mode::Ap => "AP",
            Mode::Ssp { .. } => "SSP",
            Mode::Aap(_) => "AAP",
            Mode::Hsync(_) => "Hsync",
        }
    }
}

/// Tuning knobs for AAP's dynamic adjustment (§3 "Dynamic adjustment").
#[derive(Debug, Clone, PartialEq)]
pub struct AapConfig {
    /// `L⊥`: initial/uniform lower bound on batches to accumulate.
    pub l_floor: f64,
    /// If set, `L⊥` is this fraction of `(m − 1)` (the Appendix-B CF run
    /// uses 0.6: wait for messages from 60% of the other workers).
    pub l_floor_frac: Option<f64>,
    /// `Δti` as a fraction of the predicted round time `ti`.
    pub delta_fraction: f64,
    /// Bounded-staleness predicate `S`: `None` disables it (CC, SSSP and
    /// PageRank need no bound, §5.3); `Some(c)` enforces SSP-style bounds
    /// (needed by CF).
    pub staleness_bound: Option<u32>,
    /// EWMA smoothing for the `ti` and `si` estimates.
    pub ewma_alpha: f64,
    /// Cap on `DSi` expressed in multiples of `ti`, so a worker never waits
    /// unboundedly when the arrival-rate estimate is off.
    pub max_wait_rounds: f64,
}

impl Default for AapConfig {
    fn default() -> Self {
        AapConfig {
            l_floor: 0.0,
            l_floor_frac: None,
            delta_fraction: 0.5,
            staleness_bound: None,
            ewma_alpha: 0.3,
            max_wait_rounds: 1.0,
        }
    }
}

/// Hsync (PowerSwitch) switching heuristics.
#[derive(Debug, Clone, PartialEq)]
pub struct HsyncConfig {
    /// Re-evaluate the global mode every this many completed rounds.
    pub window: u32,
    /// Switch to AP when `max(ti)/median(ti)` exceeds this ratio; back to
    /// BSP-like lockstep when it falls below.
    pub straggler_threshold: f64,
}

impl Default for HsyncConfig {
    fn default() -> Self {
        HsyncConfig { window: 8, straggler_threshold: 1.5 }
    }
}

/// What a worker should do next, as decided by `δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Start the next round immediately (`DSi = 0`).
    Run,
    /// Suspend for the given time, then re-evaluate (`DSi` finite).
    Delay(f64),
    /// Suspend indefinitely (`DSi = ∞`); re-evaluated when the global round
    /// bounds move or a message arrives.
    Hold,
    /// Buffer empty — nothing to do until a message arrives.
    Inactive,
}

/// Per-worker statistics driving `δ`: the paper's `ti`, `si`, `Li`,
/// `T_idle` (§3).
#[derive(Debug, Clone)]
pub struct PolicyState {
    /// Current accumulation target `Li` (in batches).
    pub li: f64,
    /// EWMA of the round compute time `ti`.
    pub t_round: f64,
    /// EWMA of the message-batch arrival rate `si` (batches per time unit).
    pub s_rate: f64,
    /// Time at which the worker last became idle.
    pub idle_since: f64,
    /// Time of the last buffer drain (for arrival-rate measurement).
    pub last_drain: f64,
}

impl PolicyState {
    /// Initial state at time 0 with the configured `L⊥`.
    pub fn new(cfg_l_floor: f64) -> Self {
        PolicyState { li: cfg_l_floor, t_round: 0.0, s_rate: 0.0, idle_since: 0.0, last_drain: 0.0 }
    }
}

/// Inputs to one `δ` evaluation.
#[derive(Debug, Clone, Copy)]
pub struct DeltaInputs {
    /// Staleness `ηi`: buffered batches.
    pub eta: usize,
    /// The worker has pending local-only work (vertex-centric adapter).
    pub local_work: bool,
    /// Rounds completed by this worker (`ri`).
    pub ri: Round,
    /// Minimum completed round over non-inactive workers (`rmin`).
    pub rmin: Round,
    /// Maximum completed round over all workers (`rmax`).
    pub rmax: Round,
    /// Current time (seconds for the threaded engine, virtual units for the
    /// simulator).
    pub now: f64,
    /// Mean arrival rate across workers (for the `Li` heuristic).
    pub avg_rate: f64,
    /// Hsync only: is the global switch currently in lockstep (BSP) phase?
    pub hsync_sync: bool,
}

/// Effective `L⊥` for a cluster of `m` workers.
pub fn l_floor(cfg: &AapConfig, m: usize) -> f64 {
    match cfg.l_floor_frac {
        Some(f) => f * (m.saturating_sub(1)) as f64,
        None => cfg.l_floor,
    }
}

/// The delay-stretch function `δ` (Eq. 1), covering all five modes.
pub fn delta(mode: &Mode, ps: &PolicyState, inp: &DeltaInputs) -> Decision {
    let has_work = inp.eta > 0 || inp.local_work;
    if !has_work {
        return Decision::Inactive;
    }
    match mode {
        Mode::Bsp => {
            if inp.ri > inp.rmin {
                Decision::Hold
            } else {
                Decision::Run
            }
        }
        Mode::Ap => Decision::Run,
        Mode::Ssp { c } => {
            if inp.ri > inp.rmin.saturating_add(*c) {
                Decision::Hold
            } else {
                Decision::Run
            }
        }
        Mode::Hsync(_) => {
            if inp.hsync_sync && inp.ri > inp.rmin {
                Decision::Hold
            } else {
                Decision::Run
            }
        }
        Mode::Aap(cfg) => {
            // Predicate S: false when this worker is the front runner and
            // the spread exceeds the staleness bound.
            if let Some(c) = cfg.staleness_bound {
                if inp.ri >= inp.rmax && inp.rmax.saturating_sub(inp.rmin) > c {
                    return Decision::Hold;
                }
            }
            if inp.local_work || (inp.eta as f64) >= ps.li {
                return Decision::Run;
            }
            // 1 ≤ ηi < Li: wait T_Li − T_idle, where T_Li = (Li − ηi)/si.
            // Waiting is only worthwhile when Li is *reachable* within the
            // horizon (`max_wait_rounds · ti`); otherwise no useful batch
            // of messages is predicted to arrive in time and the worker
            // runs at once (Example 4: "DSi = 0 ... since no messages are
            // predicted to arrive within the next time unit").
            if ps.s_rate <= 1e-12 {
                return Decision::Run;
            }
            let horizon =
                if ps.t_round > 0.0 { cfg.max_wait_rounds * ps.t_round } else { f64::MAX };
            let t_li = (ps.li - inp.eta as f64) / ps.s_rate;
            if t_li > horizon {
                return Decision::Run;
            }
            let t_idle = (inp.now - ps.idle_since).max(0.0);
            let ds = t_li - t_idle;
            if ds <= 1e-12 {
                Decision::Run
            } else {
                Decision::Delay(ds)
            }
        }
    }
}

/// Update the per-worker estimates when a round's buffer is drained:
/// measures the arrival rate and re-targets `Li` (§3: "When si is above the
/// average rate, Li is changed to max(ηi, L⊥) + Δti · si").
pub fn on_drain(
    mode: &Mode,
    ps: &mut PolicyState,
    drained_batches: usize,
    now: f64,
    m: usize,
    avg_rate: f64,
    fast_workers: usize,
) {
    let Mode::Aap(cfg) = mode else {
        ps.last_drain = now;
        return;
    };
    let dt = now - ps.last_drain;
    if dt > 1e-12 {
        let rate = drained_batches as f64 / dt;
        ps.s_rate = if ps.s_rate == 0.0 {
            rate
        } else {
            cfg.ewma_alpha * rate + (1.0 - cfg.ewma_alpha) * ps.s_rate
        };
    }
    ps.last_drain = now;
    // "L⊥ is adjusted with the number of 'fast' workers" (§3): once round
    // times are known, a worker should accumulate messages from about half
    // the fast group before starting, which is what groups fast workers
    // into near-BSP cadence (§3 observation (1b)).
    let group_floor = 0.5 * fast_workers.saturating_sub(1) as f64;
    let base = (drained_batches as f64).max(l_floor(cfg, m)).max(group_floor);
    ps.li = if ps.s_rate > avg_rate && avg_rate > 0.0 {
        base + cfg.delta_fraction * ps.t_round * ps.s_rate
    } else {
        base
    };
}

/// Update the round-time estimate `ti` when a round completes.
pub fn on_round_complete(mode: &Mode, ps: &mut PolicyState, round_time: f64, now: f64) {
    let alpha = match mode {
        Mode::Aap(cfg) => cfg.ewma_alpha,
        _ => 0.3,
    };
    ps.t_round = if ps.t_round == 0.0 {
        round_time
    } else {
        alpha * round_time + (1.0 - alpha) * ps.t_round
    };
    ps.idle_since = now;
}

/// Lock-free mirrors of each worker's `si`/`ti` estimates, so `δ`
/// evaluations and the Hsync controller can read global statistics without
/// touching per-worker locks (§6 "statistics collector").
#[derive(Debug)]
pub struct SharedRates {
    rates: Vec<AtomicU64>,
    times: Vec<AtomicU64>,
    hsync_sync: AtomicBool,
    rounds_since_switch_eval: AtomicU64,
}

impl SharedRates {
    /// Create for `m` workers. Hsync starts in lockstep (BSP) phase, as
    /// PowerSwitch starts in sync mode.
    pub fn new(m: usize) -> Self {
        SharedRates {
            rates: (0..m).map(|_| AtomicU64::new(0)).collect(),
            times: (0..m).map(|_| AtomicU64::new(0)).collect(),
            hsync_sync: AtomicBool::new(true),
            rounds_since_switch_eval: AtomicU64::new(0),
        }
    }

    /// Publish worker `w`'s current estimates.
    pub fn publish(&self, w: usize, s_rate: f64, t_round: f64) {
        self.rates[w].store(s_rate.to_bits(), Ordering::Relaxed);
        self.times[w].store(t_round.to_bits(), Ordering::Relaxed);
    }

    /// Mean arrival rate over workers with a measurement.
    pub fn avg_rate(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.rates {
            let v = f64::from_bits(r.load(Ordering::Relaxed));
            if v > 0.0 {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Number of "fast" workers: measured round time within 1.5x of the
    /// median (used for the `L⊥` adjustment of §3).
    pub fn fast_count(&self) -> usize {
        let mut ts: Vec<f64> = self
            .times
            .iter()
            .map(|t| f64::from_bits(t.load(Ordering::Relaxed)))
            .filter(|&t| t > 0.0)
            .collect();
        if ts.is_empty() {
            return 0;
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("positive finite"));
        let median = ts[ts.len() / 2];
        ts.iter().filter(|&&t| t <= 1.5 * median).count()
    }

    /// `max(ti) / median(ti)` over measured workers — the straggler ratio.
    pub fn straggler_ratio(&self) -> f64 {
        let mut ts: Vec<f64> = self
            .times
            .iter()
            .map(|t| f64::from_bits(t.load(Ordering::Relaxed)))
            .filter(|&t| t > 0.0)
            .collect();
        if ts.is_empty() {
            return 1.0;
        }
        ts.sort_by(|a, b| a.partial_cmp(b).expect("positive finite"));
        let median = ts[ts.len() / 2];
        if median > 0.0 {
            ts[ts.len() - 1] / median
        } else {
            1.0
        }
    }

    /// Current Hsync phase.
    pub fn hsync_sync(&self) -> bool {
        self.hsync_sync.load(Ordering::Relaxed)
    }

    /// Hsync controller hook: called on every round completion; every
    /// `cfg.window` rounds, re-evaluates the global AP/BSP switch.
    pub fn hsync_on_round(&self, cfg: &HsyncConfig) {
        let n = self.rounds_since_switch_eval.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(cfg.window as u64) {
            let skew = self.straggler_ratio();
            self.hsync_sync.store(skew < cfg.straggler_threshold, Ordering::Relaxed);
        }
    }
}

impl Mode {
    /// AAP with an explicit `L⊥` (used by tests and the CF workload).
    pub fn aap_with_floor(l_floor: f64) -> Self {
        Mode::Aap(AapConfig { l_floor, ..AapConfig::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(eta: usize, ri: Round, rmin: Round, rmax: Round) -> DeltaInputs {
        DeltaInputs {
            eta,
            local_work: false,
            ri,
            rmin,
            rmax,
            now: 100.0,
            avg_rate: 1.0,
            hsync_sync: false,
        }
    }

    #[test]
    fn empty_buffer_is_inactive_in_every_mode() {
        let ps = PolicyState::new(0.0);
        for mode in [Mode::Bsp, Mode::Ap, Mode::Ssp { c: 3 }, Mode::aap()] {
            assert_eq!(delta(&mode, &ps, &inputs(0, 5, 1, 9)), Decision::Inactive);
        }
    }

    #[test]
    fn bsp_is_lockstep() {
        let ps = PolicyState::new(0.0);
        assert_eq!(delta(&Mode::Bsp, &ps, &inputs(1, 3, 3, 3)), Decision::Run);
        assert_eq!(delta(&Mode::Bsp, &ps, &inputs(1, 4, 3, 4)), Decision::Hold);
    }

    #[test]
    fn ap_always_runs_with_messages() {
        let ps = PolicyState::new(0.0);
        assert_eq!(delta(&Mode::Ap, &ps, &inputs(1, 50, 1, 50)), Decision::Run);
    }

    #[test]
    fn ssp_bounds_the_lead() {
        let ps = PolicyState::new(0.0);
        let m = Mode::Ssp { c: 2 };
        assert_eq!(delta(&m, &ps, &inputs(1, 3, 1, 3)), Decision::Run); // lead 2 ≤ c
        assert_eq!(delta(&m, &ps, &inputs(1, 4, 1, 4)), Decision::Hold); // lead 3 > c
    }

    #[test]
    fn aap_runs_when_enough_accumulated() {
        let mut ps = PolicyState::new(3.0);
        ps.s_rate = 1.0;
        ps.t_round = 10.0;
        assert_eq!(delta(&Mode::aap_with_floor(3.0), &ps, &inputs(3, 1, 1, 1)), Decision::Run);
        // ηi = 1 < Li = 3: wait (3-1)/1 = 2 time units minus idle.
        let mut inp = inputs(1, 1, 1, 1);
        inp.now = 100.0;
        ps.idle_since = 100.0;
        match delta(&Mode::aap_with_floor(3.0), &ps, &inp) {
            Decision::Delay(d) => assert!((d - 2.0).abs() < 1e-9, "d = {d}"),
            other => panic!("expected delay, got {other:?}"),
        }
        // After idling 5 units the wait is exhausted.
        ps.idle_since = 95.0;
        assert_eq!(delta(&Mode::aap_with_floor(3.0), &ps, &inp), Decision::Run);
    }

    #[test]
    fn aap_staleness_bound_holds_front_runner() {
        let mode = Mode::Aap(AapConfig { staleness_bound: Some(2), ..AapConfig::default() });
        let ps = PolicyState::new(0.0);
        assert_eq!(delta(&mode, &ps, &inputs(1, 5, 2, 5)), Decision::Hold); // spread 3 > 2
        assert_eq!(delta(&mode, &ps, &inputs(1, 4, 2, 4)), Decision::Run); // spread 2 ≤ 2
        assert_eq!(delta(&mode, &ps, &inputs(1, 3, 2, 5)), Decision::Run); // not front runner
    }

    #[test]
    fn aap_runs_when_target_unreachable() {
        // Li would take (100 − 1)/0.001 = 99k time units to reach — far
        // beyond the wait horizon — so no useful accumulation is predicted
        // and the worker must run immediately rather than idle.
        let mut ps = PolicyState::new(100.0);
        ps.li = 100.0;
        ps.s_rate = 0.001;
        ps.t_round = 4.0;
        ps.idle_since = 100.0;
        let inp = inputs(1, 1, 1, 1);
        assert_eq!(delta(&Mode::aap(), &ps, &inp), Decision::Run);
    }

    #[test]
    fn aap_waits_when_target_reachable() {
        // 10 more batches at rate 5/unit arrive within 2 units — inside the
        // horizon (1.0 × t_round = 4) — so the worker stretches its delay.
        let mut ps = PolicyState::new(0.0);
        ps.li = 11.0;
        ps.s_rate = 5.0;
        ps.t_round = 4.0;
        ps.idle_since = 100.0;
        let inp = inputs(1, 1, 1, 1);
        match delta(&Mode::aap(), &ps, &inp) {
            Decision::Delay(d) => assert!((d - 2.0).abs() < 1e-9, "d = {d}"),
            other => panic!("expected delay, got {other:?}"),
        }
    }

    #[test]
    fn on_drain_raises_li_for_fast_arrivals() {
        let mode = Mode::aap();
        let mut ps = PolicyState::new(0.0);
        ps.t_round = 10.0;
        ps.last_drain = 0.0;
        // 40 batches in 10 units => rate 4, above avg 1.
        on_drain(&mode, &mut ps, 40, 10.0, 8, 1.0, 0);
        assert!(ps.s_rate > 3.9);
        assert!(ps.li > 40.0, "li = {}", ps.li);
    }

    #[test]
    fn hsync_switches_on_skew() {
        let shared = SharedRates::new(4);
        let cfg = HsyncConfig { window: 1, straggler_threshold: 1.5 };
        for w in 0..4 {
            shared.publish(w, 1.0, 1.0);
        }
        shared.hsync_on_round(&cfg);
        assert!(shared.hsync_sync(), "balanced cluster should run sync");
        shared.publish(3, 1.0, 10.0); // a straggler appears
        shared.hsync_on_round(&cfg);
        assert!(!shared.hsync_sync(), "skewed cluster should run async");
    }

    #[test]
    fn local_work_forces_progress() {
        let ps = PolicyState::new(64.0);
        let mut inp = inputs(0, 1, 1, 1);
        inp.local_work = true;
        assert_eq!(delta(&Mode::aap_with_floor(64.0), &ps, &inp), Decision::Run);
    }
}
