//! # aap-testkit
//!
//! Shared scaffolding for the equivalence suites (`tests/delta_equiv.rs`,
//! `tests/snapshot_equiv.rs`, `tests/routing_equiv.rs`,
//! `tests/deletion_equiv.rs`): random-graph and random-delta strategies,
//! the execution-mode matrix, partition-kind helpers, and one
//! [`assert_equiv`] driver that proves
//! `run_incremental(delta stream, retained state)` ==
//! `cold run on the final graph` for any warm-startable program, across
//! `algo × partition × mode`.
//!
//! Dev-dependency only — nothing here ships in the library crates.

use aap_algos::{CcState, ConnectedComponents, Sssp, SsspState};
use aap_core::pie::{WarmStart, WarmStrategy};
use aap_core::{Engine, EngineOpts, HsyncConfig, Mode, RunState};
use aap_delta::generate::Xorshift;
use aap_delta::{apply_to_graph, replay, run_incremental_with, DeltaBuilder, GraphDelta};
use aap_graph::mutate::EditBuffers;
use aap_graph::partition::{
    build_fragments_n, build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
};
use aap_graph::{generate, Fragment, Graph};
use aap_session::{edge_cut, vertex_cut, DurabilityPolicy, Session, SessionError};
use aap_sim::{ScheduleFuzz, SimEngine, SimOpts};
use aap_snapshot::{
    program_state_to_bytes, restore_engine, save_engine, write_file_atomic, DeltaLog, SnapshotError,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Proptest case count: the per-suite default, overridable through the
/// `PROPTEST_CASES` environment variable — how CI's scheduled
/// `proptest-deep` job runs the same suites at 512 cases without
/// patching them.
pub fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The schedule-fuzz seed sweep: `default` seeds per call site,
/// overridable through the `AAP_FUZZ_SEEDS` environment variable — how
/// CI's nightly `proptest-deep` job deepens the hostile-schedule matrix
/// without patching the suites. Seeds are sequential on purpose: every
/// fuzz-path assertion names its reproducing seed, so
/// `ScheduleFuzz::seeded(<that seed>)` replays the exact timeline.
pub fn fuzz_seeds(default: usize) -> Vec<u64> {
    let n = std::env::var("AAP_FUZZ_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(default);
    (1..=n as u64).collect()
}

/// Simulator options for one cell of the fuzz matrix: `mode` under the
/// seeded hostile schedule (bounded rounds, like [`test_opts`]).
pub fn fuzz_opts(mode: Mode, seed: u64) -> SimOpts {
    SimOpts { mode, max_rounds: Some(200_000), ..SimOpts::default() }
        .schedule(ScheduleFuzz::seeded(seed))
}

// ---------------------------------------------------------------------
// Random graphs
// ---------------------------------------------------------------------

/// The shared random-graph strategy: uniform and small-world topologies
/// across the size band every equivalence suite uses.
pub fn arb_graph() -> impl Strategy<Value = Graph<(), u32>> {
    prop_oneof![
        (10usize..100, 2usize..8, 0u64..50).prop_map(|(n, ef, s)| generate::uniform(
            n,
            n * ef,
            true,
            s
        )),
        (10usize..100, 1usize..3, 0u64..50).prop_map(|(n, k, s)| generate::small_world(
            n,
            k.min(n - 1).max(1),
            0.3,
            s
        )),
    ]
}

// ---------------------------------------------------------------------
// Partitions
// ---------------------------------------------------------------------

/// Which partition family a check runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Hash edge-cut (owned vertices + edge-less mirrors).
    EdgeCut,
    /// Hash vertex-cut (replicated copies carrying edges).
    VertexCut,
}

/// Both partition kinds, for matrix loops.
pub const PARTITIONS: [PartitionKind; 2] = [PartitionKind::EdgeCut, PartitionKind::VertexCut];

/// Build `m` fragments of `g` under the given partition kind (the same
/// hash rules the delta subsystem assumes for fresh vertices).
pub fn build_parts(g: &Graph<(), u32>, kind: PartitionKind, m: usize) -> Vec<Fragment<(), u32>> {
    match kind {
        PartitionKind::EdgeCut => build_fragments_n(g, &hash_partition(g, m), m),
        PartitionKind::VertexCut => build_fragments_vertex_cut_n(g, &vertex_cut_partition(g, m), m),
    }
}

// ---------------------------------------------------------------------
// Execution modes
// ---------------------------------------------------------------------

/// The full five-mode matrix (BSP, AP, SSP, AAP, Hsync).
pub fn all_modes() -> Vec<Mode> {
    vec![Mode::Bsp, Mode::Ap, Mode::Ssp { c: 2 }, Mode::aap(), Mode::Hsync(HsyncConfig::default())]
}

/// Engine options every suite runs with: bounded rounds so a policy bug
/// fails the test instead of hanging it.
pub fn test_opts(mode: Mode) -> EngineOpts {
    EngineOpts { threads: 4, mode, max_rounds: Some(200_000) }
}

// ---------------------------------------------------------------------
// Random deltas
// ---------------------------------------------------------------------

/// A random single batch: edge inserts and weight decreases (monotone),
/// plus — when `allow_removals` — edge/vertex removals that exercise the
/// non-monotone strategies.
pub fn arb_delta(g: &Graph<(), u32>, seed: u64, allow_removals: bool) -> GraphDelta<(), u32> {
    let n = g.num_vertices() as u32;
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    let mut rng = Xorshift::new(seed);
    let inserts = 1 + (rng.below(6)) as usize;
    for _ in 0..inserts {
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        if u != v {
            b.add_edge(u, v, 1 + rng.below(9) as u32);
        }
    }
    if rng.below(2) == 0 {
        // Weight decrease on an existing edge (min over current weights
        // keeps it monotone-decreasing).
        let u = rng.below(n as u64) as u32;
        if let Some((&t, &w)) = g.neighbors(u).first().zip(g.edge_data(u).first()) {
            b.set_weight(u, t, w.saturating_sub(1).max(1).min(w));
        }
    }
    if allow_removals {
        for _ in 0..(1 + rng.below(3)) {
            let u = rng.below(n as u64) as u32;
            if let Some(&t) = g.neighbors(u).first() {
                b.remove_edge(u, t);
            }
        }
        if rng.below(3) == 0 {
            b.remove_vertex(rng.below(n as u64) as u32);
        }
    }
    b.build()
}

/// A long adversarial stream over `g`: every batch interleaves edge
/// inserts, edge removals, weight increases *and* decreases, vertex
/// additions (ids extend the dense space contiguously across batches)
/// and vertex removals — the workload the deletion-exact warm path must
/// survive without a cold recompute.
pub fn adversarial_stream(
    g: &Graph<(), u32>,
    batches: usize,
    seed: u64,
) -> Vec<GraphDelta<(), u32>> {
    let mut rng = Xorshift::new(seed);
    let mut cur = g.clone();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let n = cur.num_vertices() as u32;
        let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
        // Inserts between existing vertices.
        for _ in 0..(1 + rng.below(4)) {
            let (u, v) = (rng.below(n as u64) as u32, rng.below(n as u64) as u32);
            if u != v {
                b.add_edge(u, v, 1 + rng.below(9) as u32);
            }
        }
        // Removals of existing edges.
        for _ in 0..rng.below(4) {
            let u = rng.below(n as u64) as u32;
            let deg = cur.neighbors(u).len() as u64;
            if deg > 0 {
                let t = cur.neighbors(u)[rng.below(deg) as usize];
                if u != t {
                    b.remove_edge(u, t);
                }
            }
        }
        // Weight updates in both directions.
        for _ in 0..rng.below(3) {
            let u = rng.below(n as u64) as u32;
            if let Some((&t, &w)) = cur.neighbors(u).first().zip(cur.edge_data(u).first()) {
                let w_new = if rng.below(2) == 0 {
                    w.saturating_add(1 + rng.below(20) as u32) // increase
                } else {
                    w.saturating_sub(1).max(1) // decrease
                };
                b.set_weight(u, t, w_new);
            }
        }
        // Vertex add (wired in, so it matters) and vertex remove.
        if rng.below(3) == 0 {
            b.add_vertex(n, ());
            b.add_edge(rng.below(n as u64) as u32, n, 1 + rng.below(9) as u32);
        }
        if rng.below(4) == 0 {
            b.remove_vertex(rng.below(n as u64) as u32);
        }
        let delta = b.build();
        cur = apply_to_graph(&cur, &delta);
        out.push(delta);
    }
    out
}

/// A skewed delta stream: every batch lands its new edges on source
/// vertices owned by fragment 0 of the `m`-way hash edge-cut, so that
/// fragment's stored-edge load grows while the others stand still —
/// the drift workload elastic rebalancing (`aap-balance`) exists to
/// heal. Targets are uniform, so the cut keeps churning too.
pub fn skewed_stream(
    g: &Graph<(), u32>,
    m: usize,
    batches: usize,
    per_batch: usize,
    seed: u64,
) -> Vec<GraphDelta<(), u32>> {
    let assign = hash_partition(g, m);
    let hot: Vec<u32> =
        (0..g.num_vertices() as u32).filter(|&v| assign[v as usize] == 0).collect();
    assert!(!hot.is_empty(), "fragment 0 owns no vertices of the seed graph");
    let n = g.num_vertices() as u64;
    let mut rng = Xorshift::new(seed);
    (0..batches)
        .map(|_| {
            let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
            for _ in 0..per_batch {
                let u = hot[rng.below(hot.len() as u64) as usize];
                let v = rng.below(n) as u32;
                if u != v {
                    b.add_edge(u, v, 1 + rng.below(9) as u32);
                }
            }
            b.build()
        })
        .collect()
}

// ---------------------------------------------------------------------
// The equivalence driver
// ---------------------------------------------------------------------

/// What one [`assert_equiv`] run observed, for suite-level assertions
/// (strategy coverage, message-count comparisons).
#[derive(Debug, Default)]
pub struct EquivReport {
    /// The strategy each batch resolved to, in stream order.
    pub strategies: Vec<WarmStrategy>,
    /// Total updates shipped by the incremental runs (all batches).
    pub incremental_updates: u64,
    /// Total updates shipped by one cold run on the final graph.
    pub cold_updates: u64,
    /// Effective updates across the incremental runs.
    pub incremental_effective: u64,
    /// Effective updates of the final cold run.
    pub cold_effective: u64,
}

impl EquivReport {
    /// True if some batch ran the given strategy.
    pub fn saw(&self, s: WarmStrategy) -> bool {
        self.strategies.contains(&s)
    }
}

/// The shared acceptance driver: stream `deltas` through
/// `run_incremental` on the threaded engine and assert, **after every
/// batch**, that the incremental answer equals a cold run on the
/// current graph — then replay an empty delta and assert the retained
/// state sits at the fixpoint with zero messages.
///
/// `fuzz_seeds` adds the hostile-schedule dimension: after each batch,
/// the current graph is additionally solved cold by a simulator running
/// `mode` under [`ScheduleFuzz::seeded`] for every listed seed, and each
/// fuzzed fixpoint must equal the incremental answer (the failure names
/// the reproducing seed). Pass `&[]` to skip.
///
/// Panics (with `label` context) on any divergence.
#[allow(clippy::too_many_arguments)]
pub fn assert_equiv<P>(
    prog: &P,
    q: &P::Query,
    g0: &Graph<(), u32>,
    deltas: &[GraphDelta<(), u32>],
    kind: PartitionKind,
    m: usize,
    mode: Mode,
    fuzz_seeds: &[u64],
    label: &str,
) -> EquivReport
where
    P: WarmStart<(), u32>,
    P::Out: PartialEq + std::fmt::Debug,
{
    let mut engine = Engine::new(build_parts(g0, kind, m), test_opts(mode.clone()));
    let (_, mut state): (_, RunState<P::State>) = engine.run_retained(prog, q);

    let mut report = EquivReport::default();
    let mut bufs = EditBuffers::default();
    let mut g_cur = g0.clone();
    let mut last_out = None;
    for (i, delta) in deltas.iter().enumerate() {
        let r = run_incremental_with(&mut engine, prog, q, delta, &mut state, &mut bufs);
        report.strategies.push(r.strategy);
        report.incremental_updates += r.stats.total_updates();
        report.incremental_effective +=
            r.stats.workers.iter().map(|w| w.effective_updates).sum::<u64>();
        g_cur = apply_to_graph(&g_cur, delta);
        let cold = Engine::new(build_parts(&g_cur, kind, m), test_opts(mode.clone())).run(prog, q);
        assert_eq!(
            r.out, cold.out,
            "{label}: batch {i} ({}) diverged from cold on the current graph \
             [{kind:?}, {m} frags, mode {mode:?}]",
            r.strategy
        );
        for &seed in fuzz_seeds {
            let fuzzed =
                SimEngine::new(build_parts(&g_cur, kind, m), fuzz_opts(mode.clone(), seed))
                    .expect("fuzz opts are valid")
                    .run(prog, q);
            assert_eq!(
                fuzzed.out, r.out,
                "{label}: batch {i} fuzzed cold run diverged [{kind:?}, {m} frags, \
                 mode {mode:?}] — reproduce with ScheduleFuzz::seeded({seed})"
            );
        }
        if i + 1 == deltas.len() {
            report.cold_updates = cold.stats.total_updates();
            report.cold_effective =
                cold.stats.workers.iter().map(|w| w.effective_updates).sum::<u64>();
        }
        last_out = Some(r.out);
    }

    // The retained state must be reusable: an empty follow-up delta
    // reproduces the fixpoint without shipping a single message.
    if let Some(expected) = last_out {
        let empty = DeltaBuilder::new().build();
        let again = run_incremental_with(&mut engine, prog, q, &empty, &mut state, &mut bufs);
        assert_eq!(again.out, expected, "{label}: retained state must replay the fixpoint");
        assert_eq!(again.stats.total_updates(), 0, "{label}: empty delta must ship no messages");
    }
    report
}

/// The simulator mirror of [`assert_equiv`]: deterministic virtual time,
/// same after-every-batch cold comparison, running `mode`.
///
/// `fuzz_seeds` adds the hostile-schedule dimension *on the warm path*:
/// for every listed seed, a whole second incremental lineage (own
/// retained state, own fragments) streams the same deltas under
/// [`ScheduleFuzz::seeded`], and its answer must match the canonical
/// lineage after **every** batch — so warm-increase invalidation and
/// deletion splits are proven schedule-independent, not just cold
/// recomputation. Failures name the reproducing seed.
#[allow(clippy::too_many_arguments)]
pub fn assert_equiv_sim<P>(
    prog: &P,
    q: &P::Query,
    g0: &Graph<(), u32>,
    deltas: &[GraphDelta<(), u32>],
    kind: PartitionKind,
    m: usize,
    mode: Mode,
    fuzz_seeds: &[u64],
    label: &str,
) -> EquivReport
where
    P: WarmStart<(), u32>,
    P::Out: PartialEq + std::fmt::Debug,
{
    let opts = SimOpts { mode: mode.clone(), max_rounds: Some(200_000), ..SimOpts::default() };
    let mut sim =
        SimEngine::new(build_parts(g0, kind, m), opts.clone()).expect("sim opts are valid");
    let (_, mut state): (_, RunState<P::State>) = sim.run_retained(prog, q);

    // One fuzzed warm lineage per seed, advanced in lockstep with the
    // canonical one.
    type FuzzLineage<S> = Vec<(u64, SimEngine<(), u32>, RunState<S>)>;
    let mut fuzzed: FuzzLineage<P::State> = fuzz_seeds
        .iter()
        .map(|&seed| {
            let s = SimEngine::new(build_parts(g0, kind, m), fuzz_opts(mode.clone(), seed))
                .expect("fuzz opts are valid");
            let (_, st) = s.run_retained(prog, q);
            (seed, s, st)
        })
        .collect();

    let mut report = EquivReport::default();
    let mut bufs = EditBuffers::default();
    let mut g_cur = g0.clone();
    for (i, delta) in deltas.iter().enumerate() {
        let r =
            aap_delta::run_incremental_sim_with(&mut sim, prog, q, delta, &mut state, &mut bufs);
        report.strategies.push(r.strategy);
        report.incremental_updates += r.stats.total_updates();
        g_cur = apply_to_graph(&g_cur, delta);
        let cold = SimEngine::new(build_parts(&g_cur, kind, m), opts.clone())
            .expect("sim opts are valid")
            .run(prog, q);
        assert_eq!(
            r.out, cold.out,
            "{label}: batch {i} ({}) diverged from cold on the current graph \
             [sim, {kind:?}, mode {mode:?}]",
            r.strategy
        );
        for (seed, fsim, fstate) in &mut fuzzed {
            let fr = aap_delta::run_incremental_sim_with(fsim, prog, q, delta, fstate, &mut bufs);
            assert_eq!(
                fr.out, r.out,
                "{label}: batch {i} fuzzed warm lineage diverged [sim, {kind:?}, \
                 mode {mode:?}] — reproduce with ScheduleFuzz::seeded({seed})"
            );
        }
        if i + 1 == deltas.len() {
            report.cold_updates = cold.stats.total_updates();
        }
    }
    report
}

// ---------------------------------------------------------------------
// The session equivalence driver
// ---------------------------------------------------------------------

/// A unique scratch directory under the system temp dir (durable-session
/// tests). Caller removes it when done.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "aap_testkit_{}_{tag}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// What one [`assert_session_equiv`] run observed: the per-batch
/// strategies each program resolved to, in stream order.
#[derive(Debug, Default)]
pub struct SessionEquivReport {
    /// `(sssp strategy, cc strategy)` per batch.
    pub strategies: Vec<(WarmStrategy, WarmStrategy)>,
}

fn sssp_bytes(q: u32, st: &RunState<SsspState>, frags: &[Arc<Fragment<(), u32>>]) -> Vec<u8> {
    program_state_to_bytes(&q, &st.export(frags))
}

fn cc_bytes(st: &RunState<CcState>, frags: &[Arc<Fragment<(), u32>>]) -> Vec<u8> {
    program_state_to_bytes(&(), &st.export(frags))
}

/// The session acceptance driver: stream `deltas` through one durable
/// [`Session`] holding **two** programs (SSSP from `src`, CC) and,
/// after **every** batch, assert the session's outputs *and retained
/// states* are identical to the hand-rolled composition — one
/// `Engine` + `run_incremental_with` + `save_engine`/`DeltaLog` per
/// program. The session checkpoints **differentially** at two points
/// mid-stream (so restore resolves a real epoch chain, not a single
/// baseline); at the end the directory is restored into a fresh
/// session (`load → attach → replay`) and into fresh hand-rolled
/// engines (`restore_engine` + `replay`), and all three lineages must
/// agree **byte-for-byte** in their exported states.
///
/// `fuzz_seeds` closes the loop on restore-then-replay: after the
/// restored lineages are proven byte-identical, the final graph is
/// solved cold under [`ScheduleFuzz::seeded`] for every listed seed, and
/// each hostile-schedule fixpoint must equal the restored session's
/// answers — restore lands on the schedule-independent fixpoint, not on
/// an artifact of one canonical schedule. Failures name the seed.
///
/// Panics (with `label` context) on any divergence; cleans up its
/// scratch directories.
#[allow(clippy::too_many_arguments)]
pub fn assert_session_equiv(
    g0: &Graph<(), u32>,
    src: u32,
    deltas: &[GraphDelta<(), u32>],
    kind: PartitionKind,
    m: usize,
    mode: Mode,
    fuzz_seeds: &[u64],
    label: &str,
) -> SessionEquivReport {
    let dir = scratch_dir("session");
    let manual_dir = scratch_dir("manual");
    let spec = match kind {
        PartitionKind::EdgeCut => edge_cut(m),
        PartitionKind::VertexCut => vertex_cut(m),
    };

    // --- the session under test (durable from the start) ---
    let mut session = Session::builder(g0.clone())
        .partition(spec)
        .mode(mode.clone())
        .threads(4)
        .max_rounds(200_000)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .durability(DurabilityPolicy::new(&dir))
        .unwrap_or_else(|e| panic!("{label}: durability: {e}"))
        .open()
        .unwrap_or_else(|e| panic!("{label}: open: {e}"));
    let s_out0 = session.query::<Sssp>("sssp", &src).unwrap();
    let c_out0 = session.query::<ConnectedComponents>("cc", &()).unwrap();

    // --- the hand-rolled composition: one engine + state per program ---
    let mut eng_s = Engine::new(build_parts(g0, kind, m), test_opts(mode.clone()));
    let mut eng_c = Engine::new(build_parts(g0, kind, m), test_opts(mode.clone()));
    let (r_s, mut st_s) = eng_s.run_retained(&Sssp, &src);
    let (r_c, mut st_c) = eng_c.run_retained(&ConnectedComponents, &());
    assert_eq!(s_out0, r_s.out, "{label}: initial SSSP output");
    assert_eq!(c_out0, r_c.out, "{label}: initial CC output");
    let snap_s = manual_dir.join("sssp.snap");
    let snap_c = manual_dir.join("cc.snap");
    save_engine(&snap_s, &eng_s, Some(&st_s)).unwrap();
    save_engine(&snap_c, &eng_c, Some(&st_c)).unwrap();
    let log_path = manual_dir.join("deltas.dlog");
    let mut log = DeltaLog::create(&log_path).unwrap();
    let mut replay_from = 0usize; // first delta index not covered by the manual snapshots

    let mut report = SessionEquivReport::default();
    let mut bufs = EditBuffers::default();
    let mut g_cur = g0.clone();
    // Two differential checkpoints mid-stream: restore must resolve the
    // newest version of every fragment/state shard across a 3-epoch
    // chain, not load one baseline.
    let checkpoints = [deltas.len() / 3, 2 * deltas.len() / 3];
    for (i, delta) in deltas.iter().enumerate() {
        g_cur = apply_to_graph(&g_cur, delta);
        let rep = session.apply(delta).unwrap_or_else(|e| panic!("{label}: apply {i}: {e}"));
        let rs = run_incremental_with(&mut eng_s, &Sssp, &src, delta, &mut st_s, &mut bufs);
        let rc = run_incremental_with(
            &mut eng_c,
            &ConnectedComponents,
            &(),
            delta,
            &mut st_c,
            &mut bufs,
        );
        log.write_delta(delta).unwrap();
        assert_eq!(
            rep.strategy("sssp"),
            Some(rs.strategy),
            "{label}: batch {i} SSSP strategy [{kind:?}, {mode:?}]"
        );
        assert_eq!(rep.strategy("cc"), Some(rc.strategy), "{label}: batch {i} CC strategy");
        report.strategies.push((rs.strategy, rc.strategy));

        // Outputs and retained states must match after EVERY batch.
        assert_eq!(
            session.query::<Sssp>("sssp", &src).unwrap(),
            rs.out,
            "{label}: batch {i} SSSP output [{kind:?}, {mode:?}]"
        );
        assert_eq!(
            session.query::<ConnectedComponents>("cc", &()).unwrap(),
            rc.out,
            "{label}: batch {i} CC output [{kind:?}, {mode:?}]"
        );
        assert_eq!(
            session.run_state::<Sssp>("sssp").unwrap().unwrap(),
            &st_s,
            "{label}: batch {i} SSSP state [{kind:?}, {mode:?}]"
        );
        assert_eq!(
            session.run_state::<ConnectedComponents>("cc").unwrap().unwrap(),
            &st_c,
            "{label}: batch {i} CC state [{kind:?}, {mode:?}]"
        );

        if checkpoints.contains(&(i + 1)) {
            session.checkpoint().unwrap_or_else(|e| panic!("{label}: checkpoint: {e}"));
            save_engine(&snap_s, &eng_s, Some(&st_s)).unwrap();
            save_engine(&snap_c, &eng_c, Some(&st_c)).unwrap();
            log = DeltaLog::create(&log_path).unwrap();
            replay_from = i + 1;
        }
    }
    drop(log);
    if deltas.len() >= 3 {
        assert!(
            session.epoch_chain().is_some_and(|c| c.len() >= 3),
            "{label}: two differential checkpoints must leave a 3-epoch chain, got {:?}",
            session.epoch_chain()
        );
    }

    // --- restart both lineages and demand byte-identical states ---
    let mut session2: Session<(), u32, _> = Session::restore(&dir)
        .mode(mode.clone())
        .threads(4)
        .max_rounds(200_000)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()
        .unwrap_or_else(|e| panic!("{label}: restore: {e}"));
    let (mut eng_s2, at_s) =
        restore_engine::<(), u32, SsspState, _>(&snap_s, test_opts(mode.clone())).unwrap();
    let (mut eng_c2, at_c) =
        restore_engine::<(), u32, CcState, _>(&snap_c, test_opts(mode.clone())).unwrap();
    let (mut st_s2, _) = at_s.expect("manual snapshot carried SSSP state");
    let (mut st_c2, _) = at_c.expect("manual snapshot carried CC state");
    let logged = DeltaLog::replay::<(), u32, _>(&log_path).unwrap();
    assert_eq!(logged.len(), deltas.len() - replay_from, "{label}: manual log length");
    replay(&mut eng_s2, &Sssp, &src, &logged, &mut st_s2);
    replay(&mut eng_c2, &ConnectedComponents, &(), &logged, &mut st_c2);

    let frags = session.fragments();
    let live_s = sssp_bytes(src, session.run_state::<Sssp>("sssp").unwrap().unwrap(), frags);
    let live_c = cc_bytes(session.run_state::<ConnectedComponents>("cc").unwrap().unwrap(), frags);
    let frags2 = session2.fragments();
    let rest_s = sssp_bytes(src, session2.run_state::<Sssp>("sssp").unwrap().unwrap(), frags2);
    let rest_c =
        cc_bytes(session2.run_state::<ConnectedComponents>("cc").unwrap().unwrap(), frags2);
    let man_s = sssp_bytes(src, &st_s2, eng_s2.fragments());
    let man_c = cc_bytes(&st_c2, eng_c2.fragments());
    assert_eq!(live_s, rest_s, "{label}: restored session SSSP state byte-identical to live");
    assert_eq!(live_c, rest_c, "{label}: restored session CC state byte-identical to live");
    assert_eq!(live_s, man_s, "{label}: session SSSP state byte-identical to manual restart");
    assert_eq!(live_c, man_c, "{label}: session CC state byte-identical to manual restart");

    // The restored session keeps serving: the retained queries answer
    // without re-running, identically to the live session.
    assert_eq!(
        session2.query::<Sssp>("sssp", &src).unwrap(),
        session.query::<Sssp>("sssp", &src).unwrap(),
        "{label}: restored SSSP serve"
    );
    assert_eq!(
        session2.query::<ConnectedComponents>("cc", &()).unwrap(),
        session.query::<ConnectedComponents>("cc", &()).unwrap(),
        "{label}: restored CC serve"
    );

    // Restore-then-replay must land on the schedule-independent
    // fixpoint: every hostile schedule solving the final graph cold
    // agrees with what the restored session serves.
    for &seed in fuzz_seeds {
        let fuzzed_s = SimEngine::new(build_parts(&g_cur, kind, m), fuzz_opts(mode.clone(), seed))
            .expect("fuzz opts are valid")
            .run(&Sssp, &src);
        assert_eq!(
            session2.query::<Sssp>("sssp", &src).unwrap(),
            fuzzed_s.out,
            "{label}: restored SSSP diverged from a hostile schedule [{kind:?}, {mode:?}] \
             — reproduce with ScheduleFuzz::seeded({seed})"
        );
        let fuzzed_c = SimEngine::new(build_parts(&g_cur, kind, m), fuzz_opts(mode.clone(), seed))
            .expect("fuzz opts are valid")
            .run(&ConnectedComponents, &());
        assert_eq!(
            session2.query::<ConnectedComponents>("cc", &()).unwrap(),
            fuzzed_c.out,
            "{label}: restored CC diverged from a hostile schedule [{kind:?}, {mode:?}] \
             — reproduce with ScheduleFuzz::seeded({seed})"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&manual_dir).ok();
    report
}

/// The simulator mirror of [`assert_session_equiv`]: the same session
/// lifecycle on `open_sim()`, compared after every batch against the
/// hand-rolled `SimEngine` + `run_incremental_sim_with` composition in
/// deterministic virtual time (no durability — the threaded driver
/// already proves the file cycle; this proves the backend genericity).
///
/// `fuzz_seeds` runs one extra hand-rolled SSSP lineage per seed under
/// [`ScheduleFuzz::seeded`]; each must agree with the session after
/// every batch, and failures name the reproducing seed.
pub fn assert_session_equiv_sim(
    g0: &Graph<(), u32>,
    src: u32,
    deltas: &[GraphDelta<(), u32>],
    kind: PartitionKind,
    m: usize,
    fuzz_seeds: &[u64],
    label: &str,
) {
    let spec = match kind {
        PartitionKind::EdgeCut => edge_cut(m),
        PartitionKind::VertexCut => vertex_cut(m),
    };
    let mut session = Session::builder(g0.clone())
        .partition(spec)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open_sim()
        .unwrap_or_else(|e| panic!("{label}: open_sim: {e}"));
    let mut sim_s =
        SimEngine::new(build_parts(g0, kind, m), SimOpts::default()).expect("sim opts are valid");
    let mut sim_c =
        SimEngine::new(build_parts(g0, kind, m), SimOpts::default()).expect("sim opts are valid");
    let (r_s, mut st_s) = sim_s.run_retained(&Sssp, &src);
    let (r_c, mut st_c) = sim_c.run_retained(&ConnectedComponents, &());
    let mut fuzzed: Vec<(u64, SimEngine<(), u32>, RunState<SsspState>)> = fuzz_seeds
        .iter()
        .map(|&seed| {
            let s = SimEngine::new(build_parts(g0, kind, m), fuzz_opts(Mode::aap(), seed))
                .expect("fuzz opts are valid");
            let (_, st) = s.run_retained(&Sssp, &src);
            (seed, s, st)
        })
        .collect();
    assert_eq!(session.query::<Sssp>("sssp", &src).unwrap(), r_s.out, "{label}: sim SSSP");
    assert_eq!(
        session.query::<ConnectedComponents>("cc", &()).unwrap(),
        r_c.out,
        "{label}: sim CC"
    );
    let mut bufs = EditBuffers::default();
    for (i, delta) in deltas.iter().enumerate() {
        session.apply(delta).unwrap_or_else(|e| panic!("{label}: sim apply {i}: {e}"));
        let rs = aap_delta::run_incremental_sim_with(
            &mut sim_s, &Sssp, &src, delta, &mut st_s, &mut bufs,
        );
        let rc = aap_delta::run_incremental_sim_with(
            &mut sim_c,
            &ConnectedComponents,
            &(),
            delta,
            &mut st_c,
            &mut bufs,
        );
        assert_eq!(
            session.query::<Sssp>("sssp", &src).unwrap(),
            rs.out,
            "{label}: sim batch {i} SSSP output"
        );
        assert_eq!(
            session.query::<ConnectedComponents>("cc", &()).unwrap(),
            rc.out,
            "{label}: sim batch {i} CC output"
        );
        assert_eq!(
            session.run_state::<Sssp>("sssp").unwrap().unwrap(),
            &st_s,
            "{label}: sim batch {i} SSSP state"
        );
        assert_eq!(
            session.run_state::<ConnectedComponents>("cc").unwrap().unwrap(),
            &st_c,
            "{label}: sim batch {i} CC state"
        );
        for (seed, fsim, fstate) in &mut fuzzed {
            let fr =
                aap_delta::run_incremental_sim_with(fsim, &Sssp, &src, delta, fstate, &mut bufs);
            assert_eq!(
                fr.out, rs.out,
                "{label}: sim batch {i} fuzzed SSSP lineage diverged \
                 — reproduce with ScheduleFuzz::seeded({seed})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------

/// Where [`assert_crash_restore_equiv`] kills the durable machinery
/// (by swapping one durable-vtable step for a failing stand-in and then
/// dropping the session — the in-process equivalent of `kill -9` at
/// that exact instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Between a differential epoch's commit (the manifest flip) and
    /// the log rotation/sweep that retires the superseded log: the new
    /// chain is durable but the old generation is stranded on disk.
    CommittedBeforeRotation,
    /// Mid-compaction: the chain-collapsing full baseline dies before
    /// anything of the next epoch commits; the old chain plus its
    /// complete log must keep serving and restoring.
    MidCompaction,
    /// Mid-background-serialize: the consistent cut is taken and
    /// applies keep landing (copy-on-write, dual-logged) while the
    /// serialize thread dies; the pre-cut chain plus the primary log
    /// hold everything.
    MidBackgroundSerialize,
}

/// All three kill points, for matrix loops.
pub const CRASH_POINTS: [CrashPoint; 3] = [
    CrashPoint::CommittedBeforeRotation,
    CrashPoint::MidCompaction,
    CrashPoint::MidBackgroundSerialize,
];

/// A real `SnapshotError` (not a hand-built variant): writing under a
/// root that cannot exist.
fn injected_io_error() -> SnapshotError {
    write_file_atomic(Path::new("/nonexistent-aap-crashkit/die"), b"")
        .expect_err("writing under a nonexistent root must fail")
}

/// The commit succeeds — the manifest durably flips — and the process
/// "dies" before control returns to the rotation/sweep.
fn flip_then_die(dir: &Path, chain: &[u64]) -> Result<(), SessionError> {
    aap_session::default_write_manifest(dir, chain)?;
    Err(SessionError::Checkpoint { detail: "injected kill after manifest flip".into() })
}

/// The baseline save dies before writing anything.
fn save_frags_die(_path: &Path, _frags: &[Arc<Fragment<(), u32>>]) -> Result<u64, SnapshotError> {
    Err(injected_io_error())
}

/// Park the background serialize thread until the driver drops the
/// `CRASH_GO` marker next to the snapshot path (bounded, so a driver
/// bug times out instead of hanging the suite) — the window in which
/// the driver provably overlaps applies with the in-flight cut.
fn wait_for_go(snap_path: &Path) {
    let go = snap_path.parent().expect("snap path lives in the session dir").join("CRASH_GO");
    for _ in 0..5000 {
        if go.exists() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

fn save_frags_block_then_die(
    path: &Path,
    _frags: &[Arc<Fragment<(), u32>>],
) -> Result<u64, SnapshotError> {
    wait_for_go(path);
    Err(injected_io_error())
}

fn save_diff_frags_block_then_die(
    path: &Path,
    _num_frags: u16,
    _frags: &[Arc<Fragment<(), u32>>],
    _dirty: &[bool],
) -> Result<u64, SnapshotError> {
    wait_for_go(path);
    Err(injected_io_error())
}

/// The crash-injection driver: run a durable session (SSSP + CC) to a
/// non-trivial epoch chain, kill it at `point`, and assert a restore of
/// the directory lands **byte-identical** with the live session at the
/// moment of the kill — then that the revived directory still applies
/// and checkpoints. Needs `deltas.len() >= 3`.
#[allow(clippy::too_many_arguments)]
pub fn assert_crash_restore_equiv(
    g0: &Graph<(), u32>,
    src: u32,
    deltas: &[GraphDelta<(), u32>],
    kind: PartitionKind,
    m: usize,
    mode: Mode,
    point: CrashPoint,
    label: &str,
) {
    assert!(deltas.len() >= 3, "{label}: need pre-checkpoint, pre-crash and in-crash batches");
    let dir = scratch_dir("crash");
    let spec = match kind {
        PartitionKind::EdgeCut => edge_cut(m),
        PartitionKind::VertexCut => vertex_cut(m),
    };
    let mut policy = DurabilityPolicy::new(&dir);
    if point == CrashPoint::MidCompaction {
        policy = policy.compact_after(2); // the crashing checkpoint compacts
    }
    if point == CrashPoint::MidBackgroundSerialize {
        policy = policy.background(true);
    }
    let mut session = Session::builder(g0.clone())
        .partition(spec)
        .mode(mode.clone())
        .threads(4)
        .max_rounds(200_000)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .durability(policy)
        .unwrap_or_else(|e| panic!("{label}: durability: {e}"))
        .open()
        .unwrap_or_else(|e| panic!("{label}: open: {e}"));
    session.query::<Sssp>("sssp", &src).unwrap();
    session.query::<ConnectedComponents>("cc", &()).unwrap();

    // Apply all but the last batch, checkpointing after the first so
    // the crash lands on the differential chain [1, 0].
    let (head, tail) = deltas.split_at(deltas.len() - 1);
    for (i, delta) in head.iter().enumerate() {
        session.apply(delta).unwrap_or_else(|e| panic!("{label}: apply {i}: {e}"));
        if i == 0 {
            session.checkpoint().unwrap_or_else(|e| panic!("{label}: checkpoint: {e}"));
        }
    }
    assert_eq!(session.epoch_chain(), Some(&[1, 0][..]), "{label}: pre-crash chain");

    match point {
        CrashPoint::CommittedBeforeRotation => {
            session.inject_durable_vtable(None, None, Some(flip_then_die));
            let err = session.checkpoint().expect_err("flip-then-die must surface");
            assert!(matches!(err, SessionError::Checkpoint { .. }), "{label}: {err}");
            // Epoch 2 is durably committed; the rotation never ran.
            assert!(dir.join("graph.2.snap").exists(), "{label}: committed epoch file");
            assert!(dir.join("deltas.1.dlog").exists(), "{label}: superseded log stranded");
        }
        CrashPoint::MidCompaction => {
            session.inject_durable_vtable(Some(save_frags_die), None, None);
            let err = session.checkpoint().expect_err("compaction save must die");
            assert!(matches!(err, SessionError::Snapshot(_)), "{label}: {err}");
            assert!(!dir.join("graph.2.snap").exists(), "{label}: nothing of epoch 2 on disk");
            // A failed compaction is recoverable: the dirty set is
            // restored and the session keeps applying against the old
            // chain and its still-live log.
            session.apply(&tail[0]).unwrap_or_else(|e| panic!("{label}: post-crash apply: {e}"));
        }
        CrashPoint::MidBackgroundSerialize => {
            session.inject_durable_vtable(
                Some(save_frags_block_then_die),
                Some(save_diff_frags_block_then_die),
                None,
            );
            let handle =
                session.checkpoint_background().unwrap_or_else(|e| panic!("{label}: cut: {e}"));
            // The cut is in flight (its thread parks on the marker):
            // this apply mutates copy-on-write and dual-writes its
            // delta to both epoch logs.
            session.apply(&tail[0]).unwrap_or_else(|e| panic!("{label}: in-cut apply: {e}"));
            std::fs::write(dir.join("CRASH_GO"), b"").unwrap();
            let err = handle.wait().expect_err("injected serialize failure");
            assert!(matches!(err, SessionError::Checkpoint { .. }), "{label}: {err}");
            // Killed before the writer harvests: the session-side epoch
            // never advances and restore sees the pre-cut chain.
        }
    }

    // The "kill": capture the live truth, then drop the process image.
    let frags = session.fragments();
    let live_s = sssp_bytes(src, session.run_state::<Sssp>("sssp").unwrap().unwrap(), frags);
    let live_c = cc_bytes(session.run_state::<ConnectedComponents>("cc").unwrap().unwrap(), frags);
    let out_s = session.query::<Sssp>("sssp", &src).unwrap();
    let out_c = session.query::<ConnectedComponents>("cc", &()).unwrap();
    drop(session);

    let mut restored: Session<(), u32, _> = Session::restore(&dir)
        .mode(mode.clone())
        .threads(4)
        .max_rounds(200_000)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()
        .unwrap_or_else(|e| panic!("{label}: restore after {point:?}: {e}"));
    let frags2 = restored.fragments();
    let rest_s = sssp_bytes(src, restored.run_state::<Sssp>("sssp").unwrap().unwrap(), frags2);
    let rest_c =
        cc_bytes(restored.run_state::<ConnectedComponents>("cc").unwrap().unwrap(), frags2);
    assert_eq!(live_s, rest_s, "{label}: SSSP state byte-identical across the crash");
    assert_eq!(live_c, rest_c, "{label}: CC state byte-identical across the crash");
    assert_eq!(restored.query::<Sssp>("sssp", &src).unwrap(), out_s, "{label}: SSSP serve");
    assert_eq!(
        restored.query::<ConnectedComponents>("cc", &()).unwrap(),
        out_c,
        "{label}: CC serve"
    );
    if point == CrashPoint::CommittedBeforeRotation {
        assert_eq!(
            restored.epoch_chain(),
            Some(&[2, 1, 0][..]),
            "{label}: restore adopts the committed chain"
        );
        assert!(
            !dir.join("deltas.1.dlog").exists(),
            "{label}: restore completed the interrupted rotation"
        );
    }
    // The revived directory is healthy: a real (un-injected) checkpoint
    // commits the replayed state.
    restored.checkpoint().unwrap_or_else(|e| panic!("{label}: post-restore checkpoint: {e}"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The `full == chain-resolved` driver: one graph + stream through two
/// durable sessions — all-full (`differential(false)`) vs differential
/// with a short compaction threshold — checkpointing **both after every
/// batch**. The two live states, both restores, and each other must
/// agree byte-for-byte: resolving a fragment/state-shard chain (with a
/// compaction mid-stream when the stream is long enough) reconstructs
/// exactly what the full baselines wrote.
pub fn assert_full_equals_chain_restore(
    g0: &Graph<(), u32>,
    src: u32,
    deltas: &[GraphDelta<(), u32>],
    kind: PartitionKind,
    m: usize,
    label: &str,
) {
    let dir_full = scratch_dir("ckfull");
    let dir_chain = scratch_dir("ckchain");
    let open = |policy: DurabilityPolicy| {
        let spec = match kind {
            PartitionKind::EdgeCut => edge_cut(m),
            PartitionKind::VertexCut => vertex_cut(m),
        };
        let mut s = Session::builder(g0.clone())
            .partition(spec)
            .mode(Mode::aap())
            .threads(4)
            .max_rounds(200_000)
            .program("sssp", Sssp)
            .program("cc", ConnectedComponents)
            .durability(policy)
            .unwrap_or_else(|e| panic!("{label}: durability: {e}"))
            .open()
            .unwrap_or_else(|e| panic!("{label}: open: {e}"));
        s.query::<Sssp>("sssp", &src).unwrap();
        s.query::<ConnectedComponents>("cc", &()).unwrap();
        s
    };
    let mut full = open(DurabilityPolicy::new(&dir_full).differential(false));
    let mut chain = open(DurabilityPolicy::new(&dir_chain).compact_after(3));
    let mut saw_differential = false;
    for (i, delta) in deltas.iter().enumerate() {
        full.apply(delta).unwrap_or_else(|e| panic!("{label}: full apply {i}: {e}"));
        chain.apply(delta).unwrap_or_else(|e| panic!("{label}: chain apply {i}: {e}"));
        let rf = full.checkpoint().unwrap_or_else(|e| panic!("{label}: full ckpt {i}: {e}"));
        let rc = chain.checkpoint().unwrap_or_else(|e| panic!("{label}: chain ckpt {i}: {e}"));
        assert!(!rf.differential, "{label}: the full session writes baselines only");
        saw_differential |= rc.differential;
    }
    if !deltas.is_empty() {
        assert!(saw_differential, "{label}: the chained session never wrote a differential epoch");
    }
    let frags_f = full.fragments();
    let live_s = sssp_bytes(src, full.run_state::<Sssp>("sssp").unwrap().unwrap(), frags_f);
    let live_c = cc_bytes(full.run_state::<ConnectedComponents>("cc").unwrap().unwrap(), frags_f);
    drop(full);
    drop(chain);

    let mut states = Vec::new();
    for dir in [&dir_full, &dir_chain] {
        let restored: Session<(), u32, _> = Session::restore(dir)
            .mode(Mode::aap())
            .threads(4)
            .max_rounds(200_000)
            .program("sssp", Sssp)
            .program("cc", ConnectedComponents)
            .open()
            .unwrap_or_else(|e| panic!("{label}: restore {dir:?}: {e}"));
        let frags = restored.fragments();
        states.push((
            sssp_bytes(src, restored.run_state::<Sssp>("sssp").unwrap().unwrap(), frags),
            cc_bytes(restored.run_state::<ConnectedComponents>("cc").unwrap().unwrap(), frags),
        ));
    }
    assert_eq!(states[0].0, live_s, "{label}: full restore == live SSSP");
    assert_eq!(states[0].1, live_c, "{label}: full restore == live CC");
    assert_eq!(states[1].0, live_s, "{label}: chain-resolved restore == full SSSP");
    assert_eq!(states[1].1, live_c, "{label}: chain-resolved restore == full CC");
    std::fs::remove_dir_all(&dir_full).ok();
    std::fs::remove_dir_all(&dir_chain).ok();
}
