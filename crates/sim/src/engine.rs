//! The discrete-event simulation engine.
//!
//! Executes a PIE program over fragments exactly as `aap_core::engine`
//! does, but with a virtual clock: each round costs
//! [`CostModel::round_cost`] time units, messages arrive `latency` units
//! after the sending round completes, and the δ policy of
//! `aap_core::policy` is evaluated in virtual time. Single-threaded and
//! fully deterministic: events carry an explicit `(time, tie, seq)` key,
//! where the canonical tie is the owning worker's id — so the schedule is
//! stable under heap internals and insertion order, and a seeded
//! [`ScheduleFuzz`] is the *only* source of order variation.

use crate::cost::CostModel;
use crate::fuzz::ScheduleFuzz;
use crate::timeline::{timeline_to_trace, Span, SpanKind, Timeline};
use aap_core::engine::RunState;
use aap_core::inbox::Inbox;
use aap_core::pie::{route_updates_into, Batch, PieProgram, UpdateCtx, WarmStart};
use aap_core::policy::{self, Decision, Mode, PolicyState, SharedRates};
use aap_core::scratch::{Scratch, SharedPool};
use aap_core::stats::{RunStats, WorkerStats, BATCH_HEADER_BYTES, UPDATE_KEY_BYTES};
use aap_graph::mutate::StateRemap;
use aap_graph::{FragId, Fragment, LocalId};
use aap_trace::{cat, pid, Args, Tracer};
use std::cell::RefCell;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Simulator options.
#[derive(Debug, Clone)]
pub struct SimOpts {
    /// Execution mode (δ policy).
    pub mode: Mode,
    /// Message delivery latency in virtual time units.
    pub latency: f64,
    /// Per-round compute-cost model.
    pub cost: CostModel,
    /// Abort if any worker exceeds this many rounds.
    pub max_rounds: Option<u32>,
    /// Seeded schedule perturbation ([`ScheduleFuzz::off`] = canonical).
    pub schedule: ScheduleFuzz,
}

impl Default for SimOpts {
    fn default() -> Self {
        SimOpts {
            mode: Mode::aap(),
            latency: 0.1,
            cost: CostModel::uniform_work(),
            max_rounds: Some(1_000_000),
            schedule: ScheduleFuzz::off(),
        }
    }
}

impl SimOpts {
    /// Builder-style knob: run under the given schedule fuzzer.
    ///
    /// ```
    /// use aap_sim::{ScheduleFuzz, SimOpts};
    /// let opts = SimOpts::default().schedule(ScheduleFuzz::seeded(42));
    /// ```
    pub fn schedule(mut self, fuzz: ScheduleFuzz) -> Self {
        self.schedule = fuzz;
        self
    }
}

/// Construction-time errors from [`SimEngine::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `CostModel::FixedPerWorker` was given an empty cost vector — no
    /// worker could ever be priced.
    EmptyCostVector,
    /// A [`ScheduleFuzz`] knob is out of range.
    InvalidSchedule(&'static str),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyCostVector => {
                write!(f, "CostModel::FixedPerWorker needs at least one cost")
            }
            SimError::InvalidSchedule(why) => write!(f, "invalid ScheduleFuzz: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulated run.
#[derive(Debug)]
pub struct SimOutput<Out> {
    /// The assembled answer.
    pub out: Out,
    /// Statistics; `makespan` is in virtual time units.
    pub stats: RunStats,
    /// Per-worker activity history (for Gantt rendering).
    pub timelines: Vec<Timeline>,
}

/// Discrete-event simulator over a fixed partition.
pub struct SimEngine<V, E> {
    frags: Vec<Arc<Fragment<V, E>>>,
    opts: SimOpts,
    /// Structured-event tracer; after each run, the virtual-time
    /// timelines are re-emitted as Chrome trace spans on `pid::SIM`.
    tracer: Tracer,
    /// Trace-time offset (µs) for the next run's re-emitted spans.
    /// Every run starts its virtual clock at 0; laying consecutive runs
    /// end-to-end keeps per-track timestamps monotone, which trace
    /// viewers (and the format checks) require. Atomic only to stay
    /// `Sync` — runs take `&self`.
    virt_base_us: std::sync::atomic::AtomicU64,
}

/// Internal result of one simulated run, before assembly.
type SimRun<St> = (RunStats, Vec<St>, Vec<Timeline>);

enum EventKind<Val> {
    Finish { w: usize },
    Arrive { w: usize, batch: Batch<Val> },
    Wake { w: usize, gen: u64 },
}

struct Event<Val> {
    time: f64,
    /// Explicit same-time priority: the owning worker's id under the
    /// canonical schedule, a seeded hash under [`ScheduleFuzz`]. Without
    /// it, same-time ordering would fall through to `seq` — i.e. to
    /// insertion order, which heap internals and unrelated code motion
    /// can silently reshuffle.
    tie: u64,
    seq: u64,
    kind: EventKind<Val>,
}

impl<Val> PartialEq for Event<Val> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.tie == other.tie && self.seq == other.seq
    }
}
impl<Val> Eq for Event<Val> {}
impl<Val> PartialOrd for Event<Val> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<Val> Ord for Event<Val> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; reverse for earliest-first on the
        // full (time, tie, seq) key.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.tie.cmp(&self.tie))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Event tracing for debugging policy behaviour: set `AAP_SIM_TRACE=1`.
/// Cached: the check sits on the hot event loop.
fn trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("AAP_SIM_TRACE").is_some())
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WState {
    Computing,
    Suspended,
    Inactive,
}

struct SimWorker<Val, St> {
    inbox: Inbox<Val>,
    state: Option<St>,
    pstate: PolicyState,
    stats: WorkerStats,
    rounds: u32,
    local_work: bool,
    wstate: WState,
    gen: u64,
    pending_out: Vec<(FragId, Batch<Val>)>,
    /// Reusable routing/drain buffers — the same zero-hash, zero-alloc
    /// message path the threaded engine runs (`aap_core::scratch`).
    scratch: Scratch<Val>,
    timeline: Timeline,
    suspend_started: Option<f64>,
    round_started: f64,
}

impl<V, E> SimEngine<V, E> {
    /// Create a simulator over pre-built fragments.
    ///
    /// Fails fast on unusable options — an empty
    /// [`CostModel::FixedPerWorker`] vector or out-of-range
    /// [`ScheduleFuzz`] knobs — instead of panicking mid-run.
    pub fn new(frags: Vec<Fragment<V, E>>, opts: SimOpts) -> Result<Self, SimError> {
        if matches!(&opts.cost, CostModel::FixedPerWorker(costs) if costs.is_empty()) {
            return Err(SimError::EmptyCostVector);
        }
        opts.schedule.validate().map_err(SimError::InvalidSchedule)?;
        Ok(SimEngine {
            frags: frags.into_iter().map(Arc::new).collect(),
            opts,
            tracer: Tracer::default(),
            virt_base_us: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Attach a structured-event tracer: each subsequent run re-emits
    /// its per-worker [`Timeline`]s as virtual-time trace spans (see
    /// [`timeline_to_trace`]) plus a `mode` instant, on the `pid::SIM`
    /// tracks. Pass `Tracer::default()` to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer runs report into (disabled unless
    /// [`SimEngine::set_tracer`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The fragments under simulation.
    pub fn fragments(&self) -> &[Arc<Fragment<V, E>>] {
        &self.frags
    }

    /// Exclusive access to the fragments for in-place delta application
    /// (`aap-delta`); `None` while a run output still shares them.
    pub fn fragments_mut(&mut self) -> Option<Vec<&mut Fragment<V, E>>> {
        let mut out = Vec::with_capacity(self.frags.len());
        for a in self.frags.iter_mut() {
            match Arc::get_mut(a) {
                Some(f) => out.push(f),
                None => return None,
            }
        }
        Some(out)
    }

    /// Copy-on-write access to the fragments: shared `Arc`s (e.g. held
    /// by an in-flight background checkpoint) are detached by cloning
    /// the shared fragment, exclusive ones are borrowed in place. See
    /// `Engine::fragments_cow`.
    pub fn fragments_cow(&mut self) -> Vec<&mut Fragment<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        self.frags.iter_mut().map(Arc::make_mut).collect()
    }

    /// Run one query to fixpoint in virtual time.
    pub fn run<P>(&self, prog: &P, q: &P::Query) -> SimOutput<P::Out>
    where
        P: PieProgram<V, E>,
    {
        let eval0 = |_w: usize, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<P::Val>| {
            prog.peval(q, frag, ctx)
        };
        let (stats, states, timelines) = self.run_with(prog, q, &eval0);
        SimOutput { out: prog.assemble(q, &self.frags, states), stats, timelines }
    }

    /// Like [`SimEngine::run`], but retain the per-fragment states for a
    /// later [`SimEngine::run_incremental`].
    pub fn run_retained<P>(&self, prog: &P, q: &P::Query) -> (SimOutput<P::Out>, RunState<P::State>)
    where
        P: WarmStart<V, E>,
    {
        let eval0 = |_w: usize, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<P::Val>| {
            prog.peval(q, frag, ctx)
        };
        let (stats, states, timelines) = self.run_with(prog, q, &eval0);
        let out = prog.assemble_ref(q, &self.frags, &states);
        (SimOutput { out, stats, timelines }, RunState::new(states))
    }

    /// Warm-start incremental evaluation in virtual time — the simulated
    /// mirror of `aap_core::Engine::run_incremental`, so timelines and
    /// cost models cover delta rounds too. Round 0 is `warm_eval` from
    /// the delta-affected `seeds`, after discarding the `invalid`
    /// vertices of a non-monotone batch (programs charge the
    /// invalidation scan as work, so the cost model prices the
    /// invalidation round); later rounds are ordinary `IncEval`.
    pub fn run_incremental<P>(
        &self,
        prog: &P,
        q: &P::Query,
        remaps: &[StateRemap],
        seeds: &[Vec<LocalId>],
        invalid: &[Vec<LocalId>],
        state: &mut RunState<P::State>,
    ) -> SimOutput<P::Out>
    where
        P: WarmStart<V, E>,
    {
        let m = self.frags.len();
        assert_eq!(state.len(), m, "RunState must match the fragment count");
        assert_eq!(remaps.len(), m);
        assert_eq!(seeds.len(), m);
        assert_eq!(invalid.len(), m);
        let priors: RefCell<Vec<Option<P::State>>> =
            RefCell::new(state.take_states().into_iter().map(Some).collect());
        let eval0 = |w: usize, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<P::Val>| {
            let prior = priors.borrow_mut()[w].take().expect("warm state taken once per worker");
            prog.warm_eval(q, frag, prior, &remaps[w], &seeds[w], &invalid[w], ctx)
        };
        let (stats, states, timelines) = self.run_with(prog, q, &eval0);
        let out = prog.assemble_ref(q, &self.frags, &states);
        state.set_states(states);
        SimOutput { out, stats, timelines }
    }

    fn run_with<P, F>(&self, prog: &P, q: &P::Query, eval0: &F) -> SimRun<P::State>
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State,
    {
        let run = match self.opts.mode {
            Mode::Bsp => self.run_bsp(prog, q, eval0),
            _ => self.run_async(prog, q, eval0),
        };
        // Timelines already hold the whole schedule in virtual time, so
        // tracing costs nothing during the event loop: one re-emission
        // pass per run, only when a sink is attached.
        if self.tracer.enabled() {
            use crate::timeline::TRACE_US_PER_UNIT;
            use std::sync::atomic::Ordering;
            // Consecutive runs lay out end-to-end on the virtual clock
            // (each starts at 0 internally); claim this run's window up
            // front so timestamps stay monotone per track.
            let span_us = (run.0.makespan.max(0.0) * TRACE_US_PER_UNIT).ceil() as u64
                + TRACE_US_PER_UNIT as u64;
            let base = self.virt_base_us.fetch_add(span_us, Ordering::Relaxed);
            self.tracer.instant_at(
                base,
                pid::SIM,
                0,
                cat::POLICY,
                "mode",
                Args::new()
                    .with("mode", self.opts.mode.name())
                    .with("workers", run.2.len())
                    .with("virt_makespan", run.0.makespan),
            );
            for mut ev in timeline_to_trace(&run.2) {
                ev.ts_us += base;
                self.tracer.emit(ev);
            }
        }
        run
    }

    // ------------------------------------------------------------------
    // BSP: lockstep supersteps with a barrier and post-barrier delivery.
    // ------------------------------------------------------------------
    fn run_bsp<P, F>(&self, prog: &P, q: &P::Query, eval0: &F) -> SimRun<P::State>
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State,
    {
        let m = self.frags.len();
        let mut workers: Vec<SimWorker<P::Val, P::State>> = (0..m).map(|_| new_worker()).collect();
        attach_shared_pool(&mut workers);
        let mut t = 0.0f64;
        let mut superstep: u32 = 0;
        let mut active: Vec<usize> = (0..m).collect();
        let mut aborted = false;
        while !active.is_empty() {
            if let Some(maxr) = self.opts.max_rounds {
                if superstep > maxr {
                    aborted = true;
                    break;
                }
            }
            // Under fuzz, each superstep executes (and therefore routes)
            // in a seeded permutation of worker order, and the
            // post-barrier delivery lands in a second permutation — BSP's
            // equivalents of wake-order and interleaving perturbation.
            self.opts.schedule.shuffle_wake(&mut active, superstep as u64);
            let mut t_end = t;
            let mut all_batches: Vec<(FragId, Batch<P::Val>)> = Vec::new();
            for &w in &active {
                let cost =
                    self.execute_round(prog, q, eval0, &mut workers[w], w, t, superstep == 0);
                t_end = t_end.max(t + cost);
                all_batches.append(&mut workers[w].pending_out);
                workers[w].rounds += 1;
                workers[w].wstate = WState::Inactive;
            }
            let sent_any = !all_batches.is_empty();
            self.opts.schedule.shuffle_delivery(&mut all_batches, superstep as u64);
            for (dst, b) in all_batches {
                let dw = &mut workers[dst as usize];
                dw.stats.batches_in += 1;
                dw.stats.updates_in += b.updates.len() as u64;
                dw.inbox.push(b);
            }
            t = if sent_any { t_end + self.opts.latency } else { t_end };
            active =
                (0..m).filter(|&w| !workers[w].inbox.is_empty() || workers[w].local_work).collect();
            superstep += 1;
        }
        finish(&self.opts.mode, workers, t, aborted)
    }

    // ------------------------------------------------------------------
    // Async: AP / SSP / AAP / Hsync via the shared δ.
    // ------------------------------------------------------------------
    fn run_async<P, F>(&self, prog: &P, q: &P::Query, eval0: &F) -> SimRun<P::State>
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State,
    {
        let m = self.frags.len();
        let mut workers: Vec<SimWorker<P::Val, P::State>> = (0..m).map(|_| new_worker()).collect();
        attach_shared_pool(&mut workers);
        let rates = SharedRates::new(m);
        let l0 = match &self.opts.mode {
            Mode::Aap(cfg) => policy::l_floor(cfg, m),
            _ => 0.0,
        };
        for w in &mut workers {
            w.pstate = PolicyState::new(l0);
        }
        let mut queue: BinaryHeap<Event<P::Val>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut now = 0.0f64;
        let mut aborted = false;

        // PEval everywhere at t = 0.
        #[allow(clippy::needless_range_loop)]
        for w in 0..m {
            let cost = self.execute_round(prog, q, eval0, &mut workers[w], w, 0.0, true);
            seq += 1;
            let tie = self.opts.schedule.tie(w, seq);
            queue.push(Event { time: cost, tie, seq, kind: EventKind::Finish { w } });
        }

        while let Some(ev) = queue.pop() {
            now = ev.time;
            match ev.kind {
                EventKind::Finish { w } => {
                    // Bounds before this event's mutations; if the event
                    // raises them, held (lockstep) workers are re-evaluated.
                    // This must be per-event: an Arrive can revive a
                    // behind-round worker between finishes, dipping rmin
                    // and re-suspending fast workers, so a cache of the
                    // last finish-time bounds goes stale.
                    let b_pre = bounds(&workers);
                    workers[w].rounds += 1;
                    if trace_enabled() {
                        eprintln!("[{now:.3}] finish P{w} -> ri={}", workers[w].rounds);
                    }
                    if let Some(maxr) = self.opts.max_rounds {
                        if workers[w].rounds > maxr {
                            aborted = true;
                            break;
                        }
                    }
                    // Dispatch the round's messages.
                    let mut outs = std::mem::take(&mut workers[w].pending_out);
                    for (dst, b) in outs.drain(..) {
                        seq += 1;
                        // Fuzzed delivery: stretch this batch's latency by
                        // a per-(link, message) factor in
                        // [1, 1 + reorder_window] — bounded reorder, never
                        // earlier than the configured latency.
                        let latency = self.opts.latency
                            * self.opts.schedule.delivery_factor(w, dst as usize, seq);
                        let tie = self.opts.schedule.tie(dst as usize, seq);
                        queue.push(Event {
                            time: now + latency,
                            tie,
                            seq,
                            kind: EventKind::Arrive { w: dst as usize, batch: b },
                        });
                    }
                    workers[w].scratch.give_out(outs);
                    {
                        let wk = &mut workers[w];
                        let dt = now - wk.round_started;
                        policy::on_round_complete(&self.opts.mode, &mut wk.pstate, dt, now);
                        rates.publish(w, wk.pstate.s_rate, wk.pstate.t_round);
                    }
                    if let Mode::Hsync(cfg) = &self.opts.mode {
                        rates.hsync_on_round(cfg);
                    }
                    workers[w].wstate = WState::Inactive; // provisional; δ below
                    let b = bounds(&workers);
                    self.evaluate(
                        prog,
                        q,
                        eval0,
                        &mut workers,
                        w,
                        now,
                        &rates,
                        &mut queue,
                        &mut seq,
                        b,
                    );
                    // Round bounds moved: held workers may now be released.
                    let b2 = bounds(&workers);
                    if b2 != b_pre || b2 != b {
                        let held: Vec<usize> = (0..m)
                            .filter(|&h| h != w && workers[h].wstate == WState::Suspended)
                            .collect();
                        for h in held {
                            self.evaluate(
                                prog,
                                q,
                                eval0,
                                &mut workers,
                                h,
                                now,
                                &rates,
                                &mut queue,
                                &mut seq,
                                b2,
                            );
                        }
                    }
                }
                EventKind::Arrive { w, batch } => {
                    if trace_enabled() {
                        eprintln!("[{now:.3}] arrive P{w} (state {:?})", workers[w].wstate);
                    }
                    {
                        let wk = &mut workers[w];
                        wk.stats.batches_in += 1;
                        wk.stats.updates_in += batch.updates.len() as u64;
                        wk.inbox.push(batch);
                    }
                    if workers[w].wstate != WState::Computing {
                        let b = bounds(&workers);
                        self.evaluate(
                            prog,
                            q,
                            eval0,
                            &mut workers,
                            w,
                            now,
                            &rates,
                            &mut queue,
                            &mut seq,
                            b,
                        );
                    }
                }
                EventKind::Wake { w, gen } => {
                    if workers[w].gen == gen && workers[w].wstate == WState::Suspended {
                        // Suspension exceeded DSi: activate (§3).
                        if !workers[w].inbox.is_empty() || workers[w].local_work {
                            self.start_round(
                                prog,
                                q,
                                eval0,
                                &mut workers,
                                w,
                                now,
                                &rates,
                                &mut queue,
                                &mut seq,
                            );
                        } else {
                            let b_pre = bounds(&workers);
                            end_suspend(&mut workers[w], now);
                            workers[w].wstate = WState::Inactive;
                            let b2 = bounds(&workers);
                            if b2 != b_pre {
                                let held: Vec<usize> = (0..workers.len())
                                    .filter(|&h| workers[h].wstate == WState::Suspended)
                                    .collect();
                                for h in held {
                                    self.evaluate(
                                        prog,
                                        q,
                                        eval0,
                                        &mut workers,
                                        h,
                                        now,
                                        &rates,
                                        &mut queue,
                                        &mut seq,
                                        b2,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        if !aborted {
            let stuck: Vec<String> = workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.wstate != WState::Inactive || !w.inbox.is_empty())
                .map(|(i, w)| {
                    format!(
                        "P{i}: state={:?} rounds={} eta={} local_work={}",
                        w.wstate,
                        w.rounds,
                        w.inbox.eta(),
                        w.local_work
                    )
                })
                .collect();
            debug_assert!(
                stuck.is_empty(),
                "policy deadlock under {:?}, stuck workers: {stuck:#?}",
                self.opts.mode
            );
        }
        finish(&self.opts.mode, workers, now, aborted)
    }

    /// Evaluate δ for worker `w` and act on the decision, given the
    /// current round bounds (computed once per event — evaluating each
    /// suspended worker must not rescan the cluster, or large-`m` runs
    /// become quadratic).
    #[allow(clippy::too_many_arguments)]
    fn evaluate<P, F>(
        &self,
        prog: &P,
        q: &P::Query,
        eval0: &F,
        workers: &mut [SimWorker<P::Val, P::State>],
        w: usize,
        now: f64,
        rates: &SharedRates,
        queue: &mut BinaryHeap<Event<P::Val>>,
        seq: &mut u64,
        (rmin, rmax): (u32, u32),
    ) where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State,
    {
        debug_assert_ne!(workers[w].wstate, WState::Computing);
        let inputs = policy::DeltaInputs {
            eta: workers[w].inbox.eta(),
            local_work: workers[w].local_work,
            ri: workers[w].rounds,
            rmin,
            rmax,
            now,
            avg_rate: rates.avg_rate(),
            hsync_sync: rates.hsync_sync(),
        };
        let d = policy::delta(&self.opts.mode, &workers[w].pstate, &inputs);
        if trace_enabled() {
            eprintln!(
                "[{now:.3}] eval P{w} ri={} eta={} rmin={rmin} rmax={rmax} -> {d:?}",
                workers[w].rounds, inputs.eta
            );
        }
        match d {
            Decision::Run => {
                self.start_round(prog, q, eval0, workers, w, now, rates, queue, seq);
            }
            Decision::Delay(ds) => {
                begin_suspend(&mut workers[w], now);
                workers[w].wstate = WState::Suspended;
                workers[w].gen += 1;
                *seq += 1;
                queue.push(Event {
                    time: now + ds,
                    tie: self.opts.schedule.tie(w, *seq),
                    seq: *seq,
                    kind: EventKind::Wake { w, gen: workers[w].gen },
                });
            }
            Decision::Hold => {
                begin_suspend(&mut workers[w], now);
                workers[w].wstate = WState::Suspended;
                workers[w].gen += 1; // cancel pending wakes
            }
            Decision::Inactive => {
                end_suspend(&mut workers[w], now);
                workers[w].wstate = WState::Inactive;
            }
        }
    }

    /// Start a round at virtual time `t`: drain, execute, schedule Finish.
    #[allow(clippy::too_many_arguments)]
    fn start_round<P, F>(
        &self,
        prog: &P,
        q: &P::Query,
        eval0: &F,
        workers: &mut [SimWorker<P::Val, P::State>],
        w: usize,
        t: f64,
        rates: &SharedRates,
        queue: &mut BinaryHeap<Event<P::Val>>,
        seq: &mut u64,
    ) where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State,
    {
        end_suspend(&mut workers[w], t);
        let m = workers.len();
        {
            let wk = &mut workers[w];
            let avg = rates.avg_rate();
            let fast = rates.fast_count();
            let eta = wk.inbox.eta();
            policy::on_drain(&self.opts.mode, &mut wk.pstate, eta, t, m, avg, fast);
        }
        let is_peval = workers[w].rounds == 0;
        let cost = self.execute_round(prog, q, eval0, &mut workers[w], w, t, is_peval);
        workers[w].gen += 1; // cancel pending wakes
        *seq += 1;
        let tie = self.opts.schedule.tie(w, *seq);
        queue.push(Event { time: t + cost, tie, seq: *seq, kind: EventKind::Finish { w } });
    }

    /// Drain + run PEval/IncEval + route updates; returns the round cost and
    /// leaves the batches in `pending_out`.
    #[allow(clippy::too_many_arguments)]
    fn execute_round<P, F>(
        &self,
        prog: &P,
        q: &P::Query,
        eval0: &F,
        wk: &mut SimWorker<P::Val, P::State>,
        w: usize,
        t: f64,
        is_peval: bool,
    ) -> f64
    where
        P: PieProgram<V, E>,
        F: Fn(usize, &Fragment<V, E>, &mut UpdateCtx<P::Val>) -> P::State,
    {
        let frag = &self.frags[w];
        let round = wk.rounds;
        let raw_in = if is_peval {
            // PEval consumes no messages; anything already buffered (only
            // possible with zero latency/cost) belongs to IncEval.
            0
        } else {
            let info = wk.inbox.drain_into(prog, frag, &mut wk.scratch);
            // Keep send/recycle capacity in line with observed traffic.
            wk.scratch.reserve_for_traffic(info.raw_updates, info.batches);
            info.raw_updates
        };
        // The scratch message buffer is empty outside drain/IncEval, so for
        // PEval this is an empty (recycled) vector.
        let mut msgs = wk.scratch.take_msgs();
        let delivered = msgs.len();
        let mut ctx = UpdateCtx::with_buffer(wk.scratch.take_updates_buf());
        if is_peval {
            let st = eval0(w, frag, &mut ctx);
            wk.state = Some(st);
        } else {
            let st = wk.state.as_mut().expect("PEval ran first");
            prog.inceval(q, frag, st, &mut msgs, &mut ctx);
        }
        wk.scratch.give_msgs(msgs);
        let (effective, redundant) = ctx.effect_counts();
        let charged = ctx.work();
        let (mut updates, local_work) = ctx.take();
        let emitted = updates.len();
        let mut batches = wk.scratch.take_out();
        route_updates_into(prog, frag, round, &mut updates, &mut wk.scratch, &mut batches);
        wk.scratch.give_updates_buf(updates);
        wk.local_work = local_work;
        wk.stats.rounds += 1;
        wk.stats.updates_delivered += delivered as u64;
        wk.stats.effective_updates += effective;
        wk.stats.redundant_updates += redundant;
        for (_, b) in &batches {
            wk.stats.batches_out += 1;
            wk.stats.updates_out += b.updates.len() as u64;
            wk.stats.bytes_out += (BATCH_HEADER_BYTES
                + b.updates
                    .iter()
                    .map(|(_, v)| UPDATE_KEY_BYTES + prog.val_bytes(v))
                    .sum::<usize>()) as u64;
        }
        let old = std::mem::replace(&mut wk.pending_out, batches);
        wk.scratch.give_out(old);
        let work = if charged > 0 { charged } else { (delivered + emitted) as u64 };
        // Fuzzed speed skew composes onto the configured model: the same
        // seed always slows the same workers by the same factor.
        let cost = self.opts.cost.round_cost(w, work, raw_in) * self.opts.schedule.speed_factor(w);
        wk.stats.compute_time += cost;
        wk.round_started = t;
        wk.wstate = WState::Computing;
        wk.timeline.spans.push(Span { start: t, end: t + cost, round, kind: SpanKind::Compute });
        cost
    }
}

/// Tear the simulated workers down into run statistics, final states and
/// timelines (the shared tail of the BSP and async paths).
fn finish<Val, St>(
    mode: &Mode,
    workers: Vec<SimWorker<Val, St>>,
    makespan: f64,
    aborted: bool,
) -> (RunStats, Vec<St>, Vec<Timeline>) {
    let mut stats_w = Vec::with_capacity(workers.len());
    let mut states = Vec::with_capacity(workers.len());
    let mut timelines = Vec::with_capacity(workers.len());
    for wk in workers {
        stats_w.push(wk.stats);
        states.push(wk.state.expect("round 0 ran on every fragment"));
        timelines.push(wk.timeline);
    }
    let stats = RunStats { mode: mode.name().to_string(), makespan, workers: stats_w, aborted };
    (stats, states, timelines)
}

fn new_worker<Val, St>() -> SimWorker<Val, St> {
    SimWorker {
        inbox: Inbox::default(),
        state: None,
        pstate: PolicyState::new(0.0),
        stats: WorkerStats::default(),
        rounds: 0,
        local_work: false,
        wstate: WState::Computing,
        gen: 0,
        pending_out: Vec::new(),
        scratch: Scratch::default(),
        timeline: Timeline::default(),
        suspend_started: None,
        round_started: 0.0,
    }
}

/// Share one batch-body recycling pool across all simulated workers (see
/// [`aap_core::scratch::SharedPool`]).
fn attach_shared_pool<Val, St>(workers: &mut [SimWorker<Val, St>]) {
    let pool: SharedPool<Val> = SharedPool::default();
    for wk in workers {
        wk.scratch.attach_shared_pool(pool.clone());
    }
}

/// `rmin`/`rmax` over non-inactive workers (inactive workers must not pin
/// the lockstep bounds — same rule as the threaded engine).
fn bounds<Val, St>(workers: &[SimWorker<Val, St>]) -> (u32, u32) {
    let mut rmin = u32::MAX;
    let mut rmax = 0;
    for wk in workers {
        rmax = rmax.max(wk.rounds);
        if wk.wstate != WState::Inactive {
            rmin = rmin.min(wk.rounds);
        }
    }
    if rmin == u32::MAX {
        rmin = rmax;
    }
    (rmin, rmax)
}

fn begin_suspend<Val, St>(wk: &mut SimWorker<Val, St>, now: f64) {
    if wk.suspend_started.is_none() {
        wk.suspend_started = Some(now);
    }
}

fn end_suspend<Val, St>(wk: &mut SimWorker<Val, St>, now: f64) {
    if let Some(s) = wk.suspend_started.take() {
        let dt = (now - s).max(0.0);
        wk.stats.suspend_time += dt;
        if dt > 0.0 {
            wk.timeline.spans.push(Span {
                start: s,
                end: now,
                round: wk.rounds,
                kind: SpanKind::Suspend,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_core::pie::Messages;
    use aap_core::policy::AapConfig;
    use aap_graph::partition::{build_fragments, hash_partition};
    use aap_graph::{GraphBuilder, LocalId};

    /// Toy min-label propagation: every vertex converges to the smallest
    /// vertex id reachable from it (= 0 on a connected graph).
    struct MinLabel;

    impl PieProgram<(), u32> for MinLabel {
        type Query = ();
        type Val = u32;
        type State = Vec<u32>;
        type Out = Vec<u32>;

        fn combine(&self, a: &mut u32, b: u32) -> bool {
            if b < *a {
                *a = b;
                true
            } else {
                false
            }
        }

        fn peval(&self, _q: &(), f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u32>) -> Vec<u32> {
            let mut lab: Vec<u32> = (0..f.local_count() as u32).map(|l| f.global(l)).collect();
            propagate(f, &mut lab, (0..f.local_count() as LocalId).collect(), ctx);
            lab
        }

        fn inceval(
            &self,
            _q: &(),
            f: &Fragment<(), u32>,
            lab: &mut Vec<u32>,
            msgs: &mut Messages<u32>,
            ctx: &mut UpdateCtx<u32>,
        ) {
            let mut dirty = Vec::new();
            for (l, v) in msgs.drain(..) {
                if v < lab[l as usize] {
                    lab[l as usize] = v;
                    dirty.push(l);
                    ctx.note_effective(1);
                } else {
                    ctx.note_redundant(1);
                }
            }
            propagate(f, lab, dirty, ctx);
        }

        fn assemble(
            &self,
            _q: &(),
            frags: &[Arc<Fragment<(), u32>>],
            states: Vec<Vec<u32>>,
        ) -> Vec<u32> {
            let n = frags.iter().map(|f| f.owned_count()).sum();
            let mut out = vec![0; n];
            for (f, lab) in frags.iter().zip(states) {
                for l in f.owned_vertices() {
                    out[f.global(l) as usize] = lab[l as usize];
                }
            }
            out
        }
    }

    fn propagate(
        f: &Fragment<(), u32>,
        lab: &mut [u32],
        mut work: Vec<LocalId>,
        ctx: &mut UpdateCtx<u32>,
    ) {
        let mut changed = std::collections::BTreeSet::new();
        for &l in &work {
            if f.is_border(l) {
                changed.insert(l);
            }
        }
        while let Some(u) = work.pop() {
            for &v in f.neighbors(u) {
                if lab[u as usize] < lab[v as usize] {
                    lab[v as usize] = lab[u as usize];
                    work.push(v);
                    if f.is_border(v) {
                        changed.insert(v);
                    }
                }
            }
        }
        for b in changed {
            ctx.send(b, lab[b as usize]);
        }
    }

    fn ring_frags(n: usize, m: usize) -> Vec<Fragment<(), u32>> {
        let mut b = GraphBuilder::new_undirected(n);
        for v in 0..n as u32 {
            b.add_edge(v, (v + 1) % n as u32, 1);
        }
        let g = b.build();
        build_fragments(&g, &hash_partition(&g, m))
    }

    fn modes() -> Vec<Mode> {
        vec![
            Mode::Bsp,
            Mode::Ap,
            Mode::Ssp { c: 2 },
            Mode::aap(),
            Mode::Aap(AapConfig { l_floor: 2.0, ..AapConfig::default() }),
            Mode::Hsync(aap_core::policy::HsyncConfig::default()),
        ]
    }

    #[test]
    fn all_modes_reach_same_fixpoint() {
        for mode in modes() {
            let engine = SimEngine::new(
                ring_frags(120, 5),
                SimOpts { mode: mode.clone(), ..SimOpts::default() },
            )
            .expect("valid opts");
            let out = engine.run(&MinLabel, &());
            assert!(out.out.iter().all(|&l| l == 0), "mode {mode:?} failed: {:?}", &out.out[..10]);
            assert!(!out.stats.aborted);
            assert!(out.stats.makespan > 0.0);
        }
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let engine =
                SimEngine::new(ring_frags(200, 7), SimOpts::default()).expect("valid opts");
            let out = engine.run(&MinLabel, &());
            (out.stats.makespan, out.stats.total_updates(), out.stats.total_rounds())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn straggler_hurts_bsp_more_than_aap() {
        // Fig 1-style: one worker 4x slower than the rest.
        let mk = |mode: Mode| {
            let mut speed = vec![1.0; 6];
            speed[0] = 4.0;
            let engine = SimEngine::new(
                ring_frags(600, 6),
                SimOpts {
                    mode,
                    latency: 0.05,
                    cost: CostModel::skewed_work(speed),
                    max_rounds: Some(100_000),
                    ..SimOpts::default()
                },
            )
            .expect("valid opts");
            engine.run(&MinLabel, &()).stats.makespan
        };
        let bsp = mk(Mode::Bsp);
        let aap = mk(Mode::aap());
        assert!(
            aap <= bsp * 1.05,
            "AAP ({aap:.2}) should not be slower than BSP ({bsp:.2}) under skew"
        );
    }

    #[test]
    fn timelines_record_rounds() {
        let engine = SimEngine::new(ring_frags(60, 3), SimOpts::default()).expect("valid opts");
        let out = engine.run(&MinLabel, &());
        assert_eq!(out.timelines.len(), 3);
        for (tl, ws) in out.timelines.iter().zip(&out.stats.workers) {
            assert_eq!(tl.rounds() as u64, ws.rounds);
        }
        let g = crate::timeline::render_gantt(&out.timelines, 60);
        assert!(g.lines().count() >= 4);
    }

    #[test]
    fn fixed_cost_model_fig1_shape() {
        // Three workers, costs 3/3/6, latency 1 — the Example 1 setting.
        let engine = SimEngine::new(
            ring_frags(90, 3),
            SimOpts {
                mode: Mode::Bsp,
                latency: 1.0,
                cost: CostModel::FixedPerWorker(vec![3.0, 3.0, 6.0]),
                max_rounds: Some(10_000),
                ..SimOpts::default()
            },
        )
        .expect("valid opts");
        let out = engine.run(&MinLabel, &());
        // Every BSP superstep costs max(3,3,6) + 1 = 7.
        let supersteps = out.stats.max_rounds();
        assert!((out.stats.makespan - (supersteps as f64 * 7.0)).abs() < 7.0 + 1e-9);
    }

    /// Satellite regression: same-virtual-time events must pop in the
    /// explicit `(time, worker, seq)` order no matter how they were
    /// inserted. Before the explicit `tie` key, same-time order fell
    /// through to `seq` — i.e. to insertion order.
    #[test]
    fn same_time_events_pop_independent_of_insertion_order() {
        let base: Vec<(f64, usize)> =
            vec![(1.0, 3), (1.0, 0), (2.0, 2), (1.0, 2), (2.0, 0), (1.0, 1), (0.5, 4)];
        let pop_order = |evs: &[(f64, usize)]| -> Vec<(u64, usize)> {
            let fuzz = ScheduleFuzz::off();
            let mut q: BinaryHeap<Event<u32>> = BinaryHeap::new();
            for (i, &(t, w)) in evs.iter().enumerate() {
                q.push(Event {
                    time: t,
                    tie: fuzz.tie(w, i as u64),
                    seq: i as u64,
                    kind: EventKind::Finish { w },
                });
            }
            std::iter::from_fn(|| q.pop())
                .map(|e| {
                    let EventKind::Finish { w } = e.kind else { unreachable!() };
                    (e.time.to_bits(), w)
                })
                .collect()
        };
        let expect = pop_order(&base);
        // Heap's algorithm: every permutation of the insertion order.
        let mut perm = base.clone();
        let n = perm.len();
        let mut c = vec![0usize; n];
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                assert_eq!(pop_order(&perm), expect, "insertion order leaked into pop order");
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn fuzzed_runs_reach_the_canonical_fixpoint_in_every_mode() {
        for mode in modes() {
            let canonical = SimEngine::new(
                ring_frags(120, 5),
                SimOpts { mode: mode.clone(), ..SimOpts::default() },
            )
            .expect("valid opts")
            .run(&MinLabel, &());
            for seed in 0..8u64 {
                let opts = SimOpts { mode: mode.clone(), ..SimOpts::default() }
                    .schedule(ScheduleFuzz::seeded(seed));
                let out = SimEngine::new(ring_frags(120, 5), opts)
                    .expect("valid opts")
                    .run(&MinLabel, &());
                assert_eq!(
                    out.out, canonical.out,
                    "mode {mode:?} diverged from the canonical fixpoint under fuzz seed {seed}"
                );
                assert!(!out.stats.aborted, "mode {mode:?} aborted under fuzz seed {seed}");
            }
        }
    }

    #[test]
    fn same_seed_replays_the_same_timeline_bit_identically() {
        let run = |seed: u64| {
            SimEngine::new(
                ring_frags(200, 7),
                SimOpts::default().schedule(ScheduleFuzz::seeded(seed)),
            )
            .expect("valid opts")
            .run(&MinLabel, &())
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.stats.makespan.to_bits(), b.stats.makespan.to_bits());
        assert_eq!(a.out, b.out);
        assert_eq!(a.timelines.len(), b.timelines.len());
        for (ta, tb) in a.timelines.iter().zip(&b.timelines) {
            assert_eq!(ta.spans.len(), tb.spans.len());
            for (sa, sb) in ta.spans.iter().zip(&tb.spans) {
                assert_eq!(sa.start.to_bits(), sb.start.to_bits(), "span starts must be bit-equal");
                assert_eq!(sa.end.to_bits(), sb.end.to_bits(), "span ends must be bit-equal");
                assert_eq!(sa.round, sb.round);
                assert_eq!(sa.kind, sb.kind);
            }
        }
        // A different seed is a genuinely different hostile timeline
        // (speed skew alone guarantees different round costs).
        let c = run(8);
        assert_ne!(a.stats.makespan.to_bits(), c.stats.makespan.to_bits());
    }

    #[test]
    fn more_workers_than_fixed_costs_no_longer_panics() {
        // 5 fragments priced by 3 costs: the tail inherits 6.0.
        let engine = SimEngine::new(
            ring_frags(100, 5),
            SimOpts {
                mode: Mode::Bsp,
                latency: 1.0,
                cost: CostModel::FixedPerWorker(vec![3.0, 3.0, 6.0]),
                max_rounds: Some(10_000),
                ..SimOpts::default()
            },
        )
        .expect("valid opts");
        let out = engine.run(&MinLabel, &());
        assert!(out.out.iter().all(|&l| l == 0));
    }

    #[test]
    fn bad_opts_are_construction_errors() {
        let empty = SimEngine::new(
            ring_frags(10, 2),
            SimOpts { cost: CostModel::FixedPerWorker(Vec::new()), ..SimOpts::default() },
        );
        assert_eq!(empty.err(), Some(SimError::EmptyCostVector));
        let bad_fuzz = SimEngine::new(
            ring_frags(10, 2),
            SimOpts::default().schedule(ScheduleFuzz::seeded(1).reorder_window(-1.0)),
        );
        assert!(matches!(bad_fuzz.err(), Some(SimError::InvalidSchedule(_))));
    }
}
