//! Seeded hostile-schedule fuzzing.
//!
//! The simulator is deterministic: one `(mode, cost, latency)` triple
//! yields one canonical schedule, so schedule-dependent bugs in the
//! warm-delta and serving paths stay invisible no matter how many graphs
//! the equivalence suites sweep. [`ScheduleFuzz`] closes that gap. A
//! single `u64` seed deterministically perturbs three things:
//!
//! * **wake order** — same-virtual-time events are re-prioritised by a
//!   seeded hash instead of the canonical worker-id order;
//! * **delivery interleaving** — each message batch's latency is
//!   stretched by a per-(link, message) jitter factor drawn in
//!   `[1, 1 + reorder_window]`, so batches reorder within a bounded
//!   delivery window (never arriving earlier than the configured
//!   latency, so causality is preserved);
//! * **speed skew** — each worker's round cost is multiplied by a
//!   per-worker factor in `[1, 1 + speed_skew]`, composed onto whatever
//!   [`crate::CostModel`] is configured.
//!
//! Draws are *stateless*: every decision hashes `(seed, salt, indices)`
//! through a tiny in-crate xorshift PRNG seeded per draw, so the value a
//! draw produces depends only on its identity, never on how many other
//! draws ran before it. The same seed therefore replays the same hostile
//! timeline bit-identically, which is what makes a failing seed a
//! one-line reproduction:
//!
//! ```
//! use aap_sim::{ScheduleFuzz, SimOpts};
//! let opts = SimOpts::default().schedule(ScheduleFuzz::seeded(0xBAD5EED));
//! ```

/// Deterministic schedule perturbation for [`crate::SimEngine`].
///
/// The default (`ScheduleFuzz::off()`) is inert: the engine runs its
/// canonical schedule, where same-time events tie-break on the explicit
/// `(time, worker, seq)` key. `ScheduleFuzz::seeded(seed)` turns every
/// knob on at its default strength; the builder methods tune or disable
/// individual knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleFuzz {
    seed: Option<u64>,
    reorder_window: f64,
    speed_skew: f64,
    wake_shuffle: bool,
}

impl Default for ScheduleFuzz {
    fn default() -> Self {
        ScheduleFuzz::off()
    }
}

impl ScheduleFuzz {
    /// The inert fuzzer: canonical schedule, no perturbation.
    pub fn off() -> Self {
        ScheduleFuzz { seed: None, reorder_window: 0.0, speed_skew: 0.0, wake_shuffle: false }
    }

    /// A fuzzer with every knob at its default strength: wake-order
    /// shuffling on, delivery jitter up to 1.5× the configured latency,
    /// per-worker speed skew up to 1.5× the modelled cost.
    pub fn seeded(seed: u64) -> Self {
        ScheduleFuzz { seed: Some(seed), reorder_window: 1.5, speed_skew: 0.5, wake_shuffle: true }
    }

    /// Set the delivery reorder window: each batch's latency is scaled
    /// by a factor in `[1, 1 + window]` (0 disables delivery jitter).
    pub fn reorder_window(mut self, window: f64) -> Self {
        self.reorder_window = window;
        self
    }

    /// Set the per-worker speed skew: round costs are scaled by a
    /// factor in `[1, 1 + skew]` (0 disables skew).
    pub fn speed_skew(mut self, skew: f64) -> Self {
        self.speed_skew = skew;
        self
    }

    /// Enable/disable the same-time wake-order shuffle.
    pub fn wake_shuffle(mut self, on: bool) -> Self {
        self.wake_shuffle = on;
        self
    }

    /// The reproducing seed, if fuzzing is active.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// True when any perturbation can occur.
    pub fn is_active(&self) -> bool {
        self.seed.is_some()
    }

    /// Knob validation, run by `SimEngine::new`: windows and skews must
    /// be finite and non-negative (a negative window would deliver
    /// messages before they were sent).
    pub(crate) fn validate(&self) -> Result<(), &'static str> {
        if !self.reorder_window.is_finite() || self.reorder_window < 0.0 {
            return Err("reorder_window must be finite and >= 0");
        }
        if !self.speed_skew.is_finite() || self.speed_skew < 0.0 {
            return Err("speed_skew must be finite and >= 0");
        }
        Ok(())
    }

    /// Tie-break priority for a same-time event owned by worker `w`.
    /// Canonical: the worker id itself (explicit, insertion-independent).
    /// Fuzzed: a seeded hash of `(w, seq)` — a per-event shuffle.
    pub(crate) fn tie(&self, w: usize, seq: u64) -> u64 {
        match self.seed {
            Some(s) if self.wake_shuffle => draw(s, salt::TIE, w as u64, seq),
            _ => w as u64,
        }
    }

    /// Latency multiplier (≥ 1) for message `seq` on link `src → dst`.
    pub(crate) fn delivery_factor(&self, src: usize, dst: usize, seq: u64) -> f64 {
        match self.seed {
            Some(s) if self.reorder_window > 0.0 => {
                let link = (src as u64) << 32 | dst as u64;
                1.0 + self.reorder_window * unit(draw(s, salt::DELIVERY, link, seq))
            }
            _ => 1.0,
        }
    }

    /// Compute-cost multiplier (≥ 1) for worker `w`, composed onto the
    /// configured [`crate::CostModel`]. Constant per (seed, worker) so a
    /// fuzzed run behaves like a cluster with genuinely skewed machines.
    pub(crate) fn speed_factor(&self, w: usize) -> f64 {
        match self.seed {
            Some(s) if self.speed_skew > 0.0 => {
                1.0 + self.speed_skew * unit(draw(s, salt::SPEED, w as u64, 0))
            }
            _ => 1.0,
        }
    }

    /// Seeded Fisher–Yates shuffle of a BSP superstep's wake order
    /// (no-op when inactive or wake shuffling is off).
    pub(crate) fn shuffle_wake<T>(&self, items: &mut [T], superstep: u64) {
        if let Some(s) = self.seed {
            if self.wake_shuffle {
                shuffle(items, s, salt::WAKE, superstep);
            }
        }
    }

    /// Seeded Fisher–Yates shuffle of a BSP superstep's post-barrier
    /// delivery order (no-op when inactive or the reorder window is 0).
    pub(crate) fn shuffle_delivery<T>(&self, items: &mut [T], superstep: u64) {
        if let Some(s) = self.seed {
            if self.reorder_window > 0.0 {
                shuffle(items, s, salt::DELIVERY, superstep);
            }
        }
    }
}

/// Domain-separation salts: each knob draws from its own stream, so
/// e.g. changing the reorder window never shifts the speed factors.
mod salt {
    pub const TIE: u64 = 0x7A1E_0001;
    pub const DELIVERY: u64 = 0x7A1E_0002;
    pub const SPEED: u64 = 0x7A1E_0003;
    pub const WAKE: u64 = 0x7A1E_0004;
}

/// Tiny xorshift64* PRNG (Marsaglia 2003). In-crate on purpose: the
/// workspace has zero RNG deps, and `aap_delta::generate::Xorshift`
/// lives downstream of this crate.
struct Xorshift64(u64);

impl Xorshift64 {
    fn new(seed: u64) -> Self {
        // Zero is the one absorbing state of xorshift; avoid it.
        Xorshift64(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// One stateless draw: seed the PRNG from `(seed, salt, a, b)` and step
/// twice so inputs differing in one bit decorrelate.
fn draw(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut rng = Xorshift64::new(
        seed ^ salt.rotate_left(17)
            ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    rng.next();
    rng.next()
}

/// Map a draw to `[0, 1)` using the top 53 bits.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seeded Fisher–Yates over `items`, keyed by `(seed, salt, tag, i)`.
fn shuffle<T>(items: &mut [T], seed: u64, salt: u64, tag: u64) {
    for i in (1..items.len()).rev() {
        let j = (draw(seed, salt, tag, i as u64) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert() {
        let f = ScheduleFuzz::off();
        assert!(!f.is_active());
        assert_eq!(f.tie(3, 99), 3);
        assert_eq!(f.delivery_factor(0, 1, 5), 1.0);
        assert_eq!(f.speed_factor(2), 1.0);
        let mut v = vec![1, 2, 3, 4];
        f.shuffle_wake(&mut v, 0);
        f.shuffle_delivery(&mut v, 0);
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn draws_are_stateless_and_seed_dependent() {
        let f = ScheduleFuzz::seeded(7);
        assert_eq!(f.tie(1, 10), f.tie(1, 10));
        assert_eq!(f.delivery_factor(0, 2, 3), f.delivery_factor(0, 2, 3));
        assert_eq!(f.speed_factor(4), f.speed_factor(4));
        let g = ScheduleFuzz::seeded(8);
        assert_ne!(
            (f.tie(1, 10), f.tie(2, 10), f.tie(3, 10)),
            (g.tie(1, 10), g.tie(2, 10), g.tie(3, 10)),
            "different seeds must draw different tie orders"
        );
    }

    #[test]
    fn factors_stay_in_their_windows() {
        let f = ScheduleFuzz::seeded(42).reorder_window(2.0).speed_skew(0.25);
        for i in 0..200u64 {
            let d = f.delivery_factor(i as usize % 7, (i as usize + 1) % 7, i);
            assert!((1.0..3.0).contains(&d), "delivery factor {d} out of [1,3)");
            let s = f.speed_factor(i as usize);
            assert!((1.0..1.25).contains(&s), "speed factor {s} out of [1,1.25)");
        }
    }

    #[test]
    fn knobs_can_be_disabled_individually() {
        let f = ScheduleFuzz::seeded(9).reorder_window(0.0).speed_skew(0.0).wake_shuffle(false);
        assert!(f.is_active());
        assert_eq!(f.tie(5, 1), 5);
        assert_eq!(f.delivery_factor(0, 1, 1), 1.0);
        assert_eq!(f.speed_factor(1), 1.0);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(ScheduleFuzz::seeded(1).reorder_window(-0.5).validate().is_err());
        assert!(ScheduleFuzz::seeded(1).speed_skew(f64::NAN).validate().is_err());
        assert!(ScheduleFuzz::seeded(1).validate().is_ok());
        assert!(ScheduleFuzz::off().validate().is_ok());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let f = ScheduleFuzz::seeded(3);
        let mut v: Vec<usize> = (0..20).collect();
        f.shuffle_wake(&mut v, 1);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let mut w: Vec<usize> = (0..20).collect();
        f.shuffle_wake(&mut w, 1);
        assert_eq!(v, w, "same (seed, superstep) must shuffle identically");
    }
}
