//! # aap-sim
//!
//! A deterministic **discrete-event simulator** for PIE programs under
//! BSP / AP / SSP / AAP / Hsync.
//!
//! The threaded engine in `aap-core` gives real wall-clock behaviour but is
//! limited to the machine's cores and to nondeterministic thread timing.
//! The experiments of the paper, however, need (a) *timing diagrams* for a
//! handful of workers with prescribed speeds (Fig 1, Fig 7), (b) clusters of
//! 64–320 workers (Fig 6), and (c) schedule randomisation with *identical*
//! re-runs for Church–Rosser checks. This simulator provides all three:
//!
//! * it executes the **same `PieProgram` objects** (the computation is
//!   real — results are actual algorithm outputs);
//! * it shares the **same δ policy code** (`aap_core::policy`), evaluated
//!   in virtual time;
//! * per-round compute costs come from a [`CostModel`] (fixed per worker,
//!   or proportional to actual work done with per-worker speed factors),
//!   and messages arrive after a configurable latency;
//! * a seeded [`ScheduleFuzz`] deterministically perturbs wake order,
//!   delivery interleavings and per-worker speed, so one `u64` seed
//!   reproduces one exact hostile schedule for Church–Rosser checks.
//!
//! This is the "simulate what you don't have" substitution documented in
//! DESIGN.md: stragglers and staleness are functions of compute skew and
//! latency, which are inputs here, so large-cluster *behaviour* (rounds,
//! message counts, who waits for whom, relative makespans) is reproduced
//! faithfully even though virtual time is not wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod fault;
pub mod fuzz;
#[cfg(test)]
pub(crate) mod testutil;
pub mod timeline;

pub use cost::CostModel;
pub use engine::{SimEngine, SimError, SimOpts, SimOutput};
pub use fault::{run_with_failure, FailurePlan, RecoveredRun, SimDurability};
pub use fuzz::ScheduleFuzz;
pub use timeline::{render_gantt, timeline_to_trace, Span, SpanKind, Timeline, TRACE_US_PER_UNIT};
