//! Virtual-time cost models for simulated rounds.

/// How long a round of computation takes in virtual time.
#[derive(Debug, Clone)]
pub enum CostModel {
    /// Worker `w` always takes `costs[w]` per round — the Fig 1 setting
    /// (`[3, 3, 6]` with unit latency).
    FixedPerWorker(Vec<f64>),
    /// Cost proportional to the work a round actually performs:
    /// `speed[w] · (base + per_work · work + per_raw · raw_in)`, where
    /// `work` is the algorithmic work the PIE program reported via
    /// `UpdateCtx::charge_work` (falling back to `delivered + emitted` for
    /// programs that don't report), and `raw_in` counts *raw* buffered
    /// updates before `faggr` aggregation (deserialise-and-fold cost).
    ///
    /// The split is what reproduces the paper's §1 analysis: AP's stale
    /// rounds repeat *internal* propagation work and raw ingestion, while a
    /// delay stretch folds `k` buffered updates into one round of
    /// downstream work.
    ///
    /// `speed[w] > 1` makes worker `w` a straggler; skewed partitions
    /// produce stragglers naturally through larger fragments.
    Work {
        /// Fixed per-round overhead.
        base: f64,
        /// Cost per reported algorithmic work unit.
        per_work: f64,
        /// Ingestion cost per *raw* buffered update (deserialise + fold
        /// into the buffer); cheaper than `per_work` because GRAPE+
        /// overlaps data transfer with computation (§6), but not free —
        /// this is what makes AP's redundant messages expensive.
        per_raw: f64,
        /// Per-worker speed multipliers (empty = all 1.0).
        speed: Vec<f64>,
    },
}

impl CostModel {
    /// Uniform work-proportional model with no per-worker skew.
    pub fn uniform_work() -> Self {
        Self::skewed_work(Vec::new())
    }

    /// Work-proportional model with explicit speed factors.
    pub fn skewed_work(speed: Vec<f64>) -> Self {
        CostModel::Work { base: 0.05, per_work: 1e-3, per_raw: 1e-3, speed }
    }

    /// Cost of one round.
    ///
    /// * `w` — worker index;
    /// * `work` — algorithmic work units this round (reported by the
    ///   program, or `delivered + emitted` as a fallback);
    /// * `raw_in` — raw (pre-aggregation) updates consumed.
    pub fn round_cost(&self, w: usize, work: u64, raw_in: usize) -> f64 {
        match self {
            // Workers beyond the vector inherit the last cost (mirrors
            // `Work`'s `speed.get(w)` fallback); an empty vector — which
            // `SimEngine::new` rejects up front — prices rounds at 1.
            CostModel::FixedPerWorker(costs) => {
                costs.get(w).or(costs.last()).copied().unwrap_or(1.0)
            }
            CostModel::Work { base, per_work, per_raw, speed } => {
                let sp = speed.get(w).copied().unwrap_or(1.0);
                sp * (base + per_work * work as f64 + per_raw * raw_in as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_work() {
        let c = CostModel::FixedPerWorker(vec![3.0, 6.0]);
        assert_eq!(c.round_cost(0, 100, 100), 3.0);
        assert_eq!(c.round_cost(1, 0, 0), 6.0);
    }

    #[test]
    fn fixed_falls_back_past_the_vector() {
        // More workers than costs used to index out of bounds; now the
        // tail inherits the last cost, and empty vectors price at unit.
        let c = CostModel::FixedPerWorker(vec![3.0, 6.0]);
        assert_eq!(c.round_cost(2, 10, 0), 6.0);
        assert_eq!(c.round_cost(99, 0, 0), 6.0);
        assert_eq!(CostModel::FixedPerWorker(Vec::new()).round_cost(5, 1, 1), 1.0);
    }

    #[test]
    fn work_scales_with_units_and_speed() {
        let c = CostModel::Work { base: 1.0, per_work: 0.5, per_raw: 0.0, speed: vec![1.0, 2.0] };
        assert!((c.round_cost(0, 10, 0) - 6.0).abs() < 1e-12);
        assert!((c.round_cost(1, 10, 0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn raw_ingestion_charged_separately() {
        let c = CostModel::Work { base: 0.0, per_work: 1.0, per_raw: 0.1, speed: vec![] };
        // 10 units of work + 100 raw updates: 10·1.0 + 100·0.1 = 20.
        assert!((c.round_cost(0, 10, 100) - 20.0).abs() < 1e-12);
    }
}
