//! Test-only helpers: a minimal min-label-propagation PIE program used by
//! the simulator's own tests (real algorithms live in `aap-algos`, which
//! dev-depends on this crate — using them here would cycle).

use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_graph::partition::{build_fragments_n, hash_partition};
use aap_graph::{Fragment, GraphBuilder, LocalId};
use std::sync::Arc;

/// Toy min-label propagation: every vertex converges to the smallest
/// vertex id reachable from it (= 0 on a connected graph).
pub struct MinLabel;

impl PieProgram<(), u32> for MinLabel {
    type Query = ();
    type Val = u32;
    type State = Vec<u32>;
    type Out = Vec<u32>;

    fn combine(&self, a: &mut u32, b: u32) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(&self, _q: &(), f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u32>) -> Vec<u32> {
        let mut lab: Vec<u32> = (0..f.local_count() as u32).map(|l| f.global(l)).collect();
        propagate(f, &mut lab, (0..f.local_count() as LocalId).collect(), ctx);
        lab
    }

    fn inceval(
        &self,
        _q: &(),
        f: &Fragment<(), u32>,
        lab: &mut Vec<u32>,
        msgs: &mut Messages<u32>,
        ctx: &mut UpdateCtx<u32>,
    ) {
        let mut dirty = Vec::new();
        for (l, v) in msgs.drain(..) {
            if v < lab[l as usize] {
                lab[l as usize] = v;
                dirty.push(l);
                ctx.note_effective(1);
            } else {
                ctx.note_redundant(1);
            }
        }
        propagate(f, lab, dirty, ctx);
    }

    fn assemble(
        &self,
        _q: &(),
        frags: &[Arc<Fragment<(), u32>>],
        states: Vec<Vec<u32>>,
    ) -> Vec<u32> {
        let n = frags.iter().map(|f| f.owned_count()).sum();
        let mut out = vec![0; n];
        for (f, lab) in frags.iter().zip(states) {
            for l in f.owned_vertices() {
                out[f.global(l) as usize] = lab[l as usize];
            }
        }
        out
    }
}

fn propagate(
    f: &Fragment<(), u32>,
    lab: &mut [u32],
    mut work: Vec<LocalId>,
    ctx: &mut UpdateCtx<u32>,
) {
    let mut changed = std::collections::BTreeSet::new();
    for &l in &work {
        if f.is_border(l) {
            changed.insert(l);
        }
    }
    let mut units = 0u64;
    while let Some(u) = work.pop() {
        units += 1 + f.neighbors(u).len() as u64;
        for &v in f.neighbors(u) {
            if lab[u as usize] < lab[v as usize] {
                lab[v as usize] = lab[u as usize];
                work.push(v);
                if f.is_border(v) {
                    changed.insert(v);
                }
            }
        }
        if f.is_border(u) {
            changed.insert(u);
        }
    }
    ctx.charge_work(units);
    for b in changed {
        ctx.send(b, lab[b as usize]);
    }
}

/// An undirected ring of `n` vertices over `m` hash-partitioned fragments.
pub fn ring_frags(n: usize, m: usize) -> Vec<Fragment<(), u32>> {
    let mut b = GraphBuilder::new_undirected(n);
    for v in 0..n as u32 {
        b.add_edge(v, (v + 1) % n as u32, 1);
    }
    let g = b.build();
    build_fragments_n(&g, &hash_partition(&g, m), m)
}
