//! Fault tolerance (§6): checkpoints and failure recovery, simulated.
//!
//! GRAPE+ adapts Chandy–Lamport snapshots so asynchronous runs have a
//! consistent state to roll back to; the paper reports ~40 s to snapshot
//! and ~20 s to recover one worker, versus 40 min to reload the graph.
//!
//! In the simulator every event is globally ordered on the virtual clock,
//! so the state a marker-based snapshot would assemble — per-worker states
//! plus in-flight messages — is exactly the simulator state *between two
//! events*: worker states, buffered inboxes, and the pending event queue
//! (undelivered messages and wake timers). [`run_with_failure`] takes such
//! checkpoints on a fixed virtual-time cadence, injects a whole-cluster
//! failure at a chosen instant, rolls back to the latest checkpoint
//! (coordinated-recovery semantics, the conservative variant of §6), adds
//! the configured recovery delay, and resumes. Determinism then guarantees
//! the recovered run converges to the same fixpoint, which the tests and
//! the `fault_tolerance` example verify.

use crate::engine::{SimEngine, SimOutput};
use aap_core::pie::PieProgram;

/// A failure-injection plan for [`run_with_failure`].
#[derive(Debug, Clone)]
pub struct FailurePlan {
    /// Take a checkpoint every this many virtual time units.
    pub checkpoint_every: f64,
    /// Inject the failure at this virtual time (skipped if the run
    /// finishes earlier).
    pub fail_at: f64,
    /// Extra virtual time charged for recovery (state reload, §6's
    /// "20 seconds to recover").
    pub recovery_delay: f64,
}

impl Default for FailurePlan {
    fn default() -> Self {
        FailurePlan { checkpoint_every: 10.0, fail_at: 25.0, recovery_delay: 5.0 }
    }
}

/// Outcome of a run with failure injection.
#[derive(Debug)]
pub struct RecoveredRun<Out> {
    /// The recovered run's result (must equal the failure-free fixpoint —
    /// Theorem 2 plus deterministic replay).
    pub output: SimOutput<Out>,
    /// Number of checkpoints taken before the failure.
    pub checkpoints_taken: usize,
    /// Virtual time of the checkpoint the run rolled back to.
    pub rolled_back_to: f64,
    /// Virtual time lost to the failure: work re-executed plus the
    /// recovery delay.
    pub time_lost: f64,
}

/// Run `prog` with periodic coordinated checkpoints and one injected
/// failure, recovering from the latest checkpoint.
///
/// The implementation leans on the simulator's determinism: a checkpoint
/// is a virtual-time cut `T`, and recovery re-executes the run from t = 0
/// up to that cut (identical by determinism) before continuing past it.
/// The *accounting* — checkpoint cadence, rollback point, lost time — is
/// what the fault-tolerance experiments need; the re-execution trick only
/// avoids requiring `Clone` on every program state.
pub fn run_with_failure<V, E, P>(
    engine: &SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    plan: &FailurePlan,
) -> RecoveredRun<P::Out>
where
    P: PieProgram<V, E>,
{
    // Failure-free reference run gives the horizon.
    let clean = engine.run(prog, q);
    let horizon = clean.stats.makespan;
    if plan.fail_at >= horizon {
        // Failure scheduled after completion: nothing to recover.
        return RecoveredRun {
            output: clean,
            checkpoints_taken: (horizon / plan.checkpoint_every).floor() as usize,
            rolled_back_to: horizon,
            time_lost: 0.0,
        };
    }
    // Only checkpoints *strictly before* the crash are usable.
    let checkpoints_taken =
        ((plan.fail_at - 1e-12) / plan.checkpoint_every).floor().max(0.0) as usize;
    let rolled_back_to = checkpoints_taken as f64 * plan.checkpoint_every;
    // Deterministic replay: the run after recovery is the clean run with
    // the segment [rolled_back_to, fail_at] executed twice plus the
    // recovery delay.
    let time_lost = (plan.fail_at - rolled_back_to) + plan.recovery_delay;
    let mut output = engine.run(prog, q);
    output.stats.makespan += time_lost;
    RecoveredRun { output, checkpoints_taken, rolled_back_to, time_lost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ring_frags, MinLabel};
    use crate::{SimEngine, SimOpts};

    fn engine() -> SimEngine<(), u32> {
        SimEngine::new(ring_frags(300, 5), SimOpts::default())
    }

    #[test]
    fn recovery_reaches_the_same_fixpoint() {
        let e = engine();
        let clean = e.run(&MinLabel, &());
        let plan = FailurePlan {
            checkpoint_every: clean.stats.makespan / 5.0,
            fail_at: clean.stats.makespan * 0.7,
            recovery_delay: 1.0,
        };
        let rec = run_with_failure(&e, &MinLabel, &(), &plan);
        assert_eq!(rec.output.out, clean.out);
        assert!(rec.output.out.iter().all(|&l| l == 0));
        assert!(rec.checkpoints_taken >= 3);
        assert!(rec.rolled_back_to <= plan.fail_at);
        assert!(rec.time_lost > 0.0);
        assert!(rec.output.stats.makespan > clean.stats.makespan);
    }

    #[test]
    fn failure_after_completion_costs_nothing() {
        let e = engine();
        let plan = FailurePlan { checkpoint_every: 5.0, fail_at: 1e12, recovery_delay: 9.0 };
        let rec = run_with_failure(&e, &MinLabel, &(), &plan);
        assert_eq!(rec.time_lost, 0.0);
    }

    #[test]
    fn denser_checkpoints_lose_less_time() {
        let e = engine();
        let clean = e.run(&MinLabel, &());
        let fail_at = clean.stats.makespan * 0.9;
        let sparse = run_with_failure(
            &e,
            &MinLabel,
            &(),
            &FailurePlan { checkpoint_every: fail_at, fail_at, recovery_delay: 0.0 },
        );
        let dense = run_with_failure(
            &e,
            &MinLabel,
            &(),
            &FailurePlan { checkpoint_every: fail_at / 10.0, fail_at, recovery_delay: 0.0 },
        );
        assert!(dense.time_lost < sparse.time_lost);
    }
}
