//! Fault tolerance (§6): checkpoints and failure recovery, simulated.
//!
//! GRAPE+ adapts Chandy–Lamport snapshots so asynchronous runs have a
//! consistent state to roll back to; the paper reports ~40 s to snapshot
//! and ~20 s to recover one worker, versus 40 min to reload the graph.
//!
//! In the simulator every event is globally ordered on the virtual clock,
//! so the state a marker-based snapshot would assemble — per-worker states
//! plus in-flight messages — is exactly the simulator state *between two
//! events*: worker states, buffered inboxes, and the pending event queue
//! (undelivered messages and wake timers). [`run_with_failure`] takes such
//! checkpoints on a fixed virtual-time cadence, injects a whole-cluster
//! failure at a chosen instant, rolls back to the latest checkpoint
//! (coordinated-recovery semantics, the conservative variant of §6), adds
//! the configured recovery delay, and resumes. Determinism then guarantees
//! the recovered run converges to the same fixpoint, which the tests and
//! the `fault_tolerance` example verify.
//!
//! [`SimDurability`] extends the accounting with the serving session's
//! differential-checkpoint policy: full baselines cost virtual time
//! proportional to graph size, differential links proportional to churn,
//! `compact_after` re-baselines the chain, and recovery pays one
//! link-resolution per chained epoch — so cadence/compaction trade-offs
//! can be validated in virtual time before touching the real durable
//! layer (`aap-session`'s `DurabilityPolicy`).

use crate::engine::{SimEngine, SimOutput};
use aap_core::pie::PieProgram;

/// Virtual-time cost model of the checkpoints themselves — the
/// simulator mirror of the session's `DurabilityPolicy`: full baselines
/// cost time proportional to graph size, differential links time
/// proportional to churn, and `compact_after` bounds how long a chain
/// grows before the next checkpoint re-baselines. Restoring from a
/// chain re-reads its links, so recovery is charged per resolved link.
///
/// The default model is free (all costs zero, every checkpoint full),
/// which reproduces the pre-differential accounting exactly.
#[derive(Debug, Clone, Default)]
pub struct SimDurability {
    /// Virtual-time cost of writing a full baseline checkpoint.
    pub full_cost: f64,
    /// Virtual-time cost of writing one differential link (and of
    /// resolving one at recovery).
    pub diff_cost: f64,
    /// Differential links between full baselines; `None` keeps every
    /// checkpoint a full baseline.
    pub compact_after: Option<usize>,
}

impl SimDurability {
    /// Is the `i`-th checkpoint (1-based) a full baseline under this
    /// model? Mirrors the session policy: the chain re-baselines every
    /// `compact_after` epochs.
    fn is_full(&self, i: usize) -> bool {
        match self.compact_after {
            None => true,
            Some(k) => k == 0 || i.is_multiple_of(k),
        }
    }

    /// Differential links the `i`-th checkpoint's chain carries — what a
    /// recovery rolling back to it must resolve.
    fn chain_links(&self, i: usize) -> usize {
        match self.compact_after {
            None => 0,
            Some(k) if k > 0 => i % k,
            Some(_) => 0,
        }
    }
}

/// A failure-injection plan for [`run_with_failure`].
#[derive(Debug, Clone)]
pub struct FailurePlan {
    /// Take a checkpoint every this many virtual time units.
    pub checkpoint_every: f64,
    /// Inject the failure at this virtual time (skipped if the run
    /// finishes earlier).
    pub fail_at: f64,
    /// Extra virtual time charged for recovery (state reload, §6's
    /// "20 seconds to recover").
    pub recovery_delay: f64,
    /// Cost model of the checkpoints themselves (free by default).
    pub durability: SimDurability,
}

impl Default for FailurePlan {
    fn default() -> Self {
        FailurePlan {
            checkpoint_every: 10.0,
            fail_at: 25.0,
            recovery_delay: 5.0,
            durability: SimDurability::default(),
        }
    }
}

/// Outcome of a run with failure injection.
#[derive(Debug)]
pub struct RecoveredRun<Out> {
    /// The recovered run's result (must equal the failure-free fixpoint —
    /// Theorem 2 plus deterministic replay).
    pub output: SimOutput<Out>,
    /// Number of checkpoints taken before the failure.
    pub checkpoints_taken: usize,
    /// Virtual time of the checkpoint the run rolled back to.
    pub rolled_back_to: f64,
    /// Virtual time lost to the failure: work re-executed, the recovery
    /// delay, and the chain links resolved at restore.
    pub time_lost: f64,
    /// Full baselines among the checkpoints taken.
    pub full_checkpoints: usize,
    /// Differential links among the checkpoints taken.
    pub differential_checkpoints: usize,
    /// Virtual time spent *writing* the checkpoints before the failure,
    /// under the plan's [`SimDurability`] cost model.
    pub checkpoint_overhead: f64,
    /// Differential links the recovery resolved (chain length at the
    /// rollback epoch).
    pub chain_resolved: usize,
}

/// Run `prog` with periodic coordinated checkpoints and one injected
/// failure, recovering from the latest checkpoint.
///
/// The implementation leans on the simulator's determinism: a checkpoint
/// is a virtual-time cut `T`, and recovery re-executes the run from t = 0
/// up to that cut (identical by determinism) before continuing past it.
/// The *accounting* — checkpoint cadence, rollback point, lost time — is
/// what the fault-tolerance experiments need; the re-execution trick only
/// avoids requiring `Clone` on every program state.
pub fn run_with_failure<V, E, P>(
    engine: &SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    plan: &FailurePlan,
) -> RecoveredRun<P::Out>
where
    P: PieProgram<V, E>,
{
    // Failure-free reference run gives the horizon.
    let clean = engine.run(prog, q);
    let horizon = clean.stats.makespan;
    // Checkpoint-writing overhead under the cost model, counted per
    // taken checkpoint (full baseline or differential link).
    let tally = |taken: usize| -> (usize, usize, f64) {
        let full = (1..=taken).filter(|&i| plan.durability.is_full(i)).count();
        let diff = taken - full;
        let overhead =
            full as f64 * plan.durability.full_cost + diff as f64 * plan.durability.diff_cost;
        (full, diff, overhead)
    };
    if plan.fail_at >= horizon {
        // Failure scheduled after completion: nothing to recover, but
        // the checkpoints were still written.
        let checkpoints_taken = (horizon / plan.checkpoint_every).floor() as usize;
        let (full_checkpoints, differential_checkpoints, checkpoint_overhead) =
            tally(checkpoints_taken);
        let mut output = clean;
        output.stats.makespan += checkpoint_overhead;
        return RecoveredRun {
            output,
            checkpoints_taken,
            rolled_back_to: horizon,
            time_lost: 0.0,
            full_checkpoints,
            differential_checkpoints,
            checkpoint_overhead,
            chain_resolved: 0,
        };
    }
    // Only checkpoints *strictly before* the crash are usable.
    let checkpoints_taken =
        ((plan.fail_at - 1e-12) / plan.checkpoint_every).floor().max(0.0) as usize;
    let rolled_back_to = checkpoints_taken as f64 * plan.checkpoint_every;
    let (full_checkpoints, differential_checkpoints, checkpoint_overhead) =
        tally(checkpoints_taken);
    // Restoring a differential epoch resolves its whole chain back to
    // the last full baseline — one link-read per chained epoch.
    let chain_resolved = plan.durability.chain_links(checkpoints_taken);
    // Deterministic replay: the run after recovery is the clean run with
    // the segment [rolled_back_to, fail_at] executed twice plus the
    // recovery delay and the chain resolution.
    let time_lost = (plan.fail_at - rolled_back_to)
        + plan.recovery_delay
        + chain_resolved as f64 * plan.durability.diff_cost;
    let mut output = engine.run(prog, q);
    output.stats.makespan += time_lost + checkpoint_overhead;
    RecoveredRun {
        output,
        checkpoints_taken,
        rolled_back_to,
        time_lost,
        full_checkpoints,
        differential_checkpoints,
        checkpoint_overhead,
        chain_resolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ring_frags, MinLabel};
    use crate::{SimEngine, SimOpts};

    fn engine() -> SimEngine<(), u32> {
        SimEngine::new(ring_frags(300, 5), SimOpts::default()).expect("valid opts")
    }

    #[test]
    fn recovery_reaches_the_same_fixpoint() {
        let e = engine();
        let clean = e.run(&MinLabel, &());
        let plan = FailurePlan {
            checkpoint_every: clean.stats.makespan / 5.0,
            fail_at: clean.stats.makespan * 0.7,
            recovery_delay: 1.0,
            ..FailurePlan::default()
        };
        let rec = run_with_failure(&e, &MinLabel, &(), &plan);
        assert_eq!(rec.output.out, clean.out);
        assert!(rec.output.out.iter().all(|&l| l == 0));
        assert!(rec.checkpoints_taken >= 3);
        assert!(rec.rolled_back_to <= plan.fail_at);
        assert!(rec.time_lost > 0.0);
        assert!(rec.output.stats.makespan > clean.stats.makespan);
    }

    #[test]
    fn failure_after_completion_costs_nothing() {
        let e = engine();
        let plan = FailurePlan {
            checkpoint_every: 5.0,
            fail_at: 1e12,
            recovery_delay: 9.0,
            ..FailurePlan::default()
        };
        let rec = run_with_failure(&e, &MinLabel, &(), &plan);
        assert_eq!(rec.time_lost, 0.0);
    }

    #[test]
    fn denser_checkpoints_lose_less_time() {
        let e = engine();
        let clean = e.run(&MinLabel, &());
        let fail_at = clean.stats.makespan * 0.9;
        let sparse = run_with_failure(
            &e,
            &MinLabel,
            &(),
            &FailurePlan {
                checkpoint_every: fail_at,
                fail_at,
                recovery_delay: 0.0,
                ..FailurePlan::default()
            },
        );
        let dense = run_with_failure(
            &e,
            &MinLabel,
            &(),
            &FailurePlan {
                checkpoint_every: fail_at / 10.0,
                fail_at,
                recovery_delay: 0.0,
                ..FailurePlan::default()
            },
        );
        assert!(dense.time_lost < sparse.time_lost);
    }

    #[test]
    fn differential_cadence_is_cheaper_at_the_same_density() {
        // Ten checkpoints before the failure; churn-proportional links
        // at a tenth of the full-baseline cost. The differential policy
        // must cut the writing overhead without changing the fixpoint.
        let e = engine();
        let clean = e.run(&MinLabel, &());
        let fail_at = clean.stats.makespan * 0.95;
        let base = FailurePlan {
            checkpoint_every: fail_at / 10.0,
            fail_at,
            recovery_delay: 0.0,
            durability: SimDurability { full_cost: 8.0, diff_cost: 0.8, compact_after: None },
        };
        let all_full = run_with_failure(&e, &MinLabel, &(), &base);
        let differential = run_with_failure(
            &e,
            &MinLabel,
            &(),
            &FailurePlan {
                durability: SimDurability { compact_after: Some(5), ..base.durability.clone() },
                ..base.clone()
            },
        );
        assert_eq!(differential.output.out, all_full.output.out);
        assert_eq!(all_full.differential_checkpoints, 0);
        assert!(differential.differential_checkpoints > 0);
        assert!(differential.checkpoint_overhead < all_full.checkpoint_overhead);
        assert!(
            differential.output.stats.makespan < all_full.output.stats.makespan,
            "cheaper checkpoints shorten the virtual makespan"
        );
    }

    #[test]
    fn recovery_from_a_chain_pays_per_resolved_link() {
        // Rolling back to an epoch with 4 chained links must charge 4
        // link-resolutions on top of the re-execution window; rolling
        // back to a full baseline charges none.
        let e = engine();
        let clean = e.run(&MinLabel, &());
        let fail_after = |n: usize, compact_after: usize| {
            let every = clean.stats.makespan / 20.0;
            run_with_failure(
                &e,
                &MinLabel,
                &(),
                &FailurePlan {
                    checkpoint_every: every,
                    fail_at: every * (n as f64 + 0.5),
                    recovery_delay: 0.0,
                    durability: SimDurability {
                        full_cost: 4.0,
                        diff_cost: 1.0,
                        compact_after: Some(compact_after),
                    },
                },
            )
        };
        let mid_chain = fail_after(9, 5); // epochs 1-4 diff, 5 full, 6-9 diff
        assert_eq!(mid_chain.chain_resolved, 4);
        let at_baseline = fail_after(10, 5); // epoch 10 is a full baseline
        assert_eq!(at_baseline.chain_resolved, 0);
        // Both roll back half a cadence; the mid-chain recovery pays
        // exactly its 4 link-resolutions (diff_cost = 1.0) on top.
        assert!((mid_chain.time_lost - at_baseline.time_lost - 4.0).abs() < 1e-6);
    }
}
