//! Per-worker timelines, ASCII Gantt rendering for the timing-diagram
//! figures (Fig 1(a), Fig 7), and export to the Chrome trace-event
//! format so simulated runs open in the same viewer as wall-clock ones.

use aap_trace::{cat, pid, Args, Phase, TraceEvent};

/// What a worker was doing during a span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing PEval/IncEval.
    Compute,
    /// Deliberately suspended by the δ policy (delay stretch).
    Suspend,
}

/// One contiguous activity interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Start time (virtual units).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// The round being executed (for `Compute` spans).
    pub round: u32,
    /// Activity kind.
    pub kind: SpanKind,
}

/// Activity history of one worker.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Spans in chronological order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Total computing time.
    pub fn compute_time(&self) -> f64 {
        self.spans.iter().filter(|s| s.kind == SpanKind::Compute).map(|s| s.end - s.start).sum()
    }

    /// Number of compute rounds recorded.
    pub fn rounds(&self) -> usize {
        self.spans.iter().filter(|s| s.kind == SpanKind::Compute).count()
    }
}

/// Render timelines as an ASCII Gantt chart, one row per worker:
/// `#` compute, `.` suspend, ` ` idle. Time is scaled to `width` columns.
///
/// This is the textual reproduction of the paper's Fig 1(a) / Fig 7 panels.
pub fn render_gantt(timelines: &[Timeline], width: usize) -> String {
    let end = timelines
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.end))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let scale = width as f64 / end;
    let mut out = String::new();
    for (w, t) in timelines.iter().enumerate() {
        let mut row = vec![' '; width];
        for s in &t.spans {
            let a = ((s.start * scale) as usize).min(width.saturating_sub(1));
            // A span paints at least one cell past `a`, capped at the row
            // width (which may be 0 — degenerate but must not panic).
            let b = ((s.end * scale).ceil() as usize).max(a + 1).min(width);
            let ch = match s.kind {
                SpanKind::Compute => {
                    // Alternate glyphs by round parity so adjacent rounds are
                    // distinguishable.
                    if s.round % 2 == 0 {
                        '#'
                    } else {
                        '='
                    }
                }
                SpanKind::Suspend => '.',
            };
            for c in row.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        out.push_str(&format!("P{w:<3}|"));
        out.extend(row);
        out.push('|');
        out.push('\n');
    }
    out.push_str(&format!("     0{:>width$.1}\n", end, width = width.saturating_sub(1)));
    out
}

/// One virtual time unit maps to this many trace microseconds, so a
/// simulated run spreads legibly in a viewer that thinks in µs.
pub const TRACE_US_PER_UNIT: f64 = 1000.0;

/// Export per-worker timelines as Chrome trace events on the
/// [`pid::SIM`] tracks (one `tid` per worker, timestamps in **virtual**
/// microseconds — [`TRACE_US_PER_UNIT`] per unit).
///
/// Compute spans become `round`-category spans carrying the round
/// number; policy suspensions become `policy`-category spans. Feed the
/// result to [`aap_trace::chrome_trace_json`] — or into an enabled
/// [`aap_trace::Tracer`] via `emit` to merge with wall-clock tracks —
/// and the simulated schedule opens in Perfetto next to real runs.
pub fn timeline_to_trace(timelines: &[Timeline]) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(2 * timelines.iter().map(|t| t.spans.len()).sum::<usize>());
    for (w, t) in timelines.iter().enumerate() {
        for s in &t.spans {
            let (name, category) = match s.kind {
                SpanKind::Compute => ("compute", cat::ROUND),
                SpanKind::Suspend => ("suspend", cat::POLICY),
            };
            let ts0 = (s.start * TRACE_US_PER_UNIT).round() as u64;
            let ts1 = ((s.end * TRACE_US_PER_UNIT).round() as u64).max(ts0);
            out.push(TraceEvent {
                name,
                cat: category,
                ph: Phase::Begin,
                ts_us: ts0,
                pid: pid::SIM,
                tid: w as u32,
                args: Args::new().with("round", s.round).with("virt_start", s.start),
            });
            out.push(TraceEvent {
                name,
                cat: category,
                ph: Phase::End,
                ts_us: ts1,
                pid: pid::SIM,
                tid: w as u32,
                args: Args::new().with("virt_end", s.end),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gantt_renders_rows() {
        let t = vec![
            Timeline {
                spans: vec![
                    Span { start: 0.0, end: 3.0, round: 0, kind: SpanKind::Compute },
                    Span { start: 3.0, end: 4.0, round: 0, kind: SpanKind::Suspend },
                    Span { start: 4.0, end: 7.0, round: 1, kind: SpanKind::Compute },
                ],
            },
            Timeline {
                spans: vec![Span { start: 0.0, end: 6.0, round: 0, kind: SpanKind::Compute }],
            },
        ];
        let s = render_gantt(&t, 40);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
        assert!(s.contains('.'));
        assert!(s.contains('='));
    }

    #[test]
    fn gantt_handles_empty_timelines() {
        // No timelines at all: just the axis line, no panic.
        let s = render_gantt(&[], 20);
        assert_eq!(s.lines().count(), 1);
        assert!(s.starts_with("     0"));
        // A worker that never ran renders as a blank row.
        let s = render_gantt(&[Timeline::default()], 10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().next().unwrap().contains("P0"));
        assert!(!s.contains('#'));
    }

    #[test]
    fn gantt_handles_zero_width() {
        // Degenerate width must not underflow or panic the span clamp.
        let t = vec![Timeline {
            spans: vec![Span { start: 0.0, end: 3.0, round: 0, kind: SpanKind::Compute }],
        }];
        let s = render_gantt(&t, 0);
        assert_eq!(s.lines().count(), 2);
        assert!(!s.contains('#'), "no cells to paint at width 0");
        let s1 = render_gantt(&t, 1);
        assert!(s1.contains('#'), "one cell is enough to paint");
    }

    #[test]
    fn timeline_to_trace_exports_balanced_virtual_spans() {
        use aap_trace::ArgVal;
        let t = vec![
            Timeline {
                spans: vec![
                    Span { start: 0.0, end: 3.0, round: 0, kind: SpanKind::Compute },
                    Span { start: 3.0, end: 4.5, round: 0, kind: SpanKind::Suspend },
                    Span { start: 4.5, end: 7.0, round: 1, kind: SpanKind::Compute },
                ],
            },
            Timeline {
                spans: vec![Span { start: 0.0, end: 6.0, round: 0, kind: SpanKind::Compute }],
            },
        ];
        let evs = timeline_to_trace(&t);
        assert_eq!(evs.len(), 8, "one B and one E per span");
        assert!(evs.iter().all(|e| e.pid == pid::SIM));
        // Per track: balanced, monotone, virtual-µs scaled.
        for tid in 0..2u32 {
            let track: Vec<_> = evs.iter().filter(|e| e.tid == tid).collect();
            let mut depth = 0i32;
            let mut last = 0u64;
            for e in &track {
                match e.ph {
                    Phase::Begin => depth += 1,
                    Phase::End => depth -= 1,
                    _ => unreachable!("timeline export emits only spans"),
                }
                assert!(depth >= 0);
                assert!(e.ts_us >= last, "timestamps must be monotone per track");
                last = e.ts_us;
            }
            assert_eq!(depth, 0, "every span must close");
        }
        assert_eq!(evs[1].ts_us, 3_000, "end of [0,3) at 1000 µs per unit");
        assert_eq!(evs[2].name, "suspend");
        assert_eq!(evs[4].args.get("round"), Some(ArgVal::Uint(1)));
        assert_eq!(timeline_to_trace(&[]).len(), 0);
    }

    #[test]
    fn compute_time_sums_spans() {
        let t = Timeline {
            spans: vec![
                Span { start: 0.0, end: 3.0, round: 0, kind: SpanKind::Compute },
                Span { start: 5.0, end: 6.0, round: 1, kind: SpanKind::Compute },
                Span { start: 3.0, end: 5.0, round: 0, kind: SpanKind::Suspend },
            ],
        };
        assert!((t.compute_time() - 4.0).abs() < 1e-12);
        assert_eq!(t.rounds(), 2);
    }
}
