//! Per-worker timelines and ASCII Gantt rendering for the timing-diagram
//! figures (Fig 1(a), Fig 7).

/// What a worker was doing during a span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing PEval/IncEval.
    Compute,
    /// Deliberately suspended by the δ policy (delay stretch).
    Suspend,
}

/// One contiguous activity interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Start time (virtual units).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// The round being executed (for `Compute` spans).
    pub round: u32,
    /// Activity kind.
    pub kind: SpanKind,
}

/// Activity history of one worker.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Spans in chronological order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Total computing time.
    pub fn compute_time(&self) -> f64 {
        self.spans.iter().filter(|s| s.kind == SpanKind::Compute).map(|s| s.end - s.start).sum()
    }

    /// Number of compute rounds recorded.
    pub fn rounds(&self) -> usize {
        self.spans.iter().filter(|s| s.kind == SpanKind::Compute).count()
    }
}

/// Render timelines as an ASCII Gantt chart, one row per worker:
/// `#` compute, `.` suspend, ` ` idle. Time is scaled to `width` columns.
///
/// This is the textual reproduction of the paper's Fig 1(a) / Fig 7 panels.
pub fn render_gantt(timelines: &[Timeline], width: usize) -> String {
    let end = timelines
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.end))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let scale = width as f64 / end;
    let mut out = String::new();
    for (w, t) in timelines.iter().enumerate() {
        let mut row = vec![' '; width];
        for s in &t.spans {
            let a = ((s.start * scale) as usize).min(width.saturating_sub(1));
            let b = ((s.end * scale).ceil() as usize).clamp(a + 1, width);
            let ch = match s.kind {
                SpanKind::Compute => {
                    // Alternate glyphs by round parity so adjacent rounds are
                    // distinguishable.
                    if s.round % 2 == 0 {
                        '#'
                    } else {
                        '='
                    }
                }
                SpanKind::Suspend => '.',
            };
            for c in row.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        out.push_str(&format!("P{w:<3}|"));
        out.extend(row);
        out.push('|');
        out.push('\n');
    }
    out.push_str(&format!("     0{:>width$.1}\n", end, width = width - 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gantt_renders_rows() {
        let t = vec![
            Timeline {
                spans: vec![
                    Span { start: 0.0, end: 3.0, round: 0, kind: SpanKind::Compute },
                    Span { start: 3.0, end: 4.0, round: 0, kind: SpanKind::Suspend },
                    Span { start: 4.0, end: 7.0, round: 1, kind: SpanKind::Compute },
                ],
            },
            Timeline {
                spans: vec![Span { start: 0.0, end: 6.0, round: 0, kind: SpanKind::Compute }],
            },
        ];
        let s = render_gantt(&t, 40);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
        assert!(s.contains('.'));
        assert!(s.contains('='));
    }

    #[test]
    fn compute_time_sums_spans() {
        let t = Timeline {
            spans: vec![
                Span { start: 0.0, end: 3.0, round: 0, kind: SpanKind::Compute },
                Span { start: 5.0, end: 6.0, round: 1, kind: SpanKind::Compute },
                Span { start: 3.0, end: 5.0, round: 0, kind: SpanKind::Suspend },
            ],
        };
        assert!((t.compute_time() - 4.0).abs() < 1e-12);
        assert_eq!(t.rounds(), 2);
    }
}
