//! # aap-delta
//!
//! The dynamic-graph delta subsystem: batch graph mutations plus
//! warm-start incremental evaluation on the GRAPE+ engines.
//!
//! The paper's PIE model (§2) sells `IncEval` as reacting to *changes* —
//! this crate closes the loop for changes **to the graph itself**, the
//! regime where asynchronous engines pay off most (mutating serving
//! graphs see many small refreshes, not repeated full recomputes):
//!
//! * [`GraphDelta`] / [`DeltaBuilder`] — a deduplicated batch of edge
//!   inserts, edge removals, weight updates, and vertex add/removals;
//! * [`apply_to_graph`] — replay a batch onto a global
//!   [`Graph`](aap_graph::Graph);
//! * [`apply_to_fragments`] — replay a batch onto a partitioned fragment
//!   set **in place**: edge-cut partitions are patched locally (touched
//!   fragments only — CSR, border sets, holder lists, and dense routing
//!   tables; see `aap_graph::mutate`), vertex-cut partitions are
//!   re-partitioned. Returns the per-fragment [`StateRemap`]s and seed
//!   vertices a warm engine run needs;
//! * [`run_incremental`] / [`run_incremental_sim`] — the drivers: apply
//!   the delta to an engine's fragments, then warm-start `IncEval` from
//!   the delta-affected vertices. Monotone-decreasing batches
//!   (insertions, weight decreases) are exact by monotonicity
//!   (`warm-decrease`); removals and weight increases run the
//!   *affected-region* path (`warm-increase`): the program's
//!   [`WarmStart`](aap_core::pie::WarmStart) invalidation plan names
//!   every vertex whose retained value may be stale-low, all of its
//!   copies are reset, and the warm round re-derives the region — exact
//!   for SSSP (Ramalingam–Reps) and CC (spanning-forest splits), with a
//!   cold retained fallback only for programs without a plan. The chosen
//!   [`WarmStrategy`] is reported in the output.
//!
//! ```
//! use aap_core::{Engine, EngineOpts, Mode};
//! use aap_delta::{run_incremental, DeltaBuilder};
//! use aap_graph::partition::{build_fragments, hash_partition};
//! use aap_graph::generate;
//!
//! let g = generate::small_world(200, 2, 0.1, 7);
//! let frags = build_fragments(&g, &hash_partition(&g, 4));
//! let mut engine = Engine::new(frags, EngineOpts { mode: Mode::aap(), ..Default::default() });
//!
//! // Cold run once, retaining state ...
//! let (out0, mut state) = engine.run_retained(&aap_algos::Sssp, &0);
//!
//! // ... then stream mutation batches through warm-start IncEval.
//! let mut b = DeltaBuilder::new();
//! b.add_edge(0, 150, 2);
//! let delta = b.build();
//! let out1 = run_incremental(&mut engine, &aap_algos::Sssp, &0, &delta, &mut state);
//! assert!(out1.out[150] <= out0.out[150]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod generate;
pub mod ops;
pub mod run;

pub use apply::{
    apply_to_fragments, apply_to_fragments_par, apply_to_fragments_par_traced, apply_to_graph,
    Applied,
};
pub use ops::{DeltaBuilder, GraphDelta};
pub use run::{
    plan_incremental, plan_incremental_traced, remap_invalid, replay, replay_sim, run_incremental,
    run_incremental_sim, run_incremental_sim_with, run_incremental_with, IncrementalOutput,
    IncrementalSimOutput,
};

pub use aap_core::pie::WarmStrategy;
pub use aap_graph::mutate::{DeltaSummary, StateRemap};
