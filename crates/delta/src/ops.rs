//! Delta batch types: [`GraphDelta`] and its deduplicating [`DeltaBuilder`].

use aap_graph::mutate::DeltaSummary;
use aap_graph::{FxHashMap, VertexId};

/// One deduplicated batch of graph mutations, in **logical** edge space:
/// for undirected graphs an edge op names the edge once and the
/// application layer expands it to both stored directions.
///
/// Semantics (matching [`crate::apply_to_graph`] and
/// [`crate::apply_to_fragments`]):
///
/// * `add_edge(u, v, w)` adds one new parallel edge (endpoints must exist
///   or be added in the same batch);
/// * `remove_edge(u, v)` drops **all** parallel `(u, v)` copies;
/// * `set_weight(u, v, w)` overwrites the weight of every `(u, v)` copy —
///   a no-op if the edge does not exist;
/// * `add_vertex(id, data)` appends a vertex; ids must extend the dense
///   id space contiguously (`n`, `n+1`, ...);
/// * `remove_vertex(v)` drops every incident edge but keeps the dense id
///   as an isolated vertex, so `Assemble` output stays index-stable.
#[derive(Debug, Clone)]
pub struct GraphDelta<V = (), E = u32> {
    vertices_added: Vec<(VertexId, V)>,
    vertices_removed: Vec<VertexId>,
    edges_added: Vec<(VertexId, VertexId, E)>,
    edges_removed: Vec<(VertexId, VertexId)>,
    weight_updates: Vec<(VertexId, VertexId, E)>,
}

impl<V, E> GraphDelta<V, E> {
    /// Reassemble a delta from its sorted component lists — the decode
    /// hook for persisted delta logs (`aap-snapshot`). The lists must
    /// satisfy the [`DeltaBuilder::build`] postconditions: each sorted by
    /// key, keys unique across the vertex lists and across the edge
    /// lists, and no edge op naming a removed vertex.
    ///
    /// # Panics
    /// Panics on a contract violation — [`GraphDelta::try_from_parts`]
    /// is the error-returning form decoders use; every check lives
    /// there.
    pub fn from_parts(
        vertices_added: Vec<(VertexId, V)>,
        vertices_removed: Vec<VertexId>,
        edges_added: Vec<(VertexId, VertexId, E)>,
        edges_removed: Vec<(VertexId, VertexId)>,
        weight_updates: Vec<(VertexId, VertexId, E)>,
    ) -> Self {
        GraphDelta::try_from_parts(
            vertices_added,
            vertices_removed,
            edges_added,
            edges_removed,
            weight_updates,
        )
        .unwrap_or_else(|e| panic!("malformed delta parts: {e}"))
    }

    /// Fallible form of [`GraphDelta::from_parts`] — the single home of
    /// the batch-contract checks, so log decoders turn bad input into a
    /// tagged error instead of a panic (or, worse, a panic deep inside
    /// a later `apply`).
    ///
    /// # Errors
    /// Names the first violation of the [`DeltaBuilder::build`]
    /// postconditions found: a list unsorted or holding a duplicated
    /// key, a vertex id in both vertex lists, an edge key in more than
    /// one edge list, or an edge op naming a removed vertex.
    pub fn try_from_parts(
        vertices_added: Vec<(VertexId, V)>,
        vertices_removed: Vec<VertexId>,
        edges_added: Vec<(VertexId, VertexId, E)>,
        edges_removed: Vec<(VertexId, VertexId)>,
        weight_updates: Vec<(VertexId, VertexId, E)>,
    ) -> Result<Self, String> {
        fn sorted_disjoint<T: Ord>(
            a: impl Iterator<Item = T>,
            b: &[T],
            what: &str,
        ) -> Result<(), String> {
            let mut j = 0;
            for x in a {
                while j < b.len() && b[j] < x {
                    j += 1;
                }
                if j < b.len() && b[j] == x {
                    return Err(what.to_string());
                }
            }
            Ok(())
        }
        if !vertices_added.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err("vertices_added not sorted/unique".into());
        }
        if !vertices_removed.windows(2).all(|w| w[0] < w[1]) {
            return Err("vertices_removed not sorted/unique".into());
        }
        if !edges_added.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)) {
            return Err("edges_added not sorted/unique".into());
        }
        if !edges_removed.windows(2).all(|w| w[0] < w[1]) {
            return Err("edges_removed not sorted/unique".into());
        }
        if !weight_updates.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)) {
            return Err("weight_updates not sorted/unique".into());
        }
        // Cross-list exclusivity: one op per vertex id, one op per edge
        // key, and no edge op naming a removed vertex (the builder drops
        // those because the removal discards every incident edge).
        sorted_disjoint(
            vertices_added.iter().map(|&(v, _)| v),
            &vertices_removed,
            "vertex id both added and removed",
        )?;
        let added_keys = || edges_added.iter().map(|&(u, v, _)| (u, v));
        let update_keys = || weight_updates.iter().map(|&(u, v, _)| (u, v));
        sorted_disjoint(added_keys(), &edges_removed, "edge key both added and removed")?;
        sorted_disjoint(update_keys(), &edges_removed, "edge key both updated and removed")?;
        sorted_disjoint(
            added_keys(),
            &weight_updates.iter().map(|&(u, v, _)| (u, v)).collect::<Vec<_>>(),
            "edge key both added and weight-updated",
        )?;
        let dead = |v: VertexId| vertices_removed.binary_search(&v).is_ok();
        let endpoints = added_keys().chain(update_keys()).chain(edges_removed.iter().copied());
        for (u, v) in endpoints {
            if dead(u) || dead(v) {
                return Err(format!("edge op ({u}, {v}) names a removed vertex"));
            }
        }
        Ok(GraphDelta {
            vertices_added,
            vertices_removed,
            edges_added,
            edges_removed,
            weight_updates,
        })
    }

    /// Vertices added by this batch, sorted by id.
    pub fn vertices_added(&self) -> &[(VertexId, V)] {
        &self.vertices_added
    }

    /// Vertices removed (isolated) by this batch, sorted.
    pub fn vertices_removed(&self) -> &[VertexId] {
        &self.vertices_removed
    }

    /// Logical edges added, sorted by `(u, v)`.
    pub fn edges_added(&self) -> &[(VertexId, VertexId, E)] {
        &self.edges_added
    }

    /// Logical edges removed, sorted.
    pub fn edges_removed(&self) -> &[(VertexId, VertexId)] {
        &self.edges_removed
    }

    /// Weight overwrites, sorted by `(u, v)`.
    pub fn weight_updates(&self) -> &[(VertexId, VertexId, E)] {
        &self.weight_updates
    }

    /// Number of individual operations in the batch.
    pub fn len(&self) -> usize {
        self.vertices_added.len()
            + self.vertices_removed.len()
            + self.edges_added.len()
            + self.edges_removed.len()
            + self.weight_updates.len()
    }

    /// True if the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural op counts. Weight *directions* are unknown until the
    /// batch meets a graph; [`crate::apply_to_fragments`] fills them in.
    pub fn summary(&self) -> DeltaSummary {
        DeltaSummary {
            vertices_added: self.vertices_added.len() as u64,
            vertices_removed: self.vertices_removed.len() as u64,
            edges_added: self.edges_added.len() as u64,
            edges_removed: self.edges_removed.len() as u64,
            weights_decreased: 0,
            weights_increased: 0,
        }
    }

    /// Every vertex id this batch mentions (endpoints and vertex ops).
    pub fn mentioned_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices_added
            .iter()
            .map(|&(v, _)| v)
            .chain(self.vertices_removed.iter().copied())
            .chain(self.edges_added.iter().flat_map(|&(u, v, _)| [u, v]))
            .chain(self.edges_removed.iter().flat_map(|&(u, v)| [u, v]))
            .chain(self.weight_updates.iter().flat_map(|&(u, v, _)| [u, v]))
    }
}

#[derive(Debug, Clone)]
enum VertexOp<V> {
    Add(V),
    Remove,
}

#[derive(Debug, Clone)]
enum EdgeOp<E> {
    Add(E),
    Remove,
    SetWeight(E),
}

/// Accumulates mutations and deduplicates them into a [`GraphDelta`]:
/// the **last** operation per vertex id / edge pair wins, so a stream
/// that inserts and then removes the same edge nets out to a removal.
#[derive(Debug, Clone)]
pub struct DeltaBuilder<V = (), E = u32> {
    vertex_ops: FxHashMap<VertexId, VertexOp<V>>,
    edge_ops: FxHashMap<(VertexId, VertexId), EdgeOp<E>>,
}

impl<V, E> Default for DeltaBuilder<V, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, E> DeltaBuilder<V, E> {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        DeltaBuilder { vertex_ops: FxHashMap::default(), edge_ops: FxHashMap::default() }
    }

    /// Add vertex `id` with node data. Ids must extend the graph's dense
    /// id space contiguously (checked at apply time).
    pub fn add_vertex(&mut self, id: VertexId, data: V) -> &mut Self {
        self.vertex_ops.insert(id, VertexOp::Add(data));
        self
    }

    /// Remove (isolate) vertex `id`: all incident edges are dropped.
    pub fn remove_vertex(&mut self, id: VertexId) -> &mut Self {
        self.vertex_ops.insert(id, VertexOp::Remove);
        self
    }

    /// Add one logical edge `u — v` (or `u → v` on directed graphs).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, data: E) -> &mut Self {
        self.edge_ops.insert((u, v), EdgeOp::Add(data));
        self
    }

    /// Remove every parallel copy of logical edge `(u, v)`.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edge_ops.insert((u, v), EdgeOp::Remove);
        self
    }

    /// Overwrite the weight of every parallel copy of `(u, v)`.
    pub fn set_weight(&mut self, u: VertexId, v: VertexId, data: E) -> &mut Self {
        self.edge_ops.insert((u, v), EdgeOp::SetWeight(data));
        self
    }

    /// Number of pending (deduplicated) operations.
    pub fn len(&self) -> usize {
        self.vertex_ops.len() + self.edge_ops.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.vertex_ops.is_empty() && self.edge_ops.is_empty()
    }

    /// Finish the batch, sorting ops for deterministic application.
    ///
    /// Within one batch, a vertex removal wins over edge ops naming that
    /// vertex: adds/updates/removals of its incident edges are dropped
    /// (the removal discards every incident edge anyway).
    pub fn build(self) -> GraphDelta<V, E> {
        let mut vertices_added = Vec::new();
        let mut vertices_removed = Vec::new();
        for (id, op) in self.vertex_ops {
            match op {
                VertexOp::Add(d) => vertices_added.push((id, d)),
                VertexOp::Remove => vertices_removed.push(id),
            }
        }
        vertices_added.sort_unstable_by_key(|&(id, _)| id);
        vertices_removed.sort_unstable();
        let dead = |v: &VertexId| vertices_removed.binary_search(v).is_ok();
        let mut edges_added = Vec::new();
        let mut edges_removed = Vec::new();
        let mut weight_updates = Vec::new();
        for ((u, v), op) in self.edge_ops {
            if dead(&u) || dead(&v) {
                continue;
            }
            match op {
                EdgeOp::Add(d) => edges_added.push((u, v, d)),
                EdgeOp::Remove => edges_removed.push((u, v)),
                EdgeOp::SetWeight(d) => weight_updates.push((u, v, d)),
            }
        }
        edges_added.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edges_removed.sort_unstable();
        weight_updates.sort_unstable_by_key(|&(u, v, _)| (u, v));
        GraphDelta { vertices_added, vertices_removed, edges_added, edges_removed, weight_updates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_op_per_key_wins() {
        let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
        b.add_edge(1, 2, 5);
        b.remove_edge(1, 2); // cancels the add
        b.add_edge(3, 4, 7);
        b.set_weight(3, 4, 9); // supersedes the add
        b.add_vertex(10, ());
        b.remove_vertex(10);
        let d = b.build();
        assert_eq!(d.edges_added(), &[]);
        assert_eq!(d.edges_removed(), &[(1, 2)]);
        assert_eq!(d.weight_updates(), &[(3, 4, 9)]);
        assert!(d.vertices_added().is_empty());
        assert_eq!(d.vertices_removed(), &[10]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn vertex_removal_wins_over_incident_edge_ops() {
        let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
        b.add_edge(1, 2, 5);
        b.set_weight(2, 3, 4);
        b.remove_edge(2, 4);
        b.add_edge(5, 6, 1);
        b.remove_vertex(2);
        let d = b.build();
        assert_eq!(d.edges_added(), &[(5, 6, 1)]);
        assert!(d.edges_removed().is_empty());
        assert!(d.weight_updates().is_empty());
        assert_eq!(d.vertices_removed(), &[2]);
    }

    #[test]
    fn summary_counts_structure() {
        let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.remove_edge(4, 5);
        b.add_vertex(9, ());
        let s = b.build().summary();
        assert_eq!(s.edges_added, 2);
        assert_eq!(s.edges_removed, 1);
        assert_eq!(s.vertices_added, 1);
        assert!(!s.is_monotone_decreasing());
        let mut b2: DeltaBuilder<(), u32> = DeltaBuilder::new();
        b2.add_edge(0, 1, 1);
        assert!(b2.build().summary().is_monotone_decreasing());
    }

    #[test]
    fn try_from_parts_enforces_the_build_contract() {
        // Well-formed parts round-trip.
        let ok = GraphDelta::<(), u32>::try_from_parts(
            vec![(9, ())],
            vec![3],
            vec![(0, 1, 5)],
            vec![(1, 2)],
            vec![(4, 5, 7)],
        );
        assert!(ok.is_ok());

        // An edge op naming a removed vertex would panic deep in apply;
        // it must be rejected here instead.
        let err =
            GraphDelta::<(), u32>::try_from_parts(vec![], vec![1], vec![(0, 1, 5)], vec![], vec![])
                .unwrap_err();
        assert!(err.contains("removed vertex"), "{err}");

        // One op per key: a vertex id in both vertex lists ...
        let err =
            GraphDelta::<(), u32>::try_from_parts(vec![(1, ())], vec![1], vec![], vec![], vec![])
                .unwrap_err();
        assert!(err.contains("added and removed"), "{err}");

        // ... and an edge key in two edge lists.
        let err = GraphDelta::<(), u32>::try_from_parts(
            vec![],
            vec![],
            vec![(0, 1, 5)],
            vec![(0, 1)],
            vec![],
        )
        .unwrap_err();
        assert!(err.contains("added and removed"), "{err}");
        let err = GraphDelta::<(), u32>::try_from_parts(
            vec![],
            vec![],
            vec![(0, 1, 5)],
            vec![],
            vec![(0, 1, 9)],
        )
        .unwrap_err();
        assert!(err.contains("weight-updated"), "{err}");

        // Unsorted lists are still rejected.
        let err = GraphDelta::<(), u32>::try_from_parts(vec![], vec![2, 1], vec![], vec![], vec![])
            .unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }

    #[test]
    fn mentioned_vertices_covers_all_ops() {
        let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
        b.add_edge(0, 1, 1);
        b.remove_edge(2, 3);
        b.set_weight(4, 5, 2);
        b.add_vertex(6, ());
        b.remove_vertex(7);
        let d = b.build();
        let mut v: Vec<_> = d.mentioned_vertices().collect();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
