//! Warm-start drivers: apply a delta to an engine's fragments, then run
//! incrementally, picking the per-batch evaluation strategy.
//!
//! Three strategies ([`WarmStrategy`], chosen by
//! [`WarmStart::delta_strategy`] from the batch's resolved shape):
//!
//! * **`warm-decrease`** — monotone-decreasing batch (insertions, weight
//!   decreases): round 0 is `warm_eval` from the delta-affected seeds;
//!   exact by monotonicity.
//! * **`warm-increase`** — removals / weight increases handled by an
//!   *affected-region invalidation*: before the apply the driver asks
//!   [`WarmStart::plan_invalidation`] (on the pre-apply fragments and
//!   retained states) which vertices' retained values may no longer be
//!   upper bounds; their copies are reset during the warm round and
//!   re-derived from the region's frontier. SSSP and CC implement this
//!   (Ramalingam–Reps affected region / spanning-forest splits), so
//!   deletion batches **no longer cold-fall-back** for them.
//! * **`cold`** — the program declares the batch unsupported; the driver
//!   re-runs a cold retained evaluation on the mutated fragments.
//!
//! Every driver returns what it *did* alongside the run result: the
//! [`Applied`] record of the batch (its summary with weight-change
//! directions resolved against the graph, per-fragment remaps, and
//! warm-start seeds) and the [`WarmStrategy`] that ran — previously all
//! of this was computed and discarded internally. A built [`GraphDelta`]
//! is already deduplicated and is applied verbatim, so callers keeping
//! a durable history (the `aap-snapshot` delta log) log the delta they
//! passed in and keep the returned record as the account of how it
//! resolved.

use crate::apply::{apply_to_fragments_with, Applied};
use crate::ops::GraphDelta;
use aap_core::engine::{RunOutput, RunState};
use aap_core::pie::{DeltaChanges, WarmStart, WarmStrategy};
use aap_core::{Engine, RunStats};
use aap_graph::mutate::{stored_directed, weight_change, DeltaSummary, EditBuffers, WeightChange};
use aap_graph::{Fragment, LocalId, VertexId};
use aap_sim::{SimEngine, SimOutput, Timeline};
use aap_trace::{cat, pid, Args, Tracer};

/// Result of one incremental driver call on the threaded engine: the
/// assembled answer and stats of [`RunOutput`], plus the delta that was
/// actually applied and which evaluation strategy ran.
#[derive(Debug)]
pub struct IncrementalOutput<Out> {
    /// The assembled answer `ρ(Q, G ⊕ delta)`.
    pub out: Out,
    /// Statistics collected during the run.
    pub stats: RunStats,
    /// What the delta application did to the fragments: resolved
    /// summary, per-fragment state remaps, and warm-start seeds.
    pub applied: Applied,
    /// Which evaluation strategy the batch ran
    /// (`warm-decrease | warm-increase | cold`).
    pub strategy: WarmStrategy,
}

/// Result of one incremental driver call on the simulator — the
/// simulated mirror of [`IncrementalOutput`], with timelines.
#[derive(Debug)]
pub struct IncrementalSimOutput<Out> {
    /// The assembled answer.
    pub out: Out,
    /// Statistics; `makespan` is in virtual time units.
    pub stats: RunStats,
    /// Per-worker activity history (for Gantt rendering).
    pub timelines: Vec<Timeline>,
    /// What the delta application did to the fragments.
    pub applied: Applied,
    /// Which evaluation strategy the batch ran.
    pub strategy: WarmStrategy,
}

/// Everything the strategy decision needs, resolved **pre-apply**: the
/// batch summary with weight directions filled in against the current
/// fragments, and the weight-update keys that increase a stored weight.
struct Resolved {
    summary: DeltaSummary,
    increased: Vec<(VertexId, VertexId)>,
}

/// Classify the batch's weight updates against the stored weights —
/// [`weight_change`], the same classifier `apply_to_fragments` uses,
/// run before the apply destroys the old values. A logical update
/// counts as an increase if *any* stored copy would grow (or is
/// incomparable under `PartialOrd`).
fn resolve<V, E>(frags: &[&Fragment<V, E>], delta: &GraphDelta<V, E>) -> Resolved
where
    E: PartialOrd,
{
    let directed = stored_directed(frags);
    let mut summary = delta.summary();
    let mut increased = Vec::new();
    for (u, v, w_new) in delta.weight_updates() {
        let mut inc = false;
        let stored: &[(VertexId, VertexId)] =
            if directed { &[(*u, *v)] } else { &[(*u, *v), (*v, *u)] };
        for &(a, b) in stored {
            for f in frags {
                let Some(la) = f.local(a) else { continue };
                for (t, w_old) in f.edges(la) {
                    if f.global(t) != b {
                        continue;
                    }
                    match weight_change(w_new, w_old) {
                        WeightChange::Decreased => summary.weights_decreased += 1,
                        WeightChange::Unchanged => {}
                        WeightChange::Increased => {
                            summary.weights_increased += 1;
                            inc = true;
                        }
                    }
                }
            }
        }
        if inc {
            increased.push((*u, *v));
        }
    }
    Resolved { summary, increased }
}

/// Pick the strategy and, for `warm-increase`, the per-fragment
/// invalidated sets (**old** local ids) — everything that must happen
/// while the **pre-apply** fragments and states are still observable.
/// This is the first half of what [`run_incremental`] does per batch;
/// it is public so harnesses (the `dynamic` bench) can stage the
/// sequence manually without re-implementing the weight-direction
/// resolution. Pair it with [`remap_invalid`] after the apply.
pub fn plan_incremental<V, E, P>(
    frags: &[&Fragment<V, E>],
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> (WarmStrategy, Vec<Vec<LocalId>>)
where
    E: PartialOrd,
    P: WarmStart<V, E>,
{
    plan_incremental_traced(frags, prog, q, delta, state, &Tracer::default())
}

/// [`plan_incremental`] emitting the batch's chosen strategy as a
/// `strategy` instant (with the resolved batch shape as args) and, for
/// `warm-increase` batches, a `plan_invalidation` span around the
/// program's affected-region planning — both on the delta track. The
/// untraced entry point delegates here with a disabled tracer.
pub fn plan_incremental_traced<V, E, P>(
    frags: &[&Fragment<V, E>],
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    tracer: &Tracer,
) -> (WarmStrategy, Vec<Vec<LocalId>>)
where
    E: PartialOrd,
    P: WarmStart<V, E>,
{
    let traced = tracer.enabled();
    let resolved = resolve(frags, delta);
    let strategy = prog.delta_strategy(&resolved.summary);
    if traced {
        tracer.instant(
            pid::DELTA,
            0,
            cat::STRATEGY,
            "strategy",
            Args::new()
                .with("chosen", strategy.name())
                .with("edges_added", resolved.summary.edges_added)
                .with("edges_removed", resolved.summary.edges_removed)
                .with("weights_increased", resolved.summary.weights_increased),
        );
    }
    let invalid_old = if strategy == WarmStrategy::WarmIncrease {
        let changes = DeltaChanges {
            removed_edges: delta.edges_removed(),
            removed_vertices: delta.vertices_removed(),
            increased_edges: &resolved.increased,
        };
        if traced {
            tracer.begin(pid::DELTA, 0, cat::STRATEGY, "plan_invalidation", Args::new());
        }
        // States read-only, plan cache writable: the program serves its
        // global owner-value gather from the cache when the previous
        // run's `refresh_plan_cache` filled it.
        let (states, cache) = state.states_and_plan_cache();
        let planned = prog.plan_invalidation(q, frags, states, &changes, cache);
        if traced {
            let invalid: usize = planned.iter().map(Vec::len).sum();
            tracer.end(
                pid::DELTA,
                0,
                cat::STRATEGY,
                "plan_invalidation",
                Args::new().with("invalidated", invalid),
            );
        }
        planned
    } else {
        frags.iter().map(|_| Vec::new()).collect()
    };
    (strategy, invalid_old)
}

/// Migrate the planned invalidated sets into the post-apply local id
/// space (dropped copies vanish; fresh copies start uninitialised and
/// need no explicit invalidation) — the second half of
/// [`plan_incremental`], once the apply's [`Applied::remaps`] exist.
pub fn remap_invalid(invalid_old: Vec<Vec<LocalId>>, applied: &Applied) -> Vec<Vec<LocalId>> {
    invalid_old
        .into_iter()
        .zip(&applied.remaps)
        .map(|(set, remap)| {
            let mut v: Vec<LocalId> = set.into_iter().filter_map(|l| remap.map(l)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Apply `delta` to the engine's fragments in place, then evaluate `q`
/// incrementally from the retained `state`.
///
/// The strategy is chosen per batch (see the module docs): monotone
/// batches and — for programs with an invalidation plan, like SSSP and
/// CC — removal/weight-increase batches run warm; only batches the
/// program rejects re-run a cold retained evaluation. One call either
/// way, with `state` refreshed for the next delta.
///
/// The query must be the one the retained state was computed for.
///
/// # Panics
/// Panics if the engine's fragments are still shared by a previous run
/// output (drop it first), or if `state` does not match the fragment
/// count.
pub fn run_incremental<V, E, P>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> IncrementalOutput<P::Out>
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
    P: WarmStart<V, E>,
{
    run_incremental_with(engine, prog, q, delta, state, &mut EditBuffers::default())
}

/// [`run_incremental`] with caller-owned pooled apply buffers, for
/// streaming many batches.
pub fn run_incremental_with<V, E, P>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    bufs: &mut EditBuffers,
) -> IncrementalOutput<P::Out>
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
    P: WarmStart<V, E>,
{
    let (strategy, invalid_old) = {
        let view: Vec<&Fragment<V, E>> = engine.fragments().iter().map(|a| &**a).collect();
        plan_incremental(&view, prog, q, delta, state)
    };
    let applied = {
        let mut frags = engine
            .fragments_mut()
            .expect("engine fragments are shared; drop previous run outputs first");
        apply_to_fragments_with(&mut frags, delta, bufs)
    };
    let RunOutput { out, stats } = if strategy.is_warm() {
        let invalid = remap_invalid(invalid_old, &applied);
        engine.run_incremental(prog, q, &applied.remaps, &applied.seeds, &invalid, state)
    } else {
        let (out, fresh) = engine.run_retained(prog, q);
        *state = fresh;
        out
    };
    // The run's state write invalidated the plan cache; re-seed it from
    // the assembled output so the next batch's plan can skip its gather.
    prog.refresh_plan_cache(&out, state.plan_cache_mut());
    IncrementalOutput { out, stats, applied, strategy }
}

/// Replay a sequence of deltas through [`run_incremental`] — the
/// restart half of a durable snapshot: `load → attach → replay(log)`
/// lands in exactly the state a continuous process would hold. Returns
/// the output of the **last** delta round (`None` for an empty
/// sequence; `state` is current either way).
pub fn replay<'a, V, E, P, I>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    deltas: I,
    state: &mut RunState<P::State>,
) -> Option<IncrementalOutput<P::Out>>
where
    V: Clone + Send + Sync + 'a,
    E: Clone + PartialOrd + Send + Sync + 'a,
    P: WarmStart<V, E>,
    I: IntoIterator<Item = &'a GraphDelta<V, E>>,
{
    let mut bufs = EditBuffers::default();
    let mut last = None;
    for delta in deltas {
        last = Some(run_incremental_with(engine, prog, q, delta, state, &mut bufs));
    }
    last
}

/// The simulated mirror of [`run_incremental`]: apply the delta to a
/// [`SimEngine`]'s fragments and evaluate incrementally in virtual time,
/// so cost models and timelines cover delta rounds — including the
/// invalidation round of a `warm-increase` batch, whose reset/frontier
/// scan the programs charge as work.
pub fn run_incremental_sim<V, E, P>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> IncrementalSimOutput<P::Out>
where
    V: Clone,
    E: Clone + PartialOrd,
    P: WarmStart<V, E>,
{
    run_incremental_sim_with(sim, prog, q, delta, state, &mut EditBuffers::default())
}

/// [`run_incremental_sim`] with caller-owned pooled apply buffers —
/// the simulated mirror of [`run_incremental_with`], for streaming many
/// batches without re-allocating the transient lookup structures.
pub fn run_incremental_sim_with<V, E, P>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    bufs: &mut EditBuffers,
) -> IncrementalSimOutput<P::Out>
where
    V: Clone,
    E: Clone + PartialOrd,
    P: WarmStart<V, E>,
{
    let (strategy, invalid_old) = {
        let view: Vec<&Fragment<V, E>> = sim.fragments().iter().map(|a| &**a).collect();
        plan_incremental(&view, prog, q, delta, state)
    };
    let applied = {
        let mut frags = sim
            .fragments_mut()
            .expect("simulator fragments are shared; drop previous run outputs first");
        apply_to_fragments_with(&mut frags, delta, bufs)
    };
    let SimOutput { out, stats, timelines } = if strategy.is_warm() {
        let invalid = remap_invalid(invalid_old, &applied);
        sim.run_incremental(prog, q, &applied.remaps, &applied.seeds, &invalid, state)
    } else {
        let (out, fresh) = sim.run_retained(prog, q);
        *state = fresh;
        out
    };
    prog.refresh_plan_cache(&out, state.plan_cache_mut());
    IncrementalSimOutput { out, stats, timelines, applied, strategy }
}

/// Replay a sequence of deltas on the simulator — the virtual-time
/// mirror of [`replay`].
pub fn replay_sim<'a, V, E, P, I>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    deltas: I,
    state: &mut RunState<P::State>,
) -> Option<IncrementalSimOutput<P::Out>>
where
    V: Clone + 'a,
    E: Clone + PartialOrd + 'a,
    P: WarmStart<V, E>,
    I: IntoIterator<Item = &'a GraphDelta<V, E>>,
{
    let mut bufs = EditBuffers::default();
    let mut last = None;
    for delta in deltas {
        last = Some(run_incremental_sim_with(sim, prog, q, delta, state, &mut bufs));
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaBuilder;
    use aap_algos::Sssp;
    use aap_core::{EngineOpts, Mode};
    use aap_graph::generate;
    use aap_graph::partition::{build_fragments_n, hash_partition};

    /// A stream of tiny deletion batches plans from the cached
    /// owner-value gather: the first plan misses (nothing refreshed the
    /// fresh state's cache yet), every later one hits because the
    /// driver re-seeds the cache from each run's assembled output —
    /// and the cached plan stays exact against a cold run.
    #[test]
    fn deletion_stream_plans_from_the_cache() {
        let g = generate::small_world(300, 2, 0.1, 11);
        let mut engine = Engine::new(
            build_fragments_n(&g, &hash_partition(&g, 4), 4),
            EngineOpts { threads: 2, mode: Mode::aap(), max_rounds: Some(100_000) },
        );
        let (_, mut state) = engine.run_retained(&Sssp, &0);
        let mut cur = g.clone();
        for i in 0..4u32 {
            let u = (i * 37 + 5) % cur.num_vertices() as u32;
            let t = *cur.neighbors(u).first().expect("small-world degree >= 2");
            let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
            b.remove_edge(u, t);
            let delta = b.build();
            let r = run_incremental(&mut engine, &Sssp, &0, &delta, &mut state);
            assert_eq!(r.strategy, WarmStrategy::WarmIncrease, "batch {i}");
            cur = crate::apply_to_graph(&cur, &delta);
            assert_eq!(r.out, engine.run(&Sssp, &0).out, "batch {i} stays exact");
        }
        let c = state.plan_cache();
        assert!(c.hits() >= 3, "later plans must be served from the cache: {c:?}");
        assert!(c.misses() <= 1, "only the first plan may rebuild the gather: {c:?}");
    }
}
