//! Warm-start drivers: apply a delta to an engine's fragments, then run
//! incrementally (or fall back to a cold retained run when the delta is
//! not handled exactly by the program's warm path).
//!
//! Every driver returns what it *did* alongside the run result: the
//! [`Applied`] record of the batch (its summary with weight-change
//! directions resolved against the graph, per-fragment remaps, and
//! warm-start seeds) and whether the warm path ran — previously all of
//! this was computed and discarded internally. A built [`GraphDelta`]
//! is already deduplicated and is applied verbatim, so callers keeping
//! a durable history (the `aap-snapshot` delta log) log the delta they
//! passed in and keep the returned record as the account of how it
//! resolved.

use crate::apply::{apply_to_fragments_with, Applied};
use crate::ops::GraphDelta;
use aap_core::engine::{RunOutput, RunState};
use aap_core::pie::WarmStart;
use aap_core::{Engine, RunStats};
use aap_graph::mutate::EditBuffers;
use aap_sim::{SimEngine, SimOutput, Timeline};

/// Result of one incremental driver call on the threaded engine: the
/// assembled answer and stats of [`RunOutput`], plus the delta that was
/// actually applied and which evaluation path ran.
#[derive(Debug)]
pub struct IncrementalOutput<Out> {
    /// The assembled answer `ρ(Q, G ⊕ delta)`.
    pub out: Out,
    /// Statistics collected during the run.
    pub stats: RunStats,
    /// What the delta application did to the fragments: resolved
    /// summary, per-fragment state remaps, and warm-start seeds.
    pub applied: Applied,
    /// `true` if the warm path ran ([`WarmStart::delta_exact`] held);
    /// `false` if the driver fell back to a cold retained run.
    pub warm: bool,
}

/// Result of one incremental driver call on the simulator — the
/// simulated mirror of [`IncrementalOutput`], with timelines.
#[derive(Debug)]
pub struct IncrementalSimOutput<Out> {
    /// The assembled answer.
    pub out: Out,
    /// Statistics; `makespan` is in virtual time units.
    pub stats: RunStats,
    /// Per-worker activity history (for Gantt rendering).
    pub timelines: Vec<Timeline>,
    /// What the delta application did to the fragments.
    pub applied: Applied,
    /// `true` warm path, `false` cold retained fallback.
    pub warm: bool,
}

/// Apply `delta` to the engine's fragments in place, then evaluate `q`
/// incrementally from the retained `state`.
///
/// * Monotone-decreasing deltas (per [`WarmStart::delta_exact`]) run
///   warm: round 0 is `warm_eval` seeded with the delta-affected
///   vertices, and only the changed region recomputes.
/// * Other deltas (removals, weight increases) re-run a cold retained
///   evaluation on the mutated fragments — still one call for the
///   caller, with `state` refreshed either way.
///
/// The query must be the one the retained state was computed for.
///
/// # Panics
/// Panics if the engine's fragments are still shared by a previous run
/// output (drop it first), or if `state` does not match the fragment
/// count.
pub fn run_incremental<V, E, P>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> IncrementalOutput<P::Out>
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
    P: WarmStart<V, E>,
{
    run_incremental_with(engine, prog, q, delta, state, &mut EditBuffers::default())
}

/// [`run_incremental`] with caller-owned pooled apply buffers, for
/// streaming many batches.
pub fn run_incremental_with<V, E, P>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    bufs: &mut EditBuffers,
) -> IncrementalOutput<P::Out>
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
    P: WarmStart<V, E>,
{
    let applied = {
        let mut frags = engine
            .fragments_mut()
            .expect("engine fragments are shared; drop previous run outputs first");
        apply_to_fragments_with(&mut frags, delta, bufs)
    };
    let warm = prog.delta_exact(&applied.summary);
    let RunOutput { out, stats } = if warm {
        engine.run_incremental(prog, q, &applied.remaps, &applied.seeds, state)
    } else {
        let (out, fresh) = engine.run_retained(prog, q);
        *state = fresh;
        out
    };
    IncrementalOutput { out, stats, applied, warm }
}

/// Replay a sequence of deltas through [`run_incremental`] — the
/// restart half of a durable snapshot: `load → attach → replay(log)`
/// lands in exactly the state a continuous process would hold. Returns
/// the output of the **last** delta round (`None` for an empty
/// sequence; `state` is current either way).
pub fn replay<'a, V, E, P, I>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    deltas: I,
    state: &mut RunState<P::State>,
) -> Option<IncrementalOutput<P::Out>>
where
    V: Clone + Send + Sync + 'a,
    E: Clone + PartialOrd + Send + Sync + 'a,
    P: WarmStart<V, E>,
    I: IntoIterator<Item = &'a GraphDelta<V, E>>,
{
    let mut bufs = EditBuffers::default();
    let mut last = None;
    for delta in deltas {
        last = Some(run_incremental_with(engine, prog, q, delta, state, &mut bufs));
    }
    last
}

/// The simulated mirror of [`run_incremental`]: apply the delta to a
/// [`SimEngine`]'s fragments and evaluate incrementally in virtual time,
/// so cost models and timelines cover delta rounds.
pub fn run_incremental_sim<V, E, P>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> IncrementalSimOutput<P::Out>
where
    V: Clone,
    E: Clone + PartialOrd,
    P: WarmStart<V, E>,
{
    run_incremental_sim_with(sim, prog, q, delta, state, &mut EditBuffers::default())
}

/// [`run_incremental_sim`] with caller-owned pooled apply buffers —
/// the simulated mirror of [`run_incremental_with`], for streaming many
/// batches without re-allocating the transient lookup structures.
pub fn run_incremental_sim_with<V, E, P>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    bufs: &mut EditBuffers,
) -> IncrementalSimOutput<P::Out>
where
    V: Clone,
    E: Clone + PartialOrd,
    P: WarmStart<V, E>,
{
    let applied = {
        let mut frags = sim
            .fragments_mut()
            .expect("simulator fragments are shared; drop previous run outputs first");
        apply_to_fragments_with(&mut frags, delta, bufs)
    };
    let warm = prog.delta_exact(&applied.summary);
    let SimOutput { out, stats, timelines } = if warm {
        sim.run_incremental(prog, q, &applied.remaps, &applied.seeds, state)
    } else {
        let (out, fresh) = sim.run_retained(prog, q);
        *state = fresh;
        out
    };
    IncrementalSimOutput { out, stats, timelines, applied, warm }
}

/// Replay a sequence of deltas on the simulator — the virtual-time
/// mirror of [`replay`].
pub fn replay_sim<'a, V, E, P, I>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    deltas: I,
    state: &mut RunState<P::State>,
) -> Option<IncrementalSimOutput<P::Out>>
where
    V: Clone + 'a,
    E: Clone + PartialOrd + 'a,
    P: WarmStart<V, E>,
    I: IntoIterator<Item = &'a GraphDelta<V, E>>,
{
    let mut bufs = EditBuffers::default();
    let mut last = None;
    for delta in deltas {
        last = Some(run_incremental_sim_with(sim, prog, q, delta, state, &mut bufs));
    }
    last
}
