//! Warm-start drivers: apply a delta to an engine's fragments, then run
//! incrementally (or fall back to a cold retained run when the delta is
//! not handled exactly by the program's warm path).

use crate::apply::apply_to_fragments_with;
use crate::ops::GraphDelta;
use aap_core::engine::{RunOutput, RunState};
use aap_core::pie::WarmStart;
use aap_core::Engine;
use aap_graph::mutate::EditBuffers;
use aap_sim::{SimEngine, SimOutput};

/// Apply `delta` to the engine's fragments in place, then evaluate `q`
/// incrementally from the retained `state`.
///
/// * Monotone-decreasing deltas (per [`WarmStart::delta_exact`]) run
///   warm: round 0 is `warm_eval` seeded with the delta-affected
///   vertices, and only the changed region recomputes.
/// * Other deltas (removals, weight increases) re-run a cold retained
///   evaluation on the mutated fragments — still one call for the
///   caller, with `state` refreshed either way.
///
/// The query must be the one the retained state was computed for.
///
/// # Panics
/// Panics if the engine's fragments are still shared by a previous run
/// output (drop it first), or if `state` does not match the fragment
/// count.
pub fn run_incremental<V, E, P>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> RunOutput<P::Out>
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
    P: WarmStart<V, E>,
{
    run_incremental_with(engine, prog, q, delta, state, &mut EditBuffers::default())
}

/// [`run_incremental`] with caller-owned pooled apply buffers, for
/// streaming many batches.
pub fn run_incremental_with<V, E, P>(
    engine: &mut Engine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    bufs: &mut EditBuffers,
) -> RunOutput<P::Out>
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
    P: WarmStart<V, E>,
{
    let applied = {
        let mut frags = engine
            .fragments_mut()
            .expect("engine fragments are shared; drop previous run outputs first");
        apply_to_fragments_with(&mut frags, delta, bufs)
    };
    if prog.delta_exact(&applied.summary) {
        engine.run_incremental(prog, q, &applied.remaps, &applied.seeds, state)
    } else {
        let (out, fresh) = engine.run_retained(prog, q);
        *state = fresh;
        out
    }
}

/// The simulated mirror of [`run_incremental`]: apply the delta to a
/// [`SimEngine`]'s fragments and evaluate incrementally in virtual time,
/// so cost models and timelines cover delta rounds.
pub fn run_incremental_sim<V, E, P>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
) -> SimOutput<P::Out>
where
    V: Clone,
    E: Clone + PartialOrd,
    P: WarmStart<V, E>,
{
    run_incremental_sim_with(sim, prog, q, delta, state, &mut EditBuffers::default())
}

/// [`run_incremental_sim`] with caller-owned pooled apply buffers —
/// the simulated mirror of [`run_incremental_with`], for streaming many
/// batches without re-allocating the transient lookup structures.
pub fn run_incremental_sim_with<V, E, P>(
    sim: &mut SimEngine<V, E>,
    prog: &P,
    q: &P::Query,
    delta: &GraphDelta<V, E>,
    state: &mut RunState<P::State>,
    bufs: &mut EditBuffers,
) -> SimOutput<P::Out>
where
    V: Clone,
    E: Clone + PartialOrd,
    P: WarmStart<V, E>,
{
    let applied = {
        let mut frags = sim
            .fragments_mut()
            .expect("simulator fragments are shared; drop previous run outputs first");
        apply_to_fragments_with(&mut frags, delta, bufs)
    };
    if prog.delta_exact(&applied.summary) {
        sim.run_incremental(prog, q, &applied.remaps, &applied.seeds, state)
    } else {
        let (out, fresh) = sim.run_retained(prog, q);
        *state = fresh;
        out
    }
}
