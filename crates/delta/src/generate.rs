//! Deterministic delta-batch generators, shared by the benches, the
//! property tests, and the streaming example (the delta-side analog of
//! `aap_graph::generate`).

use crate::ops::{DeltaBuilder, GraphDelta};
use aap_graph::{Graph, VertexId};

/// Tiny deterministic xorshift64 PRNG — enough for workload generation,
/// and dependency-free (one definition instead of one per call site).
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeded generator (seed 0 is mapped to a fixed non-zero state).
    pub fn new(seed: u64) -> Self {
        Xorshift(seed | 1)
    }

    /// Next pseudo-random value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value in `0..bound` (bound must be non-zero).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A batch of `count` random edge insertions between existing vertices,
/// with weights in `1..=max_weight`. Self-loops are skipped; repeated
/// pairs dedup in the builder, so the batch holds exactly `count` ops.
pub fn insert_batch(g: &Graph<(), u32>, count: usize, max_weight: u32, seed: u64) -> GraphDelta {
    let ids: Vec<VertexId> = g.vertices().collect();
    insert_batch_within(&ids, count, max_weight, seed)
}

/// Like [`insert_batch`], but endpoints are drawn from `vertices` only —
/// e.g. one fragment's vertex set, to build a *localized* delta.
pub fn insert_batch_within(
    vertices: &[VertexId],
    count: usize,
    max_weight: u32,
    seed: u64,
) -> GraphDelta {
    assert!(vertices.len() > 1, "need at least two vertices to insert edges");
    let mut rng = Xorshift::new(seed);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    while b.len() < count {
        let u = vertices[rng.below(vertices.len() as u64) as usize];
        let v = vertices[rng.below(vertices.len() as u64) as usize];
        if u != v {
            b.add_edge(u, v, 1 + rng.below(max_weight.max(1) as u64) as u32);
        }
    }
    b.build()
}

/// A batch of up to `count` random edge **removals** drawn from the
/// graph's existing edges (deterministic; duplicates dedup in the
/// builder). The workload for the deletion-exact warm path: a removal
/// batch with no inserts is non-monotone end to end.
pub fn remove_batch(g: &Graph<(), u32>, count: usize, seed: u64) -> GraphDelta {
    let n = g.num_vertices() as u64;
    assert!(n > 0, "need vertices to remove edges");
    let mut rng = Xorshift::new(seed);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    // Bounded attempts: sparse or edgeless regions may yield fewer ops.
    for _ in 0..count.saturating_mul(64) {
        if b.len() >= count {
            break;
        }
        let u = rng.below(n) as u32;
        let deg = g.neighbors(u).len() as u64;
        if deg == 0 {
            continue;
        }
        let t = g.neighbors(u)[rng.below(deg) as usize];
        if u != t {
            b.remove_edge(u, t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::generate;

    #[test]
    fn insert_batch_is_deterministic_and_sized() {
        let g = generate::small_world(50, 2, 0.1, 1);
        let a = insert_batch(&g, 12, 16, 7);
        let b = insert_batch(&g, 12, 16, 7);
        assert_eq!(a.len(), 12);
        assert_eq!(a.edges_added(), b.edges_added());
        assert!(a.summary().is_monotone_decreasing());
        for &(u, v, w) in a.edges_added() {
            assert_ne!(u, v);
            assert!((1..=16).contains(&w));
            assert!(u < 50 && v < 50);
        }
    }

    #[test]
    fn remove_batch_names_existing_edges() {
        let g = generate::small_world(60, 2, 0.1, 2);
        let d = remove_batch(&g, 10, 5);
        let d2 = remove_batch(&g, 10, 5);
        assert_eq!(d.edges_removed(), d2.edges_removed(), "deterministic");
        assert!(!d.edges_removed().is_empty());
        assert!(!d.summary().is_monotone_decreasing());
        for &(u, v) in d.edges_removed() {
            assert!(g.neighbors(u).contains(&v), "({u}, {v}) must exist");
        }
    }

    #[test]
    fn localized_batch_stays_in_pool() {
        let pool: Vec<VertexId> = (10..20).collect();
        let d = insert_batch_within(&pool, 5, 4, 3);
        for &(u, v, _) in d.edges_added() {
            assert!(pool.contains(&u) && pool.contains(&v));
        }
    }
}
