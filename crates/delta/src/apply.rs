//! Delta application: replay a [`GraphDelta`] onto a global graph or —
//! in place — onto a partitioned fragment set.

use crate::ops::GraphDelta;
use aap_graph::mutate::{
    apply_partition_edit_threads_traced, apply_partition_edit_traced, patch_vertex_cut_traced,
    AppliedEdit, DeltaSummary, EditBuffers, FragmentEdit, PartitionEdit, StateRemap, VertexCutEdit,
};
use aap_graph::partition::vertex_cut_edge_frag;
use aap_graph::{fxhash, mutate, FragId, Fragment, FxHashMap, FxHashSet, Graph, LocalId, VertexId};
use aap_trace::{cat, pid, Args, Tracer};

/// Result of applying a delta to a fragment set: everything a warm-start
/// engine run (`Engine::run_incremental`) consumes.
#[derive(Debug, Clone)]
pub struct Applied {
    /// Batch shape, with weight-change directions resolved against the
    /// graph — the applied counterpart of what
    /// `WarmStart::delta_strategy` decided on.
    pub summary: DeltaSummary,
    /// Per-fragment local-id migration for retained state.
    pub remaps: Vec<StateRemap>,
    /// Per-fragment delta-affected vertices (new local ids, sorted).
    pub seeds: Vec<Vec<LocalId>>,
    /// Per-fragment: whether persisted bytes changed (see
    /// [`AppliedEdit::changed`]). Both cut kinds patch in place, so this
    /// covers exactly the repacked fragments.
    pub changed: Vec<bool>,
}

/// Replay `delta` onto a global graph, returning the mutated graph.
/// Undirected graphs expand each logical edge op to both stored
/// directions. Panics on edges naming unknown vertices or on
/// non-contiguous added vertex ids.
pub fn apply_to_graph<V, E>(g: &Graph<V, E>, delta: &GraphDelta<V, E>) -> Graph<V, E>
where
    V: Clone,
    E: Clone + PartialOrd,
{
    apply_to_graph_counting(g, delta).0
}

/// [`apply_to_graph`] plus `(weights_decreased, weights_increased)`.
fn apply_to_graph_counting<V, E>(
    g: &Graph<V, E>,
    delta: &GraphDelta<V, E>,
) -> (Graph<V, E>, u64, u64)
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let directed = g.is_directed();
    let mut nodes: Vec<V> = g.nodes().to_vec();
    for (id, d) in delta.vertices_added() {
        assert_eq!(
            *id as usize,
            nodes.len(),
            "added vertex ids must extend the dense id space contiguously"
        );
        nodes.push(d.clone());
    }
    let n = nodes.len();
    let removed: FxHashSet<VertexId> = delta.vertices_removed().iter().copied().collect();
    let expand = |u: VertexId, v: VertexId| -> [(VertexId, VertexId); 2] {
        if directed {
            [(u, v), (u, v)] // second entry is a harmless duplicate key
        } else {
            [(u, v), (v, u)]
        }
    };
    let mut rm: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    for &(u, v) in delta.edges_removed() {
        rm.extend(expand(u, v));
    }
    let mut setw: FxHashMap<(VertexId, VertexId), &E> = FxHashMap::default();
    for (u, v, w) in delta.weight_updates() {
        for k in expand(*u, *v) {
            setw.insert(k, w);
        }
    }

    let mut wdec = 0u64;
    let mut winc = 0u64;
    let mut edges: Vec<(VertexId, VertexId, E)> =
        Vec::with_capacity(g.num_edges() + delta.edges_added().len() * 2);
    for (u, v, d) in g.all_edges() {
        if removed.contains(&u) || removed.contains(&v) || rm.contains(&(u, v)) {
            continue;
        }
        if let Some(w) = setw.get(&(u, v)) {
            match mutate::weight_change(*w, d) {
                mutate::WeightChange::Decreased => wdec += 1,
                mutate::WeightChange::Unchanged => {}
                mutate::WeightChange::Increased => winc += 1,
            }
            edges.push((u, v, (*w).clone()));
        } else {
            edges.push((u, v, d.clone()));
        }
    }
    for (u, v, d) in delta.edges_added() {
        assert!((*u as usize) < n && (*v as usize) < n, "added edge ({u}, {v}) out of range");
        assert!(
            !removed.contains(u) && !removed.contains(v),
            "added edge ({u}, {v}) touches a removed vertex"
        );
        edges.push((*u, *v, d.clone()));
        if !directed {
            edges.push((*v, *u, d.clone()));
        }
    }
    (Graph::from_stored_edges(directed, nodes, edges), wdec, winc)
}

/// Replay `delta` onto a partitioned fragment set, **in place**.
///
/// Both cut kinds are patched locally: only fragments named by the delta
/// (or linked to them through mirrors/holders/copies) are touched; dense
/// routing tables are rebuilt for exactly the affected destinations (see
/// `aap_graph::mutate`). Vertex-cut batches route each edge op to its
/// canonical pair-hash fragment and repack just the holders of affected
/// vertices (`patch_vertex_cut`) — the old reassemble + re-partition
/// fallback is gone.
///
/// New vertices are owned by `hash(id) % m`, consistent with
/// [`aap_graph::partition::hash_partition`].
pub fn apply_to_fragments<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
) -> Applied
where
    V: Clone,
    E: Clone + PartialOrd,
{
    apply_to_fragments_with(frags, delta, &mut EditBuffers::default())
}

/// [`apply_to_fragments`] with caller-owned pooled buffers, for streaming
/// many batches without re-allocating the transient lookup structures.
pub fn apply_to_fragments_with<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
    bufs: &mut EditBuffers,
) -> Applied
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    assert!(m > 0, "cannot apply a delta to an empty fragment set");
    if frags[0].is_vertex_cut() {
        apply_vertex_cut(frags, delta, &Tracer::default())
    } else {
        apply_edge_cut(frags, delta, bufs, &Tracer::default())
    }
}

/// [`apply_to_fragments_with`], fanning the per-touched-fragment CSR
/// repacks out over up to `threads` scoped worker threads. Byte-identical
/// to the serial path (see
/// [`aap_graph::mutate::apply_partition_edit_threads`], pinned by the
/// mutate proptests); edge-cut only — the vertex-cut patch is serial
/// regardless of `threads` (its batches touch few fragments).
pub fn apply_to_fragments_par<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
    bufs: &mut EditBuffers,
    threads: usize,
) -> Applied
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
{
    apply_to_fragments_par_traced(frags, delta, bufs, threads, &Tracer::default())
}

/// [`apply_to_fragments_par`] with structured tracing: the whole apply
/// runs under an `apply_delta` span on the delta track, the edit
/// resolution gets its own `resolve_edit` phase span, and every
/// repacked fragment emits a `repack` span (tid = fragment id) from the
/// graph layer. The untraced entry point delegates here with a disabled
/// tracer.
pub fn apply_to_fragments_par_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
    bufs: &mut EditBuffers,
    threads: usize,
    tracer: &Tracer,
) -> Applied
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
{
    let m = frags.len();
    assert!(m > 0, "cannot apply a delta to an empty fragment set");
    if frags[0].is_vertex_cut() {
        apply_vertex_cut(frags, delta, tracer)
    } else if threads <= 1 {
        apply_edge_cut(frags, delta, bufs, tracer)
    } else {
        let traced = tracer.enabled();
        if traced {
            tracer.begin(pid::DELTA, 0, cat::APPLY, "apply_delta", delta_args(delta, threads));
        }
        let edit = {
            if traced {
                tracer.begin(pid::DELTA, 0, cat::APPLY, "resolve_edit", Args::new());
            }
            let edit = resolve_edge_cut_edit(frags, delta);
            if traced {
                let touched = edit.touched.iter().filter(|&&t| t).count();
                tracer.end(
                    pid::DELTA,
                    0,
                    cat::APPLY,
                    "resolve_edit",
                    Args::new().with("touched", touched),
                );
            }
            edit
        };
        let applied = apply_partition_edit_threads_traced(frags, &edit, bufs, threads, tracer);
        if traced {
            tracer.end(pid::DELTA, 0, cat::APPLY, "apply_delta", Args::new());
        }
        finish_edge_cut(delta, applied)
    }
}

/// Batch-shape args for the `apply_delta` span.
fn delta_args<V, E>(delta: &GraphDelta<V, E>, threads: usize) -> Args {
    let s = delta.summary();
    Args::new()
        .with("edges_added", s.edges_added)
        .with("edges_removed", s.edges_removed)
        .with("weight_updates", delta.weight_updates().len())
        .with("threads", threads)
}

fn apply_edge_cut<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
    bufs: &mut EditBuffers,
    tracer: &Tracer,
) -> Applied
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let traced = tracer.enabled();
    if traced {
        tracer.begin(pid::DELTA, 0, cat::APPLY, "apply_delta", delta_args(delta, 1));
    }
    let edit = resolve_edge_cut_edit(frags, delta);
    let applied = apply_partition_edit_traced(frags, &edit, bufs, tracer);
    if traced {
        tracer.end(pid::DELTA, 0, cat::APPLY, "apply_delta", Args::new());
    }
    finish_edge_cut(delta, applied)
}

/// Resolve a delta against an edge-cut partition into a
/// [`PartitionEdit`]: owner lookup for every mentioned vertex, edge ops
/// routed to the owner of the stored source, and the touched set.
fn resolve_edge_cut_edit<V, E>(
    frags: &[&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
) -> PartitionEdit<V, E>
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    let directed = frags
        .iter()
        .find(|f| f.local_count() > 0)
        .map(|f| f.local_graph().is_directed())
        .unwrap_or(true);

    // Resolve the owner of every mentioned vertex: existing vertices by
    // scanning the fragments' id maps, fresh vertices by the hash rule.
    let total_owned: usize = frags.iter().map(|f| f.owned_count()).sum();
    let added: FxHashSet<VertexId> = delta.vertices_added().iter().map(|&(v, _)| v).collect();
    let mut owners: FxHashMap<VertexId, FragId> = FxHashMap::default();
    for v in delta.mentioned_vertices() {
        if owners.contains_key(&v) {
            continue;
        }
        let owner = if added.contains(&v) {
            (fxhash::hash_u64(v as u64) % m as u64) as FragId
        } else {
            frags
                .iter()
                .find(|f| f.local(v).map(|l| f.is_owned(l)).unwrap_or(false))
                .unwrap_or_else(|| panic!("vertex {v} not found in any fragment"))
                .id()
        };
        owners.insert(v, owner);
    }
    // Same contract apply_to_graph enforces: added ids extend the dense
    // id space contiguously (vertices_added is sorted), so downstream
    // Assemble output stays index-stable.
    for (i, (v, _)) in delta.vertices_added().iter().enumerate() {
        assert_eq!(
            *v as usize,
            total_owned + i,
            "added vertex ids must extend the dense id space contiguously"
        );
    }

    let mut edit = PartitionEdit {
        frags: (0..m).map(|_| FragmentEdit::default()).collect::<Vec<_>>(),
        removed_vertices: delta.vertices_removed().iter().copied().collect(),
        owners,
        touched: vec![false; m],
    };
    for (v, d) in delta.vertices_added() {
        let o = edit.owners[v] as usize;
        edit.frags[o].add_owned.push((*v, d.clone()));
        edit.touched[o] = true;
    }
    for v in delta.vertices_removed() {
        let o = edit.owners[v] as usize;
        edit.touched[o] = true;
        // Every fragment mirroring the vertex stores edges into it and
        // must drop them.
        let f = &frags[o];
        let l = f.local(*v).expect("removed vertex exists at its owner");
        for &h in f.mirror_holders(l) {
            edit.touched[h as usize] = true;
        }
    }
    // Edge ops land at the owner of the stored source; undirected logical
    // edges expand to both stored directions.
    type PushEdge<'a, V, E> = &'a mut dyn FnMut(&mut FragmentEdit<V, E>, VertexId, VertexId);
    let each_direction =
        |u: VertexId, v: VertexId, edit: &mut PartitionEdit<V, E>, push: PushEdge<V, E>| {
            let o = edit.owners[&u] as usize;
            push(&mut edit.frags[o], u, v);
            edit.touched[o] = true;
            if !directed {
                let o = edit.owners[&v] as usize;
                push(&mut edit.frags[o], v, u);
                edit.touched[o] = true;
            }
        };
    for (u, v, d) in delta.edges_added() {
        let dd = d.clone();
        each_direction(*u, *v, &mut edit, &mut |fe, a, b| fe.insert_edges.push((a, b, dd.clone())));
    }
    for (u, v) in delta.edges_removed() {
        each_direction(*u, *v, &mut edit, &mut |fe, a, b| fe.remove_edges.push((a, b)));
    }
    for (u, v, d) in delta.weight_updates() {
        let dd = d.clone();
        each_direction(*u, *v, &mut edit, &mut |fe, a, b| fe.set_weights.push((a, b, dd.clone())));
    }

    edit
}

/// Fold the graph-layer [`AppliedEdit`] back into the delta-level
/// [`Applied`] report.
fn finish_edge_cut<V, E>(delta: &GraphDelta<V, E>, applied: AppliedEdit) -> Applied {
    let mut summary = delta.summary();
    summary.weights_decreased = applied.weights_decreased;
    summary.weights_increased = applied.weights_increased;
    Applied { summary, remaps: applied.remaps, seeds: applied.seeds, changed: applied.changed }
}

/// Vertex-cut path: route each stored-edge op to its canonical pair-hash
/// fragment and patch only the holders of affected vertices in place
/// (`aap_graph::mutate::patch_vertex_cut`) — at parity with the edge-cut
/// path, touched-fragment-proportional, no reassembly.
fn apply_vertex_cut<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
    tracer: &Tracer,
) -> Applied
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let traced = tracer.enabled();
    if traced {
        tracer.begin(pid::DELTA, 0, cat::APPLY, "apply_delta", delta_args(delta, 1));
    }
    let edit = {
        if traced {
            tracer.begin(pid::DELTA, 0, cat::APPLY, "resolve_edit", Args::new());
        }
        let edit = resolve_vertex_cut_edit(frags, delta);
        if traced {
            let touched = edit.frags.iter().filter(|fe| !fe.is_empty()).count();
            tracer.end(
                pid::DELTA,
                0,
                cat::APPLY,
                "resolve_edit",
                Args::new().with("touched", touched),
            );
        }
        edit
    };
    let applied = patch_vertex_cut_traced(frags, &edit, tracer);
    if traced {
        tracer.end(pid::DELTA, 0, cat::APPLY, "apply_delta", Args::new());
    }
    finish_edge_cut(delta, applied)
}

/// Resolve a delta against a vertex-cut partition into a
/// [`VertexCutEdit`]: every edge op lands at its canonical pair-hash
/// fragment (both stored directions of an undirected logical edge share
/// it), vertex ops pass through.
fn resolve_vertex_cut_edit<V, E>(
    frags: &[&mut Fragment<V, E>],
    delta: &GraphDelta<V, E>,
) -> VertexCutEdit<V, E>
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    let directed = frags
        .iter()
        .find(|f| f.local_count() > 0)
        .map(|f| f.local_graph().is_directed())
        .unwrap_or(true);
    // Same contract as the edge-cut resolver and apply_to_graph: added
    // ids extend the dense id space contiguously.
    let total_owned: usize = frags.iter().map(|f| f.owned_count()).sum();
    for (i, (v, _)) in delta.vertices_added().iter().enumerate() {
        assert_eq!(
            *v as usize,
            total_owned + i,
            "added vertex ids must extend the dense id space contiguously"
        );
    }
    let mut edit = VertexCutEdit::empty(m);
    edit.removed_vertices = delta.vertices_removed().iter().copied().collect();
    edit.added = delta.vertices_added().to_vec();
    for (u, v, d) in delta.edges_added() {
        let t = vertex_cut_edge_frag(*u, *v, m) as usize;
        edit.frags[t].insert_edges.push((*u, *v, d.clone()));
        if !directed {
            edit.frags[t].insert_edges.push((*v, *u, d.clone()));
        }
    }
    for (u, v) in delta.edges_removed() {
        let t = vertex_cut_edge_frag(*u, *v, m) as usize;
        edit.frags[t].remove_edges.push((*u, *v));
        if !directed {
            edit.frags[t].remove_edges.push((*v, *u));
        }
    }
    for (u, v, d) in delta.weight_updates() {
        let t = vertex_cut_edge_frag(*u, *v, m) as usize;
        edit.frags[t].set_weights.push((*u, *v, d.clone()));
        if !directed {
            edit.frags[t].set_weights.push((*v, *u, d.clone()));
        }
    }
    edit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaBuilder;
    use aap_graph::generate;
    use aap_graph::partition::{
        build_fragments_n, build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
    };

    #[test]
    fn graph_apply_inserts_removes_and_updates() {
        let mut b = aap_graph::GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 5u32);
        b.add_edge(1, 2, 5);
        let g = b.build();
        let mut d: DeltaBuilder<(), u32> = DeltaBuilder::new();
        d.add_edge(2, 3, 7);
        d.remove_edge(0, 1);
        d.set_weight(1, 2, 9);
        let g2 = apply_to_graph(&g, &d.build());
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.neighbors(0), &[] as &[u32]);
        assert_eq!(g2.neighbors(2), &[1, 3]);
        assert_eq!(g2.edge_data(2), &[9, 7]);
        assert_eq!(g2.neighbors(3), &[2]);
    }

    #[test]
    fn graph_apply_vertex_ops() {
        let mut b = aap_graph::GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let mut d: DeltaBuilder<(), u32> = DeltaBuilder::new();
        d.add_vertex(3, ());
        d.add_edge(2, 3, 4);
        d.remove_vertex(1);
        let g2 = apply_to_graph(&g, &d.build());
        assert_eq!(g2.num_vertices(), 4);
        // vertex 1 is isolated but keeps its id
        assert!(g2.neighbors(1).is_empty());
        assert!(g2.neighbors(0).is_empty());
        assert_eq!(g2.neighbors(2), &[3]);
    }

    #[test]
    fn fragments_apply_matches_graph_apply_structurally() {
        let g = generate::small_world(80, 2, 0.15, 4);
        let assignment = hash_partition(&g, 4);
        let mut frags = build_fragments_n(&g, &assignment, 4);
        let mut d: DeltaBuilder<(), u32> = DeltaBuilder::new();
        d.add_edge(0, 40, 3);
        d.add_edge(7, 61, 2);
        d.remove_edge(0, 1);
        d.set_weight(2, 3, 11);
        let delta = d.build();
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            apply_to_fragments(&mut refs, &delta)
        };
        assert!(!applied.summary.is_monotone_decreasing()); // has a removal
        let expect = build_fragments_n(&apply_to_graph(&g, &delta), &assignment, 4);
        for (f, e) in frags.iter().zip(&expect) {
            assert_eq!(f.globals(), e.globals());
            assert_eq!(f.inner_in(), e.inner_in());
            assert_eq!(f.inner_out(), e.inner_out());
            assert_eq!(f.routing().dests(), e.routing().dests());
            for l in f.local_vertices() {
                let mut a: Vec<_> = f.edges(l).map(|(t, dd)| (f.global(t), *dd)).collect();
                let mut bb: Vec<_> = e.edges(l).map(|(t, dd)| (e.global(t), *dd)).collect();
                a.sort_unstable();
                bb.sort_unstable();
                assert_eq!(a, bb);
            }
        }
    }

    #[test]
    fn add_vertex_lands_at_hash_owner_with_edges() {
        let g = generate::small_world(50, 2, 0.1, 8);
        let mut frags = build_fragments_n(&g, &hash_partition(&g, 3), 3);
        let mut d: DeltaBuilder<(), u32> = DeltaBuilder::new();
        d.add_vertex(50, ());
        d.add_edge(50, 10, 2);
        let delta = d.build();
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            apply_to_fragments(&mut refs, &delta)
        };
        assert!(applied.summary.is_monotone_decreasing());
        let expected_owner = (aap_graph::fxhash::hash_u64(50) % 3) as usize;
        let f = &frags[expected_owner];
        let l = f.local(50).expect("owner holds the new vertex");
        assert!(f.is_owned(l));
        assert!(!f.neighbors(l).is_empty());
        assert!(applied.seeds[expected_owner].contains(&l));
        let owned: usize = frags.iter().map(|f| f.owned_count()).sum();
        assert_eq!(owned, 51);
    }

    #[test]
    fn vertex_cut_apply_repartitions_consistently() {
        let g = generate::small_world(60, 2, 0.2, 6);
        let ea = vertex_cut_partition(&g, 4);
        let mut frags = aap_graph::partition::build_fragments_vertex_cut(&g, &ea);
        assert_eq!(frags.len(), 4);
        let mut d: DeltaBuilder<(), u32> = DeltaBuilder::new();
        d.add_edge(0, 30, 2);
        d.add_edge(5, 59, 1);
        let delta = d.build();
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            apply_to_fragments(&mut refs, &delta)
        };
        // Structure matches a from-scratch vertex-cut build of the new graph.
        let g2 = apply_to_graph(&g, &delta);
        let expect = build_fragments_vertex_cut_n(&g2, &vertex_cut_partition(&g2, 4), 4);
        for (f, e) in frags.iter().zip(&expect) {
            assert_eq!(f.globals(), e.globals());
            assert_eq!(f.owned_count(), e.owned_count());
        }
        // Seeds cover the inserted endpoints wherever they have copies.
        for (i, f) in frags.iter().enumerate() {
            for g in [0u32, 30, 5, 59] {
                if let Some(l) = f.local(g) {
                    assert!(applied.seeds[i].contains(&l), "frag {i} missing seed for {g}");
                }
            }
        }
    }
}
