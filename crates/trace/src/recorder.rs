//! A bounded in-memory sink: the default way to capture a trace.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use std::sync::Mutex;

/// A bounded ring-buffer sink.
///
/// Holds at most `capacity` events; once full, the oldest event is
/// overwritten and a `dropped` counter ticks, so memory stays capped no
/// matter how long the traced run streams (`tests/alloc_trace.rs` pins
/// this down under a counting allocator). All storage is reserved up
/// front — pushes after the first wrap never allocate.
///
/// Share it as `Arc<Recorder>`: hand a clone to
/// [`Tracer::new`](crate::Tracer::new) and keep one to read
/// [`events`](Recorder::events) back after the run.
pub struct Recorder {
    state: Mutex<Ring>,
}

struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Recorder {
    /// A recorder that keeps the most recent `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Recorder {
            state: Mutex::new(Ring { buf: Vec::with_capacity(cap), cap, head: 0, dropped: 0 }),
        }
    }

    /// Number of events currently held (at most the capacity).
    pub fn len(&self) -> usize {
        self.state.lock().expect("recorder poisoned").buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("recorder poisoned").dropped
    }

    /// Snapshot the held events in chronological (arrival) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.state.lock().expect("recorder poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Drain the held events (chronological order) and reset the
    /// dropped counter, leaving the recorder empty but reusable.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut ring = self.state.lock().expect("recorder poisoned");
        let head = ring.head;
        ring.head = 0;
        ring.dropped = 0;
        let mut buf = std::mem::take(&mut ring.buf);
        ring.buf = Vec::with_capacity(ring.cap);
        buf.rotate_left(head);
        buf
    }
}

impl TraceSink for Recorder {
    fn event(&self, ev: &TraceEvent) {
        let mut ring = self.state.lock().expect("recorder poisoned");
        if ring.buf.len() < ring.cap {
            ring.buf.push(*ev);
        } else {
            let head = ring.head;
            ring.buf[head] = *ev;
            ring.head = (head + 1) % ring.cap;
            ring.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{cat, pid, Args, Phase};

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: cat::ROUND,
            ph: Phase::Instant,
            ts_us: ts,
            pid: pid::ENGINE,
            tid: 0,
            args: Args::new(),
        }
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let r = Recorder::with_capacity(8);
        for t in 0..5 {
            r.event(&ev(t));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let r = Recorder::with_capacity(4);
        for t in 0..10 {
            r.event(&ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<u64> = r.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, [6, 7, 8, 9], "ring must keep the most recent events");
    }

    #[test]
    fn take_drains_and_resets() {
        let r = Recorder::with_capacity(3);
        for t in 0..5 {
            r.event(&ev(t));
        }
        let ts: Vec<u64> = r.take().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, [2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.event(&ev(9));
        assert_eq!(r.events()[0].ts_us, 9);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = Recorder::with_capacity(0);
        r.event(&ev(1));
        r.event(&ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].ts_us, 2);
    }
}
