//! Chrome trace-event JSON export — the format `chrome://tracing` and
//! Perfetto's legacy importer load directly.
//!
//! The writer is hand-rolled (no serde in this workspace) and emits the
//! object form `{"traceEvents":[...]}` with `process_name` /
//! `thread_name` metadata synthesized from the pids and tids actually
//! observed, so the viewer shows labelled lanes out of the box.

use crate::event::{pid, ArgVal, Phase, TraceEvent};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Render events as a complete Chrome trace-event JSON document.
///
/// Events are written in the given order (the format does not require
/// sorting); metadata records for every observed process and thread are
/// prepended.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Rough sizing: ~120 bytes per event keeps growth to a handful of
    // doublings even for large captures.
    let mut out = String::with_capacity(64 + events.len() * 120);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for meta in metadata_events(events) {
        push_sep(&mut out, &mut first);
        out.push_str(&meta);
    }
    for ev in events {
        push_sep(&mut out, &mut first);
        write_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

/// Write a complete trace file to `path` (see [`chrome_trace_json`]).
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(events))
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// `process_name` for each pid and `thread_name` for each (pid, tid)
/// seen in the capture, in sorted order.
fn metadata_events(events: &[TraceEvent]) -> Vec<String> {
    let mut pids: BTreeSet<u32> = BTreeSet::new();
    let mut tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    for ev in events {
        pids.insert(ev.pid);
        tracks.insert((ev.pid, ev.tid));
    }
    let mut out = Vec::with_capacity(pids.len() + tracks.len());
    for p in &pids {
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            pid::name(*p)
        ));
    }
    for (p, t) in &tracks {
        let lane = match *p {
            pid::ENGINE | pid::SIM => "worker",
            pid::DELTA => "fragment",
            _ => "track",
        };
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{t},\
             \"args\":{{\"name\":\"{lane} {t}\"}}}}"
        ));
    }
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, ev.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, ev.cat);
    let _ = write!(
        out,
        "\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        ev.ph.code(),
        ev.ts_us,
        ev.pid,
        ev.tid
    );
    // Counter events need an args object even when empty (the series
    // live there); spans/instants may omit it.
    if !ev.args.is_empty() || ev.ph == Phase::Counter {
        out.push_str(",\"args\":{");
        let mut first = true;
        for (k, v) in ev.args.iter() {
            push_sep(out, &mut first);
            out.push('"');
            escape_into(out, k);
            out.push_str("\":");
            write_val(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

fn write_val(out: &mut String, v: ArgVal) {
    match v {
        ArgVal::Int(i) => {
            let _ = write!(out, "{i}");
        }
        ArgVal::Uint(u) => {
            let _ = write!(out, "{u}");
        }
        ArgVal::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        // JSON has no NaN/Infinity; observability must stay parseable.
        ArgVal::Float(_) => out.push('0'),
        ArgVal::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{cat, Args};

    fn ev(ph: Phase, ts: u64, p: u32, t: u32, args: Args) -> TraceEvent {
        TraceEvent { name: "round", cat: cat::ROUND, ph, ts_us: ts, pid: p, tid: t, args }
    }

    #[test]
    fn empty_capture_is_valid_and_minimal() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn span_pair_round_trips_the_fields() {
        let args = Args::new().with("round", 3u64).with("mode", "aap");
        let json = chrome_trace_json(&[
            ev(Phase::Begin, 10, pid::ENGINE, 2, args),
            ev(Phase::End, 25, pid::ENGINE, 2, Args::new()),
        ]);
        assert!(json.contains("\"ph\":\"B\",\"ts\":10,\"pid\":1,\"tid\":2"));
        assert!(json.contains("\"args\":{\"round\":3,\"mode\":\"aap\"}"));
        assert!(json.contains("\"ph\":\"E\",\"ts\":25"));
        // The E event has no args, so no args object at all.
        assert!(json.contains("\"ph\":\"E\",\"ts\":25,\"pid\":1,\"tid\":2}"));
    }

    #[test]
    fn metadata_names_every_observed_track() {
        let json = chrome_trace_json(&[
            ev(Phase::Instant, 1, pid::ENGINE, 0, Args::new()),
            ev(Phase::Instant, 2, pid::ENGINE, 3, Args::new()),
            ev(Phase::Counter, 3, pid::SESSION, 0, Args::new().with("version", 1u64)),
        ]);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("{\"name\":\"engine\"}"));
        assert!(json.contains("{\"name\":\"session\"}"));
        assert!(json.contains("{\"name\":\"worker 3\"}"));
        assert!(json.contains("{\"name\":\"track 0\"}"));
    }

    #[test]
    fn counter_always_carries_args_object() {
        let json = chrome_trace_json(&[ev(Phase::Counter, 5, pid::SESSION, 0, Args::new())]);
        assert!(json.contains("\"ph\":\"C\",\"ts\":5,\"pid\":4,\"tid\":0,\"args\":{}"));
    }

    #[test]
    fn floats_and_escapes_stay_parseable() {
        let mut s = String::new();
        write_val(&mut s, ArgVal::Float(1.5));
        write_val(&mut s, ArgVal::Float(f64::NAN));
        write_val(&mut s, ArgVal::Float(f64::INFINITY));
        assert_eq!(s, "1.500");
        let mut e = String::new();
        escape_into(&mut e, "a\"b\\c\nd\u{1}");
        assert_eq!(e, "a\\\"b\\\\c\\nd\\u0001");
    }
}
