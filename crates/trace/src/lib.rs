//! # aap-trace
//!
//! Structured event tracing for the GRAPE+/AAP workspace, with export in
//! the Chrome trace-event JSON format that Perfetto and
//! `chrome://tracing` load directly.
//!
//! The design point is a serving system whose hot loop does **zero heap
//! allocation in steady state** (see `tests/alloc_routing.rs` /
//! `tests/alloc_trace.rs` at the workspace root): tracing must cost one
//! predictable branch when disabled and nothing on the allocator either
//! way. Hence:
//!
//! * [`TraceEvent`] is `Copy` — `&'static str` names/categories and a
//!   fixed-capacity [`Args`] array, built entirely on the stack;
//! * [`Tracer`] is an `Option<Arc<…>>` behind the scenes — a disabled
//!   tracer (the [`Default`]) is a `None` check and nothing else;
//! * [`Recorder`] pre-allocates a bounded ring and overwrites the oldest
//!   event once full, so a week-long capture holds memory constant.
//!
//! Producers are the four instrumented layers, each with a stable
//! process id ([`pid`]): the threaded engine (per-worker round and phase
//! spans), the discrete-event simulator (virtual-time spans via
//! `timestamp`-explicit `*_at` methods), the delta path (strategy
//! instants, per-fragment repack spans), and the session facade
//! (apply/publish/durability spans plus counter tracks).
//!
//! ## Capturing a trace
//!
//! ```
//! use aap_trace::{cat, chrome_trace_json, pid, Args, Recorder, Tracer};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(Recorder::with_capacity(1 << 16));
//! let tracer = Tracer::new(rec.clone());
//!
//! // What an instrumented layer does per round:
//! if tracer.enabled() {
//!     tracer.begin(pid::ENGINE, 0, cat::ROUND, "round", Args::new().with("round", 1u32));
//!     tracer.instant(pid::ENGINE, 0, cat::MSG, "batch", Args::new().with("updates", 17u32));
//!     tracer.end(pid::ENGINE, 0, cat::ROUND, "round", Args::new());
//!     tracer.counter(pid::SESSION, 0, "version", 2u64);
//! }
//!
//! let json = chrome_trace_json(&rec.events());
//! assert!(json.starts_with("{\"traceEvents\":["));
//! assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"C\""));
//! // `json` is what `chrome://tracing` / Perfetto open.
//! ```
//!
//! The simulator uses the `*_at` variants with **virtual** microseconds,
//! so simulated and wall-clock runs open in the same viewer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod recorder;
mod sink;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use event::{cat, pid, ArgVal, Args, Phase, TraceEvent, MAX_ARGS};
pub use recorder::Recorder;
pub use sink::{NoopSink, TraceSink};

use std::sync::Arc;
use std::time::Instant;

struct Inner {
    sink: Box<dyn TraceSink>,
    /// Wall-clock zero of this tracer; `ts_us` is measured from here.
    epoch: Instant,
}

/// A cheap, cloneable handle that instrumented code calls into.
///
/// The default tracer is **disabled**: every method is a single
/// `Option` check, no timestamp is read, no event is built, and nothing
/// is allocated — instrumentation can stay unconditionally wired into
/// hot loops. An enabled tracer ([`Tracer::new`]) stamps events with
/// microseconds since its construction and forwards them to the sink.
///
/// Clones share the sink and the epoch, so handles can be pushed down
/// through layers (engine workers, scoped repack threads) and their
/// timestamps stay on one timeline.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// An enabled tracer feeding `sink`, with its epoch set to now.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer { inner: Some(Arc::new(Inner { sink: Box::new(sink), epoch: Instant::now() })) }
    }

    /// The disabled tracer (same as [`Tracer::default`]).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether events will reach a sink.
    ///
    /// Call sites wrap arg construction in `if tracer.enabled() { … }`
    /// so a disabled tracer costs exactly this branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this tracer's epoch (0 when disabled).
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Forward a pre-built event as-is (used by exporters that already
    /// carry their own timestamps, e.g. the sim's `timeline_to_trace`).
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.sink.event(&ev);
        }
    }

    #[inline]
    fn record(
        &self,
        ph: Phase,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &'static str,
        args: Args,
    ) {
        if let Some(inner) = &self.inner {
            inner.sink.event(&TraceEvent {
                name,
                cat,
                ph,
                ts_us: inner.epoch.elapsed().as_micros() as u64,
                pid,
                tid,
                args,
            });
        }
    }

    /// Open a duration span on track `(pid, tid)` at the current time.
    #[inline]
    pub fn begin(&self, pid: u32, tid: u32, cat: &'static str, name: &'static str, args: Args) {
        self.record(Phase::Begin, pid, tid, cat, name, args);
    }

    /// Close the innermost open span on track `(pid, tid)`.
    #[inline]
    pub fn end(&self, pid: u32, tid: u32, cat: &'static str, name: &'static str, args: Args) {
        self.record(Phase::End, pid, tid, cat, name, args);
    }

    /// A point event at the current time.
    #[inline]
    pub fn instant(&self, pid: u32, tid: u32, cat: &'static str, name: &'static str, args: Args) {
        self.record(Phase::Instant, pid, tid, cat, name, args);
    }

    /// Sample a counter series: renders as a named counter track whose
    /// series key is `name`.
    #[inline]
    pub fn counter(&self, pid: u32, tid: u32, name: &'static str, value: impl Into<ArgVal>) {
        self.record(Phase::Counter, pid, tid, cat::COUNTER, name, Args::new().with(name, value));
    }

    /// [`begin`](Tracer::begin) with an explicit timestamp (virtual time).
    #[inline]
    pub fn begin_at(
        &self,
        ts_us: u64,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &'static str,
        args: Args,
    ) {
        self.emit(TraceEvent { name, cat, ph: Phase::Begin, ts_us, pid, tid, args });
    }

    /// [`end`](Tracer::end) with an explicit timestamp (virtual time).
    #[inline]
    pub fn end_at(
        &self,
        ts_us: u64,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &'static str,
        args: Args,
    ) {
        self.emit(TraceEvent { name, cat, ph: Phase::End, ts_us, pid, tid, args });
    }

    /// [`instant`](Tracer::instant) with an explicit timestamp.
    #[inline]
    pub fn instant_at(
        &self,
        ts_us: u64,
        pid: u32,
        tid: u32,
        cat: &'static str,
        name: &'static str,
        args: Args,
    ) {
        self.emit(TraceEvent { name, cat, ph: Phase::Instant, ts_us, pid, tid, args });
    }

    /// [`counter`](Tracer::counter) with an explicit timestamp.
    #[inline]
    pub fn counter_at(
        &self,
        ts_us: u64,
        pid: u32,
        tid: u32,
        name: &'static str,
        value: impl Into<ArgVal>,
    ) {
        self.emit(TraceEvent {
            name,
            cat: cat::COUNTER,
            ph: Phase::Counter,
            ts_us,
            pid,
            tid,
            args: Args::new().with(name, value),
        });
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::default();
        assert!(!t.enabled());
        assert_eq!(t.now_us(), 0);
        // None of these may panic or do anything observable.
        t.begin(pid::ENGINE, 0, cat::ROUND, "r", Args::new());
        t.end(pid::ENGINE, 0, cat::ROUND, "r", Args::new());
        t.instant(pid::ENGINE, 0, cat::MSG, "b", Args::new().with("n", 1u64));
        t.counter(pid::SESSION, 0, "v", 1u64);
        t.begin_at(5, pid::SIM, 0, cat::ROUND, "r", Args::new());
        let t2 = t.clone();
        assert!(!t2.enabled());
    }

    #[test]
    fn enabled_tracer_stamps_and_forwards() {
        let rec = Arc::new(Recorder::with_capacity(16));
        let t = Tracer::new(rec.clone());
        assert!(t.enabled());
        t.begin(pid::ENGINE, 1, cat::ROUND, "round", Args::new().with("round", 0u32));
        t.end(pid::ENGINE, 1, cat::ROUND, "round", Args::new());
        t.counter(pid::SESSION, 0, "version", 7u64);
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].ph, Phase::Begin);
        assert_eq!(evs[1].ph, Phase::End);
        assert!(evs[1].ts_us >= evs[0].ts_us, "timestamps must be monotone");
        assert_eq!(evs[2].args.get("version"), Some(ArgVal::Uint(7)));
        // Clones share the sink.
        t.clone().instant(pid::ENGINE, 1, cat::MSG, "batch", Args::new());
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn explicit_timestamps_pass_through_untouched() {
        let rec = Arc::new(Recorder::with_capacity(16));
        let t = Tracer::new(rec.clone());
        t.begin_at(1_000, pid::SIM, 2, cat::ROUND, "round", Args::new());
        t.end_at(2_500, pid::SIM, 2, cat::ROUND, "round", Args::new());
        t.counter_at(2_500, pid::SIM, 0, "updates", 42u64);
        let evs = rec.events();
        assert_eq!(evs[0].ts_us, 1_000);
        assert_eq!(evs[1].ts_us, 2_500);
        assert_eq!(evs[2].args.get("updates"), Some(ArgVal::Uint(42)));
    }
}
