//! The sink trait: where events go once the tracer is enabled.

use crate::event::TraceEvent;
use std::sync::Arc;

/// A destination for trace events.
///
/// Sinks receive events from many threads concurrently (`&self`,
/// `Send + Sync`) and must never panic into the workload. The bundled
/// implementations are [`Recorder`](crate::Recorder) (bounded in-memory
/// ring) and [`NoopSink`]; custom sinks are one method:
///
/// ```
/// use aap_trace::{pid, Args, TraceEvent, TraceSink, Tracer};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// /// A sink that just counts events per layer.
/// #[derive(Default)]
/// struct CountSink {
///     engine: AtomicU64,
///     other: AtomicU64,
/// }
///
/// impl TraceSink for CountSink {
///     fn event(&self, ev: &TraceEvent) {
///         let c = if ev.pid == pid::ENGINE { &self.engine } else { &self.other };
///         c.fetch_add(1, Ordering::Relaxed);
///     }
/// }
///
/// let sink = std::sync::Arc::new(CountSink::default());
/// let tracer = Tracer::new(sink.clone());
/// tracer.instant(pid::ENGINE, 0, "round", "tick", Args::new());
/// tracer.counter(pid::SESSION, 0, "version", 3u64);
/// assert_eq!(sink.engine.load(Ordering::Relaxed), 1);
/// assert_eq!(sink.other.load(Ordering::Relaxed), 1);
///
/// // A default tracer is disabled: events vanish before reaching a sink.
/// let off = Tracer::default();
/// assert!(!off.enabled());
/// off.instant(pid::ENGINE, 0, "round", "tick", Args::new());
/// ```
pub trait TraceSink: Send + Sync {
    /// Receive one event. Called from the thread that produced it.
    fn event(&self, ev: &TraceEvent);
}

/// A sink that discards everything.
///
/// Useful as an explicit "tracing wired but off" value; note that a
/// [`Tracer::default()`](crate::Tracer) is cheaper still — it skips the
/// virtual call entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&self, _ev: &TraceEvent) {}
}

impl<T: TraceSink + ?Sized> TraceSink for Arc<T> {
    fn event(&self, ev: &TraceEvent) {
        (**self).event(ev);
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &'static T {
    fn event(&self, ev: &TraceEvent) {
        (**self).event(ev);
    }
}
