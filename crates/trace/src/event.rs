//! The event model: phases, argument values, and the [`TraceEvent`] record.
//!
//! Everything here is `Copy` and built from `&'static str` names so that
//! constructing an event never touches the heap — the property the
//! zero-allocation steady-state tests (`tests/alloc_trace.rs`) hold the
//! whole subsystem to.

/// Well-known trace process ids, one per instrumented layer.
///
/// Chrome trace viewers group tracks by `pid`; giving each subsystem a
/// stable process id means an exported file shows four labelled lanes
/// (engine, sim, delta, session) regardless of which OS threads did the
/// work.
pub mod pid {
    /// The threaded AAP engine (`aap-core`): one track per virtual worker.
    pub const ENGINE: u32 = 1;
    /// The discrete-event simulator (`aap-sim`): virtual-time tracks.
    pub const SIM: u32 = 2;
    /// The dynamic-graph delta path (`aap-delta` + the fragment repack
    /// in `aap-graph`): one track per touched fragment.
    pub const DELTA: u32 = 3;
    /// The serving facade (`aap-session`): apply/publish/durability spans
    /// and the counter tracks.
    pub const SESSION: u32 = 4;

    /// Human-readable name for a layer pid (used for `process_name`
    /// metadata in the exported file; unknown pids get `"proc"`).
    pub fn name(p: u32) -> &'static str {
        match p {
            ENGINE => "engine",
            SIM => "sim",
            DELTA => "delta",
            SESSION => "session",
            _ => "proc",
        }
    }
}

/// Event categories, matching the `cat` field of the Chrome trace format.
///
/// Categories are what the viewer's filter box matches on; the README's
/// Observability section documents what each one means.
pub mod cat {
    /// Per-worker round spans (one per superstep / async round).
    pub const ROUND: &str = "round";
    /// Phases inside a round: drain, eval, route, deliver.
    pub const PHASE: &str = "phase";
    /// Message-batch instants (update counts riding as args).
    pub const MSG: &str = "msg";
    /// Adaptive-policy decisions (run/delay/hold/inactive) and mode.
    pub const POLICY: &str = "policy";
    /// Warm-delta strategy selection and invalidation planning.
    pub const STRATEGY: &str = "strategy";
    /// Graph-delta application (plan, repack, routing rebuild).
    pub const APPLY: &str = "apply";
    /// Session serving: query/publish/admission.
    pub const SERVE: &str = "serve";
    /// Durability: checkpoint, restore, log replay.
    pub const DURABLE: &str = "durable";
    /// Elastic rebalancing: plan, per-fragment migration repack, remap.
    pub const BALANCE: &str = "balance";
    /// Counter tracks (session version, cache hits, ...).
    pub const COUNTER: &str = "counter";
}

/// Chrome trace-event phase of a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Duration-span begin (`"B"`). Must be balanced by an [`Phase::End`]
    /// on the same `(pid, tid)` track; nesting is stack-disciplined.
    Begin,
    /// Duration-span end (`"E"`).
    End,
    /// A point event (`"i"`).
    Instant,
    /// A counter sample (`"C"`); args carry the series values.
    Counter,
}

impl Phase {
    /// The single-character phase code used by the JSON format.
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
            Phase::Counter => 'C',
        }
    }
}

/// An argument value attached to an event.
///
/// Only types that are `Copy` and heap-free are representable; strings
/// must be `&'static str` (categories, strategy names, modes — all
/// compile-time constants in this codebase).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArgVal {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters, counts, versions).
    Uint(u64),
    /// Floating point (virtual time, ratios).
    Float(f64),
    /// Static string (mode names, strategy names).
    Str(&'static str),
}

impl From<i64> for ArgVal {
    fn from(v: i64) -> Self {
        ArgVal::Int(v)
    }
}
impl From<i32> for ArgVal {
    fn from(v: i32) -> Self {
        ArgVal::Int(v as i64)
    }
}
impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::Uint(v)
    }
}
impl From<u32> for ArgVal {
    fn from(v: u32) -> Self {
        ArgVal::Uint(v as u64)
    }
}
impl From<u16> for ArgVal {
    fn from(v: u16) -> Self {
        ArgVal::Uint(v as u64)
    }
}
impl From<usize> for ArgVal {
    fn from(v: usize) -> Self {
        ArgVal::Uint(v as u64)
    }
}
impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::Float(v)
    }
}
impl From<bool> for ArgVal {
    fn from(v: bool) -> Self {
        ArgVal::Uint(u64::from(v))
    }
}
impl From<&'static str> for ArgVal {
    fn from(v: &'static str) -> Self {
        ArgVal::Str(v)
    }
}

/// Maximum number of key/value args per event.
///
/// Fixed so [`Args`] stays `Copy` and stack-only; events needing more
/// context should be split, not grown.
pub const MAX_ARGS: usize = 4;

/// A fixed-capacity, heap-free bag of key/value arguments.
///
/// Built with the chainable [`Args::with`]; pushes past [`MAX_ARGS`] are
/// silently dropped (observability must never panic the workload).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Args {
    kv: [Option<(&'static str, ArgVal)>; MAX_ARGS],
}

impl Args {
    /// An empty argument bag.
    pub const fn new() -> Self {
        Args { kv: [None; MAX_ARGS] }
    }

    /// Add one key/value pair, returning the extended bag.
    pub fn with(mut self, key: &'static str, val: impl Into<ArgVal>) -> Self {
        for slot in &mut self.kv {
            if slot.is_none() {
                *slot = Some((key, val.into()));
                break;
            }
        }
        self
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.kv.iter().filter(|s| s.is_some()).count()
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.kv[0].is_none()
    }

    /// Iterate the stored pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, ArgVal)> + '_ {
        self.kv.iter().filter_map(|s| *s)
    }

    /// Look up a value by key (first match).
    pub fn get(&self, key: &str) -> Option<ArgVal> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One structured trace event.
///
/// `Copy` by construction: names and categories are `&'static str`, args
/// are a fixed-size array. Timestamps are microseconds — wall-clock
/// (since the tracer's epoch) for real runs, scaled virtual time for the
/// simulator — matching the `ts` unit of the Chrome trace format.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Event name (span or counter name).
    pub name: &'static str,
    /// Category, one of the [`cat`] constants (or any static string).
    pub cat: &'static str,
    /// Phase: begin/end/instant/counter.
    pub ph: Phase,
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Process id — the instrumented layer, see [`pid`].
    pub pid: u32,
    /// Thread id — virtual worker, fragment, or 0 for the serving thread.
    pub tid: u32,
    /// Attached key/value context.
    pub args: Args,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_push_and_overflow() {
        let a = Args::new()
            .with("a", 1u64)
            .with("b", -2i64)
            .with("c", 0.5f64)
            .with("d", "x")
            .with("e", 9u64); // dropped: past MAX_ARGS
        assert_eq!(a.len(), MAX_ARGS);
        assert_eq!(a.get("a"), Some(ArgVal::Uint(1)));
        assert_eq!(a.get("b"), Some(ArgVal::Int(-2)));
        assert_eq!(a.get("d"), Some(ArgVal::Str("x")));
        assert_eq!(a.get("e"), None);
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b", "c", "d"]);
    }

    #[test]
    fn empty_args() {
        let a = Args::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn phase_codes() {
        assert_eq!(Phase::Begin.code(), 'B');
        assert_eq!(Phase::End.code(), 'E');
        assert_eq!(Phase::Instant.code(), 'i');
        assert_eq!(Phase::Counter.code(), 'C');
    }

    #[test]
    fn pid_names() {
        assert_eq!(pid::name(pid::ENGINE), "engine");
        assert_eq!(pid::name(pid::SIM), "sim");
        assert_eq!(pid::name(pid::DELTA), "delta");
        assert_eq!(pid::name(pid::SESSION), "session");
        assert_eq!(pid::name(99), "proc");
    }
}
