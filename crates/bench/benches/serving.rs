//! The `serving` group: the concurrent-serving read path and the
//! parallel apply path (ISSUE 6).
//!
//! Read side: `SessionReader::query` serves the retained fixpoint by
//! bumping an `Arc` on the epoch-published snapshot — compare against
//! the `&mut Session::query` path, which clones the full output vector
//! per call. The gap between those two rows is what lets N readers
//! outrun the single-threaded mutable path (the `repro serving`
//! experiment measures the multi-threaded aggregate).
//!
//! Apply side: the scattered 0.1% insert batch at 8 fragments, serial
//! (`apply_to_fragments`) vs the scoped-thread per-fragment repack
//! (`apply_to_fragments_par`, byte-identical by the mutate proptests).
//! On a multi-core box the parallel row wins; on one core it shows the
//! fan-out overhead — both are honest numbers worth tracking.

use aap_algos::Sssp;
use aap_core::Mode;
use aap_delta::apply::{apply_to_fragments, apply_to_fragments_par};
use aap_delta::generate::insert_batch;
use aap_graph::generate;
use aap_graph::mutate::EditBuffers;
use aap_graph::partition::{build_fragments_n, hash_partition};
use aap_session::{edge_cut, Session};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const WORKERS: usize = 8;

fn bench_serving(c: &mut Criterion) {
    let g = generate::rmat(14, 8, true, 21);
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    // --- read path ---------------------------------------------------
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(WORKERS))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .open()
        .expect("session");
    session.query::<Sssp>("sssp", &0).expect("retain the fixpoint");
    let reader = session.reader();

    group.bench_function("session_query_mut_retained", |b| {
        b.iter(|| black_box(session.query::<Sssp>("sssp", &0).unwrap().len()))
    });
    group.bench_function("reader_query_retained", |b| {
        b.iter(|| black_box(reader.query::<Sssp>("sssp", &0).unwrap().unwrap().len()))
    });
    group.bench_function("reader_clone_handle", |b| b.iter(|| black_box(reader.clone())));

    // --- apply path --------------------------------------------------
    let delta = insert_batch(&g, ((g.num_edges() as f64) * 0.001).ceil() as usize, 16, 0x5A5A);
    group.bench_function("apply_scattered_0.1pct_serial", |b| {
        b.iter_batched(
            || build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS),
            |mut frags| {
                let mut refs: Vec<_> = frags.iter_mut().collect();
                black_box(apply_to_fragments(&mut refs, &delta))
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("apply_scattered_0.1pct_par8", |b| {
        let mut bufs = EditBuffers::default();
        b.iter_batched(
            || build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS),
            |mut frags| {
                let mut refs: Vec<_> = frags.iter_mut().collect();
                black_box(apply_to_fragments_par(&mut refs, &delta, &mut bufs, WORKERS))
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
