//! The `rebalance` group: elastic-partition primitives (ISSUE 10).
//!
//! Planner: `plan_migration` on a skewed 8-fragment edge-cut — a pure
//! read-only scan whose cost bounds how often auto-rebalancing can
//! afford to deliberate. Executor: `migrate_edge_cut` applying a fixed
//! plan in place, vs the full re-partition (reassemble → re-hash →
//! rebuild) it replaces — the gap between those rows is the subsystem's
//! reason to exist. Vertex-cut: a one-bucket delta apply (repacks only
//! the fragments it touches) vs the retired full re-partition fallback,
//! showing touched-fragment-proportional cost.

use aap_balance::{execute_migration, plan_migration, BalancePolicy};
use aap_delta::apply::apply_to_fragments_par;
use aap_delta::generate::Xorshift;
use aap_delta::DeltaBuilder;
use aap_graph::generate;
use aap_graph::mutate::{reassemble, EditBuffers};
use aap_graph::partition::{
    build_fragments_n, build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
};
use aap_graph::Fragment;
use aap_trace::Tracer;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const WORKERS: usize = 8;

/// An edge-cut fragment set with fragment 0 overloaded: the base rmat
/// graph plus a skewed insert wave, pre-applied so every benchmark row
/// starts from the same drifted partition.
fn skewed_fragments() -> Vec<Fragment<(), u32>> {
    let g = generate::rmat(13, 8, true, 21);
    let assignment = hash_partition(&g, WORKERS);
    let hot: Vec<u32> =
        (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();
    let mut rng = Xorshift::new(0xE1A);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    for _ in 0..(g.num_edges() / 16) {
        let u = hot[rng.below(hot.len() as u64) as usize];
        let v = rng.below(g.num_vertices() as u64) as u32;
        if u != v {
            b.add_edge(u, v, 1);
        }
    }
    let mut frags = build_fragments_n(&g, &assignment, WORKERS);
    let mut refs: Vec<_> = frags.iter_mut().collect();
    let mut bufs = EditBuffers::default();
    apply_to_fragments_par(&mut refs, &b.build(), &mut bufs, WORKERS);
    frags
}

fn bench_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebalance");
    group.sample_size(10);
    let tracer = Tracer::default();
    let policy = BalancePolicy::new().max_imbalance(1.15).migration_budget(1 << 13);

    // --- planner (read-only) -----------------------------------------
    let frags = skewed_fragments();
    let plan = plan_migration(&frags, &policy, &tracer);
    assert!(!plan.is_empty(), "the skewed fixture must force a plan");
    group.bench_function("plan_skewed_8frags", |b| {
        b.iter(|| black_box(plan_migration(&frags, &policy, &tracer)))
    });

    // --- executor vs the full re-partition it replaces ---------------
    group.bench_function("migrate_in_place", |b| {
        b.iter_batched(
            skewed_fragments,
            |mut frags| {
                let mut refs: Vec<_> = frags.iter_mut().collect();
                black_box(execute_migration(&mut refs, &plan, &tracer))
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("full_repartition", |b| {
        b.iter_batched(
            skewed_fragments,
            |frags| {
                let view: Vec<&Fragment<(), u32>> = frags.iter().collect();
                let g = reassemble(&view);
                black_box(build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS))
            },
            BatchSize::PerIteration,
        )
    });

    // --- vertex-cut: touched-fragment-proportional apply -------------
    let gv = generate::rmat(12, 8, true, 21);
    let m = WORKERS;
    let vfrags = build_fragments_vertex_cut_n(&gv, &vertex_cut_partition(&gv, m), m);
    // A batch confined to one pair-hash bucket (fragment 0 stores it)
    // between endpoints fragment 0 already copies.
    let mut rng = Xorshift::new(7);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    let mut placed = 0;
    while placed < (gv.num_edges() / 1000).max(8) {
        let u = rng.below(gv.num_vertices() as u64) as u32;
        let v = rng.below(gv.num_vertices() as u64) as u32;
        if u != v
            && aap_graph::partition::vertex_cut_edge_frag(u, v, WORKERS) == 0
            && vfrags[0].local(u).is_some()
            && vfrags[0].local(v).is_some()
        {
            b.add_edge(u, v, 1);
            placed += 1;
        }
    }
    let local_delta = b.build();
    group.bench_function("vertex_cut_apply_one_bucket", |b| {
        let mut bufs = EditBuffers::default();
        b.iter_batched(
            || vfrags.clone(),
            |mut frags| {
                let mut refs: Vec<_> = frags.iter_mut().collect();
                black_box(apply_to_fragments_par(&mut refs, &local_delta, &mut bufs, WORKERS))
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("vertex_cut_full_repartition", |b| {
        b.iter_batched(
            || vfrags.clone(),
            |frags| {
                let view: Vec<&Fragment<(), u32>> = frags.iter().collect();
                let g = reassemble(&view);
                black_box(build_fragments_vertex_cut_n(&g, &vertex_cut_partition(&g, m), m))
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rebalance);
criterion_main!(benches);
