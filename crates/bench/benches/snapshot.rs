//! The `snapshot` group: durable save/load timings — what a warm
//! restart costs versus the cold re-partition + recompute it replaces.
//!
//! * `save_bytes` / `load_bytes` — serialize/parse a full snapshot
//!   (fragments + retained SSSP state) in memory;
//! * `save_file` / `load_file` — the same through the filesystem;
//! * `log_write` — append one 0.1% delta record (flushed) to the log;
//! * `log_replay_parse` — parse a 16-record log back;
//! * `cold_baseline` — partition + cold run, the work a warm restart
//!   avoids.

use aap_algos::{Sssp, SsspState};
use aap_core::{Engine, EngineOpts, Mode, RunState};
use aap_delta::generate::insert_batch;
use aap_graph::generate;
use aap_graph::partition::{build_fragments_n, hash_partition};
use aap_snapshot::{snapshot_from_bytes, snapshot_to_bytes, DeltaLog};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const WORKERS: usize = 8;

fn bench_snapshot(c: &mut Criterion) {
    let g = generate::rmat(14, 8, true, 21);
    let frags = build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS);
    let engine = Engine::new(
        frags,
        EngineOpts { threads: WORKERS, mode: Mode::aap(), max_rounds: Some(1_000_000) },
    );
    let (_, state): (_, RunState<SsspState>) = engine.run_retained(&Sssp, &0);
    let portable = state.export(engine.fragments());
    let bytes = snapshot_to_bytes(engine.fragments(), Some(&portable));
    let delta = insert_batch(&g, (g.num_edges() / 1000).max(8), 16, 0xA5A5);

    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("aap_bench_{}.snap", std::process::id()));
    let log_path = dir.join(format!("aap_bench_{}.dlog", std::process::id()));

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);

    group.bench_function("save_bytes", |b| {
        b.iter(|| black_box(snapshot_to_bytes(engine.fragments(), Some(&portable)).len()))
    });
    group.bench_function("load_bytes", |b| {
        b.iter(|| {
            let loaded = snapshot_from_bytes::<(), u32, SsspState>(&bytes).unwrap();
            black_box(loaded.fragments.len())
        })
    });
    group.bench_function("save_file", |b| {
        b.iter(|| {
            aap_snapshot::save_engine(&snap_path, &engine, Some(&state)).unwrap();
        })
    });
    group.bench_function("load_file", |b| {
        b.iter(|| {
            let loaded = aap_snapshot::load_snapshot::<(), u32, SsspState, _>(&snap_path).unwrap();
            black_box(loaded.fragments.len())
        })
    });
    group.bench_function("log_write", |b| {
        let mut log = DeltaLog::create(&log_path).unwrap();
        b.iter(|| log.write_delta(&delta).unwrap())
    });
    {
        let mut log = DeltaLog::create(&log_path).unwrap();
        for _ in 0..16 {
            log.write_delta(&delta).unwrap();
        }
    }
    group.bench_function("log_replay_parse", |b| {
        b.iter(|| black_box(DeltaLog::replay::<(), u32, _>(&log_path).unwrap().len()))
    });
    group.bench_function("cold_baseline", |b| {
        b.iter(|| {
            let frags = build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS);
            let engine = Engine::new(
                frags,
                EngineOpts { threads: WORKERS, mode: Mode::aap(), max_rounds: Some(1_000_000) },
            );
            black_box(engine.run(&Sssp, &0).out.len())
        })
    });
    group.finish();

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&log_path).ok();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
