//! The `snapshot` group: durable save/load timings — what a warm
//! restart costs versus the cold re-partition + recompute it replaces.
//!
//! * `save_bytes` / `load_bytes` — serialize/parse a full snapshot
//!   (fragments + retained SSSP state) in memory;
//! * `save_file` / `load_file` — the same through the filesystem;
//! * `log_write` — append one 0.1% delta record (flushed) to the log;
//! * `log_replay_parse` — parse a 16-record log back;
//! * `cold_baseline` — partition + cold run, the work a warm restart
//!   avoids;
//! * `checkpoint_full` / `checkpoint_diff` — a session checkpoint after
//!   a *localized* 0.1% batch (all endpoints in one fragment), full
//!   rewrite vs the differential epoch. The byte ratio is asserted
//!   ≥5x before the timed rows run.

use aap_algos::{Sssp, SsspState};
use aap_core::{Engine, EngineOpts, Mode, RunState};
use aap_delta::generate::{insert_batch, insert_batch_within};
use aap_graph::generate;
use aap_graph::partition::{build_fragments_n, hash_partition};
use aap_session::{edge_cut, DurabilityPolicy, Session};
use aap_snapshot::{snapshot_from_bytes, snapshot_to_bytes, DeltaLog};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORKERS: usize = 8;

fn bench_snapshot(c: &mut Criterion) {
    let g = generate::rmat(14, 8, true, 21);
    let frags = build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS);
    let engine = Engine::new(
        frags,
        EngineOpts { threads: WORKERS, mode: Mode::aap(), max_rounds: Some(1_000_000) },
    );
    let (_, state): (_, RunState<SsspState>) = engine.run_retained(&Sssp, &0);
    let portable = state.export(engine.fragments());
    let bytes = snapshot_to_bytes(engine.fragments(), Some(&portable));
    let delta = insert_batch(&g, (g.num_edges() / 1000).max(8), 16, 0xA5A5);

    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("aap_bench_{}.snap", std::process::id()));
    let log_path = dir.join(format!("aap_bench_{}.dlog", std::process::id()));

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);

    group.bench_function("save_bytes", |b| {
        b.iter(|| black_box(snapshot_to_bytes(engine.fragments(), Some(&portable)).len()))
    });
    group.bench_function("load_bytes", |b| {
        b.iter(|| {
            let loaded = snapshot_from_bytes::<(), u32, SsspState>(&bytes).unwrap();
            black_box(loaded.fragments.len())
        })
    });
    group.bench_function("save_file", |b| {
        b.iter(|| {
            aap_snapshot::save_engine(&snap_path, &engine, Some(&state)).unwrap();
        })
    });
    group.bench_function("load_file", |b| {
        b.iter(|| {
            let loaded = aap_snapshot::load_snapshot::<(), u32, SsspState, _>(&snap_path).unwrap();
            black_box(loaded.fragments.len())
        })
    });
    group.bench_function("log_write", |b| {
        let mut log = DeltaLog::create(&log_path).unwrap();
        b.iter(|| log.write_delta(&delta).unwrap())
    });
    {
        let mut log = DeltaLog::create(&log_path).unwrap();
        for _ in 0..16 {
            log.write_delta(&delta).unwrap();
        }
    }
    group.bench_function("log_replay_parse", |b| {
        b.iter(|| black_box(DeltaLog::replay::<(), u32, _>(&log_path).unwrap().len()))
    });
    group.bench_function("cold_baseline", |b| {
        b.iter(|| {
            let frags = build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS);
            let engine = Engine::new(
                frags,
                EngineOpts { threads: WORKERS, mode: Mode::aap(), max_rounds: Some(1_000_000) },
            );
            black_box(engine.run(&Sssp, &0).out.len())
        })
    });

    // ------------------------------------------------------------------
    // Checkpoint rows: the same 0.1% churn, but *localized* — every
    // endpoint owned by fragment 0 under the edge-cut hash partition —
    // so a differential epoch only has to rewrite the one touched
    // fragment (plus whichever state shards actually moved).
    // ------------------------------------------------------------------
    let assignment = hash_partition(&g, WORKERS);
    let pool: Vec<u32> =
        (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();
    let batch = (g.num_edges() / 1000).max(8);
    let scratch = dir.join(format!("aap_bench_ckpt_{}", std::process::id()));
    let open = |name: &str, make: fn(DurabilityPolicy) -> DurabilityPolicy| {
        let d = scratch.join(name);
        std::fs::remove_dir_all(&d).ok();
        let mut s = Session::builder(g.clone())
            .partition(edge_cut(WORKERS))
            .program("sssp", Sssp)
            .durability(make(DurabilityPolicy::new(&d)))
            .expect("durability")
            .open()
            .expect("durable session");
        s.query::<Sssp>("sssp", &0).expect("retain the fixpoint");
        s.checkpoint().expect("baseline epoch");
        s
    };
    let mut full = open("full", |p| p.differential(false));
    // Periodic compaction keeps the chain (and the scratch dir) bounded
    // across however many iterations criterion decides to run.
    let mut diff = open("diff", |p| p.compact_after(32));

    // The headline claim, asserted on bytes (not time) so it holds on
    // any machine: one localized batch, full vs differential epoch.
    let probe = insert_batch_within(&pool, batch, 16, 0xA5A5);
    full.apply(&probe).expect("apply");
    diff.apply(&probe).expect("apply");
    let rf = full.checkpoint().expect("full checkpoint");
    let rd = diff.checkpoint().expect("differential checkpoint");
    assert!(!rf.differential && rd.differential, "policies must diverge");
    assert!(rd.fragments_skipped > 0, "a localized batch must skip untouched fragments");
    let ratio = rf.bytes as f64 / rd.bytes.max(1) as f64;
    assert!(
        ratio >= 5.0,
        "differential checkpoint must be >=5x cheaper than full after a localized \
         0.1% batch: full {} bytes vs differential {} bytes ({ratio:.1}x)",
        rf.bytes,
        rd.bytes
    );

    let mut bench_checkpoint = |name: &str, session: &mut Session<(), u32, _>, seed0: u64| {
        let mut seed = seed0;
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    // The apply is setup (untimed): only the checkpoint
                    // itself is measured, on a fresh localized batch.
                    seed += 1;
                    let d = insert_batch_within(&pool, batch, 16, seed);
                    session.apply(&d).expect("apply");
                    let t = Instant::now();
                    black_box(session.checkpoint().expect("checkpoint").bytes);
                    total += t.elapsed();
                }
                total
            })
        });
    };
    bench_checkpoint("checkpoint_full", &mut full, 0x1000);
    bench_checkpoint("checkpoint_diff", &mut diff, 0x2000);
    drop(full);
    drop(diff);
    group.finish();

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&log_path).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
