//! Criterion smoke-benchmarks of the figure-regeneration paths: reduced
//! versions of the per-figure simulations, so `cargo bench` exercises every
//! harness code path and tracks its cost over time. The full-scale tables
//! come from the `repro` binary.

use aap_algos::{ConnectedComponents, PageRank, Sssp};
use aap_bench::experiments::fig1_fragments;
use aap_bench::runner::{run_sim, Cluster};
use aap_core::Mode;
use aap_graph::generate;
use aap_sim::{CostModel, SimEngine, SimOpts};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_timing_diagram");
    group.sample_size(20);
    for (name, mode) in [("bsp", Mode::Bsp), ("aap", Mode::aap())] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sim = SimEngine::new(
                    fig1_fragments(),
                    SimOpts {
                        mode: mode.clone(),
                        latency: 1.0,
                        cost: CostModel::FixedPerWorker(vec![3.0, 3.0, 6.0]),
                        max_rounds: Some(10_000),
                        ..SimOpts::default()
                    },
                )
                .expect("valid opts");
                black_box(sim.run(&ConnectedComponents, &()).stats.makespan)
            })
        });
    }
    group.finish();
}

fn bench_fig6_point(c: &mut Criterion) {
    let g = generate::rmat(10, 8, true, 21);
    let mut group = c.benchmark_group("fig6_panel_point");
    group.sample_size(10);
    for (name, mode) in [("sssp_aap_32w", Mode::aap()), ("sssp_bsp_32w", Mode::Bsp)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cluster = Cluster::balanced(32);
                cluster.skew = 2.0;
                black_box(run_sim(&cluster, &g, &Sssp, &0, name, mode.clone()).0.time)
            })
        });
    }
    group.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let g = generate::rmat(10, 8, true, 22);
    let pr = PageRank { damping: 0.85, epsilon: 1e-3 };
    let mut group = c.benchmark_group("fig7_straggler_point");
    group.sample_size(10);
    for (name, mode) in [("pagerank_ap", Mode::Ap), ("pagerank_aap", Mode::aap())] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cluster = Cluster::with_straggler(16, 5, 4.0);
                black_box(run_sim(&cluster, &g, &pr, &(), name, mode.clone()).0.time)
            })
        });
    }
    group.finish();
}

fn bench_cc_straggler(c: &mut Criterion) {
    let g = generate::small_world(2048, 3, 0.1, 23);
    let mut group = c.benchmark_group("fig6k_skew_point");
    group.sample_size(10);
    for skew in [1.0f64, 5.0] {
        group.bench_function(format!("cc_aap_skew{skew}"), |b| {
            b.iter(|| {
                let mut cluster = Cluster::balanced(16);
                cluster.skew = skew;
                black_box(
                    run_sim(&cluster, &g, &ConnectedComponents, &(), "cc", Mode::aap()).0.time,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_fig6_point, bench_fig7_point, bench_cc_straggler);
criterion_main!(benches);
