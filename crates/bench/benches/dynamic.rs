//! The `dynamic` group: warm-start incremental evaluation vs cold full
//! recompute across delta sizes (0.01% / 0.1% / 1% of the edge count),
//! plus the **deletion-only** rows (`*_delete_*`) exercising the
//! `warm-increase` affected-region path — the acceptance check is the
//! warm/cold ratio at 0.1% deletions.
//!
//! Both sides run on the *same mutated fragments*: the delta is applied
//! once in setup (for deletions, the invalidation plan is computed
//! there too, exactly as the `aap-delta` driver would), then `full`
//! measures a cold `Engine::run` and `incremental` measures
//! `Engine::run_incremental` from the retained pre-delta state (cloned
//! per iteration, outside the timing). The ratio is the paper-motivated
//! payoff of IncEval reacting to graph changes instead of recomputing
//! from scratch.

use aap_algos::{ConnectedComponents, Sssp};
use aap_core::{Engine, EngineOpts, Mode};
use aap_delta::generate::{insert_batch, insert_batch_within, remove_batch};
use aap_delta::{apply_to_fragments, plan_incremental, remap_invalid, Applied, GraphDelta};
use aap_graph::partition::{build_fragments_n, hash_partition};
use aap_graph::{generate, Fragment, Graph, LocalId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const WORKERS: usize = 8;

fn insert_delta(g: &Graph<(), u32>, frac: f64, seed: u64) -> GraphDelta {
    insert_batch(g, ((g.num_edges() as f64) * frac).ceil() as usize, 16, seed)
}

struct Prepared {
    engine: Engine<(), u32>,
    applied: Applied,
    sssp_state: aap_core::RunState<aap_algos::sssp::SsspState>,
    cc_state: aap_core::RunState<aap_algos::cc::CcState>,
    /// Post-remap invalidated sets per program (empty for insert deltas).
    sssp_invalid: Vec<Vec<LocalId>>,
    cc_invalid: Vec<Vec<LocalId>>,
}

/// Build the engine, retain cold states, plan the invalidation (for
/// non-monotone deltas), then apply the delta in place — the same
/// sequence the `aap-delta` driver runs per batch.
fn prepare(g: &Graph<(), u32>, delta: &GraphDelta) -> Prepared {
    let frags = build_fragments_n(g, &hash_partition(g, WORKERS), WORKERS);
    let mut engine = Engine::new(
        frags,
        EngineOpts { threads: WORKERS, mode: Mode::aap(), max_rounds: Some(1_000_000) },
    );
    let (_, mut sssp_state) = engine.run_retained(&Sssp, &0);
    let (_, mut cc_state) = engine.run_retained(&ConnectedComponents, &());
    let (sssp_inv_old, cc_inv_old) = {
        let view: Vec<&Fragment<(), u32>> = engine.fragments().iter().map(|a| &**a).collect();
        (
            plan_incremental(&view, &Sssp, &0, delta, &mut sssp_state).1,
            plan_incremental(&view, &ConnectedComponents, &(), delta, &mut cc_state).1,
        )
    };
    let applied = {
        let mut refs = engine.fragments_mut().expect("unique fragments");
        apply_to_fragments(&mut refs, delta)
    };
    let sssp_invalid = remap_invalid(sssp_inv_old, &applied);
    let cc_invalid = remap_invalid(cc_inv_old, &applied);
    Prepared { engine, applied, sssp_state, cc_state, sssp_invalid, cc_invalid }
}

fn bench_dynamic(c: &mut Criterion) {
    // Big enough that cold compute dominates fixed engine overhead.
    let g = generate::rmat(15, 8, true, 21);
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    for (label, frac) in [("0.01pct", 0.0001), ("0.1pct", 0.001), ("1pct", 0.01)] {
        let p = prepare(&g, &insert_delta(&g, frac, 0xA5A5));
        group.bench_function(format!("sssp_full_{label}"), |b| {
            b.iter(|| black_box(p.engine.run(&Sssp, &0).out))
        });
        group.bench_function(format!("sssp_incremental_{label}"), |b| {
            b.iter_batched(
                || p.sssp_state.clone(),
                |mut st| {
                    black_box(
                        p.engine
                            .run_incremental(
                                &Sssp,
                                &0,
                                &p.applied.remaps,
                                &p.applied.seeds,
                                &p.sssp_invalid,
                                &mut st,
                            )
                            .out,
                    )
                },
                BatchSize::PerIteration,
            )
        });
    }
    // CC at the acceptance point (0.1%).
    let p = prepare(&g, &insert_delta(&g, 0.001, 0xA5A5));
    group.bench_function("cc_full_0.1pct", |b| {
        b.iter(|| black_box(p.engine.run(&ConnectedComponents, &()).out))
    });
    group.bench_function("cc_incremental_0.1pct", |b| {
        b.iter_batched(
            || p.cc_state.clone(),
            |mut st| {
                black_box(
                    p.engine
                        .run_incremental(
                            &ConnectedComponents,
                            &(),
                            &p.applied.remaps,
                            &p.applied.seeds,
                            &p.cc_invalid,
                            &mut st,
                        )
                        .out,
                )
            },
            BatchSize::PerIteration,
        )
    });
    // Deletion-only rows: the `warm-increase` path. Acceptance: warm
    // median ≥5x faster than cold at 0.1% deletions, for SSSP and CC.
    let del_count = ((g.num_edges() as f64) * 0.001).ceil() as usize;
    let p = prepare(&g, &remove_batch(&g, del_count, 0xDE1E));
    group.bench_function("sssp_full_delete_0.1pct", |b| {
        b.iter(|| black_box(p.engine.run(&Sssp, &0).out))
    });
    group.bench_function("sssp_incremental_delete_0.1pct", |b| {
        b.iter_batched(
            || p.sssp_state.clone(),
            |mut st| {
                black_box(
                    p.engine
                        .run_incremental(
                            &Sssp,
                            &0,
                            &p.applied.remaps,
                            &p.applied.seeds,
                            &p.sssp_invalid,
                            &mut st,
                        )
                        .out,
                )
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("cc_full_delete_0.1pct", |b| {
        b.iter(|| black_box(p.engine.run(&ConnectedComponents, &()).out))
    });
    group.bench_function("cc_incremental_delete_0.1pct", |b| {
        b.iter_batched(
            || p.cc_state.clone(),
            |mut st| {
                black_box(
                    p.engine
                        .run_incremental(
                            &ConnectedComponents,
                            &(),
                            &p.applied.remaps,
                            &p.applied.seeds,
                            &p.cc_invalid,
                            &mut st,
                        )
                        .out,
                )
            },
            BatchSize::PerIteration,
        )
    });
    // The invalidation *plan* itself (the pre-apply affected-region /
    // spanning-forest pass the driver adds for deletion batches). The
    // end-to-end warm cost of one deletion batch is plan + incremental;
    // these rows keep the plan share visible next to the gated ratios.
    {
        let frags = build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS);
        let engine = Engine::new(
            frags,
            EngineOpts { threads: WORKERS, mode: Mode::aap(), max_rounds: Some(1_000_000) },
        );
        let (_, mut sssp_st) = engine.run_retained(&Sssp, &0);
        let (_, mut cc_st) = engine.run_retained(&ConnectedComponents, &());
        let delta = remove_batch(&g, del_count, 0xDE1E);
        let view: Vec<&Fragment<(), u32>> = engine.fragments().iter().map(|a| &**a).collect();
        // Uncached rows clear the plan cache per iteration, measuring the
        // full gather + affected-region pass; `_cached` rows keep the
        // cache warm — the steady-state cost of a deletion batch in a
        // stream, where each run's output re-seeds the cache.
        group.bench_function("sssp_plan_delete_0.1pct", |b| {
            b.iter(|| {
                sssp_st.plan_cache_mut().clear();
                black_box(plan_incremental(&view, &Sssp, &0, &delta, &mut sssp_st))
            })
        });
        group.bench_function("sssp_plan_delete_0.1pct_cached", |b| {
            b.iter(|| black_box(plan_incremental(&view, &Sssp, &0, &delta, &mut sssp_st)))
        });
        group.bench_function("cc_plan_delete_0.1pct", |b| {
            b.iter(|| {
                cc_st.plan_cache_mut().clear();
                black_box(plan_incremental(&view, &ConnectedComponents, &(), &delta, &mut cc_st))
            })
        });
        group.bench_function("cc_plan_delete_0.1pct_cached", |b| {
            b.iter(|| {
                black_box(plan_incremental(&view, &ConnectedComponents, &(), &delta, &mut cc_st))
            })
        });
    }
    // The apply itself, at the acceptance point: a uniformly random delta
    // touches every fragment (apply ≈ one full partition sweep), while a
    // localized one — the realistic serving pattern — costs only the
    // touched fragment(s).
    group.bench_function("apply_delta_scattered_0.1pct", |b| {
        let delta = insert_delta(&g, 0.001, 0x5A5A);
        b.iter_batched(
            || build_fragments_n(&g, &hash_partition(&g, WORKERS), WORKERS),
            |mut frags| {
                let mut refs: Vec<_> = frags.iter_mut().collect();
                black_box(apply_to_fragments(&mut refs, &delta))
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("apply_delta_localized_0.1pct", |b| {
        // Same batch size, but every inserted edge stays inside fragment
        // 0's vertex set, so only one fragment is patched.
        let assignment = hash_partition(&g, WORKERS);
        let frag0: Vec<u32> =
            (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();
        let count = ((g.num_edges() as f64) * 0.001).ceil() as usize;
        let delta = insert_batch_within(&frag0, count, 16, 0x5A5A);
        b.iter_batched(
            || build_fragments_n(&g, &assignment, WORKERS),
            |mut frags| {
                let mut refs: Vec<_> = frags.iter_mut().collect();
                black_box(apply_to_fragments(&mut refs, &delta))
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
