//! Criterion benchmarks of the algorithm layer: each PIE program against
//! its sequential reference (threaded engine, wall-clock).

use aap_algos::{seq, Bfs, ConnectedComponents, PageRank, Sssp};
use aap_core::{Engine, EngineOpts, Mode};
use aap_graph::generate;
use aap_graph::partition::{build_fragments, hash_partition};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_sssp(c: &mut Criterion) {
    let g = generate::rmat(12, 8, true, 11);
    let mut group = c.benchmark_group("sssp");
    group.sample_size(10);
    group.bench_function("sequential_dijkstra", |b| b.iter(|| black_box(seq::dijkstra(&g, 0))));
    group.bench_function("pie_aap_8workers", |b| {
        b.iter_batched(
            || {
                Engine::new(
                    build_fragments(&g, &hash_partition(&g, 8)),
                    EngineOpts { threads: 8, mode: Mode::aap(), max_rounds: Some(100_000) },
                )
            },
            |e| black_box(e.run(&Sssp, &0).out),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_cc(c: &mut Criterion) {
    let g = generate::small_world(4096, 3, 0.1, 12);
    let mut group = c.benchmark_group("cc");
    group.sample_size(10);
    group.bench_function("sequential_union_find", |b| {
        b.iter(|| black_box(seq::connected_components(&g)))
    });
    group.bench_function("pie_aap_8workers", |b| {
        b.iter_batched(
            || {
                Engine::new(
                    build_fragments(&g, &hash_partition(&g, 8)),
                    EngineOpts { threads: 8, mode: Mode::aap(), max_rounds: Some(100_000) },
                )
            },
            |e| black_box(e.run(&ConnectedComponents, &()).out),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let g = generate::rmat(11, 8, true, 13);
    let pr = PageRank { damping: 0.85, epsilon: 1e-6 };
    let mut group = c.benchmark_group("pagerank");
    group.sample_size(10);
    group.bench_function("sequential_delta", |b| {
        b.iter(|| black_box(seq::pagerank_delta(&g, 0.85, 1e-6)))
    });
    group.bench_function("pie_aap_8workers", |b| {
        b.iter_batched(
            || {
                Engine::new(
                    build_fragments(&g, &hash_partition(&g, 8)),
                    EngineOpts { threads: 8, mode: Mode::aap(), max_rounds: Some(1_000_000) },
                )
            },
            |e| black_box(e.run(&pr, &()).out),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = generate::lattice2d(64, 64, 14);
    let mut group = c.benchmark_group("bfs");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| black_box(seq::bfs(&g, 0))));
    group.bench_function("pie_aap_4workers", |b| {
        b.iter_batched(
            || {
                Engine::new(
                    build_fragments(&g, &hash_partition(&g, 4)),
                    EngineOpts { threads: 4, mode: Mode::aap(), max_rounds: Some(100_000) },
                )
            },
            |e| black_box(e.run(&Bfs, &0).out),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_sssp, bench_cc, bench_pagerank, bench_bfs);
criterion_main!(benches);
