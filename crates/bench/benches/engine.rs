//! Criterion micro-benchmarks of the engine substrate: fragment
//! construction, message routing/inbox handling, and full small runs under
//! each execution mode (threaded engine, wall-clock).

use aap_algos::ConnectedComponents;
use aap_core::inbox::Inbox;
use aap_core::pie::{route_updates, route_updates_into, Batch};
use aap_core::{Engine, EngineOpts, Mode, Scratch};
use aap_graph::generate;
use aap_graph::partition::{build_fragments, hash_partition, ldg_partition};
use aap_graph::LocalId;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_partitioning(c: &mut Criterion) {
    let g = generate::rmat(12, 8, true, 1);
    let mut group = c.benchmark_group("partition");
    group.sample_size(20);
    group.bench_function("hash_partition_4k_vertices", |b| {
        b.iter(|| black_box(hash_partition(&g, 16)))
    });
    group.bench_function("ldg_partition_4k_vertices", |b| {
        b.iter(|| black_box(ldg_partition(&g, 16, 1.2)))
    });
    let assignment = hash_partition(&g, 16);
    group.bench_function("build_fragments_16", |b| {
        b.iter(|| black_box(build_fragments(&g, &assignment)))
    });
    group.finish();
}

fn bench_inbox(c: &mut Criterion) {
    let g = generate::small_world(512, 2, 0.1, 2);
    let frags = build_fragments(&g, &hash_partition(&g, 2));
    let frag = &frags[0];
    // Batches are addressed in the receiver's local id space.
    let updates: Vec<(LocalId, u32)> = frag.mirrors().map(|m| (m, frag.global(m) / 2)).collect();
    let mut group = c.benchmark_group("messaging");
    group.bench_function("inbox_push_drain_64_batches", |b| {
        let mut scratch: Scratch<u32> = Scratch::default();
        b.iter_batched(
            || {
                let mut inbox: Inbox<u32> = Inbox::default();
                for r in 0..64u32 {
                    inbox.push(Batch { src: 1, round: r, updates: updates.clone() });
                }
                inbox
            },
            |mut inbox| {
                let info = inbox.drain_into(&ConnectedComponents, frag, &mut scratch);
                black_box(info)
            },
            BatchSize::SmallInput,
        )
    });
    let locals: Vec<(LocalId, u32)> = frag.mirrors().map(|m| (m, frag.global(m))).collect();
    group.bench_function("route_updates", |b| {
        b.iter(|| black_box(route_updates(&ConnectedComponents, frag, 1, locals.clone())))
    });
    group.finish();
}

/// The dense fast path at realistic sizes: route and drain at 1k / 10k /
/// 100k raw updates per round, steady state (scratch warm, buffers
/// recycled) — the setting the zero-hash refactor targets.
fn bench_routing(c: &mut Criterion) {
    let g = generate::small_world(16_384, 4, 0.1, 2);
    let frags = build_fragments(&g, &hash_partition(&g, 8));
    let frag = &frags[0];
    let border: Vec<LocalId> = frag.mirrors().collect();
    assert!(!border.is_empty());
    let mut group = c.benchmark_group("routing");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        let updates: Vec<(LocalId, u32)> = (0..n)
            .map(|i| {
                let l = border[i % border.len()];
                (l, frag.global(l) / 2)
            })
            .collect();
        group.bench_function(format!("route_{n}"), |b| {
            let mut scratch: Scratch<u32> = Scratch::default();
            let mut out = Vec::new();
            let mut buf: Vec<(LocalId, u32)> = Vec::new();
            b.iter(|| {
                buf.extend_from_slice(&updates);
                route_updates_into(&ConnectedComponents, frag, 1, &mut buf, &mut scratch, &mut out);
                let batches = out.len();
                for (_, batch) in out.drain(..) {
                    scratch.recycle_batch(batch);
                }
                black_box(batches)
            })
        });
        // Drain side: the same volume arriving as 16 batches (two rounds
        // from each of the 7 peers plus two self-round tags — source ids
        // must be valid fragment ids).
        let per_batch = (n / 16).max(1);
        let batches: Vec<Batch<u32>> = (0..16usize)
            .map(|k| Batch {
                src: (k % 8) as u16,
                round: 1 + (k / 8) as u32,
                updates: updates.iter().skip(k * per_batch).take(per_batch).copied().collect(),
            })
            .collect();
        group.bench_function(format!("drain_{n}"), |b| {
            let mut scratch: Scratch<u32> = Scratch::default();
            b.iter_batched(
                || {
                    let mut inbox: Inbox<u32> = Inbox::default();
                    for batch in &batches {
                        inbox.push(batch.clone());
                    }
                    inbox
                },
                |mut inbox| {
                    let info = inbox.drain_into(&ConnectedComponents, frag, &mut scratch);
                    black_box(info.raw_updates)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let g = generate::rmat(11, 8, true, 3);
    let mut group = c.benchmark_group("cc_by_mode_threaded");
    group.sample_size(10);
    for (name, mode) in
        [("bsp", Mode::Bsp), ("ap", Mode::Ap), ("ssp2", Mode::Ssp { c: 2 }), ("aap", Mode::aap())]
    {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    Engine::new(
                        build_fragments(&g, &hash_partition(&g, 8)),
                        EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
                    )
                },
                |engine| black_box(engine.run(&ConnectedComponents, &()).stats.total_rounds()),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning, bench_inbox, bench_routing, bench_modes);
criterion_main!(benches);
