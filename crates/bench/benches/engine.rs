//! Criterion micro-benchmarks of the engine substrate: fragment
//! construction, message routing/inbox handling, and full small runs under
//! each execution mode (threaded engine, wall-clock).

use aap_algos::ConnectedComponents;
use aap_core::inbox::Inbox;
use aap_core::pie::{route_updates, Batch};
use aap_core::{Engine, EngineOpts, Mode};
use aap_graph::generate;
use aap_graph::partition::{build_fragments, hash_partition, ldg_partition};
use aap_graph::LocalId;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_partitioning(c: &mut Criterion) {
    let g = generate::rmat(12, 8, true, 1);
    let mut group = c.benchmark_group("partition");
    group.sample_size(20);
    group.bench_function("hash_partition_4k_vertices", |b| {
        b.iter(|| black_box(hash_partition(&g, 16)))
    });
    group.bench_function("ldg_partition_4k_vertices", |b| {
        b.iter(|| black_box(ldg_partition(&g, 16, 1.2)))
    });
    let assignment = hash_partition(&g, 16);
    group.bench_function("build_fragments_16", |b| {
        b.iter(|| black_box(build_fragments(&g, &assignment)))
    });
    group.finish();
}

fn bench_inbox(c: &mut Criterion) {
    let g = generate::small_world(512, 2, 0.1, 2);
    let frags = build_fragments(&g, &hash_partition(&g, 2));
    let frag = &frags[0];
    let updates: Vec<(u32, u32)> =
        frag.mirrors().map(|m| (frag.global(m), frag.global(m) / 2)).collect();
    let mut group = c.benchmark_group("messaging");
    group.bench_function("inbox_push_drain_64_batches", |b| {
        b.iter_batched(
            || {
                let mut inbox: Inbox<u32> = Inbox::default();
                for r in 0..64u32 {
                    inbox.push(Batch { src: 1, round: r, updates: updates.clone() });
                }
                inbox
            },
            |mut inbox| {
                let (msgs, info) = inbox.drain(&ConnectedComponents, frag);
                black_box((msgs, info))
            },
            BatchSize::SmallInput,
        )
    });
    let locals: Vec<(LocalId, u32)> =
        frag.mirrors().map(|m| (m, frag.global(m))).collect();
    group.bench_function("route_updates", |b| {
        b.iter(|| {
            black_box(route_updates(&ConnectedComponents, frag, 1, locals.clone()))
        })
    });
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let g = generate::rmat(11, 8, true, 3);
    let mut group = c.benchmark_group("cc_by_mode_threaded");
    group.sample_size(10);
    for (name, mode) in [
        ("bsp", Mode::Bsp),
        ("ap", Mode::Ap),
        ("ssp2", Mode::Ssp { c: 2 }),
        ("aap", Mode::aap()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    Engine::new(
                        build_fragments(&g, &hash_partition(&g, 8)),
                        EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
                    )
                },
                |engine| black_box(engine.run(&ConnectedComponents, &()).stats.total_rounds()),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning, bench_inbox, bench_modes);
criterion_main!(benches);
