//! # aap-bench
//!
//! The reproduction harness: one experiment per table and figure of the
//! paper's evaluation (§7 + Appendix B). See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for recorded results.
//!
//! Run everything:
//!
//! ```sh
//! cargo run --release -p aap-bench --bin repro -- all
//! ```
//!
//! or a single experiment: `repro fig6a`, `repro table1`, `repro fig7`, ...

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod runner;
pub mod tracecheck;
pub mod workloads;
