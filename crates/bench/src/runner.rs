//! Shared experiment infrastructure: mode line-ups, simulated-cluster
//! execution, and markdown table rendering.

use aap_core::pie::PieProgram;
use aap_core::policy::{AapConfig, HsyncConfig};
use aap_core::Mode;
use aap_graph::{partition, FragId, Graph};
use aap_sim::{CostModel, ScheduleFuzz, SimEngine, SimOpts, Timeline};

/// One measured run.
#[derive(Debug, Clone)]
pub struct Row {
    /// System/mode label as it appears in the paper's tables.
    pub system: String,
    /// Virtual completion time.
    pub time: f64,
    /// Maximum rounds at any worker (straggler depth).
    pub rounds_max: u64,
    /// Total rounds across workers.
    pub rounds_total: u64,
    /// Parameter updates shipped.
    pub updates: u64,
    /// Bytes shipped.
    pub bytes: u64,
    /// Updates that improved the receiving parameter.
    pub effective: u64,
    /// Updates that were redundant/stale on arrival.
    pub redundant: u64,
    /// Fraction of received updates that were redundant.
    pub stale: f64,
}

/// The four GRAPE+ modes the paper compares in every Fig 6 panel.
pub fn grape_modes() -> Vec<(String, Mode)> {
    vec![
        ("GRAPE+ (AAP)".into(), Mode::aap()),
        ("GRAPE+BSP".into(), Mode::Bsp),
        ("GRAPE+AP".into(), Mode::Ap),
        ("GRAPE+SSP (c=2)".into(), Mode::Ssp { c: 2 }),
    ]
}

/// Extended line-up including the Hsync (PowerSwitch) baseline.
pub fn all_modes() -> Vec<(String, Mode)> {
    let mut v = grape_modes();
    v.push(("PowerSwitch (Hsync)".into(), Mode::Hsync(HsyncConfig::default())));
    v
}

/// AAP with the CF-style bounded staleness enabled.
pub fn aap_bounded(c: u32) -> Mode {
    Mode::Aap(AapConfig {
        staleness_bound: Some(c),
        l_floor_frac: Some(0.6),
        ..AapConfig::default()
    })
}

/// Options for one simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Number of (virtual) workers.
    pub workers: usize,
    /// Message latency in virtual units.
    pub latency: f64,
    /// Per-worker speed multipliers; empty = uniform.
    pub speed: Vec<f64>,
    /// Partition skew dial for [`partition::skewed_partition`]; 1.0 =
    /// balanced hash partition.
    pub skew: f64,
}

impl Cluster {
    /// A balanced cluster of `workers` workers.
    pub fn balanced(workers: usize) -> Self {
        Cluster { workers, latency: 2.0, speed: Vec::new(), skew: 1.0 }
    }

    /// A cluster with one CPU-straggler (`factor`× slower) at `at`.
    pub fn with_straggler(workers: usize, at: usize, factor: f64) -> Self {
        let mut speed = vec![1.0; workers];
        speed[at] = factor;
        Cluster { workers, latency: 2.0, speed, skew: 1.0 }
    }

    /// Partition `g` for this cluster.
    pub fn fragments<V: Clone + Send + Sync, E: Clone + Send + Sync>(
        &self,
        g: &Graph<V, E>,
    ) -> Vec<aap_graph::Fragment<V, E>> {
        let assignment: Vec<FragId> = if self.skew > 1.0 {
            partition::skewed_partition(g, self.workers, self.skew)
        } else {
            partition::hash_partition(g, self.workers)
        };
        partition::build_fragments_n(g, &assignment, self.workers)
    }

    fn opts(&self, mode: Mode) -> SimOpts {
        SimOpts {
            mode,
            latency: self.latency,
            cost: CostModel::skewed_work(self.speed.clone()),
            max_rounds: Some(1_000_000),
            ..SimOpts::default()
        }
    }
}

/// Run `prog` on the simulated cluster under `mode`; returns the row plus
/// the raw output and timelines (for figure rendering).
pub fn run_sim<V, E, P>(
    cluster: &Cluster,
    g: &Graph<V, E>,
    prog: &P,
    q: &P::Query,
    label: &str,
    mode: Mode,
) -> (Row, P::Out, Vec<Timeline>)
where
    V: Clone + Send + Sync,
    E: Clone + Send + Sync,
    P: PieProgram<V, E>,
{
    run_sim_with(cluster, g, prog, q, label, cluster.opts(mode))
}

/// [`run_sim`] under a seeded hostile schedule: same cluster and mode,
/// with [`ScheduleFuzz::seeded`] perturbing wake order, delivery
/// interleaving and per-worker speed.
pub fn run_sim_fuzzed<V, E, P>(
    cluster: &Cluster,
    g: &Graph<V, E>,
    prog: &P,
    q: &P::Query,
    label: &str,
    mode: Mode,
    seed: u64,
) -> (Row, P::Out, Vec<Timeline>)
where
    V: Clone + Send + Sync,
    E: Clone + Send + Sync,
    P: PieProgram<V, E>,
{
    let opts = cluster.opts(mode).schedule(ScheduleFuzz::seeded(seed));
    run_sim_with(cluster, g, prog, q, label, opts)
}

fn run_sim_with<V, E, P>(
    cluster: &Cluster,
    g: &Graph<V, E>,
    prog: &P,
    q: &P::Query,
    label: &str,
    opts: SimOpts,
) -> (Row, P::Out, Vec<Timeline>)
where
    V: Clone + Send + Sync,
    E: Clone + Send + Sync,
    P: PieProgram<V, E>,
{
    let engine = SimEngine::new(cluster.fragments(g), opts).expect("cluster sim opts are valid");
    let out = engine.run(prog, q);
    assert!(!out.stats.aborted, "run aborted: {label}");
    let row = Row {
        system: label.to_string(),
        time: out.stats.makespan,
        rounds_max: out.stats.max_rounds(),
        rounds_total: out.stats.total_rounds(),
        updates: out.stats.total_updates(),
        bytes: out.stats.total_bytes(),
        effective: out.stats.workers.iter().map(|w| w.effective_updates).sum(),
        redundant: out.stats.workers.iter().map(|w| w.redundant_updates).sum(),
        stale: out.stats.stale_ratio(),
    };
    (row, out.out, out.timelines)
}

/// Render measured rows as a JSON array (hand-rolled; no serde in-tree),
/// exposing the per-round effective/redundant update counters so
/// staleness (§7) stays trackable across PRs by diffing runner output.
pub fn rows_json(title: &str, rows: &[Row]) -> String {
    let mut s = format!("{{\"experiment\":{:?},\"rows\":[", title);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rounds = r.rounds_total.max(1);
        s.push_str(&format!(
            "{{\"system\":{:?},\"time\":{:.6},\"rounds_max\":{},\"rounds_total\":{},\
             \"updates\":{},\"bytes\":{},\"effective_updates\":{},\"redundant_updates\":{},\
             \"effective_per_round\":{:.3},\"redundant_per_round\":{:.3},\"stale_ratio\":{:.6}}}",
            r.system,
            r.time,
            r.rounds_max,
            r.rounds_total,
            r.updates,
            r.bytes,
            r.effective,
            r.redundant,
            r.effective as f64 / rounds as f64,
            r.redundant as f64 / rounds as f64,
            r.stale,
        ));
    }
    s.push_str("]}");
    s
}

/// Render rows as a markdown table, normalising times to the first row.
pub fn table(title: &str, rows: &[Row]) -> String {
    let mut s = format!("### {title}\n\n");
    s.push_str(
        "| system | time | vs first | rounds(max) | rounds(total) | updates | bytes | stale % |\n",
    );
    s.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    let t0 = rows.first().map(|r| r.time).unwrap_or(1.0).max(1e-12);
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.1} | {:.2}x | {} | {} | {} | {} | {:.1} |\n",
            r.system,
            r.time,
            r.time / t0,
            r.rounds_max,
            r.rounds_total,
            r.updates,
            r.bytes,
            100.0 * r.stale
        ));
    }
    s.push('\n');
    s
}

/// Render a series (x vs per-mode time) as a markdown table — the textual
/// form of a Fig 6 line chart.
pub fn series_table(
    title: &str,
    x_name: &str,
    xs: &[String],
    series: &[(String, Vec<f64>)],
) -> String {
    let mut s = format!("### {title}\n\n| {x_name} |");
    for (name, _) in series {
        s.push_str(&format!(" {name} |"));
    }
    s.push('\n');
    s.push_str("|---|");
    for _ in series {
        s.push_str("---:|");
    }
    s.push('\n');
    for (i, x) in xs.iter().enumerate() {
        s.push_str(&format!("| {x} |"));
        for (_, ys) in series {
            s.push_str(&format!(" {:.1} |", ys[i]));
        }
        s.push('\n');
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_algos::ConnectedComponents;
    use aap_graph::generate;

    #[test]
    fn run_sim_produces_row() {
        let g = generate::small_world(200, 2, 0.1, 1);
        let cluster = Cluster::balanced(4);
        let (row, out, tl) = run_sim(&cluster, &g, &ConnectedComponents, &(), "cc", Mode::aap());
        assert_eq!(out.len(), 200);
        assert_eq!(tl.len(), 4);
        assert!(row.time > 0.0);
        assert!(row.updates > 0);
    }

    #[test]
    fn tables_render() {
        let rows = vec![Row {
            system: "X".into(),
            time: 10.0,
            rounds_max: 2,
            rounds_total: 4,
            updates: 100,
            bytes: 1000,
            effective: 60,
            redundant: 40,
            stale: 0.5,
        }];
        let t = table("t", &rows);
        assert!(t.contains("| X | 10.0 | 1.00x | 2 | 4 | 100 | 1000 | 50.0 |"));
        let s = series_table("s", "n", &["64".into()], &[("A".into(), vec![1.0])]);
        assert!(s.contains("| 64 | 1.0 |"));
    }

    #[test]
    fn json_rows_expose_staleness_counters() {
        let rows = vec![Row {
            system: "GRAPE+ (AAP)".into(),
            time: 3.5,
            rounds_max: 2,
            rounds_total: 8,
            updates: 100,
            bytes: 1000,
            effective: 60,
            redundant: 40,
            stale: 0.4,
        }];
        let j = rows_json("exp2", &rows);
        assert!(j.contains("\"experiment\":\"exp2\""));
        assert!(j.contains("\"effective_updates\":60"));
        assert!(j.contains("\"redundant_updates\":40"));
        assert!(j.contains("\"effective_per_round\":7.500"));
        assert!(j.starts_with('{') && j.ends_with("]}"));
    }

    #[test]
    fn run_sim_fills_staleness_counters() {
        let g = generate::small_world(150, 2, 0.1, 2);
        let cluster = Cluster::balanced(3);
        let (row, _, _) = run_sim(&cluster, &g, &ConnectedComponents, &(), "cc", Mode::Ap);
        assert!(row.effective + row.redundant > 0);
        assert!(
            (row.stale - row.redundant as f64 / (row.effective + row.redundant) as f64).abs()
                < 1e-9
        );
    }
}
