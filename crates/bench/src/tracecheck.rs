//! Well-formedness checks over exported Chrome trace JSON — the
//! consumer-side contract of `aap-trace`'s writer, shared by the
//! `repro trace` experiment, the `trace_capture` example, and the
//! format test suite. Parsing reuses [`crate::baseline::Json`], the
//! same hand-rolled parser the bench gate runs on, so a trace that
//! passes here is structurally loadable by anything that speaks the
//! trace-event format.

use crate::baseline::Json;
use std::collections::BTreeMap;

/// Aggregate shape of a parsed trace, for assertions and reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events, including metadata records.
    pub events: usize,
    /// Distinct process ids observed (sorted).
    pub pids: Vec<u32>,
    /// Distinct `(pid, tid)` tracks observed (metadata excluded).
    pub tracks: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Distinct `(name, cat)` pairs seen on non-metadata events.
    pub names: Vec<(String, String)>,
}

impl TraceCheck {
    /// True if any non-metadata event on process `pid` carries `name`.
    pub fn has(&self, name: &str) -> bool {
        self.names.iter().any(|(n, _)| n == name)
    }
}

fn field<'a>(ev: &'a Json, key: &str, i: usize) -> Result<&'a Json, String> {
    ev.get(key).ok_or_else(|| format!("event {i}: missing {key:?}"))
}

fn num(ev: &Json, key: &str, i: usize) -> Result<u64, String> {
    let v =
        field(ev, key, i)?.as_f64().ok_or_else(|| format!("event {i}: {key:?} is not a number"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("event {i}: {key:?} = {v} out of range"));
    }
    Ok(v as u64)
}

/// Parse `text` as Chrome trace JSON (object form) and verify the
/// structural invariants every consumer relies on: each event carries
/// `name`/`ph`/`ts`/`pid`/`tid`, `B`/`E` spans are balanced per
/// `(pid, tid)` track with properly nested names, timestamps are
/// monotone non-decreasing per track, and counters carry an args
/// object. Returns the aggregate [`TraceCheck`] or the first violation.
pub fn check_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let root = Json::parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or("root must be an object with a traceEvents array")?;

    let mut check = TraceCheck { events: events.len(), ..TraceCheck::default() };
    let mut pids: Vec<u32> = Vec::new();
    let mut names: Vec<(String, String)> = Vec::new();
    // Per (pid, tid): open-span name stack and last timestamp.
    let mut tracks: BTreeMap<(u64, u64), (Vec<String>, u64)> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = field(ev, "ph", i)?.as_str().ok_or_else(|| format!("event {i}: ph"))?;
        let name =
            field(ev, "name", i)?.as_str().ok_or_else(|| format!("event {i}: name"))?.to_string();
        if ph == "M" {
            continue; // metadata: process_name / thread_name records
        }
        let pid = num(ev, "pid", i)?;
        let tid = num(ev, "tid", i)?;
        let ts = num(ev, "ts", i)?;
        if !pids.contains(&(pid as u32)) {
            pids.push(pid as u32);
        }
        let cat = ev.get("cat").and_then(|c| c.as_str()).unwrap_or("").to_string();
        if !names.iter().any(|(n, c)| *n == name && *c == cat) {
            names.push((name.clone(), cat));
        }
        let (stack, last_ts) = tracks.entry((pid, tid)).or_insert_with(|| (Vec::new(), 0));
        if ts < *last_ts {
            return Err(format!(
                "event {i} ({name:?}): ts {ts} < previous {last_ts} on track ({pid},{tid})"
            ));
        }
        *last_ts = ts;
        match ph {
            "B" => stack.push(name),
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E {name:?} with no open span"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E {name:?} closes open span {open:?} on track ({pid},{tid})"
                    ));
                }
                check.spans += 1;
            }
            "i" => check.instants += 1,
            "C" => {
                field(ev, "args", i)?;
                check.counters += 1;
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for ((pid, tid), (stack, _)) in &tracks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span {open:?} on track ({pid},{tid})"));
        }
    }
    pids.sort_unstable();
    check.pids = pids;
    check.tracks = tracks.len();
    check.names = names;
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_balanced_trace() {
        let t = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"args":{"name":"engine"}},
            {"name":"round","cat":"round","ph":"B","ts":0,"pid":1,"tid":0},
            {"name":"eval","cat":"phase","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"eval","cat":"phase","ph":"E","ts":5,"pid":1,"tid":0},
            {"name":"round","cat":"round","ph":"E","ts":6,"pid":1,"tid":0},
            {"name":"batch","cat":"msg","ph":"i","ts":6,"pid":1,"tid":0},
            {"name":"version","cat":"counter","ph":"C","ts":7,"pid":4,"tid":0,"args":{"version":1}}
        ]}"#;
        let c = check_chrome_trace(t).expect("valid trace");
        assert_eq!(c.spans, 2);
        assert_eq!(c.instants, 1);
        assert_eq!(c.counters, 1);
        assert_eq!(c.pids, vec![1, 4]);
        assert_eq!(c.tracks, 2);
        assert!(c.has("round") && c.has("version"));
    }

    #[test]
    fn rejects_unbalanced_and_non_monotone() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"round","cat":"round","ph":"B","ts":0,"pid":1,"tid":0}
        ]}"#;
        assert!(check_chrome_trace(unbalanced).unwrap_err().contains("unclosed"));

        let crossed = r#"{"traceEvents":[
            {"name":"a","cat":"x","ph":"B","ts":0,"pid":1,"tid":0},
            {"name":"b","cat":"x","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"a","cat":"x","ph":"E","ts":2,"pid":1,"tid":0}
        ]}"#;
        assert!(check_chrome_trace(crossed).unwrap_err().contains("closes open span"));

        let backwards = r#"{"traceEvents":[
            {"name":"a","cat":"x","ph":"i","ts":5,"pid":1,"tid":0},
            {"name":"b","cat":"x","ph":"i","ts":4,"pid":1,"tid":0}
        ]}"#;
        assert!(check_chrome_trace(backwards).unwrap_err().contains("<"));

        // Distinct tracks have independent clocks and stacks.
        let tracks = r#"{"traceEvents":[
            {"name":"a","cat":"x","ph":"B","ts":9,"pid":1,"tid":0},
            {"name":"b","cat":"x","ph":"B","ts":0,"pid":1,"tid":1},
            {"name":"b","cat":"x","ph":"E","ts":1,"pid":1,"tid":1},
            {"name":"a","cat":"x","ph":"E","ts":10,"pid":1,"tid":0}
        ]}"#;
        assert_eq!(check_chrome_trace(tracks).expect("ok").spans, 2);
    }

    #[test]
    fn rejects_counters_without_args() {
        let t = r#"{"traceEvents":[
            {"name":"v","cat":"counter","ph":"C","ts":0,"pid":4,"tid":0}
        ]}"#;
        assert!(check_chrome_trace(t).unwrap_err().contains("args"));
    }
}
