//! The bench-regression gate: parse `repro json` output (one JSON
//! object per line) and diff its effective/redundant-update counters
//! against a checked-in baseline, failing when staleness drifts beyond
//! a tolerance.
//!
//! The comparison is possible at all because `repro json` is
//! deterministic: seeded generators + the virtual-time simulator mean
//! same seed → same bytes on any machine. The JSON parser below is a
//! minimal recursive-descent one — no serde in-tree — covering exactly
//! the subset the runner emits.

use std::collections::BTreeMap;

/// A parsed JSON value (the subset `repro json` emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; the counters fit exactly).
    Num(f64),
    /// A string (no escape sequences beyond `\"` and `\\` needed).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, order-insensitive.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    /// Member access for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                m.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(&c @ (b'"' | b'\\' | b'/')) => s.push(c as char),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

/// Outcome of one gate run: human-readable per-counter checks plus the
/// subset that violated the tolerance. Empty `violations` = gate passes.
#[derive(Debug, Default)]
pub struct GateReport {
    /// One line per compared counter, pass or fail.
    pub checks: Vec<String>,
    /// The failing subset, with baseline/current values.
    pub violations: Vec<String>,
}

impl GateReport {
    /// True when every counter stayed within tolerance.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Parse multi-line runner output (one JSON object per non-empty line)
/// into `(experiment name, object)` pairs.
pub fn parse_runner_output(text: &str) -> Result<Vec<(String, Json)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let name = v
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: no \"experiment\" key", i + 1))?
            .to_string();
        out.push((name, v));
    }
    Ok(out)
}

/// The staleness counters compared per record.
const COUNTERS: [&str; 2] = ["effective_updates", "redundant_updates"];

/// The durability counters, compared at the top level of any record
/// that carries them in the baseline (the `durability` experiment).
const DURABILITY_COUNTERS: [&str; 5] = [
    "checkpoints",
    "fragments_written",
    "fragments_skipped",
    "checkpoint_bytes",
    "log_records_compacted",
];

/// The schedule-fuzz counters, compared the same way (the `fuzz`
/// experiment). `divergences` is compared absolutely — the canonical
/// fixpoint is law, so a single diverging seed must fail the gate even
/// though the relative-drift floor would otherwise let it slide.
const FUZZ_COUNTERS: [&str; 5] =
    ["cells", "seeds_per_cell", "fuzzed_runs", "fuzz_rounds_total", "fuzz_updates_total"];

/// Compare one named counter with relative-drift tolerance (floored so
/// tiny baselines don't amplify noise). Missing on either side is a
/// violation — the gate must not pass because a counter vanished.
fn check_counter(
    report: &mut GateReport,
    label: &str,
    key: &str,
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) {
    let (b, c) =
        match (baseline.get(key).and_then(Json::as_f64), current.get(key).and_then(Json::as_f64)) {
            (Some(b), Some(c)) => (b, c),
            _ => {
                report.violations.push(format!("{label}: counter {key} missing"));
                return;
            }
        };
    let drift = (c - b).abs() / b.max(100.0);
    let line = format!("{label}: {key} baseline {b:.0} current {c:.0} drift {drift:.3}");
    if drift > tolerance {
        report.violations.push(line.clone());
    }
    report.checks.push(line);
}

fn check_record(
    report: &mut GateReport,
    label: &str,
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) {
    for key in COUNTERS {
        check_counter(report, label, key, baseline, current, tolerance);
    }
    // Staleness ratio is compared absolutely (it lives in 0..1). A
    // vanished metric is a violation like any other — the gate must not
    // pass because the counter it guards stopped being emitted.
    match (
        baseline.get("stale_ratio").and_then(Json::as_f64),
        current.get("stale_ratio").and_then(Json::as_f64),
    ) {
        (Some(b), Some(c)) => {
            let line = format!("{label}: stale_ratio baseline {b:.4} current {c:.4}");
            if (c - b).abs() > tolerance {
                report.violations.push(line.clone());
            }
            report.checks.push(line);
        }
        (None, None) => {}
        _ => report.violations.push(format!("{label}: counter stale_ratio missing")),
    }
}

/// Diff `current` runner output against `baseline`, both as produced by
/// `repro json`. Every baseline record must be present in `current`
/// within `tolerance`; experiments present only on one side fail the
/// gate (the baseline is stale — regenerate it with
/// `bench_gate --write-baseline`).
pub fn compare(baseline: &str, current: &str, tolerance: f64) -> Result<GateReport, String> {
    let base = parse_runner_output(baseline)?;
    let curr = parse_runner_output(current)?;
    let curr_map: BTreeMap<&str, &Json> = curr.iter().map(|(n, v)| (n.as_str(), v)).collect();
    let mut report = GateReport::default();

    for (name, bv) in &base {
        let cv = match curr_map.get(name.as_str()) {
            Some(cv) => *cv,
            None => {
                report.violations.push(format!("experiment {name} missing from current output"));
                continue;
            }
        };
        if let (Some(bs), Some(cs)) =
            (bv.get("seed").and_then(Json::as_f64), cv.get("seed").and_then(Json::as_f64))
        {
            if bs != cs {
                report.violations.push(format!(
                    "experiment {name}: seed mismatch (baseline {bs}, current {cs}) — \
                     counters are not comparable"
                ));
                continue;
            }
        }
        match bv.get("rows").and_then(Json::as_arr) {
            Some(rows) => {
                let curr_rows: BTreeMap<&str, &Json> = cv
                    .get("rows")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|r| r.get("system").and_then(Json::as_str).map(|s| (s, r)))
                    .collect();
                for row in rows {
                    let system = row.get("system").and_then(Json::as_str).unwrap_or("?");
                    match curr_rows.get(system) {
                        Some(cr) => check_record(
                            &mut report,
                            &format!("{name}/{system}"),
                            row,
                            cr,
                            tolerance,
                        ),
                        None => report
                            .violations
                            .push(format!("{name}: system {system} missing from current output")),
                    }
                }
            }
            None => {
                // Dynamic-round form: named sub-objects with counters.
                for section in ["incremental", "full"] {
                    if let Some(bsec) = bv.get(section) {
                        match cv.get(section) {
                            Some(csec) => check_record(
                                &mut report,
                                &format!("{name}/{section}"),
                                bsec,
                                csec,
                                tolerance,
                            ),
                            None => report.violations.push(format!(
                                "{name}: section {section} missing from current output"
                            )),
                        }
                    }
                }
            }
        }
        // Durability form: flat counters on the record itself.
        for key in DURABILITY_COUNTERS {
            if bv.get(key).is_some() {
                check_counter(&mut report, name, key, bv, cv, tolerance);
            }
        }
        // Schedule-fuzz form: flat counters, plus an exact-zero check on
        // divergences (one hostile interleaving reaching a different
        // fixpoint is a correctness bug, not drift).
        for key in FUZZ_COUNTERS {
            if bv.get(key).is_some() {
                check_counter(&mut report, name, key, bv, cv, tolerance);
            }
        }
        if bv.get("divergences").is_some() {
            match cv.get("divergences").and_then(Json::as_f64) {
                Some(d) => {
                    let line = format!("{name}: divergences current {d:.0} (must be 0)");
                    if d != 0.0 {
                        report.violations.push(line.clone());
                    }
                    report.checks.push(line);
                }
                None => report.violations.push(format!("{name}: counter divergences missing")),
            }
        }
    }

    for (name, _) in &curr {
        if !base.iter().any(|(b, _)| b == name) {
            report.violations.push(format!(
                "experiment {name} not in baseline — regenerate BENCH_baseline.json"
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_runner_shapes() {
        let v = Json::parse(
            r#"{"experiment":"e","rows":[{"system":"A","effective_updates":10,"stale_ratio":0.25}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("e"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("effective_updates").unwrap().as_f64(), Some(10.0));
        assert_eq!(rows[0].get("stale_ratio").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
    }

    fn sample(eff: u64, red: u64) -> String {
        format!(
            "{{\"experiment\":\"e1\",\"rows\":[{{\"system\":\"A\",\
             \"effective_updates\":{eff},\"redundant_updates\":{red},\
             \"stale_ratio\":{:.4}}}]}}\n",
            red as f64 / (eff + red) as f64
        )
    }

    #[test]
    fn identical_output_passes() {
        let s = sample(1000, 400);
        let r = compare(&s, &s, 0.10).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        assert!(!r.checks.is_empty());
    }

    #[test]
    fn small_drift_passes_large_drift_fails() {
        let base = sample(1000, 400);
        let ok = compare(&base, &sample(1040, 410), 0.10).unwrap();
        assert!(ok.passed(), "{:?}", ok.violations);
        let bad = compare(&base, &sample(1000, 900), 0.10).unwrap();
        assert!(!bad.passed());
        assert!(bad.violations.iter().any(|v| v.contains("redundant_updates")));
        assert!(bad.violations.iter().any(|v| v.contains("stale_ratio")));
    }

    #[test]
    fn missing_system_or_experiment_fails() {
        let base = sample(1000, 400);
        let r = compare(&base, "", 0.10).unwrap();
        assert!(r.violations.iter().any(|v| v.contains("missing from current")));
        let r = compare("", &base, 0.10).unwrap();
        assert!(r.violations.iter().any(|v| v.contains("not in baseline")));
    }

    #[test]
    fn vanished_stale_ratio_fails() {
        let base = sample(1000, 400);
        let no_ratio = "{\"experiment\":\"e1\",\"rows\":[{\"system\":\"A\",\
                        \"effective_updates\":1000,\"redundant_updates\":400}]}";
        let r = compare(&base, no_ratio, 0.10).unwrap();
        assert!(r.violations.iter().any(|v| v.contains("stale_ratio missing")), "{r:?}");
    }

    #[test]
    fn seed_mismatch_fails_loudly() {
        let base = "{\"experiment\":\"dyn\",\"seed\":1,\"incremental\":{\"effective_updates\":5,\
                    \"redundant_updates\":1,\"stale_ratio\":0.1}}";
        let curr = "{\"experiment\":\"dyn\",\"seed\":2,\"incremental\":{\"effective_updates\":5,\
                    \"redundant_updates\":1,\"stale_ratio\":0.1}}";
        let r = compare(base, curr, 0.10).unwrap();
        assert!(r.violations.iter().any(|v| v.contains("seed mismatch")));
    }

    #[test]
    fn dynamic_sections_are_compared() {
        let mk = |eff: u64| {
            format!(
                "{{\"experiment\":\"dyn\",\"seed\":1,\
                 \"incremental\":{{\"effective_updates\":{eff},\"redundant_updates\":10,\
                 \"stale_ratio\":0.1}},\
                 \"full\":{{\"effective_updates\":900,\"redundant_updates\":300,\
                 \"stale_ratio\":0.25}}}}"
            )
        };
        let ok = compare(&mk(100), &mk(104), 0.10).unwrap();
        assert!(ok.passed(), "{:?}", ok.violations);
        let bad = compare(&mk(100), &mk(400), 0.10).unwrap();
        assert!(!bad.passed());
    }

    #[test]
    fn durability_counters_are_compared() {
        let mk = |bytes: u64| {
            format!(
                "{{\"experiment\":\"durability\",\"seed\":1,\"checkpoints\":5,\
                 \"fragments_written\":9,\"fragments_skipped\":7,\
                 \"checkpoint_bytes\":{bytes},\"log_records_compacted\":4}}"
            )
        };
        let ok = compare(&mk(100_000), &mk(101_000), 0.10).unwrap();
        assert!(ok.passed(), "{:?}", ok.violations);
        assert!(ok.checks.iter().any(|c| c.contains("fragments_skipped")));
        let bad = compare(&mk(100_000), &mk(200_000), 0.10).unwrap();
        assert!(bad.violations.iter().any(|v| v.contains("checkpoint_bytes")));
        // A vanished durability counter fails like any other.
        let gone = "{\"experiment\":\"durability\",\"seed\":1,\"checkpoints\":5}";
        let r = compare(&mk(100_000), gone, 0.10).unwrap();
        assert!(r.violations.iter().any(|v| v.contains("fragments_written missing")), "{r:?}");
    }

    #[test]
    fn fuzz_counters_are_compared_and_divergences_are_exact() {
        let mk = |div: u64, rounds: u64| {
            format!(
                "{{\"experiment\":\"fuzz\",\"seed\":1,\"cells\":10,\"seeds_per_cell\":8,\
                 \"fuzzed_runs\":80,\"divergences\":{div},\
                 \"fuzz_rounds_total\":{rounds},\"fuzz_updates_total\":50000}}"
            )
        };
        let ok = compare(&mk(0, 4000), &mk(0, 4100), 0.10).unwrap();
        assert!(ok.passed(), "{:?}", ok.violations);
        assert!(ok.checks.iter().any(|c| c.contains("fuzz_rounds_total")));
        // A single diverging seed fails even though 1/100 is far inside
        // the relative-drift tolerance.
        let bad = compare(&mk(0, 4000), &mk(1, 4000), 0.10).unwrap();
        assert!(bad.violations.iter().any(|v| v.contains("divergences")), "{bad:?}");
        // Large drift in the round totals fails like any counter.
        let drift = compare(&mk(0, 4000), &mk(0, 9000), 0.10).unwrap();
        assert!(drift.violations.iter().any(|v| v.contains("fuzz_rounds_total")));
        // A vanished divergences counter fails too.
        let gone = "{\"experiment\":\"fuzz\",\"seed\":1,\"cells\":10,\"seeds_per_cell\":8,\
                    \"fuzzed_runs\":80,\"fuzz_rounds_total\":4000,\"fuzz_updates_total\":50000}";
        let r = compare(&mk(0, 4000), gone, 0.10).unwrap();
        assert!(r.violations.iter().any(|v| v.contains("divergences missing")), "{r:?}");
    }

    #[test]
    fn real_runner_output_parses() {
        // The actual emitters must stay parseable by this gate.
        let rows = crate::runner::rows_json(
            "x",
            &[crate::runner::Row {
                system: "GRAPE+ (AAP)".into(),
                time: 1.0,
                rounds_max: 1,
                rounds_total: 2,
                updates: 3,
                bytes: 4,
                effective: 5,
                redundant: 6,
                stale: 0.5,
            }],
        );
        let parsed = parse_runner_output(&rows).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "x");
    }
}
