//! The reproduction harness CLI.
//!
//! ```sh
//! cargo run --release -p aap-bench --bin repro -- all          # everything -> stdout
//! cargo run --release -p aap-bench --bin repro -- all --write  # also update EXPERIMENTS.md
//! cargo run --release -p aap-bench --bin repro -- fig7 table1  # selected experiments
//! ```

use aap_bench::experiments as exp;
use std::io::Write;

const USAGE: &str = "usage: repro <experiment...> [--write] [--seed N]
options:
  --write    also update EXPERIMENTS.md (with `all`)
  --seed N   seed for the `json` experiment's dynamic delta round
             (default 0xDEC0, the BENCH_baseline.json seed)
experiments:
  all      every table and figure (writes the full report)
  fig1     Fig 1(a) timing diagrams (CC, 3 workers)
  table1   Table 1 (PageRank + SSSP across architectures)
  fig6a..fig6l   the twelve Fig 6 panels
  exp2     communication costs
  fig7     Fig 7 straggler case study (PageRank timing diagrams)
  appb     Appendix B CF staleness-bound robustness
  single   single-thread comparison (threaded engine wall-clock)
  serving  concurrent serving QPS + p50/p99 (readers x mutating writer,
           wall-clock)
  durability  differential vs full checkpoint bytes and reader QPS
           during in-flight background cuts (wall-clock, asserts the
           >=5x byte and >=0.8x QPS acceptance bars)
  rebalance  elastic in-place migration vs full re-partition after a
           skewed delta stream (wall-clock, asserts <=1.15 post-
           rebalance load ratio, >=5x over full re-partition, and
           identical fixpoints), plus the vertex-cut touched-fragment-
           proportional apply cost
  ablate   design-choice ablations
  fuzz     schedule-fuzz sweep: every mode x partitioning cell re-run
           under seeded hostile interleavings (ScheduleFuzz), fixpoints
           compared against the canonical schedule; panics naming the
           reproducing seed on any divergence
  trace    capture repro.trace.json (Chrome trace-event JSON) from a
           serving workload on both the threaded engine and the sim
           backend, then validate it
  json     machine-readable rows (incl. effective/redundant update
           counters and a dynamic-graph delta round) for cross-PR
           staleness tracking";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let write = args.iter().any(|a| a == "--write");
    let mut seed = exp::DEFAULT_JSON_SEED;
    let mut experiments: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write" => {}
            "--seed" => {
                seed = match it.next().and_then(|s| {
                    s.strip_prefix("0x")
                        .map(|h| u64::from_str_radix(h, 16).ok())
                        .unwrap_or_else(|| s.parse().ok())
                }) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed needs a number\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
            _ => experiments.push(a),
        }
    }
    let mut report = String::new();
    for a in experiments {
        let t0 = std::time::Instant::now();
        let body = match a.as_str() {
            "all" => exp::all(),
            "fig1" => exp::fig1(),
            "table1" => exp::table1(),
            "fig6a" => exp::fig6a(),
            "fig6b" => exp::fig6b(),
            "fig6c" => exp::fig6c(),
            "fig6d" => exp::fig6d(),
            "fig6e" => exp::fig6e(),
            "fig6f" => exp::fig6f(),
            "fig6g" => exp::fig6g(),
            "fig6h" => exp::fig6h(),
            "fig6i" => exp::fig6i(),
            "fig6j" => exp::fig6j(),
            "fig6k" => exp::fig6k(),
            "fig6l" => exp::fig6l(),
            "exp2" => exp::exp2(),
            "fig7" => exp::fig7(),
            "appb" => exp::appb(),
            "single" => exp::single_thread(),
            "serving" => exp::serving(),
            "durability" => exp::durability(),
            "rebalance" => exp::rebalance(),
            "ablate" => exp::ablate(),
            "fuzz" => exp::fuzz(),
            "trace" => exp::trace_capture(),
            "json" => exp::stats_json_seeded(seed),
            other => {
                eprintln!("unknown experiment {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        };
        eprintln!("[{a} finished in {:.1}s]", t0.elapsed().as_secs_f64());
        report.push_str(&body);
    }
    println!("{report}");
    if write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
        let header = "# EXPERIMENTS — paper vs measured\n\n\
            Generated by `cargo run --release -p aap-bench --bin repro -- all --write`.\n\
            Times are virtual units of the discrete-event simulator (except the\n\
            single-thread section, which is wall-clock). See DESIGN.md for the\n\
            dataset/system substitutions and README.md for how to read the shapes.\n\n";
        let mut f = std::fs::File::create(path).expect("write EXPERIMENTS.md");
        f.write_all(header.as_bytes()).unwrap();
        f.write_all(report.as_bytes()).unwrap();
        eprintln!("wrote {path}");
    }
}
