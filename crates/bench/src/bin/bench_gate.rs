//! The CI bench-regression gate.
//!
//! ```sh
//! # compare a fresh deterministic `repro json` run against the repo baseline
//! cargo run --release -p aap-bench --bin bench_gate
//!
//! # after an intentional behaviour change, refresh the baseline
//! cargo run --release -p aap-bench --bin bench_gate -- --write-baseline
//! ```
//!
//! Runs the seeded `json` experiment, optionally writes the raw output
//! to `--out` (uploaded as a CI artifact on every run), and diffs the
//! effective/redundant-update counters against `BENCH_baseline.json`,
//! exiting non-zero when staleness regresses beyond `--tolerance`
//! (default 0.10). Determinism makes the diff meaningful: same seed,
//! same simulator, same bytes on any machine.

use aap_bench::{baseline, experiments};
use std::path::PathBuf;

const USAGE: &str = "usage: bench_gate [--baseline PATH] [--out PATH] [--tolerance F] \
                     [--write-baseline]";

fn default_baseline() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = default_baseline();
    let mut out_path: Option<PathBuf> = None;
    let mut tolerance = 0.10f64;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--out" => out_path = Some(value("--out")),
            "--tolerance" => {
                tolerance = value("--tolerance").to_string_lossy().parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance needs a number\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("running deterministic `repro json` (seed {:#x})", experiments::DEFAULT_JSON_SEED);
    let t0 = std::time::Instant::now();
    let current = experiments::stats_json();
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());

    if let Some(out) = &out_path {
        std::fs::write(out, &current).expect("write --out artifact");
        eprintln!("wrote artifact {}", out.display());
    }
    if write_baseline {
        std::fs::write(&baseline_path, &current).expect("write baseline");
        eprintln!("wrote baseline {}", baseline_path.display());
        return;
    }

    let base = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cannot read baseline {}: {e}\n(generate it with --write-baseline)",
                baseline_path.display()
            );
            std::process::exit(1);
        }
    };
    let report = match baseline::compare(&base, &current, tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gate failed to parse runner output: {e}");
            std::process::exit(1);
        }
    };
    for line in &report.checks {
        println!("check {line}");
    }
    if report.passed() {
        println!(
            "bench gate PASSED: {} counters within tolerance {tolerance}",
            report.checks.len()
        );
    } else {
        println!("bench gate FAILED ({} violations):", report.violations.len());
        for v in &report.violations {
            println!("  REGRESSION {v}");
        }
        println!(
            "if this change is intentional, refresh the baseline:\n  \
             cargo run --release -p aap-bench --bin bench_gate -- --write-baseline"
        );
        std::process::exit(1);
    }
}
