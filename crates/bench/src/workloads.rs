//! Named workloads standing in for the paper's datasets (see DESIGN.md
//! "Substitutions"). Sizes are laptop-scale; every generator is
//! deterministic, so numbers in EXPERIMENTS.md are reproducible bit-for-bit.

use aap_graph::generate::{self, RatingsGraph};
use aap_graph::Graph;

/// Friendster stand-in: power-law social network with random weights.
pub fn friendster() -> Graph<(), u32> {
    generate::rmat(14, 10, true, 0xF12E)
}

/// UKWeb stand-in: denser power-law web graph.
pub fn ukweb() -> Graph<(), u32> {
    generate::rmat(13, 16, true, 0x0E8B)
}

/// US-road-network (`traffic`) stand-in: high-diameter 2-D lattice.
pub fn traffic() -> Graph<(), u32> {
    generate::lattice2d(80, 80, 0x7AF)
}

/// movieLens stand-in: small bipartite rating graph.
pub fn movielens() -> RatingsGraph {
    generate::bipartite_ratings(600, 120, 24, 8, 0x31)
}

/// Netflix stand-in: larger bipartite rating graph.
pub fn netflix() -> RatingsGraph {
    generate::bipartite_ratings(1500, 300, 32, 8, 0x4F)
}

/// Synthetic scale series for the scale-up experiments (Fig 6(i)/(j)):
/// graph size grows with the worker count.
pub fn scaled_powerlaw(workers: usize) -> Graph<(), u32> {
    let scale = 9 + (workers / 64).min(4) as u32;
    generate::rmat(scale, 10, true, 0x5CA1E + workers as u64)
}

/// The largest synthetic graph used by Fig 6(l).
pub fn big_synthetic() -> Graph<(), u32> {
    generate::rmat(14, 12, true, 0xB16)
}

#[cfg(test)]
mod tests {
    #[test]
    fn workloads_have_expected_shapes() {
        let f = super::friendster();
        assert_eq!(f.num_vertices(), 1 << 14);
        assert!(f.is_directed());
        let t = super::traffic();
        assert_eq!(t.num_vertices(), 80 * 80);
        assert!(!t.is_directed());
        let ml = super::movielens();
        assert_eq!(ml.num_users, 600);
        let s = super::scaled_powerlaw(320);
        assert!(s.num_vertices() > super::scaled_powerlaw(64).num_vertices());
    }
}
