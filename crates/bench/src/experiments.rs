//! One function per table/figure of the paper. Each returns a markdown
//! report fragment; `repro all` concatenates them into EXPERIMENTS.md.

use crate::runner::{aap_bounded, grape_modes, run_sim, series_table, table, Cluster, Row};
use crate::workloads;
use aap_algos::cf::{Cf, CfQuery};
use aap_algos::vertex_centric::{VcPageRank, VcSssp};
use aap_algos::{seq, ConnectedComponents, PageRank, Sssp, VertexCentric};
use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_core::policy::AapConfig;
use aap_core::Mode;
use aap_graph::partition::build_fragments_n;
use aap_graph::{Fragment, Graph, GraphBuilder};
use aap_sim::{render_gantt, CostModel, SimEngine, SimOpts};

/// PageRank settings used across experiments (ε relaxed for bench speed).
fn bench_pagerank() -> PageRank {
    PageRank { damping: 0.85, epsilon: 1e-3 }
}

fn bench_cf() -> Cf {
    Cf { dim: 8, lr: 0.03, lambda: 0.01, epochs: 8, seed: 42 }
}

// ---------------------------------------------------------------------
// Fig 1: the 3-worker timing diagrams.
// ---------------------------------------------------------------------

/// The Fig 1(b) instance: eight ring "components" chained across three
/// fragments (components 1,3,5 -> P0; 2,4,6 -> P1; 0,7 -> P2).
pub fn fig1_fragments() -> Vec<Fragment<(), u32>> {
    let n = 80;
    let mut b = GraphBuilder::new_undirected(n);
    for c in 0..8u32 {
        for i in 0..10u32 {
            b.add_edge(10 * c + i, 10 * c + (i + 1) % 10, 1);
        }
    }
    for (a, bb) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)] {
        b.add_edge(10 * a, 10 * bb, 1);
    }
    let g = b.build();
    let frag_of = |c: u32| match c {
        1 | 3 | 5 => 0u16,
        2 | 4 | 6 => 1,
        _ => 2,
    };
    let assignment: Vec<u16> = (0..n as u32).map(|v| frag_of(v / 10)).collect();
    build_fragments_n(&g, &assignment, 3)
}

/// Fig 1(a): CC under BSP/AP/SSP/AAP with per-round costs 3/3/6, latency 1.
pub fn fig1() -> String {
    let mut s = String::from(
        "## Fig 1(a) — runs of CC under the four models (3 workers, costs 3/3/6, latency 1)\n\n",
    );
    for (name, mode) in [
        ("BSP".to_string(), Mode::Bsp),
        ("AP".to_string(), Mode::Ap),
        ("SSP (c=1)".to_string(), Mode::Ssp { c: 1 }),
        ("AAP".to_string(), Mode::aap()),
    ] {
        let sim = SimEngine::new(
            fig1_fragments(),
            SimOpts {
                mode,
                latency: 1.0,
                cost: CostModel::FixedPerWorker(vec![3.0, 3.0, 6.0]),
                max_rounds: Some(10_000),
                ..SimOpts::default()
            },
        )
        .expect("fig1 sim opts are valid");
        let out = sim.run(&ConnectedComponents, &());
        assert!(out.out.iter().all(|&c| c == 0));
        s.push_str(&format!(
            "**{name}** — makespan {:.1}, rounds/worker {:?}\n\n```text\n{}```\n\n",
            out.stats.makespan,
            out.stats.workers.iter().map(|w| w.rounds).collect::<Vec<_>>(),
            render_gantt(&out.timelines, 72)
        ));
    }
    s
}

// ---------------------------------------------------------------------
// Table 1: PageRank & SSSP across system architectures.
// ---------------------------------------------------------------------

/// Table 1: seven systems on PageRank and SSSP over the Friendster
/// stand-in, 192 workers. Vertex-centric (VC) engines model
/// Giraph/GraphLab/GiraphUC; PIE×AP models Maiter's accumulative engine;
/// VC×Hsync models PowerSwitch; PIE×AAP is GRAPE+.
pub fn table1() -> String {
    let g = workloads::friendster();
    let cluster = Cluster::balanced(192);
    let mut s = String::from(
        "## Table 1 — PageRank and SSSP on different system architectures (192 workers)\n\n",
    );

    let mut rows: Vec<Row> = Vec::new();
    let pr = bench_pagerank();
    let vc_pr = VertexCentric(VcPageRank { damping: 0.85, iterations: 40 });
    rows.push(run_sim(&cluster, &g, &vc_pr, &(), "Giraph / GraphLab-sync (VC x BSP)", Mode::Bsp).0);
    rows.push(
        run_sim(&cluster, &g, &vc_pr, &(), "GraphLab-async / GiraphUC (VC x AP)", Mode::Ap).0,
    );
    rows.push(run_sim(&cluster, &g, &pr, &(), "Maiter (accumulative x AP)", Mode::Ap).0);
    rows.push(
        run_sim(
            &cluster,
            &g,
            &vc_pr,
            &(),
            "PowerSwitch (VC x Hsync)",
            Mode::Hsync(Default::default()),
        )
        .0,
    );
    rows.push(run_sim(&cluster, &g, &pr, &(), "GRAPE (PIE x BSP)", Mode::Bsp).0);
    let grape_plus = run_sim(&cluster, &g, &pr, &(), "GRAPE+ (PIE x AAP)", Mode::aap()).0;
    rows.push(grape_plus);
    s.push_str(&table("PageRank (Friendster stand-in)", &rows));

    let mut rows: Vec<Row> = Vec::new();
    let src = 0u32;
    rows.push(
        run_sim(
            &cluster,
            &g,
            &VertexCentric(VcSssp),
            &src,
            "Giraph / GraphLab-sync (VC x BSP)",
            Mode::Bsp,
        )
        .0,
    );
    rows.push(
        run_sim(
            &cluster,
            &g,
            &VertexCentric(VcSssp),
            &src,
            "GraphLab-async / GiraphUC (VC x AP)",
            Mode::Ap,
        )
        .0,
    );
    rows.push(run_sim(&cluster, &g, &Sssp, &src, "Maiter (accumulative x AP)", Mode::Ap).0);
    rows.push(
        run_sim(
            &cluster,
            &g,
            &VertexCentric(VcSssp),
            &src,
            "PowerSwitch (VC x Hsync)",
            Mode::Hsync(Default::default()),
        )
        .0,
    );
    rows.push(run_sim(&cluster, &g, &Sssp, &src, "GRAPE (PIE x BSP)", Mode::Bsp).0);
    rows.push(run_sim(&cluster, &g, &Sssp, &src, "GRAPE+ (PIE x AAP)", Mode::aap()).0);
    s.push_str(&table("SSSP (Friendster stand-in)", &rows));
    s
}

// ---------------------------------------------------------------------
// Fig 6(a)-(h): efficiency varying the number of workers.
// ---------------------------------------------------------------------

fn fig6_graph_panel<P>(
    title: &str,
    g: &Graph<(), u32>,
    prog: &P,
    q: &P::Query,
    modes: Vec<(String, Mode)>,
) -> String
where
    P: PieProgram<(), u32>,
{
    let ns = [64usize, 128, 192];
    let mut series: Vec<(String, Vec<f64>)> =
        modes.iter().map(|(n, _)| (n.clone(), Vec::new())).collect();
    for &n in &ns {
        let mut cluster = Cluster::balanced(n);
        cluster.skew = 2.0; // the §7 "reshuffled, skewed" inputs
        for (i, (label, mode)) in modes.iter().enumerate() {
            let (row, _, _) = run_sim(&cluster, g, prog, q, label, mode.clone());
            series[i].1.push(row.time);
        }
    }
    series_table(title, "workers", &ns.iter().map(|n| n.to_string()).collect::<Vec<_>>(), &series)
}

/// Fig 6(a): SSSP on traffic.
pub fn fig6a() -> String {
    fig6_graph_panel(
        "Fig 6(a) — SSSP (traffic stand-in), time vs workers",
        &workloads::traffic(),
        &Sssp,
        &0,
        grape_modes(),
    )
}

/// Fig 6(b): SSSP on Friendster.
pub fn fig6b() -> String {
    fig6_graph_panel(
        "Fig 6(b) — SSSP (Friendster stand-in), time vs workers",
        &workloads::friendster(),
        &Sssp,
        &0,
        grape_modes(),
    )
}

/// Fig 6(c): CC on traffic.
pub fn fig6c() -> String {
    fig6_graph_panel(
        "Fig 6(c) — CC (traffic stand-in), time vs workers",
        &workloads::traffic(),
        &ConnectedComponents,
        &(),
        grape_modes(),
    )
}

/// Fig 6(d): CC on Friendster.
pub fn fig6d() -> String {
    fig6_graph_panel(
        "Fig 6(d) — CC (Friendster stand-in), time vs workers",
        &workloads::friendster(),
        &ConnectedComponents,
        &(),
        grape_modes(),
    )
}

/// Fig 6(e): PageRank on Friendster.
pub fn fig6e() -> String {
    fig6_graph_panel(
        "Fig 6(e) — PageRank (Friendster stand-in), time vs workers",
        &workloads::friendster(),
        &bench_pagerank(),
        &(),
        grape_modes(),
    )
}

/// Fig 6(f): PageRank on UKWeb.
pub fn fig6f() -> String {
    fig6_graph_panel(
        "Fig 6(f) — PageRank (UKWeb stand-in), time vs workers",
        &workloads::ukweb(),
        &bench_pagerank(),
        &(),
        grape_modes(),
    )
}

fn fig6_cf_panel(title: &str, ratings: &aap_graph::generate::RatingsGraph) -> String {
    let ns = [64usize, 128, 192];
    let cf = bench_cf();
    let q = CfQuery { item_base: ratings.item_base() };
    let modes: Vec<(String, Mode)> = vec![
        ("GRAPE+ (AAP c=3)".into(), aap_bounded(3)),
        ("GRAPE+BSP".into(), Mode::Bsp),
        ("GRAPE+AP".into(), Mode::Ap),
        ("GRAPE+SSP (c=3)".into(), Mode::Ssp { c: 3 }),
    ];
    let mut series: Vec<(String, Vec<f64>)> =
        modes.iter().map(|(n, _)| (n.clone(), Vec::new())).collect();
    let mut rmse_note = String::from("final RMSE at 192 workers:");
    for &n in &ns {
        let cluster = Cluster::balanced(n);
        for (i, (label, mode)) in modes.iter().enumerate() {
            let (row, out, _) = run_sim(&cluster, &ratings.graph, &cf, &q, label, mode.clone());
            // CF needs bounded staleness (§5.2): the bounded modes must
            // converge; pure AP is expected to train poorly (it stays
            // finite only thanks to factor clamping).
            if !matches!(mode, Mode::Ap) {
                assert!(out.rmse < 0.6, "CF diverged under {label}: rmse {}", out.rmse);
            }
            if n == *ns.last().unwrap() {
                rmse_note.push_str(&format!(" {label} {:.3};", out.rmse));
            }
            series[i].1.push(row.time);
        }
    }
    let mut s = series_table(
        title,
        "workers",
        &ns.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
        &series,
    );
    s.push_str(&format!(
        "{rmse_note} — bounded staleness is required for CF quality (§5.2); AP's poor RMSE reproduces that claim.\n\n"
    ));
    s
}

/// Fig 6(g): CF on movieLens.
pub fn fig6g() -> String {
    fig6_cf_panel("Fig 6(g) — CF (movieLens stand-in), time vs workers", &workloads::movielens())
}

/// Fig 6(h): CF on Netflix.
pub fn fig6h() -> String {
    fig6_cf_panel("Fig 6(h) — CF (Netflix stand-in), time vs workers", &workloads::netflix())
}

// ---------------------------------------------------------------------
// Fig 6(i)/(j): scale-up — graph size grows with the cluster.
// ---------------------------------------------------------------------

fn scale_up<P>(title: &str, prog: &P, q: &P::Query) -> String
where
    P: PieProgram<(), u32>,
{
    let ns = [64usize, 128, 192, 256, 320];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &ns {
        let g = workloads::scaled_powerlaw(n);
        let cluster = Cluster::balanced(n);
        let (row, _, _) = run_sim(&cluster, &g, prog, q, "AAP", Mode::aap());
        xs.push(format!("{n} ({}V/{}E)", g.num_vertices(), g.num_edges()));
        ys.push(row.time);
    }
    let base = ys[0].max(1e-12);
    let ratios: Vec<f64> = ys.iter().map(|y| y / base).collect();
    series_table(
        title,
        "workers (graph)",
        &xs,
        &[("time".into(), ys.clone()), ("ratio vs smallest".into(), ratios)],
    )
}

/// Fig 6(i): scale-up of SSSP (flat ratio = good scale-up).
pub fn fig6i() -> String {
    scale_up("Fig 6(i) — scale-up, SSSP under AAP", &Sssp, &0)
}

/// Fig 6(j): scale-up of PageRank.
pub fn fig6j() -> String {
    scale_up("Fig 6(j) — scale-up, PageRank under AAP", &bench_pagerank(), &())
}

// ---------------------------------------------------------------------
// Fig 6(k): impact of partition skew.
// ---------------------------------------------------------------------

/// Fig 6(k): SSSP over increasingly skewed partitions; x = measured
/// `r = ‖Fmax‖/‖Fmedian‖`.
pub fn fig6k() -> String {
    let g = workloads::friendster();
    let mut xs = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> =
        grape_modes().iter().map(|(n, _)| (n.clone(), Vec::new())).collect();
    for skew in [1.0f64, 3.0, 5.0, 7.0, 9.0] {
        let mut cluster = Cluster::balanced(64);
        cluster.skew = skew;
        let frags = cluster.fragments(&g);
        let measured = aap_graph::fragment::partition_stats(&frags).skew_r;
        xs.push(format!("{measured:.1}"));
        for (i, (label, mode)) in grape_modes().iter().enumerate() {
            let (row, _, _) = run_sim(&cluster, &g, &Sssp, &0, label, mode.clone());
            series[i].1.push(row.time);
        }
    }
    series_table("Fig 6(k) — SSSP vs partition skew r (64 workers)", "measured r", &xs, &series)
}

/// Fig 6(l): AAP vs the other models on the largest synthetic graph with
/// 192–320 workers.
pub fn fig6l() -> String {
    let g = workloads::big_synthetic();
    let ns = [192usize, 256, 320];
    let mut series: Vec<(String, Vec<f64>)> =
        grape_modes().iter().map(|(n, _)| (n.clone(), Vec::new())).collect();
    for &n in &ns {
        let mut cluster = Cluster::balanced(n);
        cluster.skew = 2.0;
        for (i, (label, mode)) in grape_modes().iter().enumerate() {
            let (row, _, _) = run_sim(&cluster, &g, &bench_pagerank(), &(), label, mode.clone());
            series[i].1.push(row.time);
        }
    }
    series_table(
        &format!(
            "Fig 6(l) — PageRank on the largest synthetic graph ({}V/{}E)",
            g.num_vertices(),
            g.num_edges()
        ),
        "workers",
        &ns.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
        &series,
    )
}

// ---------------------------------------------------------------------
// Exp-2: communication.
// ---------------------------------------------------------------------

/// Exp-2: bytes shipped by GRAPE+ vs its own BSP/AP/SSP modes (the §7
/// claim: AAP's communication is ~1.2x BSP, ~0.4x AP, ~1.02x SSP).
pub fn exp2() -> String {
    let g = workloads::friendster();
    let mut cluster = Cluster::balanced(96);
    cluster.skew = 2.0;
    let mut s = String::from("## Exp-2 — communication cost (Friendster stand-in, 96 workers)\n\n");
    for (prog_name, rows) in [
        ("PageRank", {
            let pr = bench_pagerank();
            grape_modes()
                .into_iter()
                .map(|(label, mode)| run_sim(&cluster, &g, &pr, &(), &label, mode).0)
                .collect::<Vec<_>>()
        }),
        ("SSSP", {
            grape_modes()
                .into_iter()
                .map(|(label, mode)| run_sim(&cluster, &g, &Sssp, &0, &label, mode).0)
                .collect::<Vec<_>>()
        }),
    ] {
        let aap = rows[0].bytes.max(1) as f64;
        s.push_str(&format!("### {prog_name}\n\n| mode | bytes | AAP / mode |\n|---|---:|---:|\n"));
        for r in &rows {
            s.push_str(&format!(
                "| {} | {} | {:.2} |\n",
                r.system,
                r.bytes,
                aap / r.bytes.max(1) as f64
            ));
        }
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------
// Fig 7: the straggler case study.
// ---------------------------------------------------------------------

/// Fig 7: PageRank timing diagrams on 32 workers with straggler P12
/// (4x slower), under BSP / AP / SSP(c=5) / AAP.
pub fn fig7() -> String {
    let g = workloads::friendster();
    let cluster = Cluster::with_straggler(32, 12, 4.0);
    let pr = bench_pagerank();
    let mut s = String::from("## Fig 7 — PageRank with straggler P12 (32 workers, 4x slower)\n\n");
    let mut rows = Vec::new();
    for (name, mode) in [
        ("(a) BSP".to_string(), Mode::Bsp),
        ("(b) AP".to_string(), Mode::Ap),
        ("(c) SSP (c=5)".to_string(), Mode::Ssp { c: 5 }),
        ("(d) AAP".to_string(), Mode::aap()),
    ] {
        let (row, _, timelines) = run_sim(&cluster, &g, &pr, &(), &name, mode);
        let straggler_rounds = timelines[12].rounds();
        s.push_str(&format!(
            "**{name}** — makespan {:.0}, straggler rounds {}, total updates {}\n\n```text\n{}```\n\n",
            row.time,
            straggler_rounds,
            row.updates,
            render_gantt(&timelines[8..16.min(timelines.len())], 80)
        ));
        rows.push(row);
    }
    s.push_str(&table("Fig 7 summary", &rows));
    s
}

// ---------------------------------------------------------------------
// Appendix B: CF staleness-bound robustness.
// ---------------------------------------------------------------------

/// Appendix B CF case study: SSP needs a hand-tuned `c`; AAP is robust to
/// the choice of `c`.
pub fn appb() -> String {
    let ratings = workloads::netflix();
    let q = CfQuery { item_base: ratings.item_base() };
    let cf = bench_cf();
    let cluster = Cluster::with_straggler(64, 5, 3.0);
    let cs = [2u32, 5, 10, 25, 50];
    let mut xs = Vec::new();
    let mut ssp = Vec::new();
    let mut aap = Vec::new();
    for &c in &cs {
        xs.push(format!("c={c}"));
        let (row, out, _) = run_sim(&cluster, &ratings.graph, &cf, &q, "SSP", Mode::Ssp { c });
        assert!(out.rmse < 0.6);
        ssp.push(row.time);
        let (row, out, _) = run_sim(&cluster, &ratings.graph, &cf, &q, "AAP", aap_bounded(c));
        assert!(out.rmse < 0.6);
        aap.push(row.time);
    }
    let mut s = series_table(
        "Appendix B — CF on Netflix stand-in (64 workers, straggler): sensitivity to staleness bound c",
        "bound",
        &xs,
        &[("SSP".into(), ssp.clone()), ("AAP".into(), aap.clone())],
    );
    let spread = |v: &[f64]| {
        let mx = v.iter().cloned().fold(f64::MIN, f64::max);
        let mn = v.iter().cloned().fold(f64::MAX, f64::min);
        mx / mn
    };
    s.push_str(&format!(
        "SSP max/min over c: {:.2}; AAP max/min over c: {:.2} (lower = more robust)\n\n",
        spread(&ssp),
        spread(&aap)
    ));
    s
}

// ---------------------------------------------------------------------
// Single-thread comparison (Exp-1 tail).
// ---------------------------------------------------------------------

/// §7 Exp-1 single-thread comparison: real wall-clock of the *threaded*
/// engine vs the sequential reference, varying thread counts.
pub fn single_thread() -> String {
    use aap_core::{Engine, EngineOpts};
    use std::time::Instant;
    let g = workloads::traffic();
    let mut s = String::from("## Single-thread comparison (threaded engine, wall-clock)\n\n");
    let t0 = Instant::now();
    let seq_d = seq::dijkstra(&g, 0);
    let seq_time = t0.elapsed().as_secs_f64();
    s.push_str(&format!(
        "sequential Dijkstra on traffic ({} vertices): {:.4}s\n\n| threads | engine time (s) | speedup vs seq |\n|---:|---:|---:|\n",
        g.num_vertices(),
        seq_time
    ));
    for threads in [1usize, 2, 4, 8] {
        let assignment = aap_graph::partition::range_partition(&g, 8);
        let frags = aap_graph::partition::build_fragments_n(&g, &assignment, 8);
        let engine = Engine::new(
            frags,
            EngineOpts { threads, mode: Mode::aap(), max_rounds: Some(100_000) },
        );
        let t0 = Instant::now();
        let run = engine.run(&Sssp, &0);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(run.out, seq_d);
        s.push_str(&format!("| {threads} | {dt:.4} | {:.2}x |\n", seq_time / dt));
    }
    s.push('\n');
    s
}

// ---------------------------------------------------------------------
// Ablations of the design choices (§3's "three directions").
// ---------------------------------------------------------------------

/// A deliberately non-incremental CC: every `IncEval` recomputes local
/// components from scratch (what GRAPE's incremental evaluation saves).
struct NonIncCc;

/// State: the recomputed CC state, the full message history to replay, and
/// the last value emitted per border vertex (so quiescence is reached —
/// a from-scratch recompute otherwise re-announces everything forever).
type NonIncState = (aap_algos::cc::CcState, Vec<(u32, u32)>, aap_graph::FxHashMap<u32, u32>);

impl PieProgram<(), u32> for NonIncCc {
    type Query = ();
    type Val = u32;
    type State = NonIncState;
    type Out = Vec<u32>;

    fn combine(&self, a: &mut u32, b: u32) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(&self, q: &(), frag: &Fragment<(), u32>, ctx: &mut UpdateCtx<u32>) -> Self::State {
        (ConnectedComponents.peval(q, frag, ctx), Vec::new(), Default::default())
    }

    fn inceval(
        &self,
        q: &(),
        frag: &Fragment<(), u32>,
        state: &mut Self::State,
        msgs: &mut Messages<u32>,
        ctx: &mut UpdateCtx<u32>,
    ) {
        // Remember all external bounds seen so far, then recompute the
        // whole local result from scratch and re-apply them — a batch
        // algorithm in place of the incremental one.
        for (l, v) in msgs.drain(..) {
            state.1.push((l, v));
        }
        let mut scratch_ctx = UpdateCtx::new();
        let mut fresh = ConnectedComponents.peval(q, frag, &mut scratch_ctx);
        let mut replay: Messages<u32> = state.1.clone();
        let mut ctx2 = UpdateCtx::new();
        ConnectedComponents.inceval(q, frag, &mut fresh, &mut replay, &mut ctx2);
        ctx.charge_work((frag.edge_count() + frag.local_count()) as u64);
        // Recomputation always "changes" every value relative to scratch;
        // ship only strictly-improved values (the initial from-scratch
        // announcements already went out with the real PEval round).
        drop(scratch_ctx);
        let (updates, _) = ctx2.take();
        for (l, v) in updates {
            if state.2.get(&l).is_none_or(|&prev| v < prev) {
                state.2.insert(l, v);
                ctx.send(l, v);
            }
        }
        state.0 = fresh;
    }

    fn assemble(
        &self,
        q: &(),
        frags: &[std::sync::Arc<Fragment<(), u32>>],
        states: Vec<Self::State>,
    ) -> Vec<u32> {
        ConnectedComponents.assemble(q, frags, states.into_iter().map(|s| s.0).collect())
    }
}

/// Ablations: (a) dynamic `Li` adjustment, (b) the delay stretch itself,
/// (c) incremental vs recompute-from-scratch `IncEval` — matching the
/// paper's attribution of AAP's gains.
pub fn ablate() -> String {
    let g = workloads::friendster();
    let cluster = Cluster::with_straggler(32, 5, 4.0);
    let pr = bench_pagerank();
    let mut rows = Vec::new();
    let variants: Vec<(String, Mode)> = vec![
        ("AAP (full)".into(), Mode::aap()),
        (
            "AAP w/o dynamic Li (fixed L=4)".into(),
            Mode::Aap(AapConfig { l_floor: 4.0, delta_fraction: 0.0, ..AapConfig::default() }),
        ),
        (
            "AAP w/o delay stretch (= AP)".into(),
            Mode::Aap(AapConfig { max_wait_rounds: 0.0, ..AapConfig::default() }),
        ),
        ("AP".into(), Mode::Ap),
        ("BSP".into(), Mode::Bsp),
    ];
    for (label, mode) in variants {
        rows.push(run_sim(&cluster, &g, &pr, &(), &label, mode).0);
    }
    let mut s = String::from("## Ablations\n\n");
    s.push_str(&table("(a)+(b) delay stretch and dynamic Li (PageRank, straggler cluster)", &rows));

    // (c) incremental IncEval.
    let tr = workloads::traffic();
    let cluster = Cluster::balanced(32);
    let inc =
        run_sim(&cluster, &tr, &ConnectedComponents, &(), "CC (incremental IncEval)", Mode::Bsp).0;
    let noninc = run_sim(&cluster, &tr, &NonIncCc, &(), "CC (recompute IncEval)", Mode::Bsp).0;
    s.push_str(&table("(c) incremental vs batch IncEval (CC on traffic, BSP)", &[inc, noninc]));
    s
}

// ---------------------------------------------------------------------
// Concurrent serving: epoch-published fixpoints (ISSUE 6).
// ---------------------------------------------------------------------

/// Wall-clock serving throughput: N [`aap_session::SessionReader`]
/// threads serve the retained SSSP fixpoint over lock-free epoch reads
/// while one writer streams mutation batches — versus the single-threaded
/// `&mut Session::query` path, which clones the full output vector per
/// call. Reports aggregate QPS and p50/p99 read latency per
/// configuration, and asserts the acceptance bar: ≥4 concurrent readers
/// sustain ≥3x the mutable path's QPS.
pub fn serving() -> String {
    use aap_session::{edge_cut, Session};
    use std::time::Instant;

    const READERS: usize = 4;
    const READS: usize = 100_000;

    fn pctl(sorted_ns: &[u64], p: f64) -> f64 {
        let i = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
        sorted_ns[i] as f64 / 1_000.0
    }

    let g = aap_graph::generate::rmat(13, 8, true, 33);
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(READERS))
        .program("sssp", Sssp)
        .open()
        .expect("session");
    let n = session.query::<Sssp>("sssp", &0).expect("retain the fixpoint").len();

    // (a) The `&mut self` path: one thread, full output clone per call.
    let mut lat = Vec::with_capacity(READS);
    let t0 = Instant::now();
    for _ in 0..READS {
        let t = Instant::now();
        std::hint::black_box(session.query::<Sssp>("sssp", &0).expect("query").len());
        lat.push(t.elapsed().as_nanos() as u64);
    }
    let mut_qps = READS as f64 / t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    let (mut_p50, mut_p99) = (pctl(&lat, 0.50), pctl(&lat, 0.99));

    // (b) One reader handle, writer idle: the epoch-read fast path.
    let reader = session.reader();
    let mut lat = Vec::with_capacity(READS);
    let t0 = Instant::now();
    for _ in 0..READS {
        let t = Instant::now();
        std::hint::black_box(reader.query::<Sssp>("sssp", &0).expect("read").expect("published"));
        lat.push(t.elapsed().as_nanos() as u64);
    }
    let one_qps = READS as f64 / t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    let (one_p50, one_p99) = (pctl(&lat, 0.50), pctl(&lat, 0.99));

    // (c) READERS threads under a mutating delta stream: the writer keeps
    // applying seeded insert batches until every reader finishes its quota.
    let t0 = Instant::now();
    let (mut lat, batches): (Vec<u64>, usize) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let reader = session.reader();
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(READS);
                    for _ in 0..READS {
                        let t = Instant::now();
                        std::hint::black_box(
                            reader.query::<Sssp>("sssp", &0).unwrap().expect("published"),
                        );
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut batches = 0usize;
        let mut seed = 0x5EEDu64;
        while !handles.iter().all(|h| h.is_finished()) {
            let delta = aap_delta::generate::insert_batch(&g, 64, 9, seed);
            seed = seed.wrapping_add(1);
            session.apply(&delta).expect("apply");
            batches += 1;
        }
        (handles.into_iter().flat_map(|h| h.join().unwrap()).collect(), batches)
    });
    let conc_qps = (READERS * READS) as f64 / t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    let (conc_p50, conc_p99) = (pctl(&lat, 0.50), pctl(&lat, 0.99));

    let ratio = conc_qps / mut_qps;
    assert!(
        ratio >= 3.0,
        "{READERS} concurrent readers reached only {ratio:.2}x the &mut path's QPS"
    );
    format!(
        "## Concurrent serving — epoch-published fixpoints (wall-clock)\n\n\
         rmat 2^13 (deg 8, weighted): retained SSSP output of {n} distances, \
         {READS} reads per thread.\n\n\
         | config | threads | aggregate QPS | p50 (µs) | p99 (µs) |\n\
         |---|---:|---:|---:|---:|\n\
         | `&mut Session::query` (clones output) | 1 | {mut_qps:.0} | {mut_p50:.2} | {mut_p99:.2} |\n\
         | `SessionReader`, writer idle | 1 | {one_qps:.0} | {one_p50:.2} | {one_p99:.2} |\n\
         | `SessionReader` x {READERS}, mutating writer | {READERS} | {conc_qps:.0} | {conc_p50:.2} | {conc_p99:.2} |\n\n\
         {READERS}-reader aggregate = {ratio:.1}x the `&mut` path (acceptance: >=3x); \
         the writer applied {batches} delta batches mid-stream.\n\n"
    )
}

/// Streaming durability: differential checkpoint cost vs a full
/// rewrite after a *localized* 0.1% batch, and reader throughput while
/// a background consistent cut is in flight (wall-clock).
///
/// Asserts the two acceptance bars of the durability redesign:
/// differential bytes ≥5x cheaper than full on the localized batch,
/// and aggregate reader QPS during in-flight cuts ≥0.8x the
/// no-checkpoint QPS (the cut must never block serving or applies).
pub fn durability() -> String {
    use aap_session::{edge_cut, DurabilityPolicy, Session};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    let scratch = std::env::temp_dir().join(format!("aap_repro_durability_{}", std::process::id()));

    // --- (a) differential vs full after one localized 0.1% batch ---
    let g = aap_graph::generate::rmat(14, 8, true, 21);
    let workers = 8usize;
    let assignment = aap_graph::partition::hash_partition(&g, workers);
    let pool: Vec<u32> =
        (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();
    let batch = (g.num_edges() / 1000).max(8);
    let open = |name: &str, differential: bool| {
        let d = scratch.join(name);
        std::fs::remove_dir_all(&d).ok();
        let mut s = Session::builder(g.clone())
            .partition(edge_cut(workers))
            .program("sssp", Sssp)
            .durability(DurabilityPolicy::new(&d).differential(differential))
            .expect("durability")
            .open()
            .expect("durable session");
        s.query::<Sssp>("sssp", &0).expect("retain the fixpoint");
        s.checkpoint().expect("baseline epoch");
        s
    };
    let mut full = open("full", false);
    let mut diff = open("diff", true);
    let probe = aap_delta::generate::insert_batch_within(&pool, batch, 16, 0xA5A5);
    full.apply(&probe).expect("apply");
    diff.apply(&probe).expect("apply");
    let rf = full.checkpoint().expect("full checkpoint");
    let rd = diff.checkpoint().expect("differential checkpoint");
    assert!(!rf.differential && rd.differential, "policies must diverge");
    let byte_ratio = rf.bytes as f64 / rd.bytes.max(1) as f64;
    assert!(
        byte_ratio >= 5.0,
        "differential checkpoint must be >=5x cheaper than full after a localized \
         0.1% batch: full {} bytes vs differential {} bytes ({byte_ratio:.1}x)",
        rf.bytes,
        rd.bytes
    );
    drop(full);
    drop(diff);

    // --- (b) reader QPS while a background cut is in flight ---
    // Full (non-differential) cuts maximize the in-flight window — the
    // hardest case for the non-blocking claim.
    let g2 = aap_graph::generate::rmat(15, 8, true, 33);
    let d = scratch.join("bg");
    std::fs::remove_dir_all(&d).ok();
    let mut session = Session::builder(g2.clone())
        .partition(edge_cut(4))
        .program("sssp", Sssp)
        .durability(DurabilityPolicy::new(&d).differential(false).background(true))
        .expect("durability")
        .open()
        .expect("durable session");
    session.query::<Sssp>("sssp", &0).expect("retain the fixpoint");
    session.checkpoint().expect("baseline epoch");

    let in_window = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let ballast_stop = AtomicBool::new(false);
    let window_reads = AtomicU64::new(0);
    const WINDOW: Duration = Duration::from_millis(300);

    // The baseline window runs a *ballast* thread doing the same
    // serialization work a cut thread would, so both windows have the
    // identical number of runnable threads. On a core-starved machine
    // the raw spin-read rate measures scheduler fairness, not the
    // session; equalizing CPU load isolates what the bar is actually
    // about — the cut must never take a lock the readers (or the
    // writer) wait on. Deep copies, not `Arc` clones: holding the live
    // fragment `Arc`s would trip the strict apply path's exclusivity
    // check while no cut is in flight.
    let ballast_frags: Vec<_> = session.fragments().iter().map(|a| (**a).clone()).collect();

    // If anything in the scope body panics, the spawned threads must
    // still be told to stop — `thread::scope` joins them before it
    // propagates the panic, and a spinning reader never joins.
    struct StopOnDrop<'a>(&'a AtomicBool, &'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
            self.1.store(true, Ordering::Relaxed);
        }
    }

    let (baseline_qps, cut_qps, cuts, applies_during) = std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(&stop, &ballast_stop);
        let reader = session.reader();
        let (in_window, stop, window_reads) = (&in_window, &stop, &window_reads);
        let h = s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::hint::black_box(
                    reader.query::<Sssp>("sssp", &0).expect("read").expect("published"),
                );
                if in_window.load(Ordering::Relaxed) {
                    window_reads.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        let mut seed = 0x5EEDu64;

        // Baseline window: the writer streams applies, no cut in
        // flight, ballast serializing alongside.
        let ballast = {
            let (frags, ballast_stop) = (&ballast_frags, &ballast_stop);
            s.spawn(move || {
                while !ballast_stop.load(Ordering::Relaxed) {
                    std::hint::black_box(
                        aap_snapshot::snapshot_to_bytes::<(), u32, u64, _>(frags, None).len(),
                    );
                }
            })
        };
        let t0 = Instant::now();
        in_window.store(true, Ordering::Relaxed);
        while t0.elapsed() < WINDOW {
            let delta = aap_delta::generate::insert_batch(&g2, 64, 9, seed);
            seed = seed.wrapping_add(1);
            session.apply(&delta).expect("apply");
        }
        let baseline_secs = t0.elapsed().as_secs_f64();
        in_window.store(false, Ordering::Relaxed);
        ballast_stop.store(true, Ordering::Relaxed);
        ballast.join().expect("ballast thread");
        let baseline_qps = window_reads.swap(0, Ordering::Relaxed) as f64 / baseline_secs;

        // Cut windows: identical writer traffic, but measured only
        // while a background checkpoint is serializing. The applies
        // landing inside the window prove the cut never blocks them.
        let mut in_cut = Duration::ZERO;
        let mut cuts = 0u32;
        let mut applies_during = 0u64;
        while in_cut < WINDOW && cuts < 64 {
            let t = Instant::now();
            in_window.store(true, Ordering::Relaxed);
            let handle = session.checkpoint_background().expect("background cut");
            while !handle.is_done() {
                let delta = aap_delta::generate::insert_batch(&g2, 64, 9, seed);
                seed = seed.wrapping_add(1);
                session.apply(&delta).expect("apply during cut");
                applies_during += 1;
            }
            in_window.store(false, Ordering::Relaxed);
            in_cut += t.elapsed();
            handle.wait().expect("cut committed");
            session.finish_checkpoint().expect("harvest");
            cuts += 1;
        }
        let cut_qps = window_reads.load(Ordering::Relaxed) as f64 / in_cut.as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        h.join().expect("reader thread");
        (baseline_qps, cut_qps, cuts, applies_during)
    });
    assert!(applies_during > 0, "no apply landed inside a cut window");
    let qps_ratio = cut_qps / baseline_qps;
    assert!(
        qps_ratio >= 0.8,
        "reader QPS collapsed during background cuts: {qps_ratio:.2}x the no-checkpoint \
         baseline ({cut_qps:.0} vs {baseline_qps:.0})"
    );
    drop(session);
    std::fs::remove_dir_all(&scratch).ok();

    format!(
        "## Streaming durability — differential checkpoints and background cuts (wall-clock)\n\n\
         rmat 2^14 (deg 8, weighted), 8 fragments, one localized 0.1% insert batch\n\
         (all endpoints owned by fragment 0):\n\n\
         | checkpoint | bytes | fragments written | fragments skipped |\n\
         |---|---:|---:|---:|\n\
         | full rewrite | {} | {} | {} |\n\
         | differential epoch | {} | {} | {} |\n\n\
         differential is {byte_ratio:.1}x cheaper (acceptance: >=5x).\n\n\
         Background consistent cuts (rmat 2^15, 4 fragments, full cuts, mutating writer,\n\
         CPU-load-equalized baseline):\n\n\
         | window | aggregate reader QPS |\n\
         |---|---:|\n\
         | no checkpoint in flight | {baseline_qps:.0} |\n\
         | background cut in flight | {cut_qps:.0} |\n\n\
         {cut_qps_pct:.0}% of baseline across {cuts} cuts (acceptance: >=80%); the writer \
         applied {applies_during} delta batches *inside* cut windows.\n\n",
        rf.bytes,
        rf.fragments_written,
        rf.fragments_skipped,
        rd.bytes,
        rd.fragments_written,
        rd.fragments_skipped,
        cut_qps_pct = 100.0 * qps_ratio,
    )
}

/// Elastic rebalancing case study (`repro rebalance`, wall-clock).
///
/// A skewed delta stream (64 batches, every inserted edge sourced at a
/// vertex fragment 0 owns) drives one fragment of an rmat 2^15 edge-cut
/// partition far over the load threshold; `Session::rebalance()` then
/// heals it **in place**. Asserts the three acceptance bars of the
/// elastic-partition subsystem:
///
/// * post-rebalance `max/mean` fragment load ≤ 1.15;
/// * the in-place migration beats a full re-partition (reassemble →
///   re-hash → rebuild → cold rerun) by ≥ 5x wall-clock;
/// * the rebalanced warm fixpoint is **identical** to the full
///   re-partition's cold fixpoint.
///
/// The vertex-cut section shows the retired fallback: a delta apply
/// confined to one pair-hash bucket costs a touched-fragment repack,
/// not a full re-partition — both are timed for contrast.
pub fn rebalance() -> String {
    use aap_balance::BalancePolicy;
    use aap_delta::apply::apply_to_fragments_par;
    use aap_graph::mutate::{reassemble, EditBuffers};
    use aap_session::{edge_cut, Session};
    use std::time::Instant;

    let workers = 8usize;
    let g = aap_graph::generate::rmat(15, 8, true, 21);
    let assignment = aap_graph::partition::hash_partition(&g, workers);
    let hot: Vec<u32> =
        (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();

    let mut session = Session::builder(g.clone())
        .partition(edge_cut(workers))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .balance(BalancePolicy::new().max_imbalance(1.15).migration_budget(1 << 14))
        .open()
        .expect("balanced session");
    session.query::<Sssp>("sssp", &0).expect("retain the fixpoint");

    // The skewed stream: 64 batches × 0.1% of the edge count, all
    // sourced inside fragment 0's owned set.
    let per_batch = (g.num_edges() / 1000).max(8);
    let mut rng = aap_delta::generate::Xorshift::new(0xE1A);
    let n = g.num_vertices() as u64;
    for _ in 0..64 {
        let mut b: aap_delta::DeltaBuilder<(), u32> = aap_delta::DeltaBuilder::new();
        for _ in 0..per_batch {
            let u = hot[rng.below(hot.len() as u64) as usize];
            let v = rng.below(n) as u32;
            if u != v {
                b.add_edge(u, v, 1 + rng.below(9) as u32);
            }
        }
        session.apply(&b.build()).expect("apply skewed batch");
    }
    let before = session.balance_report().expect("policy configured");

    // Warm the migration path (allocator arenas, lazy relocations) on a
    // discarded clone so the timed run below measures steady-state cost.
    {
        let tracer = aap_trace::Tracer::default();
        let mut scratch: Vec<Fragment<(), u32>> =
            session.fragments().iter().map(|a| (**a).clone()).collect();
        let policy = BalancePolicy::new().max_imbalance(1.15).migration_budget(1 << 14);
        let plan = aap_balance::plan_migration(&scratch, &policy, &tracer);
        let mut refs: Vec<_> = scratch.iter_mut().collect();
        let _ = aap_balance::execute_migration(&mut refs, &plan, &tracer);
    }

    // --- the in-place rebalance -------------------------------------
    let t = Instant::now();
    let report = session.rebalance().expect("rebalance");
    let t_rebalance = t.elapsed();
    let healed = session.query::<Sssp>("sssp", &0).expect("warm serve");

    // --- the machinery it replaces: full re-partition + cold rerun ---
    let t = Instant::now();
    let (ref_out, t_full) = {
        let view: Vec<&Fragment<(), u32>> =
            session.fragments().iter().map(|a| &**a).collect();
        let g_now = reassemble(&view);
        let mut fresh = Session::builder(g_now)
            .partition(edge_cut(workers))
            .mode(Mode::aap())
            .program("sssp", Sssp)
            .open()
            .expect("re-partitioned session");
        (fresh.query::<Sssp>("sssp", &0).expect("cold rerun"), t.elapsed())
    };
    assert_eq!(healed, ref_out, "rebalanced warm fixpoint != full re-partition cold fixpoint");
    assert!(
        report.imbalance_after <= 1.15,
        "rebalance left max/mean at {:.3} (> 1.15)",
        report.imbalance_after
    );
    let speedup = t_full.as_secs_f64() / t_rebalance.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "in-place rebalance only {speedup:.1}x faster than full re-partition \
         ({t_rebalance:.1?} vs {t_full:.1?})"
    );

    // --- vertex-cut: the retired full-re-partition fallback ----------
    // A localized batch (every edge in one pair-hash bucket) repacks
    // the fragments it touches; a full re-partition rebuilds all of
    // them. Both timed on the same vertex-cut partition.
    let gv = aap_graph::generate::rmat(14, 8, true, 21);
    let mut vfrags = aap_graph::partition::build_fragments_vertex_cut_n(
        &gv,
        &aap_graph::partition::vertex_cut_partition(&gv, workers),
        workers,
    );
    let vb = (gv.num_edges() / 1000).max(8);
    let mut b: aap_delta::DeltaBuilder<(), u32> = aap_delta::DeltaBuilder::new();
    let mut placed = 0usize;
    let mut k = 0u64;
    while placed < vb {
        let (u, v) = (rng.below(gv.num_vertices() as u64) as u32, k as u32 % 977);
        k += 1;
        // Keep only pairs the pair-hash rule stores at fragment 0 whose
        // endpoints already have copies there: the batch lands in one
        // bucket and no peer's holder lists shift.
        if u != v
            && aap_graph::partition::vertex_cut_edge_frag(u, v, workers) == 0
            && vfrags[0].local(u).is_some()
            && vfrags[0].local(v).is_some()
        {
            b.add_edge(u, v, 1);
            placed += 1;
        }
    }
    let local_delta = b.build();
    let mut bufs = EditBuffers::default();
    let t = Instant::now();
    let applied = {
        let mut refs: Vec<_> = vfrags.iter_mut().collect();
        apply_to_fragments_par(&mut refs, &local_delta, &mut bufs, workers)
    };
    let t_local = t.elapsed();
    let touched = applied.changed.iter().filter(|c| **c).count();
    let t = Instant::now();
    let _all = {
        let view: Vec<&Fragment<(), u32>> = vfrags.iter().collect();
        let g_now = reassemble(&view);
        aap_graph::partition::build_fragments_vertex_cut_n(
            &g_now,
            &aap_graph::partition::vertex_cut_partition(&g_now, workers),
            workers,
        )
    };
    let t_refall = t.elapsed();
    let vc_ratio = t_refall.as_secs_f64() / t_local.as_secs_f64().max(1e-9);
    assert!(
        touched < workers,
        "a one-bucket batch must not touch every fragment (touched {touched}/{workers})"
    );

    format!(
        "## Elastic rebalancing — in-place migration vs full re-partition (wall-clock)\n\n\
         Skewed stream: 64 × 0.1% insert batches, every source owned by fragment 0\n\
         (rmat 2^15, 8-fragment hash edge-cut, SSSP retained warm throughout).\n\n\
         | | max/mean load | wall-clock |\n\
         |---|---:|---:|\n\
         | after skewed stream | {:.3} | — |\n\
         | `rebalance()` (moved {} vertices, ~{} KiB, {} fragments repacked) | {:.3} | {:.1?} |\n\
         | full re-partition + cold rerun | — | {:.1?} |\n\n\
         in-place is {speedup:.1}x faster (acceptance: >=5x); post-rebalance load ratio\n\
         {:.3} (acceptance: <=1.15); warm fixpoint identical to the cold re-partition.\n\n\
         Vertex-cut delta apply (rmat 2^14, 8 fragments): a one-bucket 0.1% batch\n\
         repacks {touched}/{workers} fragments in {:.1?}; the retired full re-partition\n\
         fallback costs {:.1?} ({vc_ratio:.0}x) — apply cost is touched-fragment-\n\
         proportional, never partition-proportional.\n\n",
        before.imbalance,
        report.vertices_migrated,
        report.migration_bytes / 1024,
        report.fragments_repacked,
        report.imbalance_after,
        t_rebalance,
        t_full,
        report.imbalance_after,
        t_local,
        t_refall,
    )
}

/// Capture a Chrome trace from a serving workload (`repro trace`).
///
/// Runs the same session twice — once on the threaded engine, once on
/// the virtual-time simulator — with both tracers feeding bounded
/// recorders, merges the captures, writes `repro.trace.json`, and then
/// round-trips the file through [`crate::tracecheck::check_chrome_trace`]
/// so the artifact is proven loadable before it's reported. Open the
/// file in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn trace_capture() -> String {
    trace_capture_to("repro.trace.json")
}

/// [`trace_capture`] writing to an explicit path (the example and the
/// format tests reuse this with their own output locations).
pub fn trace_capture_to(path: &str) -> String {
    use aap_session::{edge_cut, Session};
    use aap_trace::{pid, write_chrome_trace, Recorder};
    use std::sync::Arc;

    // One serving round-trip: queries (fresh + cache hits), a reader
    // admission window, and a delta apply — enough to light up every
    // instrumented layer without producing an unwieldy file.
    fn drive(
        session: &mut Session<(), u32, impl aap_session::Backend<(), u32>>,
        g: &Graph<(), u32>,
    ) {
        let reader = session.reader();
        for round in 0..3u64 {
            for q in [0u32, 1, 2, 0] {
                session.query::<Sssp>("sssp", &q).expect("query");
            }
            reader.request::<Sssp>("sssp", &(10 + round as u32)).expect("request");
            session.serve_admitted().expect("admission window");
            let delta = aap_delta::generate::insert_batch(g, 64, 9, 0xACE ^ round);
            session.apply(&delta).expect("apply");
        }
    }

    let g = aap_graph::generate::rmat(11, 8, true, 7);

    // Threaded engine capture: wall-clock timestamps.
    let engine_rec = Arc::new(Recorder::with_capacity(1 << 18));
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(4))
        .program("sssp", Sssp)
        .trace(Arc::clone(&engine_rec))
        .open()
        .expect("session");
    drive(&mut session, &g);
    drop(session);

    // Simulator capture: virtual-time timestamps re-emitted as spans.
    let sim_rec = Arc::new(Recorder::with_capacity(1 << 18));
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(4))
        .program("sssp", Sssp)
        .trace(Arc::clone(&sim_rec))
        .open_sim()
        .expect("sim session");
    drive(&mut session, &g);
    drop(session);

    assert_eq!(engine_rec.dropped(), 0, "recorder too small for the engine capture");
    assert_eq!(sim_rec.dropped(), 0, "recorder too small for the sim capture");

    // Merge: each tracer's clock starts at its own epoch, so the sim
    // capture is shifted past the engine capture's horizon to keep every
    // shared track (session, delta) monotone in the combined file.
    let mut events = engine_rec.events();
    let base = events.iter().map(|e| e.ts_us).max().unwrap_or(0) + 1_000;
    events.extend(sim_rec.events().into_iter().map(|mut e| {
        e.ts_us += base;
        e
    }));
    write_chrome_trace(path, &events).expect("write trace file");

    let text = std::fs::read_to_string(path).expect("read trace back");
    let check = crate::tracecheck::check_chrome_trace(&text).expect("well-formed Chrome trace");
    for (p, what) in [
        (pid::ENGINE, "engine"),
        (pid::SIM, "sim"),
        (pid::DELTA, "delta"),
        (pid::SESSION, "session"),
    ] {
        assert!(check.pids.contains(&p), "no {what} (pid {p}) events in the capture");
    }
    for name in ["round", "compute", "strategy", "repack", "query", "apply", "publications"] {
        assert!(check.has(name), "expected {name:?} events in the capture");
    }
    assert!(check.counters > 0, "session counter tracks missing");

    format!(
        "## Trace capture — `{path}`\n\n\
         Serving workload (rmat 2^11, 4 fragments, 3 rounds of query /\n\
         admit / apply) captured from both backends into one file.\n\n\
         | metric | value |\n\
         |---|---:|\n\
         | events | {} |\n\
         | tracks (pid, tid) | {} |\n\
         | span pairs | {} |\n\
         | instants | {} |\n\
         | counter samples | {} |\n\
         | processes | {:?} |\n\n\
         Validated: balanced nesting and monotone timestamps per track;\n\
         engine round spans, sim compute spans, delta strategy/repack\n\
         events, and session counter series all present. Load the file in\n\
         `chrome://tracing` or Perfetto.\n\n",
        check.events, check.tracks, check.spans, check.instants, check.counters, check.pids
    )
}

// ---------------------------------------------------------------------
// Schedule-fuzz sweep: seeded hostile interleavings vs the canonical
// schedule, across all five modes and both partitionings.
// ---------------------------------------------------------------------

/// Seeds swept per cell by [`fuzz`] and the gated `fuzz` JSON record.
pub const FUZZ_SWEEP_SEEDS: u64 = 8;

/// Aggregate result of one schedule-fuzz sweep.
struct FuzzSweep {
    cells: u64,
    runs: u64,
    /// `"partition/mode seed N"` for every fuzzed run whose fixpoint
    /// differed from the canonical one. Must be empty.
    diverging: Vec<String>,
    fuzz_rounds_total: u64,
    fuzz_updates_total: u64,
    /// Per-cell markdown rows for the report table.
    lines: Vec<String>,
}

/// Run SSSP on every (partitioning × mode) cell, once canonically and
/// once per fuzz seed, comparing fixpoints byte-for-byte. Deterministic:
/// the graph, the partitionings, and every fuzzed timeline are seeded.
fn fuzz_sweep() -> FuzzSweep {
    use aap_graph::partition::{
        build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
    };
    use aap_sim::ScheduleFuzz;

    let g = aap_graph::generate::rmat(11, 8, true, 0xF022);
    let m = 8;
    let parts: Vec<(&str, Vec<Fragment<(), u32>>)> = vec![
        ("edge-cut", build_fragments_n(&g, &hash_partition(&g, m), m)),
        ("vertex-cut", build_fragments_vertex_cut_n(&g, &vertex_cut_partition(&g, m), m)),
    ];
    let mut sweep = FuzzSweep {
        cells: 0,
        runs: 0,
        diverging: Vec::new(),
        fuzz_rounds_total: 0,
        fuzz_updates_total: 0,
        lines: Vec::new(),
    };
    for (pname, frags) in &parts {
        for (label, mode) in crate::runner::all_modes() {
            let opts = SimOpts { mode, max_rounds: Some(1_000_000), ..SimOpts::default() };
            let canonical = SimEngine::new(frags.clone(), opts.clone())
                .expect("fuzz sweep opts are valid")
                .run(&Sssp, &0);
            let mut cell_div = 0u64;
            let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
            for seed in 1..=FUZZ_SWEEP_SEEDS {
                let fopts = opts.clone().schedule(ScheduleFuzz::seeded(seed));
                let fr = SimEngine::new(frags.clone(), fopts)
                    .expect("seeded fuzz opts are valid")
                    .run(&Sssp, &0);
                if fr.out != canonical.out {
                    cell_div += 1;
                    sweep.diverging.push(format!("{pname}/{label} seed {seed}"));
                }
                sweep.runs += 1;
                sweep.fuzz_rounds_total += fr.stats.total_rounds();
                sweep.fuzz_updates_total += fr.stats.total_updates();
                tmin = tmin.min(fr.stats.makespan);
                tmax = tmax.max(fr.stats.makespan);
            }
            sweep.cells += 1;
            sweep.lines.push(format!(
                "| {pname} | {label} | {} | {cell_div} | {:.1} | {:.1} | {:.1} |",
                FUZZ_SWEEP_SEEDS, canonical.stats.makespan, tmin, tmax
            ));
        }
    }
    sweep
}

/// Schedule-fuzz report: every mode × partitioning cell re-run under
/// [`aap_sim::ScheduleFuzz`]-seeded hostile interleavings, with fixpoints
/// compared byte-for-byte against the canonical schedule (`repro fuzz`).
pub fn fuzz() -> String {
    let sweep = fuzz_sweep();
    let mut s = String::from(
        "## Schedule fuzz — seeded hostile interleavings vs the canonical schedule\n\n\
         SSSP on rmat 2^11 (8 workers) across all five modes and both\n\
         partitionings; each cell re-runs under `ScheduleFuzz::seeded(1..=8)`\n\
         (wake-order shuffle, bounded delivery reorder, per-worker speed\n\
         skew) and its fixpoint is compared against the canonical run.\n\
         Reproduce any cell with\n\
         `SimOpts { mode, .. }.schedule(ScheduleFuzz::seeded(seed))`.\n\n\
         | partition | mode | seeds | divergences | canonical time | fuzz time min | fuzz time max |\n\
         |---|---|---:|---:|---:|---:|---:|\n",
    );
    for line in &sweep.lines {
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!(
        "\nSwept {} seeded runs over {} cells: {} divergence(s).\n\n",
        sweep.runs,
        sweep.cells,
        sweep.diverging.len()
    ));
    assert!(
        sweep.diverging.is_empty(),
        "schedule fuzz found diverging fixpoints — reproduce with ScheduleFuzz::seeded(seed): {:?}",
        sweep.diverging
    );
    s
}

/// The seed `repro json` runs with unless `--seed` overrides it — the
/// seed `BENCH_baseline.json` is generated with, so CI's gate compares
/// like with like.
pub const DEFAULT_JSON_SEED: u64 = 0xDEC0;

/// Machine-readable run metrics: the Fig-6 mode line-up on SSSP and CC,
/// plus a warm-start delta round, emitted as JSON rows that include the
/// effective/redundant update counters — so staleness (§7) is trackable
/// across PRs by diffing `repro json` output.
///
/// Everything here is deterministic: seeded generators, the virtual-time
/// simulator, no wall clocks. Same seed, same bytes — which is what lets
/// CI diff the counters against a checked-in baseline.
pub fn stats_json() -> String {
    stats_json_seeded(DEFAULT_JSON_SEED)
}

/// [`stats_json`] with an explicit seed for the dynamic delta round
/// (`repro json --seed N`). The seed is recorded in the output so a
/// baseline diff against a different seed fails loudly, not subtly.
pub fn stats_json_seeded(seed: u64) -> String {
    use crate::runner::{all_modes, rows_json};

    let mut out = String::new();
    let cluster = Cluster::balanced(16);
    let tr = workloads::traffic();
    let fr = workloads::friendster();

    let mut rows: Vec<Row> = Vec::new();
    for (label, mode) in all_modes() {
        rows.push(run_sim(&cluster, &tr, &Sssp, &0, &label, mode).0);
    }
    out.push_str(&rows_json("sssp_traffic", &rows));
    out.push('\n');

    let mut rows: Vec<Row> = Vec::new();
    for (label, mode) in all_modes() {
        rows.push(run_sim(&cluster, &fr, &ConnectedComponents, &(), &label, mode).0);
    }
    out.push_str(&rows_json("cc_friendster", &rows));
    out.push('\n');

    // Dynamic-graph round: warm-start incremental vs cold recompute on a
    // 0.1% insert batch (virtual time, deterministic). Full per-worker
    // detail via `RunStats::to_json`.
    let frags = cluster.fragments(&fr);
    let mut sim = SimEngine::new(frags, SimOpts::default()).expect("default sim opts are valid");
    let (_, mut state) = sim.run_retained(&Sssp, &0);
    let delta = aap_delta::generate::insert_batch(&fr, (fr.num_edges() / 1000).max(4), 9, seed);
    let warm = aap_delta::run_incremental_sim(&mut sim, &Sssp, &0, &delta, &mut state);
    let cold = sim.run(&Sssp, &0);
    out.push_str(&format!(
        "{{\"experiment\":\"dynamic_sssp_friendster\",\"seed\":{seed},\"incremental\":{},\"full\":{}}}\n",
        warm.stats.to_json(),
        cold.stats.to_json()
    ));

    // Deletion round: a 0.1% removal-only batch through the same driver —
    // the `warm-increase` affected-region path (no cold fallback). The
    // strategy tag is recorded so the gate notices if deletions ever
    // silently degrade back to a cold recompute.
    let frags = cluster.fragments(&fr);
    let mut sim = SimEngine::new(frags, SimOpts::default()).expect("default sim opts are valid");
    let (_, mut state) = sim.run_retained(&Sssp, &0);
    let delta = aap_delta::generate::remove_batch(&fr, (fr.num_edges() / 1000).max(4), seed);
    let warm = aap_delta::run_incremental_sim(&mut sim, &Sssp, &0, &delta, &mut state);
    assert!(
        warm.strategy == aap_core::pie::WarmStrategy::WarmIncrease,
        "deletion batch must run warm-increase, got {}",
        warm.strategy
    );
    let cold = sim.run(&Sssp, &0);
    out.push_str(&format!(
        "{{\"experiment\":\"incremental_delete\",\"seed\":{seed},\"strategy\":\"{}\",\
         \"incremental\":{},\"full\":{}}}\n",
        warm.strategy,
        warm.stats.to_json(),
        cold.stats.to_json()
    ));

    // Serving round: a scripted single-threaded admission/apply sequence
    // over the session facade. The counters are protocol-level — fresh
    // serves are publication-version bumps, redundant serves are answer-
    // cache hits — so they are exact integers independent of thread
    // scheduling, and the gate notices if admission or cache semantics
    // drift (e.g. applies stop clearing pre-apply answers, or the
    // retained fixpoint starts being evicted by plain queries).
    {
        use aap_session::{edge_cut, Session};
        let g = aap_graph::generate::rmat(11, 8, true, 7);
        let mut session = Session::builder(g.clone())
            .partition(edge_cut(4))
            .program("sssp", Sssp)
            .open()
            .expect("session");
        let reader = session.reader();
        for round in 0..4u64 {
            // Rotating query set: first sight is a fresh cold run (or the
            // retained run for source 0); repeats inside a round hit the
            // bounded answer cache; each apply clears it again.
            for q in [0u32, 1, 2, 0, 1, 2] {
                session.query::<Sssp>("sssp", &q).expect("query");
            }
            reader.request::<Sssp>("sssp", &(10 + round as u32)).expect("request");
            session.serve_admitted().expect("admission window");
            let delta = aap_delta::generate::insert_batch(&g, 8, 9, seed ^ round);
            session.apply(&delta).expect("apply");
        }
        // The session's own protocol counters carry the whole story:
        // fresh serves are publication-version bumps, redundant serves
        // are answer-cache hits, admitted sums the serve windows.
        let m = session.metrics();
        let (fresh, hits) = (m.fresh_queries, m.answer_cache_hits);
        out.push_str(&format!(
            "{{\"experiment\":\"serving_sssp\",\"seed\":{seed},\
             \"publications\":{},\"admitted\":{},\
             \"rows\":[{{\"system\":\"epoch-published session\",\
             \"effective_updates\":{fresh},\"redundant_updates\":{hits},\
             \"stale_ratio\":{:.6}}}]}}\n",
            m.publications,
            m.admitted,
            hits as f64 / (fresh + hits) as f64
        ));
    }

    // Durability round: a scripted checkpoint cadence over a durable
    // session — alternating localized batches (the differential skip
    // path) and global batches (the full-dirty path), with
    // `compact_after(3)` so one compacting full rebase lands mid-
    // stream. Every emitted counter is an exact deterministic integer:
    // fragment dirty sets follow the seeded deltas, state shards are
    // canonical exports compared by CRC, and byte counts come from the
    // fixed snapshot encodings — so the gate notices if differential
    // checkpoints silently degrade to full rewrites (skipped drops to
    // zero, bytes balloon) or compaction stops superseding the log.
    {
        use aap_session::{edge_cut, DurabilityPolicy, Session};
        let g = aap_graph::generate::rmat(10, 8, true, 7);
        let assignment = aap_graph::partition::hash_partition(&g, 4);
        let pool: Vec<u32> =
            (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();
        let dir = std::env::temp_dir().join(format!("aap_json_durability_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut session = Session::builder(g.clone())
            .partition(edge_cut(4))
            .program("sssp", Sssp)
            .durability(DurabilityPolicy::new(&dir).compact_after(3))
            .expect("durability")
            .open()
            .expect("durable session");
        session.query::<Sssp>("sssp", &0).expect("retain the fixpoint");
        session.checkpoint().expect("baseline epoch");
        for round in 0..4u64 {
            let delta = if round % 2 == 0 {
                aap_delta::generate::insert_batch_within(&pool, 8, 9, seed ^ round)
            } else {
                aap_delta::generate::insert_batch(&g, 8, 9, seed ^ round)
            };
            session.apply(&delta).expect("apply");
            session.checkpoint().expect("checkpoint");
        }
        let m = session.metrics();
        assert!(m.checkpoint_fragments_skipped > 0, "localized rounds must skip fragments");
        out.push_str(&format!(
            "{{\"experiment\":\"durability\",\"seed\":{seed},\
             \"checkpoints\":{},\"fragments_written\":{},\"fragments_skipped\":{},\
             \"checkpoint_bytes\":{},\"log_records_compacted\":{}}}\n",
            m.checkpoints,
            m.checkpoint_fragments_written,
            m.checkpoint_fragments_skipped,
            m.checkpoint_bytes,
            m.log_records_compacted,
        ));
        drop(session);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Rebalance round: a scripted skewed stream over a balanced
    // session, healed by one explicit `rebalance()`. The greedy planner
    // is deterministic (index-ordered scans, total tie-breaks), so the
    // move count, payload bytes, repacked-fragment count and the
    // planner's imbalance arithmetic (scaled to exact integers) are
    // gate-stable — the gate notices if the planner silently stops
    // finding moves, starts over-moving, or the monitor's incremental
    // counts drift from the real fragment shapes. The warm fixpoint is
    // asserted identical to a cold run on the migrated fragments right
    // here, because a tolerance-based gate must never be the thing
    // catching a correctness bug.
    {
        use aap_balance::BalancePolicy;
        use aap_session::{edge_cut, Session};
        let g = aap_graph::generate::rmat(11, 8, true, 7);
        let workers = 4usize;
        let assignment = aap_graph::partition::hash_partition(&g, workers);
        let hot: Vec<u32> =
            (0..g.num_vertices() as u32).filter(|&v| assignment[v as usize] == 0).collect();
        let mut session = Session::builder(g.clone())
            .partition(edge_cut(workers))
            .program("sssp", Sssp)
            .balance(BalancePolicy::new().max_imbalance(1.15).migration_budget(1 << 12))
            .open()
            .expect("balanced session");
        session.query::<Sssp>("sssp", &0).expect("retain the fixpoint");
        let mut rng = aap_delta::generate::Xorshift::new(seed);
        for _ in 0..32 {
            let mut b: aap_delta::DeltaBuilder<(), u32> = aap_delta::DeltaBuilder::new();
            for _ in 0..64 {
                let u = hot[rng.below(hot.len() as u64) as usize];
                let v = rng.below(g.num_vertices() as u64) as u32;
                if u != v {
                    b.add_edge(u, v, 1 + rng.below(9) as u32);
                }
            }
            session.apply(&b.build()).expect("apply skewed batch");
        }
        let report = session.rebalance().expect("rebalance");
        assert!(report.vertices_migrated > 0, "skewed stream must force a real plan");
        let warm = session.query::<Sssp>("sssp", &0).expect("warm serve");
        let cold = {
            let mut s = Session::builder({
                let view: Vec<&Fragment<(), u32>> =
                    session.fragments().iter().map(|a| &**a).collect();
                aap_graph::mutate::reassemble(&view)
            })
            .partition(edge_cut(workers))
            .program("sssp", Sssp)
            .open()
            .expect("reference session");
            s.query::<Sssp>("sssp", &0).expect("cold reference")
        };
        assert_eq!(warm, cold, "rebalanced warm fixpoint != re-partitioned cold fixpoint");
        let m = session.metrics();
        out.push_str(&format!(
            "{{\"experiment\":\"rebalance\",\"seed\":{seed},\
             \"rebalances\":{},\"vertices_migrated\":{},\"migration_bytes\":{},\
             \"fragments_repacked\":{},\"imbalance_before_ppm\":{},\"imbalance_after_ppm\":{}}}\n",
            m.rebalances,
            m.vertices_migrated,
            m.migration_bytes,
            report.fragments_repacked,
            (report.imbalance_before * 1e6).round() as u64,
            (report.imbalance_after * 1e6).round() as u64,
        ));
    }

    // Schedule-fuzz round: the full mode × partitioning sweep under
    // seeded hostile interleavings. Divergences must be zero — any
    // nonzero count panics right here naming the reproducing seeds,
    // because the gate's drift tolerance would otherwise let a small
    // count slide. The round/update totals are exact deterministic
    // integers (every fuzzed timeline is seeded), so the gate notices if
    // the fuzzed schedules silently stop exercising different
    // interleavings (totals collapsing back to the canonical counts).
    {
        let sweep = fuzz_sweep();
        assert!(
            sweep.diverging.is_empty(),
            "schedule fuzz found diverging fixpoints — reproduce with \
             ScheduleFuzz::seeded(seed): {:?}",
            sweep.diverging
        );
        out.push_str(&format!(
            "{{\"experiment\":\"fuzz\",\"seed\":{seed},\
             \"cells\":{},\"seeds_per_cell\":{},\"fuzzed_runs\":{},\"divergences\":{},\
             \"fuzz_rounds_total\":{},\"fuzz_updates_total\":{}}}\n",
            sweep.cells,
            FUZZ_SWEEP_SEEDS,
            sweep.runs,
            sweep.diverging.len(),
            sweep.fuzz_rounds_total,
            sweep.fuzz_updates_total,
        ));
    }
    out
}

/// Run every experiment and produce the full EXPERIMENTS.md body.
pub fn all() -> String {
    let mut s = String::new();
    s.push_str(&fig1());
    s.push_str(&table1());
    s.push_str("## Fig 6 — efficiency and scalability\n\n");
    for f in [fig6a, fig6b, fig6c, fig6d, fig6e, fig6f, fig6g, fig6h, fig6i, fig6j, fig6k, fig6l] {
        s.push_str(&f());
    }
    s.push_str(&exp2());
    s.push_str(&fig7());
    s.push_str(&appb());
    s.push_str(&single_thread());
    s.push_str(&serving());
    s.push_str(&durability());
    s.push_str(&rebalance());
    s.push_str(&ablate());
    s.push_str(&fuzz());
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_fragments_form_one_component() {
        let frags = super::fig1_fragments();
        assert_eq!(frags.len(), 3);
        let owned: usize = frags.iter().map(|f| f.owned_count()).sum();
        assert_eq!(owned, 80);
    }

    #[test]
    fn fig1_report_renders() {
        let s = super::fig1();
        assert!(s.contains("BSP"));
        assert!(s.contains("AAP"));
        assert!(s.contains("```text"));
    }
}
