//! # aap-algos
//!
//! The paper's PIE algorithm suite and baselines:
//!
//! * [`cc`] — graph connectivity via local components + `min` cid merging
//!   (§2, Figs 2–3);
//! * [`forest`] — spanning-forest maintenance with bounded
//!   replacement-edge search, backing CC's deletion-exact warm path;
//! * [`sssp`] — single-source shortest paths: Dijkstra `PEval` +
//!   incremental (Ramalingam–Reps style) `IncEval` (§5.1);
//! * [`bfs`] — unweighted hop counts, sharing the SSSP machinery;
//! * [`pagerank`] — delta-based accumulative PageRank (§5.3, Maiter-style);
//! * [`cf`] — collaborative filtering by mini-batch SGD with replicated
//!   item factors (§5.2);
//! * [`vertex_centric`] — a Pregel-style `compute()` adapter compiled onto
//!   PIE per Proposition 3, plus vertex-centric SSSP / CC / PageRank used
//!   as the Giraph/GraphLab stand-in baselines of §7;
//! * [`seq`] — sequential single-machine references used for validating
//!   every parallel run and for the paper's single-thread comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod cf;
pub mod common;
pub mod forest;
pub mod pagerank;
pub mod seq;
pub mod sssp;
pub mod vertex_centric;

pub use bfs::Bfs;
pub use cc::{CcState, ConnectedComponents};
pub use cf::{Cf, CfOutput};
pub use pagerank::PageRank;
pub use sssp::{Sssp, SsspState};
pub use vertex_centric::{VertexCentric, VertexProgram};
