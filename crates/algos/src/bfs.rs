//! Breadth-first search (hop counts) as a PIE program — SSSP with unit
//! weights, exercising the same machinery over arbitrary edge data.

use crate::common::{dijkstra_from_seeds, emit_policy, gather_owned, INF};
use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_graph::{Fragment, LocalId, VertexId};
use std::sync::Arc;

/// BFS PIE program: computes hop distance from the query vertex. Works over
/// any edge data type (weights are ignored).
#[derive(Debug, Default, Clone, Copy)]
pub struct Bfs;

/// Per-fragment BFS state.
#[derive(Debug)]
pub struct BfsState {
    /// `dist[l]` = hops from the source to local vertex `l`.
    pub dist: Vec<u64>,
}

impl<V: Sync + Send, E: Sync + Send> PieProgram<V, E> for Bfs {
    type Query = VertexId;
    type Val = u64;
    type State = BfsState;
    type Out = Vec<u64>;

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(&self, src: &VertexId, frag: &Fragment<V, E>, ctx: &mut UpdateCtx<u64>) -> BfsState {
        let mut dist = vec![INF; frag.local_count()];
        let mut changed = Vec::new();
        if let Some(l) = frag.local(*src) {
            dist[l as usize] = 0;
            let work = dijkstra_from_seeds(frag, &mut dist, &[l], |_| 1, &mut changed);
            ctx.charge_work(work);
        }
        for l in changed {
            if emit_policy(frag, l) {
                ctx.send(l, dist[l as usize]);
            }
        }
        BfsState { dist }
    }

    fn inceval(
        &self,
        _src: &VertexId,
        frag: &Fragment<V, E>,
        state: &mut BfsState,
        msgs: &mut Messages<u64>,
        ctx: &mut UpdateCtx<u64>,
    ) {
        let mut seeds: Vec<LocalId> = Vec::new();
        for (l, d) in msgs.drain(..) {
            if d < state.dist[l as usize] {
                state.dist[l as usize] = d;
                seeds.push(l);
                ctx.note_effective(1);
            } else {
                ctx.note_redundant(1);
            }
        }
        if seeds.is_empty() {
            return;
        }
        let mut changed = Vec::new();
        let work = dijkstra_from_seeds(frag, &mut state.dist, &seeds, |_| 1, &mut changed);
        ctx.charge_work(work);
        for l in changed {
            if emit_policy(frag, l) {
                ctx.send(l, state.dist[l as usize]);
            }
        }
    }

    fn assemble(
        &self,
        _src: &VertexId,
        frags: &[Arc<Fragment<V, E>>],
        states: Vec<BfsState>,
    ) -> Vec<u64> {
        gather_owned(frags, &states, INF, |s, _, l| s.dist[l as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use aap_core::{Engine, EngineOpts, Mode};
    use aap_graph::generate;
    use aap_graph::partition::{build_fragments, hash_partition};

    #[test]
    fn matches_sequential_bfs() {
        let g = generate::small_world(250, 2, 0.05, 13);
        let expect = seq::bfs(&g, 3);
        for mode in [Mode::Bsp, Mode::Ap, Mode::aap()] {
            let frags = build_fragments(&g, &hash_partition(&g, 5));
            let engine =
                Engine::new(frags, EngineOpts { threads: 4, mode, max_rounds: Some(100_000) });
            assert_eq!(engine.run(&Bfs, &3).out, expect);
        }
    }

    #[test]
    fn hop_counts_on_lattice_diagonal() {
        let g = generate::lattice2d(6, 6, 1);
        let frags = build_fragments(&g, &hash_partition(&g, 3));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&Bfs, &0);
        // opposite corner is 5 + 5 hops away
        assert_eq!(out.out[35], 10);
    }
}
