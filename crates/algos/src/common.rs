//! Shared helpers for PIE programs.

use aap_graph::{Fragment, LocalId};
use std::sync::Arc;

/// Gather a per-vertex quantity from the *owned* vertices of every fragment
/// into one global vector (the usual shape of `Assemble`).
pub fn gather_owned<V, E, S, T, F>(
    frags: &[Arc<Fragment<V, E>>],
    states: &[S],
    default: T,
    get: F,
) -> Vec<T>
where
    T: Clone,
    F: Fn(&S, &Fragment<V, E>, LocalId) -> T,
{
    let n: usize = frags.iter().map(|f| f.owned_count()).sum();
    let mut out = vec![default; n];
    for (f, s) in frags.iter().zip(states) {
        for l in f.owned_vertices() {
            out[f.global(l) as usize] = get(s, f, l);
        }
    }
    out
}

/// [`gather_owned`] over plain fragment references — the shape
/// `WarmStart::plan_invalidation` sees (pre-apply fragments, no `Arc`).
/// Gathers the **owner** copy's value per global vertex; at a fixpoint
/// that is the authoritative one (mirror copies may hold stale-high
/// values under edge-cut, since owners do not broadcast back).
pub fn owner_values<V, E, S, T, F>(
    frags: &[&Fragment<V, E>],
    states: &[S],
    default: T,
    get: F,
) -> Vec<T>
where
    T: Clone,
    F: Fn(&S, &Fragment<V, E>, LocalId) -> T,
{
    let n: usize = frags.iter().map(|f| f.owned_count()).sum();
    let mut out = vec![default; n];
    for (f, s) in frags.iter().zip(states) {
        for l in f.owned_vertices() {
            out[f.global(l) as usize] = get(s, f, l);
        }
    }
    out
}

/// Distance value used by SSSP/BFS: `u64::MAX` encodes `∞`.
pub const INF: u64 = u64::MAX;

/// Relax local shortest-path distances from a seed set via Dijkstra,
/// recording every *border* vertex whose distance improved. Returns the
/// work performed (heap pops + edges scanned) for cost accounting.
///
/// `weight` extracts an edge length; mirrors carry no out-edges under
/// edge-cut so relaxation stops at fragment boundaries, which is exactly
/// where messages take over.
pub fn dijkstra_from_seeds<V, E>(
    frag: &Fragment<V, E>,
    dist: &mut [u64],
    seeds: &[LocalId],
    weight: impl Fn(&E) -> u64,
    changed_border: &mut Vec<LocalId>,
) -> u64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, LocalId)>> = BinaryHeap::new();
    for &s in seeds {
        heap.push(Reverse((dist[s as usize], s)));
    }
    let mut changed: Vec<bool> = vec![false; dist.len()];
    for &s in seeds {
        if frag.is_border(s) {
            changed[s as usize] = true;
        }
    }
    let mut work: u64 = 0;
    while let Some(Reverse((d, u))) = heap.pop() {
        work += 1;
        if d > dist[u as usize] {
            continue; // stale heap entry
        }
        work += frag.neighbors(u).len() as u64;
        for (v, e) in frag.edges(u) {
            let nd = d.saturating_add(weight(e));
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
                if frag.is_border(v) {
                    changed[v as usize] = true;
                }
            }
        }
    }
    changed_border
        .extend(changed.iter().enumerate().filter(|&(_, &c)| c).map(|(l, _)| l as LocalId));
    work
}

/// Decide which changed border vertices must be shipped: mirrors always
/// (mirror → owner); owned border vertices only under vertex-cut partitions,
/// where copies carry edges and need the owner's value broadcast back.
pub fn emit_policy<V, E>(frag: &Fragment<V, E>, l: LocalId) -> bool {
    if frag.is_owned(l) {
        frag.is_vertex_cut() && !frag.mirror_holders(l).is_empty()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::partition::build_fragments;
    use aap_graph::GraphBuilder;

    #[test]
    fn dijkstra_respects_fragment_boundary() {
        // 0 -5-> 1 -7-> 2, fragments {0,1} | {2}.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 5u32);
        b.add_edge(1, 2, 7);
        let g = b.build();
        let frags = build_fragments(&g, &[0, 0, 1]);
        let f0 = &frags[0];
        let mut dist = vec![INF; f0.local_count()];
        let src = f0.local(0).unwrap();
        dist[src as usize] = 0;
        let mut changed = Vec::new();
        dijkstra_from_seeds(f0, &mut dist, &[src], |&w| w as u64, &mut changed);
        assert_eq!(dist[f0.local(1).unwrap() as usize], 5);
        assert_eq!(dist[f0.local(2).unwrap() as usize], 12); // mirror got relaxed
        let globals: Vec<u32> = changed.iter().map(|&l| f0.global(l)).collect();
        assert!(globals.contains(&2), "mirror of 2 should be reported: {globals:?}");
    }

    #[test]
    fn gather_owned_collects_by_global_id() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let frags: Vec<_> =
            build_fragments(&g, &[1, 1, 0, 0]).into_iter().map(std::sync::Arc::new).collect();
        let states: Vec<Vec<u32>> = frags
            .iter()
            .map(|f| (0..f.local_count() as u32).map(|l| f.global(l) * 10).collect())
            .collect();
        let out = gather_owned(&frags, &states, 0u32, |s, _, l| s[l as usize]);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }
}
