//! Spanning-forest maintenance for deletion-exact incremental CC.
//!
//! A [`SpanningForest`] is built once per fragment over the local
//! (undirected view of the) adjacency. Processing an edge removal then
//! classifies it in bounded work:
//!
//! * a **non-tree** edge removal cannot change connectivity — a no-op;
//! * a **tree** edge removal splits its tree into two sides; a
//!   *replacement-edge search* walks the **smaller** side (found by
//!   growing both sides in lockstep, so the walk costs `O(min(|Tu|,
//!   |Tv|))` tree edges) and scans its members' surviving incident edges
//!   for one that re-links the sides — if found, the forest swaps it in
//!   and connectivity is again unchanged;
//! * only when no replacement exists does the removal report a genuine
//!   [`EdgeRemoval::Split`], handing back the smaller side so the caller
//!   can bound its re-labelling to the affected region.
//!
//! This is the filter that lets `ConnectedComponents` keep most deletion
//! batches on the warm path: random deletions overwhelmingly hit
//! non-tree edges (any cycle edge), and most tree hits have a local
//! replacement. See `crate::cc` for how a reported split drives the
//! component invalidation.

/// Surviving-adjacency callback: `surviving(x, emit)` calls `emit(y)`
/// for every current surviving neighbor `y` of `x` (the caller filters
/// out every edge its batch removes).
pub type Surviving<'a> = &'a dyn Fn(u32, &mut dyn FnMut(u32));

/// Outcome of removing one edge from the forest's graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeRemoval {
    /// The edge was not in the forest (or not present at all):
    /// connectivity is unchanged.
    NonTree,
    /// The edge was in the forest, but a surviving replacement edge
    /// re-links the two sides; connectivity is unchanged. Carries the
    /// replacement `(u, v)`.
    Replaced(u32, u32),
    /// The tree genuinely split. Carries the members of the **smaller**
    /// side (the one the replacement search exhausted).
    Split(Vec<u32>),
}

/// A spanning forest over vertices `0..n`, with adjacency stored
/// symmetrically regardless of how the underlying graph directs its
/// edges (connectivity is an undirected notion — CC computes *weak*
/// components on directed graphs).
///
/// The tree adjacency is packed as a flat CSR with per-vertex live
/// lengths (an unlink swap-removes inside the vertex's segment) plus a
/// small overflow list for replacement edges linked after the build —
/// the whole structure is a handful of flat allocations, so per-batch
/// rebuilds in `ConnectedComponents::plan_invalidation` stay cheap even
/// on fragments with tens of thousands of locals.
#[derive(Debug, Clone)]
pub struct SpanningForest {
    /// CSR segment starts (length `n + 1`), fixed at build time.
    offsets: Vec<u32>,
    /// Tree neighbors; only `targets[offsets[x] .. offsets[x] + live[x]]`
    /// is current (unlinks shrink `live`, never `offsets`).
    targets: Vec<u32>,
    /// Live prefix length of each vertex's segment.
    live: Vec<u32>,
    /// Replacement edges linked after the build, as unordered pairs —
    /// at most one per processed removal, scanned linearly.
    extra: Vec<(u32, u32)>,
    /// Union-find over the current trees, giving [`SpanningForest::link`]
    /// its O(α) same-tree test. A genuine split leaves it stale (it can
    /// only over-merge); the next `link` refreshes it from the tree
    /// edges in O(n + tree edges) — cheaper than the O(E) build the
    /// refresh replaces.
    parent: Vec<u32>,
    parent_stale: bool,
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

impl SpanningForest {
    /// Build a spanning forest over `n` vertices from an edge iterator
    /// (duplicates and self-loops are skipped; direction is ignored).
    pub fn build(n: usize, edges: impl Iterator<Item = (u32, u32)>) -> Self {
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut tree_edges: Vec<(u32, u32)> = Vec::new();
        for (u, v) in edges {
            if u == v {
                continue;
            }
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
                tree_edges.push((u, v));
            }
        }
        // Pack symmetrically as CSR: counting pass, prefix sums, fill.
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &tree_edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &(u, v) in &tree_edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        let live = (0..n).map(|x| offsets[x + 1] - offsets[x]).collect();
        SpanningForest { offsets, targets, live, extra: Vec::new(), parent, parent_stale: false }
    }

    /// Number of vertices the forest was built over.
    pub fn vertex_count(&self) -> usize {
        self.live.len()
    }

    /// Add edge `(u, v)` to the forest's graph: linked as a tree edge
    /// when it joins two distinct trees (keeping the forest maximal),
    /// ignored as a non-tree edge otherwise. Returns whether it became
    /// a tree edge. This is what lets a forest persist across insertion
    /// batches instead of being rebuilt from the full adjacency.
    pub fn link(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        if self.parent_stale {
            self.refresh_parent();
        }
        let (ru, rv) = (find(&mut self.parent, u), find(&mut self.parent, v));
        if ru == rv {
            return false;
        }
        self.parent[ru.max(rv) as usize] = ru.min(rv);
        self.extra.push((u, v));
        true
    }

    /// Rebuild the tree union-find from the current tree edges — run
    /// lazily after a split stales it.
    fn refresh_parent(&mut self) {
        let n = self.live.len();
        self.parent.clear();
        self.parent.extend(0..n as u32);
        for x in 0..n as u32 {
            let start = self.offsets[x as usize];
            for i in 0..self.live[x as usize] {
                let y = self.targets[(start + i) as usize];
                let (rx, ry) = (find(&mut self.parent, x), find(&mut self.parent, y));
                if rx != ry {
                    self.parent[rx.max(ry) as usize] = rx.min(ry);
                }
            }
        }
        for i in 0..self.extra.len() {
            let (a, b) = self.extra[i];
            let (ra, rb) = (find(&mut self.parent, a), find(&mut self.parent, b));
            if ra != rb {
                self.parent[ra.max(rb) as usize] = ra.min(rb);
            }
        }
        self.parent_stale = false;
    }

    /// The live CSR segment of `x` (excludes `extra` links).
    fn segment(&self, x: u32) -> &[u32] {
        let start = self.offsets[x as usize] as usize;
        &self.targets[start..start + self.live[x as usize] as usize]
    }

    /// Visit every current tree neighbor of `x`.
    fn for_each_neighbor(&self, x: u32, f: &mut impl FnMut(u32)) {
        for &y in self.segment(x) {
            f(y);
        }
        for &(a, b) in &self.extra {
            if a == x {
                f(b);
            } else if b == x {
                f(a);
            }
        }
    }

    /// True if `(u, v)` is currently a tree edge.
    pub fn is_tree_edge(&self, u: u32, v: u32) -> bool {
        self.segment(u).contains(&v)
            || self.extra.iter().any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
    }

    /// Number of tree edges (build/debug introspection).
    pub fn tree_edge_count(&self) -> usize {
        (self.live.iter().map(|&l| l as usize).sum::<usize>() / 2) + self.extra.len()
    }

    /// Remove edge `(u, v)` from the forest's graph and classify the
    /// removal. `surviving` enumerates the *current* surviving incident
    /// edges of a vertex (the caller filters out every edge the batch
    /// removes, including parallel copies of `(u, v)` itself); it is
    /// only consulted during a replacement search.
    pub fn remove_edge(&mut self, u: u32, v: u32, surviving: Surviving<'_>) -> EdgeRemoval {
        if u == v || !self.is_tree_edge(u, v) {
            return EdgeRemoval::NonTree;
        }
        self.unlink(u, v);

        // Grow both sides in lockstep over tree edges; the first side to
        // exhaust is the smaller one, and the cost so far is O(its size).
        let mut sides = [Walk::new(u), Walk::new(v)];
        let small = loop {
            let mut exhausted = None;
            for (i, w) in sides.iter_mut().enumerate() {
                if !w.step(self) {
                    exhausted = Some(i);
                    break;
                }
            }
            if let Some(i) = exhausted {
                break i;
            }
        };
        let side = std::mem::take(&mut sides[small].visited);
        let in_side = |x: u32| side.binary_search(&x).is_ok();

        // Replacement search: any surviving incident edge leaving the
        // small side reconnects it (the other endpoint was in the same
        // tree, or is linked truthfully anyway — the edge exists).
        let mut replacement: Option<(u32, u32)> = None;
        for &x in &side {
            surviving(x, &mut |y| {
                if replacement.is_none() && !in_side(y) {
                    replacement = Some((x, y));
                }
            });
            if replacement.is_some() {
                break;
            }
        }
        match replacement {
            Some((x, y)) => {
                // Connectivity is unchanged, so the tree union-find
                // stays valid.
                self.extra.push((x, y));
                EdgeRemoval::Replaced(x, y)
            }
            None => {
                self.parent_stale = true;
                EdgeRemoval::Split(side)
            }
        }
    }

    fn unlink(&mut self, u: u32, v: u32) {
        if let Some(pos) =
            self.extra.iter().position(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
        {
            self.extra.swap_remove(pos);
            return;
        }
        for (a, b) in [(u, v), (v, u)] {
            let start = self.offsets[a as usize] as usize;
            let seg = &mut self.targets[start..start + self.live[a as usize] as usize];
            let pos = seg.iter().position(|&t| t == b).expect("tree edge");
            let last = seg.len() - 1;
            seg.swap(pos, last);
            self.live[a as usize] -= 1;
        }
    }
}

/// One side of a lockstep split walk: BFS over tree edges, keeping the
/// visited set sorted on completion for membership tests.
struct Walk {
    visited: Vec<u32>,
    seen: aap_graph::FxHashSet<u32>,
    cursor: usize,
}

impl Walk {
    fn new(start: u32) -> Self {
        let mut seen = aap_graph::FxHashSet::default();
        seen.insert(start);
        Walk { visited: vec![start], seen, cursor: 0 }
    }

    /// Expand one vertex; returns `false` when this side is exhausted
    /// (at which point `visited` is finalised sorted).
    fn step(&mut self, forest: &SpanningForest) -> bool {
        while self.cursor < self.visited.len() {
            let x = self.visited[self.cursor];
            self.cursor += 1;
            let mut grew = false;
            forest.for_each_neighbor(x, &mut |y| {
                if self.seen.insert(y) {
                    self.visited.push(y);
                    grew = true;
                }
            });
            if grew {
                return true;
            }
        }
        self.visited.sort_unstable();
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj_of(edges: &[(u32, u32)], removed: &[(u32, u32)]) -> impl Fn(u32, &mut dyn FnMut(u32)) {
        let edges = edges.to_vec();
        let removed = removed.to_vec();
        move |x: u32, f: &mut dyn FnMut(u32)| {
            for &(a, b) in &edges {
                let dead = removed.iter().any(|&(ra, rb)| (ra, rb) == (a, b) || (ra, rb) == (b, a));
                if dead {
                    continue;
                }
                if a == x {
                    f(b);
                } else if b == x {
                    f(a);
                }
            }
        }
    }

    #[test]
    fn cycle_edge_is_non_tree_or_replaced() {
        // Triangle 0-1-2: one edge is non-tree; removing a tree edge
        // finds the remaining path as replacement.
        let edges = [(0, 1), (1, 2), (2, 0)];
        let mut f = SpanningForest::build(3, edges.iter().copied());
        assert_eq!(f.tree_edge_count(), 2);
        for &(u, v) in &edges {
            let mut f2 = f.clone();
            let r = f2.remove_edge(u, v, &adj_of(&edges, &[(u, v)]));
            assert!(!matches!(r, EdgeRemoval::Split(_)), "triangle never splits: {r:?}");
        }
        // Removing two edges does split.
        let removed = [(0, 1), (1, 2)];
        let adj = adj_of(&edges, &removed);
        let mut split = 0;
        for &(u, v) in &removed {
            if let EdgeRemoval::Split(side) = f.remove_edge(u, v, &adj) {
                split += 1;
                assert_eq!(side, vec![1]);
            }
        }
        assert_eq!(split, 1, "exactly one of the two removals splits off vertex 1");
    }

    #[test]
    fn path_split_reports_smaller_side() {
        // Path 0-1-2-3-4-5: removing (1,2) splits {0,1} off.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let mut f = SpanningForest::build(6, edges.iter().copied());
        match f.remove_edge(1, 2, &adj_of(&edges, &[(1, 2)])) {
            EdgeRemoval::Split(side) => assert_eq!(side, vec![0, 1]),
            other => panic!("expected split, got {other:?}"),
        }
        // The forest keeps working after the split: (3,4) severs the
        // remaining {2,3,4,5} tree into equal halves — either side is a
        // valid "smaller" one.
        match f.remove_edge(3, 4, &adj_of(&edges, &[(1, 2), (3, 4)])) {
            EdgeRemoval::Split(side) => {
                assert!(side == vec![2, 3] || side == vec![4, 5], "side {side:?}")
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn replacement_is_linked_in() {
        // Square 0-1-2-3-0: removing one side finds the long way round.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut f = SpanningForest::build(4, edges.iter().copied());
        let removed = [(0, 1)];
        match f.remove_edge(0, 1, &adj_of(&edges, &removed)) {
            EdgeRemoval::NonTree => {} // (0,1) happened to be the cycle closer
            EdgeRemoval::Replaced(x, y) => assert!(f.is_tree_edge(x, y)),
            EdgeRemoval::Split(s) => panic!("square stays connected, split {s:?}"),
        }
        // Still one spanning tree of 4 vertices.
        assert_eq!(f.tree_edge_count(), 3);
    }

    #[test]
    fn parallel_copies_do_not_count_as_replacement() {
        // Parallel pair (0,1) twice: removal drops all copies, so the
        // caller's surviving-adjacency excludes both — a genuine split.
        let edges = [(0, 1), (0, 1)];
        let mut f = SpanningForest::build(2, edges.iter().copied());
        match f.remove_edge(0, 1, &adj_of(&edges, &[(0, 1)])) {
            EdgeRemoval::Split(side) => assert_eq!(side.len(), 1),
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn link_restores_maximality_after_a_split() {
        // Path 0-1-2-3: removing (1,2) splits {0,1} off; linking (0,3)
        // must rejoin the trees (and be a tree edge), after which the
        // next removal classifies against the *linked* forest.
        let edges = [(0, 1), (1, 2), (2, 3)];
        let mut f = SpanningForest::build(4, edges.iter().copied());
        assert!(matches!(f.remove_edge(1, 2, &adj_of(&edges, &[(1, 2)])), EdgeRemoval::Split(_)));
        assert!(f.link(0, 3), "joins two trees");
        assert!(!f.link(1, 3), "same tree now: non-tree edge");
        assert!(f.is_tree_edge(0, 3));
        // The surviving graph is the path 1-0-3-2; removing the linked
        // edge (0,3) with no replacement splits it again.
        let surviving = [(0, 1), (2, 3), (0, 3)];
        match f.remove_edge(0, 3, &adj_of(&surviving, &[(0, 3)])) {
            EdgeRemoval::Split(side) => {
                assert!(side == vec![0, 1] || side == vec![2, 3], "side {side:?}")
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn missing_edge_is_non_tree() {
        let edges = [(0, 1)];
        let mut f = SpanningForest::build(3, edges.iter().copied());
        assert_eq!(f.remove_edge(1, 2, &adj_of(&edges, &[])), EdgeRemoval::NonTree);
        assert_eq!(f.remove_edge(2, 2, &adj_of(&edges, &[])), EdgeRemoval::NonTree);
    }
}
