//! Single-source shortest paths (SSSP) as a PIE program (§5.1).
//!
//! `PEval` is Dijkstra's algorithm over the local fragment; `IncEval` is the
//! incremental shortest-path algorithm of Ramalingam–Reps specialised to
//! monotonically decreasing distances: message-induced improvements seed a
//! multi-source Dijkstra, so the cost is a function of the changed region
//! (`|Mi| + |ΔOi|`), not of `|Fi|` — the *bounded incremental* property the
//! paper leans on.
//!
//! Status variable: `xv = dist(s, v)`, initially `∞`; candidate set
//! `Ci = Fi.O`; `faggr = min` (§5.1). T1–T3 hold (finite weighted-path
//! lengths, `min` contraction, monotone relaxation), so all asynchronous
//! runs converge to the true distances (Theorem 2).

use crate::common::{dijkstra_from_seeds, emit_policy, gather_owned, owner_values, INF};
use aap_core::pie::{DeltaChanges, Messages, PieProgram, UpdateCtx, WarmStart, WarmStrategy};
use aap_core::PlanCache;
use aap_graph::mutate::{stored_directed, DeltaSummary, StateRemap};
use aap_graph::{Fragment, LocalId, VertexId};
use std::sync::Arc;

/// The SSSP PIE program over graphs with `u32` edge weights.
/// Query = source vertex.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sssp;

/// Per-fragment SSSP state: current distance per local vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspState {
    /// `dist[l]` = best known distance from the source to local vertex `l`.
    pub dist: Vec<u64>,
}

impl<V: Sync + Send> PieProgram<V, u32> for Sssp {
    type Query = VertexId;
    type Val = u64;
    type State = SsspState;
    type Out = Vec<u64>;

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(
        &self,
        src: &VertexId,
        frag: &Fragment<V, u32>,
        ctx: &mut UpdateCtx<u64>,
    ) -> SsspState {
        let mut dist = vec![INF; frag.local_count()];
        let mut changed = Vec::new();
        if let Some(l) = frag.local(*src) {
            dist[l as usize] = 0;
            let work = dijkstra_from_seeds(frag, &mut dist, &[l], |&w| w as u64, &mut changed);
            ctx.charge_work(work);
        }
        for l in changed {
            if emit_policy(frag, l) {
                ctx.send(l, dist[l as usize]);
            }
        }
        SsspState { dist }
    }

    fn inceval(
        &self,
        _src: &VertexId,
        frag: &Fragment<V, u32>,
        state: &mut SsspState,
        msgs: &mut Messages<u64>,
        ctx: &mut UpdateCtx<u64>,
    ) {
        let mut seeds: Vec<LocalId> = Vec::with_capacity(msgs.len());
        for (l, d) in msgs.drain(..) {
            if d < state.dist[l as usize] {
                state.dist[l as usize] = d;
                seeds.push(l);
                ctx.note_effective(1);
            } else {
                ctx.note_redundant(1);
            }
        }
        if seeds.is_empty() {
            return;
        }
        let mut changed = Vec::new();
        let work = dijkstra_from_seeds(frag, &mut state.dist, &seeds, |&w| w as u64, &mut changed);
        ctx.charge_work(work);
        for l in changed {
            if emit_policy(frag, l) {
                ctx.send(l, state.dist[l as usize]);
            }
        }
    }

    fn assemble(
        &self,
        _src: &VertexId,
        frags: &[Arc<Fragment<V, u32>>],
        states: Vec<SsspState>,
    ) -> Vec<u64> {
        gather_owned(frags, &states, INF, |s, _, l| s.dist[l as usize])
    }
}

/// Warm-start incremental SSSP — the dynamic-graph variant.
///
/// Retained distances are migrated across the delta (fresh locals start
/// at `∞`) and relaxed from the delta-affected seeds with the same
/// bounded multi-source Dijkstra `IncEval` uses, so the warm round costs
/// a function of the changed region, not of `|Fi|`.
///
/// * Monotone-decreasing deltas (edge/vertex insertions, weight
///   decreases) are exact by monotonicity alone
///   ([`WarmStrategy::WarmDecrease`]).
/// * Deletions and weight increases can *raise* true distances, which
///   `min`-aggregation can never undo from stale values — so they run
///   [`WarmStrategy::WarmIncrease`]: [`Sssp::plan_invalidation`]
///   computes the Ramalingam–Reps affected region (every vertex some
///   old shortest path of which crossed a deleted/increased edge), all
///   of its copies are reset to `∞`, and the warm round re-relaxes the
///   region from its intact frontier. After the reset every retained
///   value is again a valid upper bound on the new distances, so the
///   asynchronous `min` fixpoint is exact — no cold fallback remains.
impl<V: Sync + Send> WarmStart<V, u32> for Sssp {
    fn warm_eval(
        &self,
        src: &VertexId,
        frag: &Fragment<V, u32>,
        prior: SsspState,
        remap: &StateRemap,
        seeds: &[LocalId],
        invalid: &[LocalId],
        ctx: &mut UpdateCtx<u64>,
    ) -> SsspState {
        let mut dist = remap.map_vec(prior.dist, INF);
        debug_assert_eq!(dist.len(), frag.local_count());
        let mut seedv: Vec<LocalId> = seeds.to_vec();
        if !invalid.is_empty() {
            // Affected-region reset: discard the invalidated values, then
            // seed re-relaxation from the region's *frontier* — every
            // surviving local vertex with an edge into the region (its
            // value is still a valid upper bound, and one of them carries
            // the region's new entry point). One linear edge scan; charged
            // as the invalidation round's work.
            let mut in_region = vec![false; frag.local_count()];
            for &l in invalid {
                dist[l as usize] = INF;
                in_region[l as usize] = true;
            }
            for u in frag.local_vertices() {
                if dist[u as usize] == INF || in_region[u as usize] {
                    continue;
                }
                if frag.neighbors(u).iter().any(|&t| in_region[t as usize]) {
                    seedv.push(u);
                }
            }
            ctx.charge_work(frag.edge_count() as u64 + invalid.len() as u64);
        }
        // The source may itself be a freshly added (or invalidated) vertex.
        if let Some(l) = frag.local(*src) {
            if dist[l as usize] != 0 {
                dist[l as usize] = 0;
                seedv.push(l);
            }
        }
        if seedv.is_empty() {
            return SsspState { dist };
        }
        let mut changed = Vec::new();
        let work = dijkstra_from_seeds(frag, &mut dist, &seedv, |&w| w as u64, &mut changed);
        ctx.charge_work(work + seedv.len() as u64);
        // Owned seed border vertices re-announce even when unchanged: a
        // peer may hold a brand-new, uninitialised copy of them. Under
        // edge-cut only owners face that — a surviving mirror's peer is
        // its owner, whose copy is never fresh (owned ids persist), and
        // a fresh mirror starts at `∞`, which is never shipped — so
        // change-driven sends from the Dijkstra pass cover everything
        // else and a deletion-only batch whose region re-derives its old
        // values ships nothing redundant. Vertex-cut re-partitions can
        // *move* ownership, so there every seed copy re-announces.
        for &s in &seedv {
            if (frag.is_owned(s) || frag.is_vertex_cut()) && frag.is_border(s) {
                changed.push(s);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        for l in changed {
            if emit_policy(frag, l) && dist[l as usize] != INF {
                ctx.send(l, dist[l as usize]);
            }
        }
        SsspState { dist }
    }

    fn assemble_ref(
        &self,
        _src: &VertexId,
        frags: &[Arc<Fragment<V, u32>>],
        states: &[SsspState],
    ) -> Vec<u64> {
        gather_owned(frags, states, INF, |s, _, l| s.dist[l as usize])
    }

    fn delta_strategy(&self, summary: &DeltaSummary) -> WarmStrategy {
        if summary.is_monotone_decreasing() {
            WarmStrategy::WarmDecrease
        } else {
            WarmStrategy::WarmIncrease
        }
    }

    /// The assembled output *is* the global owner-distance gather the
    /// plan starts from, so cache it: the next deletion batch's
    /// [`Sssp::plan_invalidation`] reads a flat copy instead of
    /// re-sweeping every fragment.
    fn refresh_plan_cache(&self, out: &Vec<u64>, cache: &mut PlanCache) {
        cache.put::<Vec<u64>>(out.clone());
    }

    /// The affected region of a non-monotone batch, Ramalingam–Reps
    /// style: start from the heads of deleted/increased edges that were
    /// *tight* under the old distances (`dist[u] + w == dist[v]` — the
    /// head's value actually used the edge) and from removed vertices,
    /// then close over old tight edges (the shortest-path DAG). Every
    /// vertex outside the closure keeps a tight path that avoids all
    /// deleted/increased edges, so its old distance is still achievable
    /// — a valid upper bound. Over-approximation (a head with an equal
    /// alternate path) costs recompute, never exactness.
    ///
    /// The global owner-distance gather is served from `cache` when the
    /// previous run refreshed it ([`Sssp::refresh_plan_cache`]); the
    /// vertex-count probe rejects a cache whose shape no longer matches
    /// the fragments, falling back to the `O(n)` sweep.
    fn plan_invalidation(
        &self,
        _src: &VertexId,
        frags: &[&Fragment<V, u32>],
        states: &[SsspState],
        changes: &DeltaChanges<'_>,
        cache: &mut PlanCache,
    ) -> Vec<Vec<LocalId>> {
        let expected: usize = frags.iter().map(|f| f.owned_count()).sum();
        let dist: &Vec<u64> = cache.get_or_insert_with(
            |d: &Vec<u64>| d.len() == expected,
            || owner_values(frags, states, INF, |s, _, l| s.dist[l as usize]),
        );
        let n = dist.len();
        let directed = stored_directed(frags);

        let mut affected = vec![false; n];
        let mut queue: Vec<VertexId> = Vec::new();
        // Was (u, v) tight under the old distances, for any stored copy?
        let tight = |u: VertexId, v: VertexId| -> bool {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du == INF || dv == INF {
                return false;
            }
            frags.iter().any(|f| {
                f.local(u).is_some_and(|lu| {
                    f.edges(lu).any(|(t, &w)| f.global(t) == v && du.saturating_add(w as u64) <= dv)
                })
            })
        };
        let start = |v: VertexId, affected: &mut Vec<bool>, queue: &mut Vec<VertexId>| {
            if (v as usize) < n && dist[v as usize] != INF && !affected[v as usize] {
                affected[v as usize] = true;
                queue.push(v);
            }
        };
        for &(u, v) in changes.removed_edges.iter().chain(changes.increased_edges) {
            if tight(u, v) {
                start(v, &mut affected, &mut queue);
            }
            if !directed && tight(v, u) {
                start(u, &mut affected, &mut queue);
            }
        }
        for &w in changes.removed_vertices {
            // The vertex is isolated: its own distance rises to ∞ (the
            // source re-pins itself in `warm_eval`), and everything that
            // derived through it follows via the closure below.
            start(w, &mut affected, &mut queue);
        }
        while let Some(u) = queue.pop() {
            let du = dist[u as usize];
            for f in frags {
                let Some(lu) = f.local(u) else { continue };
                for (t, &w) in f.edges(lu) {
                    let x = f.global(t);
                    if !affected[x as usize]
                        && dist[x as usize] != INF
                        && du.saturating_add(w as u64) <= dist[x as usize]
                    {
                        affected[x as usize] = true;
                        queue.push(x);
                    }
                }
            }
        }

        // Every copy of an affected vertex, at every fragment, is reset.
        let mut out: Vec<Vec<LocalId>> = vec![Vec::new(); frags.len()];
        for v in 0..n as VertexId {
            if !affected[v as usize] {
                continue;
            }
            for (i, f) in frags.iter().enumerate() {
                if let Some(l) = f.local(v) {
                    out[i].push(l);
                }
            }
        }
        for s in &mut out {
            s.sort_unstable();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use aap_core::{Engine, EngineOpts, Mode};
    use aap_graph::partition::{
        build_fragments, build_fragments_vertex_cut, hash_partition, range_partition,
        vertex_cut_partition,
    };
    use aap_graph::{generate, Graph};

    fn check(g: &Graph<(), u32>, src: VertexId, m: usize) {
        let expect = seq::dijkstra(g, src);
        for mode in [Mode::Bsp, Mode::Ap, Mode::Ssp { c: 1 }, Mode::aap()] {
            let frags = build_fragments(g, &hash_partition(g, m));
            let engine = Engine::new(
                frags,
                EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
            );
            let out = engine.run(&Sssp, &src);
            assert_eq!(out.out, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn matches_dijkstra_on_lattice() {
        let g = generate::lattice2d(12, 12, 5);
        check(&g, 0, 4);
    }

    #[test]
    fn matches_dijkstra_on_power_law() {
        let g = generate::rmat(9, 6, true, 21);
        check(&g, 0, 6);
        check(&g, 17, 6);
    }

    #[test]
    fn unreachable_stay_infinite() {
        let mut b = aap_graph::GraphBuilder::new_directed(6);
        b.add_edge(0, 1, 3u32);
        b.add_edge(1, 2, 4);
        // 3,4,5 unreachable
        b.add_edge(3, 4, 1);
        let g = b.build();
        let frags = build_fragments(&g, &hash_partition(&g, 3));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&Sssp, &0);
        assert_eq!(out.out, vec![0, 3, 7, INF, INF, INF]);
    }

    #[test]
    fn range_partition_on_lattice() {
        let g = generate::lattice2d(20, 10, 8);
        let expect = seq::dijkstra(&g, 5);
        let frags = build_fragments(&g, &range_partition(&g, 5));
        let engine = Engine::new(frags, EngineOpts::default());
        assert_eq!(engine.run(&Sssp, &5).out, expect);
    }

    #[test]
    fn vertex_cut_partition_works() {
        let g = generate::small_world(150, 3, 0.1, 2);
        let expect = seq::dijkstra(&g, 7);
        let frags = build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 4));
        let engine = Engine::new(frags, EngineOpts::default());
        assert_eq!(engine.run(&Sssp, &7).out, expect);
    }

    #[test]
    fn source_not_in_graph_yields_all_infinite() {
        let g = generate::lattice2d(4, 4, 1);
        let frags = build_fragments(&g, &hash_partition(&g, 2));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&Sssp, &999);
        assert!(out.out.iter().all(|&d| d == INF));
        assert_eq!(out.stats.total_updates(), 0);
    }
}
