//! Single-source shortest paths (SSSP) as a PIE program (§5.1).
//!
//! `PEval` is Dijkstra's algorithm over the local fragment; `IncEval` is the
//! incremental shortest-path algorithm of Ramalingam–Reps specialised to
//! monotonically decreasing distances: message-induced improvements seed a
//! multi-source Dijkstra, so the cost is a function of the changed region
//! (`|Mi| + |ΔOi|`), not of `|Fi|` — the *bounded incremental* property the
//! paper leans on.
//!
//! Status variable: `xv = dist(s, v)`, initially `∞`; candidate set
//! `Ci = Fi.O`; `faggr = min` (§5.1). T1–T3 hold (finite weighted-path
//! lengths, `min` contraction, monotone relaxation), so all asynchronous
//! runs converge to the true distances (Theorem 2).

use crate::common::{dijkstra_from_seeds, emit_policy, gather_owned, INF};
use aap_core::pie::{Messages, PieProgram, UpdateCtx, WarmStart};
use aap_graph::mutate::{DeltaSummary, StateRemap};
use aap_graph::{Fragment, LocalId, VertexId};
use std::sync::Arc;

/// The SSSP PIE program over graphs with `u32` edge weights.
/// Query = source vertex.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sssp;

/// Per-fragment SSSP state: current distance per local vertex.
#[derive(Debug, Clone)]
pub struct SsspState {
    /// `dist[l]` = best known distance from the source to local vertex `l`.
    pub dist: Vec<u64>,
}

impl<V: Sync + Send> PieProgram<V, u32> for Sssp {
    type Query = VertexId;
    type Val = u64;
    type State = SsspState;
    type Out = Vec<u64>;

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(
        &self,
        src: &VertexId,
        frag: &Fragment<V, u32>,
        ctx: &mut UpdateCtx<u64>,
    ) -> SsspState {
        let mut dist = vec![INF; frag.local_count()];
        let mut changed = Vec::new();
        if let Some(l) = frag.local(*src) {
            dist[l as usize] = 0;
            let work = dijkstra_from_seeds(frag, &mut dist, &[l], |&w| w as u64, &mut changed);
            ctx.charge_work(work);
        }
        for l in changed {
            if emit_policy(frag, l) {
                ctx.send(l, dist[l as usize]);
            }
        }
        SsspState { dist }
    }

    fn inceval(
        &self,
        _src: &VertexId,
        frag: &Fragment<V, u32>,
        state: &mut SsspState,
        msgs: &mut Messages<u64>,
        ctx: &mut UpdateCtx<u64>,
    ) {
        let mut seeds: Vec<LocalId> = Vec::with_capacity(msgs.len());
        for (l, d) in msgs.drain(..) {
            if d < state.dist[l as usize] {
                state.dist[l as usize] = d;
                seeds.push(l);
                ctx.note_effective(1);
            } else {
                ctx.note_redundant(1);
            }
        }
        if seeds.is_empty() {
            return;
        }
        let mut changed = Vec::new();
        let work = dijkstra_from_seeds(frag, &mut state.dist, &seeds, |&w| w as u64, &mut changed);
        ctx.charge_work(work);
        for l in changed {
            if emit_policy(frag, l) {
                ctx.send(l, state.dist[l as usize]);
            }
        }
    }

    fn assemble(
        &self,
        _src: &VertexId,
        frags: &[Arc<Fragment<V, u32>>],
        states: Vec<SsspState>,
    ) -> Vec<u64> {
        gather_owned(frags, &states, INF, |s, _, l| s.dist[l as usize])
    }
}

/// Warm-start incremental SSSP — the dynamic-graph variant.
///
/// Retained distances are migrated across the delta (fresh locals start
/// at `∞`) and relaxed from the delta-affected seeds with the same
/// bounded multi-source Dijkstra `IncEval` uses, so the warm round costs
/// a function of the changed region, not of `|Fi|`. **Exact** for
/// monotone-decreasing deltas (edge/vertex insertions, weight decreases,
/// the default [`WarmStart::delta_exact`]); deletions or weight increases
/// can *raise* true distances, which `min`-aggregation can never undo, so
/// drivers fall back to a cold recompute for those.
impl<V: Sync + Send> WarmStart<V, u32> for Sssp {
    fn warm_eval(
        &self,
        src: &VertexId,
        frag: &Fragment<V, u32>,
        prior: SsspState,
        remap: &StateRemap,
        seeds: &[LocalId],
        ctx: &mut UpdateCtx<u64>,
    ) -> SsspState {
        let mut dist = remap.map_vec(prior.dist, INF);
        debug_assert_eq!(dist.len(), frag.local_count());
        let mut seedv: Vec<LocalId> = seeds.to_vec();
        // The source may itself be a freshly added vertex.
        if let Some(l) = frag.local(*src) {
            if dist[l as usize] != 0 {
                dist[l as usize] = 0;
                seedv.push(l);
            }
        }
        if seedv.is_empty() {
            return SsspState { dist };
        }
        let mut changed = Vec::new();
        let work = dijkstra_from_seeds(frag, &mut dist, &seedv, |&w| w as u64, &mut changed);
        ctx.charge_work(work + seedv.len() as u64);
        // Seed border vertices re-announce even when unchanged: a peer may
        // hold a brand-new, uninitialised copy of them.
        for &s in &seedv {
            if frag.is_border(s) {
                changed.push(s);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        for l in changed {
            if emit_policy(frag, l) && dist[l as usize] != INF {
                ctx.send(l, dist[l as usize]);
            }
        }
        SsspState { dist }
    }

    fn assemble_ref(
        &self,
        _src: &VertexId,
        frags: &[Arc<Fragment<V, u32>>],
        states: &[SsspState],
    ) -> Vec<u64> {
        gather_owned(frags, states, INF, |s, _, l| s.dist[l as usize])
    }

    fn delta_exact(&self, summary: &DeltaSummary) -> bool {
        summary.is_monotone_decreasing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use aap_core::{Engine, EngineOpts, Mode};
    use aap_graph::partition::{
        build_fragments, build_fragments_vertex_cut, hash_partition, range_partition,
        vertex_cut_partition,
    };
    use aap_graph::{generate, Graph};

    fn check(g: &Graph<(), u32>, src: VertexId, m: usize) {
        let expect = seq::dijkstra(g, src);
        for mode in [Mode::Bsp, Mode::Ap, Mode::Ssp { c: 1 }, Mode::aap()] {
            let frags = build_fragments(g, &hash_partition(g, m));
            let engine = Engine::new(
                frags,
                EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
            );
            let out = engine.run(&Sssp, &src);
            assert_eq!(out.out, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn matches_dijkstra_on_lattice() {
        let g = generate::lattice2d(12, 12, 5);
        check(&g, 0, 4);
    }

    #[test]
    fn matches_dijkstra_on_power_law() {
        let g = generate::rmat(9, 6, true, 21);
        check(&g, 0, 6);
        check(&g, 17, 6);
    }

    #[test]
    fn unreachable_stay_infinite() {
        let mut b = aap_graph::GraphBuilder::new_directed(6);
        b.add_edge(0, 1, 3u32);
        b.add_edge(1, 2, 4);
        // 3,4,5 unreachable
        b.add_edge(3, 4, 1);
        let g = b.build();
        let frags = build_fragments(&g, &hash_partition(&g, 3));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&Sssp, &0);
        assert_eq!(out.out, vec![0, 3, 7, INF, INF, INF]);
    }

    #[test]
    fn range_partition_on_lattice() {
        let g = generate::lattice2d(20, 10, 8);
        let expect = seq::dijkstra(&g, 5);
        let frags = build_fragments(&g, &range_partition(&g, 5));
        let engine = Engine::new(frags, EngineOpts::default());
        assert_eq!(engine.run(&Sssp, &5).out, expect);
    }

    #[test]
    fn vertex_cut_partition_works() {
        let g = generate::small_world(150, 3, 0.1, 2);
        let expect = seq::dijkstra(&g, 7);
        let frags = build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 4));
        let engine = Engine::new(frags, EngineOpts::default());
        assert_eq!(engine.run(&Sssp, &7).out, expect);
    }

    #[test]
    fn source_not_in_graph_yields_all_infinite() {
        let g = generate::lattice2d(4, 4, 1);
        let frags = build_fragments(&g, &hash_partition(&g, 2));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&Sssp, &999);
        assert!(out.out.iter().all(|&d| d == INF));
        assert_eq!(out.stats.total_updates(), 0);
    }
}
