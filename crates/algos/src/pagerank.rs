//! Delta-based accumulative PageRank as a PIE program (§5.3).
//!
//! Following the paper (and Maiter), each vertex `v` keeps a score `Pv`
//! and an update variable `xv` (the *residual*), initially `1 − d`.
//! Propagation pushes `d · xv / Nv` to out-neighbours; border residuals
//! accumulate on mirrors and are shipped to owners, aggregated with
//! `faggr = sum`. The run reaches a fixpoint when every residual is below
//! the threshold `ε` — the same criterion as the paper's "sum of changes of
//! two consecutive iterations is below a threshold".
//!
//! Correctness under asynchrony (§5.3): `Pv = Σ_{p ∈ P} p(v) + (1 − d)`
//! over all paths `p` to `v`; each path's contribution is added exactly
//! once no matter the message order, because residual mass is *moved*, not
//! recomputed — so no bounded staleness is required.
//!
//! Scope: edge-cut partitions (the paper's setting). Mirrors have no
//! out-edges, so they act purely as accumulators for cross-border mass.

use crate::common::gather_owned;
use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_graph::{Fragment, LocalId};
use std::sync::Arc;

/// PageRank PIE program. Query = `()`; parameters live on the program.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Damping factor `d` (paper uses 0.85).
    pub damping: f64,
    /// Convergence threshold `ε` on per-vertex residual mass.
    pub epsilon: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85, epsilon: 1e-6 }
    }
}

/// Per-fragment PageRank state.
#[derive(Debug)]
pub struct PrState {
    /// Accumulated score per local vertex.
    pub score: Vec<f64>,
    /// Pending residual per local vertex.
    pub residual: Vec<f64>,
}

impl PageRank {
    /// Push residual mass locally until all owned residuals are `< ε`,
    /// then flush the mass accumulated on mirrors as messages.
    fn propagate<V, E>(
        &self,
        frag: &Fragment<V, E>,
        st: &mut PrState,
        mut queue: std::collections::VecDeque<LocalId>,
        ctx: &mut UpdateCtx<f64>,
    ) {
        debug_assert!(!frag.is_vertex_cut(), "PageRank supports edge-cut partitions");
        let owned = frag.owned_count() as u32;
        let mut queued = vec![false; frag.local_count()];
        for &l in &queue {
            queued[l as usize] = true;
        }
        let mut work: u64 = 0;
        while let Some(u) = queue.pop_front() {
            work += 1;
            queued[u as usize] = false;
            let r = st.residual[u as usize];
            if r < self.epsilon {
                continue;
            }
            st.residual[u as usize] = 0.0;
            st.score[u as usize] += r;
            let deg = frag.neighbors(u).len();
            if deg == 0 {
                continue;
            }
            work += deg as u64;
            let push = self.damping * r / deg as f64;
            for &v in frag.neighbors(u) {
                st.residual[v as usize] += push;
                if v < owned && st.residual[v as usize] >= self.epsilon && !queued[v as usize] {
                    queued[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        // Flush mirror-accumulated mass to owners once it is worth a
        // message (≥ ε), mirroring GRAPE+'s segment-batched communication
        // (§6). Sub-ε mass parks on the mirror until more arrives; at the
        // fixpoint each mirror copy may retain < ε unshipped mass, so a
        // vertex's score error is bounded by ε · (1 + #copies) — the same
        // order as the sequential threshold error.
        let floor = self.epsilon;
        for m in frag.mirrors() {
            let r = st.residual[m as usize];
            if r > floor {
                st.residual[m as usize] = 0.0;
                ctx.send(m, r);
            }
        }
        ctx.charge_work(work);
    }
}

impl<V: Sync + Send, E: Sync + Send> PieProgram<V, E> for PageRank {
    type Query = ();
    type Val = f64;
    type State = PrState;
    type Out = Vec<f64>;

    fn combine(&self, a: &mut f64, b: f64) -> bool {
        *a += b;
        true
    }

    fn peval(&self, _q: &(), frag: &Fragment<V, E>, ctx: &mut UpdateCtx<f64>) -> PrState {
        let n = frag.local_count();
        let mut st = PrState { score: vec![0.0; n], residual: vec![0.0; n] };
        let mut queue = std::collections::VecDeque::with_capacity(frag.owned_count());
        for l in frag.owned_vertices() {
            st.residual[l as usize] = 1.0 - self.damping;
            queue.push_back(l);
        }
        self.propagate(frag, &mut st, queue, ctx);
        st
    }

    fn inceval(
        &self,
        _q: &(),
        frag: &Fragment<V, E>,
        st: &mut PrState,
        msgs: &mut Messages<f64>,
        ctx: &mut UpdateCtx<f64>,
    ) {
        let mut queue = std::collections::VecDeque::with_capacity(msgs.len());
        for (l, delta) in msgs.drain(..) {
            st.residual[l as usize] += delta;
            if st.residual[l as usize] >= self.epsilon {
                queue.push_back(l);
                ctx.note_effective(1);
            } else {
                // Mass absorbed without triggering work: the update was
                // stale/too small to matter yet.
                ctx.note_redundant(1);
            }
        }
        self.propagate(frag, st, queue, ctx);
    }

    fn assemble(&self, _q: &(), frags: &[Arc<Fragment<V, E>>], states: Vec<PrState>) -> Vec<f64> {
        // Fold leftover sub-ε residual into the score for accuracy, exactly
        // like the sequential reference.
        gather_owned(frags, &states, 0.0, |s, _, l| s.score[l as usize] + s.residual[l as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use aap_core::{Engine, EngineOpts, Mode};
    use aap_graph::generate;
    use aap_graph::partition::{build_fragments, hash_partition};

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matches_sequential_on_cycle() {
        let mut b = aap_graph::GraphBuilder::new_directed(24);
        for v in 0..24u32 {
            b.add_edge(v, (v + 1) % 24, 1);
        }
        let g = b.build();
        let pr = PageRank { damping: 0.85, epsilon: 1e-9 };
        let expect = seq::pagerank_delta(&g, 0.85, 1e-9);
        for mode in [Mode::Bsp, Mode::Ap, Mode::aap()] {
            let frags = build_fragments(&g, &hash_partition(&g, 4));
            let engine =
                Engine::new(frags, EngineOpts { threads: 4, mode, max_rounds: Some(1_000_000) });
            let out = engine.run(&pr, &());
            assert!(close(&out.out, &expect, 1e-6), "mismatch");
        }
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = generate::rmat(8, 6, true, 33);
        let pr = PageRank { damping: 0.85, epsilon: 1e-8 };
        let expect = seq::pagerank_delta(&g, 0.85, 1e-8);
        for mode in [Mode::Bsp, Mode::aap()] {
            let frags = build_fragments(&g, &hash_partition(&g, 5));
            let engine =
                Engine::new(frags, EngineOpts { threads: 4, mode, max_rounds: Some(1_000_000) });
            let out = engine.run(&pr, &());
            // Thresholded propagation accumulates bounded error per vertex.
            assert!(close(&out.out, &expect, 1e-3), "mismatch beyond tolerance");
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let mut b = aap_graph::GraphBuilder::new_directed(40);
        for v in 1..40u32 {
            b.add_edge(v, 0, 1);
        }
        let g = b.build();
        let frags = build_fragments(&g, &hash_partition(&g, 4));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&PageRank::default(), &());
        assert!(out.out[0] > 5.0 * out.out[1]);
    }

    #[test]
    fn scores_bounded_by_total_mass() {
        let g = generate::uniform(120, 600, true, 3);
        let frags = build_fragments(&g, &hash_partition(&g, 4));
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&PageRank::default(), &());
        let total: f64 = out.out.iter().sum();
        // Σ Pv ≤ n; dangling vertices leak mass, so strictly below.
        assert!(total <= 120.0 + 1e-6);
        assert!(total > 12.0); // at least the teleport mass (1-d)·n
    }
}
