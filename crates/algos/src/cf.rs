//! Collaborative filtering by mini-batch SGD (§5.2).
//!
//! The bipartite rating graph has users `U` and items (products) `P`;
//! user vertices are partitioned across fragments, item vertices are
//! replicated wherever their ratings live (they arrive as edge-cut mirrors
//! of the user → item edges). Each fragment runs mini-batch SGD over its
//! local ratings; accumulated item gradients travel mirror → owner, the
//! owner applies them and broadcasts refreshed factor vectors owner →
//! mirrors — the parameter-server shape the paper compares against Petuum.
//!
//! The status variable of an item node is `(f, δ, t)` — factor vector,
//! accumulated gradient, timestamp — exactly the PEval declaration of
//! §5.2; `faggr` sums gradients and takes the max-timestamp factor.
//!
//! Unlike CC/SSSP/PageRank, CF's convergence argument needs **bounded
//! staleness** (§5.2, [30, 53]): run it under `Mode::Ssp { c }` or
//! `Mode::Aap` with `staleness_bound: Some(c)`. The fixpoint is not unique
//! (no Church–Rosser property) — different schedules give slightly
//! different factors — so tests assert RMSE quality, not bitwise equality.

use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_graph::{Fragment, LocalId, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic initial factor vector for vertex `v` — identical on every
/// copy of `v`, so replicas start consistent without communication.
pub fn seeded_factors(v: VertexId, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ aap_graph::fxhash::hash_u64(v as u64));
    (0..dim).map(|_| rng.gen_range(0.2f32..0.6)).collect()
}

/// CF message values: item gradients (mirror → owner) and refreshed factor
/// vectors (owner → mirrors).
#[derive(Debug, Clone)]
pub enum CfVal {
    /// Accumulated gradient for an item with the number of contributing
    /// mini-batches; `faggr` sums both, and owners apply the *average*, so
    /// many workers' gradients against the same stale factor do not
    /// overshoot (the weighted-sum aggregation of §5.2).
    Grad(Vec<f32>, u32),
    /// New factor vector with a version timestamp; `faggr` keeps the max
    /// version (the `max` on timestamps of §5.2).
    Factor(Vec<f32>, u32),
}

/// Factor components are clamped to this symmetric range after every
/// update, keeping runaway stale gradients (unbounded staleness under pure
/// AP) from overflowing — the paper's observation that CF *needs* bounded
/// staleness shows up as much slower, but finite, AP convergence.
const FACTOR_CLAMP: f32 = 4.0;

/// The CF PIE program.
#[derive(Debug, Clone, Copy)]
pub struct Cf {
    /// Latent dimensionality.
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularisation λ.
    pub lambda: f32,
    /// Local SGD epochs per fragment.
    pub epochs: u32,
    /// Factor initialisation seed.
    pub seed: u64,
}

impl Default for Cf {
    fn default() -> Self {
        Cf { dim: 8, lr: 0.05, lambda: 0.01, epochs: 20, seed: 42 }
    }
}

/// CF query: where the item id range begins (`|U|`, from the generator).
#[derive(Debug, Clone, Copy)]
pub struct CfQuery {
    /// First item vertex id.
    pub item_base: VertexId,
}

/// Per-fragment CF state.
pub struct CfState {
    /// Factor vector per local vertex (users and item copies).
    pub fac: Vec<Vec<f32>>,
    /// Factor version per local vertex (items only).
    version: Vec<u32>,
    /// Completed local epochs.
    pub epoch: u32,
}

/// Final CF output.
#[derive(Debug, Clone)]
pub struct CfOutput {
    /// Factor vectors by global vertex id (owner copies).
    pub factors: Vec<Vec<f32>>,
    /// Training RMSE over all ratings, computed with the owner factors.
    pub rmse: f64,
}

impl Cf {
    /// One SGD pass over the fragment's local ratings. Updates user factors
    /// and local item copies in place; accumulates per-item deltas for the
    /// owners.
    fn sgd_pass<V>(
        &self,
        q: &CfQuery,
        frag: &Fragment<V, f32>,
        st: &mut CfState,
    ) -> Vec<(LocalId, Vec<f32>)> {
        let mut delta: aap_graph::FxHashMap<LocalId, Vec<f32>> = aap_graph::FxHashMap::default();
        for u in frag.owned_vertices() {
            if frag.global(u) >= q.item_base {
                continue; // items don't own edges in the bipartite layout
            }
            for e in 0..frag.neighbors(u).len() {
                let p = frag.neighbors(u)[e];
                let r = frag.edge_data(u)[e];
                let dot: f32 =
                    st.fac[u as usize].iter().zip(&st.fac[p as usize]).map(|(a, b)| a * b).sum();
                let err = r - dot;
                let dp = delta.entry(p).or_insert_with(|| vec![0.0; self.dim]);
                #[allow(clippy::needless_range_loop)]
                for k in 0..self.dim {
                    let fu = st.fac[u as usize][k];
                    let fp = st.fac[p as usize][k];
                    let du = self.lr * (err * fp - self.lambda * fu);
                    let dpk = self.lr * (err * fu - self.lambda * fp);
                    st.fac[u as usize][k] =
                        (st.fac[u as usize][k] + du).clamp(-FACTOR_CLAMP, FACTOR_CLAMP);
                    // local view advances; owners learn the same delta
                    st.fac[p as usize][k] =
                        (st.fac[p as usize][k] + dpk).clamp(-FACTOR_CLAMP, FACTOR_CLAMP);
                    dp[k] += dpk;
                }
            }
        }
        st.epoch += 1;
        let mut out: Vec<(LocalId, Vec<f32>)> = delta.into_iter().collect();
        out.sort_unstable_by_key(|&(l, _)| l);
        out
    }

    /// Emit accumulated item deltas: gradients for mirrors, immediate
    /// factor broadcasts for owned items.
    fn emit_deltas<V>(
        &self,
        frag: &Fragment<V, f32>,
        st: &mut CfState,
        deltas: Vec<(LocalId, Vec<f32>)>,
        ctx: &mut UpdateCtx<CfVal>,
    ) {
        for (p, d) in deltas {
            if frag.is_owned(p) {
                // Owner applied the delta in-place during the pass; bump the
                // version and broadcast to the item's copies.
                st.version[p as usize] += 1;
                if !frag.mirror_holders(p).is_empty() {
                    ctx.send(p, CfVal::Factor(st.fac[p as usize].clone(), st.version[p as usize]));
                }
            } else {
                ctx.send(p, CfVal::Grad(d, 1));
            }
        }
    }
}

impl<V: Sync + Send> PieProgram<V, f32> for Cf {
    type Query = CfQuery;
    type Val = CfVal;
    type State = CfState;
    type Out = CfOutput;

    fn combine(&self, a: &mut CfVal, b: CfVal) -> bool {
        match (a, b) {
            (CfVal::Grad(ga, ca), CfVal::Grad(gb, cb)) => {
                for (x, y) in ga.iter_mut().zip(gb) {
                    *x += y;
                }
                *ca += cb;
                true
            }
            (CfVal::Factor(fa, va), CfVal::Factor(fb, vb)) if vb > *va => {
                *fa = fb;
                *va = vb;
                true
            }
            // Mixed kinds cannot target the same vertex by construction
            // (owners receive gradients, mirrors receive factors); keep the
            // existing value defensively.
            _ => false,
        }
    }

    fn peval(&self, q: &CfQuery, frag: &Fragment<V, f32>, ctx: &mut UpdateCtx<CfVal>) -> CfState {
        let n = frag.local_count();
        let mut st = CfState {
            fac: (0..n)
                .map(|l| seeded_factors(frag.global(l as LocalId), self.dim, self.seed))
                .collect(),
            version: vec![0; n],
            epoch: 0,
        };
        if self.epochs > 0 {
            let deltas = self.sgd_pass(q, frag, &mut st);
            ctx.charge_work(frag.edge_count() as u64 * self.dim as u64);
            self.emit_deltas(frag, &mut st, deltas, ctx);
        }
        st
    }

    fn inceval(
        &self,
        q: &CfQuery,
        frag: &Fragment<V, f32>,
        st: &mut CfState,
        msgs: &mut Messages<CfVal>,
        ctx: &mut UpdateCtx<CfVal>,
    ) {
        let mut got_factors = false;
        for (l, val) in msgs.drain(..) {
            match val {
                CfVal::Factor(f, ver) => {
                    if ver > st.version[l as usize] {
                        st.fac[l as usize] = f;
                        st.version[l as usize] = ver;
                        got_factors = true;
                        ctx.note_effective(1);
                    } else {
                        ctx.note_redundant(1);
                    }
                }
                CfVal::Grad(d, batches) => {
                    // This worker owns item `l`: apply the *averaged*
                    // aggregated gradient and broadcast refreshed factors.
                    debug_assert!(frag.is_owned(l));
                    let scale = 1.0 / batches.max(1) as f32;
                    for (x, y) in st.fac[l as usize].iter_mut().zip(&d) {
                        *x = (*x + *y * scale).clamp(-FACTOR_CLAMP, FACTOR_CLAMP);
                    }
                    st.version[l as usize] += 1;
                    ctx.note_effective(1);
                    if !frag.mirror_holders(l).is_empty() {
                        ctx.send(
                            l,
                            CfVal::Factor(st.fac[l as usize].clone(), st.version[l as usize]),
                        );
                    }
                }
            }
        }
        // Fresh factors fuel the next local epoch, up to the budget.
        if got_factors && st.epoch < self.epochs {
            let deltas = self.sgd_pass(q, frag, st);
            ctx.charge_work(frag.edge_count() as u64 * self.dim as u64);
            self.emit_deltas(frag, st, deltas, ctx);
        }
    }

    fn assemble(
        &self,
        _q: &CfQuery,
        frags: &[Arc<Fragment<V, f32>>],
        states: Vec<CfState>,
    ) -> CfOutput {
        let n: usize = frags.iter().map(|f| f.owned_count()).sum();
        let mut factors: Vec<Vec<f32>> = vec![Vec::new(); n];
        for (f, s) in frags.iter().zip(&states) {
            for l in f.owned_vertices() {
                factors[f.global(l) as usize] = s.fac[l as usize].clone();
            }
        }
        // Global training RMSE with owner factors.
        let mut se = 0.0f64;
        let mut cnt = 0usize;
        for f in frags {
            for u in f.owned_vertices() {
                let gu = f.global(u) as usize;
                for (p, &r) in f.edges(u) {
                    let gp = f.global(p) as usize;
                    let dot: f32 = factors[gu].iter().zip(&factors[gp]).map(|(a, b)| a * b).sum();
                    se += ((r - dot) as f64).powi(2);
                    cnt += 1;
                }
            }
        }
        let rmse = if cnt == 0 { 0.0 } else { (se / cnt as f64).sqrt() };
        CfOutput { factors, rmse }
    }

    fn val_bytes(&self, v: &CfVal) -> usize {
        match v {
            CfVal::Grad(g, _) => 5 + 4 * g.len(),
            CfVal::Factor(f, _) => 5 + 4 * f.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_core::{AapConfig, Engine, EngineOpts, Mode};
    use aap_graph::generate;
    use aap_graph::partition::{build_fragments_n, hash_partition};

    fn ratings() -> generate::RatingsGraph {
        generate::bipartite_ratings(80, 24, 12, 4, 5)
    }

    fn run(mode: Mode, epochs: u32) -> CfOutput {
        let r = ratings();
        // Partition by users; items follow as mirrors of the rating edges.
        let assignment = hash_partition(&r.graph, 4);
        let frags = build_fragments_n(&r.graph, &assignment, 4);
        let engine = Engine::new(frags, EngineOpts { threads: 4, mode, max_rounds: Some(100_000) });
        let cf = Cf { epochs, ..Cf::default() };
        engine.run(&cf, &CfQuery { item_base: r.item_base() }).out
    }

    #[test]
    fn training_reduces_rmse_under_bounded_staleness() {
        let untrained = run(Mode::Bsp, 0).rmse;
        for mode in [
            Mode::Bsp,
            Mode::Ssp { c: 3 },
            Mode::Aap(AapConfig { staleness_bound: Some(3), ..AapConfig::default() }),
        ] {
            let trained = run(mode.clone(), 25).rmse;
            assert!(
                trained < untrained * 0.75,
                "mode {mode:?}: rmse {trained} vs untrained {untrained}"
            );
            assert!(trained < 0.30, "mode {mode:?}: rmse {trained}");
        }
    }

    #[test]
    fn parallel_cf_in_ballpark_of_sequential() {
        let r = ratings();
        let seq = crate::seq::cf_sgd(&r, 8, 0.05, 0.01, 25, 42);
        let par = run(Mode::Ssp { c: 2 }, 25).rmse;
        assert!(par < seq * 3.0 + 0.2, "par {par} vs seq {seq}");
    }

    #[test]
    fn factors_have_right_shape() {
        let out = run(Mode::Bsp, 2);
        assert_eq!(out.factors.len(), 80 + 24);
        assert!(out.factors.iter().all(|f| f.len() == 8));
    }
}
