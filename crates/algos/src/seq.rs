//! Sequential single-machine reference algorithms.
//!
//! These are the "existing sequential algorithms" the paper parallelises;
//! we use them (a) to validate every parallel run — the Church–Rosser
//! guarantee says the parallel fixpoint must equal the sequential answer —
//! and (b) for the single-thread comparison of §7 Exp-1.

use crate::common::INF;
use aap_graph::{Graph, VertexId};

/// Dijkstra's algorithm (the paper's PEval for SSSP uses exactly this).
pub fn dijkstra(g: &Graph<(), u32>, src: VertexId) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if (src as usize) >= n {
        return dist;
    }
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, &w) in g.edges(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Unweighted hop counts from `src`.
pub fn bfs(g: &Graph<(), u32>, src: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if (src as usize) >= n {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == INF {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components: every vertex labelled with the minimum vertex id
/// in its (weakly) connected component.
pub fn connected_components<V, E>(g: &Graph<V, E>) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (u, v, _) in g.all_edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // union by smaller root id keeps the min-id invariant directly
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Delta-based PageRank (the sequential counterpart of §5.3): push residual
/// mass until every residual is below `epsilon`. Returns unnormalised
/// scores `Pv = (1 − d) + d · Σ ...` as in the paper.
pub fn pagerank_delta<V>(g: &Graph<V, u32>, damping: f64, epsilon: f64) -> Vec<f64> {
    let n = g.num_vertices();
    let mut score = vec![0.0f64; n];
    let mut residual = vec![1.0 - damping; n];
    let mut queue: std::collections::VecDeque<VertexId> = g.vertices().collect();
    let mut queued = vec![true; n];
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let r = residual[u as usize];
        if r < epsilon {
            continue;
        }
        residual[u as usize] = 0.0;
        score[u as usize] += r;
        let deg = g.degree(u);
        if deg == 0 {
            continue;
        }
        let push = damping * r / deg as f64;
        for &v in g.neighbors(u) {
            residual[v as usize] += push;
            if residual[v as usize] >= epsilon && !queued[v as usize] {
                queued[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    for v in 0..n {
        score[v] += residual[v]; // fold sub-threshold mass for accuracy
    }
    score
}

/// Plain single-thread SGD matrix factorisation; returns the final
/// training RMSE. Mirrors the update rule used by the parallel CF program.
pub fn cf_sgd(
    ratings: &aap_graph::generate::RatingsGraph,
    dim: usize,
    lr: f32,
    lambda: f32,
    epochs: u32,
    seed: u64,
) -> f64 {
    let g = &ratings.graph;
    let n = g.num_vertices();
    let mut fac: Vec<Vec<f32>> =
        (0..n).map(|v| crate::cf::seeded_factors(v as VertexId, dim, seed)).collect();
    for _ in 0..epochs {
        for u in g.vertices() {
            for (p, &r) in g.edges(u) {
                let dot: f32 =
                    fac[u as usize].iter().zip(&fac[p as usize]).map(|(a, b)| a * b).sum();
                let err = r - dot;
                #[allow(clippy::needless_range_loop)]
                for k in 0..dim {
                    let fu = fac[u as usize][k];
                    let fp = fac[p as usize][k];
                    fac[u as usize][k] += lr * (err * fp - lambda * fu);
                    fac[p as usize][k] += lr * (err * fu - lambda * fp);
                }
            }
        }
    }
    rmse(g, &fac)
}

/// Training RMSE of a factor table over all rated edges.
pub fn rmse(g: &Graph<(), f32>, fac: &[Vec<f32>]) -> f64 {
    let mut se = 0.0f64;
    let mut cnt = 0usize;
    for (u, p, &r) in g.all_edges() {
        let dot: f32 = fac[u as usize].iter().zip(&fac[p as usize]).map(|(a, b)| a * b).sum();
        se += ((r - dot) as f64).powi(2);
        cnt += 1;
    }
    if cnt == 0 {
        0.0
    } else {
        (se / cnt as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::{generate, GraphBuilder};

    #[test]
    fn dijkstra_small() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 5);
        let g = b.build();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 1, 3, INF]);
    }

    #[test]
    fn bfs_counts_hops() {
        let mut b = GraphBuilder::new_undirected(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 9);
        }
        let g = b.build();
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cc_labels_min_id() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(1, 4, 1u32);
        b.add_edge(4, 2, 1);
        b.add_edge(3, 5, 1);
        let g = b.build();
        assert_eq!(connected_components(&g), vec![0, 1, 1, 3, 1, 3]);
    }

    #[test]
    fn pagerank_sums_to_n() {
        // With residual folding, Σ Pv ≈ n for any graph without dangling
        // leakage; a cycle has no dangling nodes.
        let mut b = GraphBuilder::new_directed(10);
        for v in 0..10u32 {
            b.add_edge(v, (v + 1) % 10, 1);
        }
        let g = b.build();
        let pr = pagerank_delta(&g, 0.85, 1e-9);
        let total: f64 = pr.iter().sum();
        assert!((total - 10.0).abs() < 1e-3, "total {total}");
        // symmetric cycle: all scores equal
        assert!(pr.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    }

    #[test]
    fn pagerank_ranks_hub_higher() {
        // star: everyone points at 0
        let mut b = GraphBuilder::new_directed(5);
        for v in 1..5u32 {
            b.add_edge(v, 0, 1);
        }
        let g = b.build();
        let pr = pagerank_delta(&g, 0.85, 1e-10);
        assert!(pr[0] > pr[1] * 3.0);
    }

    #[test]
    fn cf_reduces_rmse() {
        let ratings = generate::bipartite_ratings(60, 20, 12, 4, 7);
        let untrained = cf_sgd(&ratings, 8, 0.0, 0.0, 0, 1);
        let trained = cf_sgd(&ratings, 8, 0.05, 0.01, 30, 1);
        assert!(trained < untrained * 0.5, "rmse {trained} vs untrained {untrained}");
        assert!(trained < 0.3, "rmse {trained}");
    }
}
