//! A Pregel-style vertex-centric adapter compiled onto PIE, following the
//! constructive proof of Proposition 3 ("a Pregel algorithm A can be
//! simulated by a PIE algorithm ρ: PEval runs compute() over vertices with
//! a loop ... IncEval also runs compute() over vertices in a fragment,
//! starting from active vertices").
//!
//! One `IncEval` invocation executes one vertex-centric *superstep* over
//! the fragment: messages between local vertices stay in a local pending
//! buffer (and the adapter requests another local round), messages to
//! mirrors become PIE update parameters and travel to the owning fragment.
//! Under the engine's BSP mode this is exactly Pregel/Giraph; under AP it
//! behaves like the asynchronous vertex-centric engines (GraphLab-async),
//! which is how the §7 baselines are realised (see DESIGN.md
//! substitutions).
//!
//! The crucial *performance* difference from native PIE programs — the one
//! the paper measures — is that a vertex-centric superstep advances
//! information by one hop per round, while PIE's `IncEval` runs a full
//! sequential algorithm over the fragment per round.

use aap_core::pie::{Messages, PieProgram, UpdateCtx};
use aap_graph::{Fragment, FxHashMap, LocalId, VertexId};
use std::sync::Arc;

/// A Pregel-style vertex program.
pub trait VertexProgram<V, E>: Sync {
    /// Query type (e.g. SSSP source).
    type Query: Clone + Sync;
    /// Per-vertex value.
    type VState: Clone + Send + 'static;
    /// Message type; combined with [`VertexProgram::combine`] (Pregel
    /// message combiners).
    type Msg: Clone + Send + 'static;

    /// Initial value of a vertex.
    fn init(&self, q: &Self::Query, frag: &Fragment<V, E>, l: LocalId) -> Self::VState;

    /// Message combiner (associative, commutative). Returns whether `a`
    /// changed.
    fn combine(&self, a: &mut Self::Msg, b: Self::Msg) -> bool;

    /// The `compute()` function, invoked once per active vertex per
    /// superstep. `msg` is the combined incoming message (`None` at
    /// superstep 0 or when the vertex runs because
    /// [`VertexProgram::active_without_messages`]).
    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        q: &Self::Query,
        frag: &Fragment<V, E>,
        superstep: u32,
        l: LocalId,
        state: &mut Self::VState,
        msg: Option<&Self::Msg>,
        send: &mut dyn FnMut(LocalId, Self::Msg),
    );

    /// If true, every owned vertex runs in this superstep even without
    /// messages (Pregel programs that never vote to halt, e.g. PageRank
    /// for a fixed number of iterations).
    fn active_without_messages(&self, _q: &Self::Query, _superstep: u32) -> bool {
        false
    }

    /// Extract the final per-vertex output.
    fn output(&self, state: &Self::VState) -> Self::VState {
        state.clone()
    }
}

/// Adapter: wraps a [`VertexProgram`] as a [`PieProgram`].
#[derive(Debug, Clone, Copy)]
pub struct VertexCentric<P>(pub P);

/// Fragment state of the adapter.
pub struct VcState<VState, Msg> {
    /// Per local vertex value.
    pub vstates: Vec<VState>,
    pending: FxHashMap<LocalId, Msg>,
    superstep: u32,
}

/// Run one local superstep over the given active set.
fn run_superstep<V, E, P>(
    adapter: &VertexCentric<P>,
    q: &P::Query,
    frag: &Fragment<V, E>,
    st: &mut VcState<P::VState, P::Msg>,
    current: Vec<(LocalId, Option<P::Msg>)>,
    ctx: &mut UpdateCtx<P::Msg>,
) where
    P: VertexProgram<V, E>,
{
    let mut next: FxHashMap<LocalId, P::Msg> = FxHashMap::default();
    let mut external: FxHashMap<LocalId, P::Msg> = FxHashMap::default();
    let prog = &adapter.0;
    let mut work = current.len() as u64;
    for (l, msg) in current {
        let vstate = &mut st.vstates[l as usize];
        let mut sends = 0u64;
        let mut send = |t: LocalId, m: P::Msg| {
            sends += 1;
            let sink = if frag.is_owned(t) { &mut next } else { &mut external };
            match sink.entry(t) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    prog.combine(e.get_mut(), m);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(m);
                }
            }
        };
        prog.compute(q, frag, st.superstep, l, vstate, msg.as_ref(), &mut send);
        work += sends;
    }
    ctx.charge_work(work);
    st.superstep += 1;
    let mut external: Vec<(LocalId, P::Msg)> = external.into_iter().collect();
    external.sort_unstable_by_key(|&(l, _)| l);
    for (t, m) in external {
        ctx.send(t, m);
    }
    st.pending = next;
    if !st.pending.is_empty() || prog.active_without_messages(q, st.superstep) {
        ctx.request_local_round();
    }
}

/// Merge incoming external messages with pending local ones and produce the
/// superstep's active set, sorted for determinism.
fn active_set<V, E, P>(
    adapter: &VertexCentric<P>,
    q: &P::Query,
    frag: &Fragment<V, E>,
    st: &mut VcState<P::VState, P::Msg>,
    incoming: &mut Messages<P::Msg>,
) -> Vec<(LocalId, Option<P::Msg>)>
where
    P: VertexProgram<V, E>,
{
    let mut pending = std::mem::take(&mut st.pending);
    for (l, m) in incoming.drain(..) {
        match pending.entry(l) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                adapter.0.combine(e.get_mut(), m);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m);
            }
        }
    }
    let mut current: Vec<(LocalId, Option<P::Msg>)> =
        if adapter.0.active_without_messages(q, st.superstep) {
            let mut all: Vec<(LocalId, Option<P::Msg>)> =
                frag.owned_vertices().map(|l| (l, None)).collect();
            for (l, m) in pending {
                all[l as usize].1 = Some(m);
            }
            all
        } else {
            pending.into_iter().map(|(l, m)| (l, Some(m))).collect()
        };
    current.sort_unstable_by_key(|&(l, _)| l);
    current
}

impl<V, E, P> PieProgram<V, E> for VertexCentric<P>
where
    V: Sync + Send,
    E: Sync + Send,
    P: VertexProgram<V, E>,
{
    type Query = P::Query;
    type Val = P::Msg;
    type State = VcState<P::VState, P::Msg>;
    type Out = Vec<P::VState>;

    fn combine(&self, a: &mut P::Msg, b: P::Msg) -> bool {
        self.0.combine(a, b)
    }

    fn peval(
        &self,
        q: &P::Query,
        frag: &Fragment<V, E>,
        ctx: &mut UpdateCtx<P::Msg>,
    ) -> Self::State {
        let vstates: Vec<P::VState> =
            frag.local_vertices().map(|l| self.0.init(q, frag, l)).collect();
        let mut st = VcState { vstates, pending: FxHashMap::default(), superstep: 0 };
        // Superstep 0: every owned vertex computes once (Pregel semantics).
        let current: Vec<(LocalId, Option<P::Msg>)> =
            frag.owned_vertices().map(|l| (l, None)).collect();
        run_superstep(self, q, frag, &mut st, current, ctx);
        st
    }

    fn inceval(
        &self,
        q: &P::Query,
        frag: &Fragment<V, E>,
        st: &mut Self::State,
        msgs: &mut Messages<P::Msg>,
        ctx: &mut UpdateCtx<P::Msg>,
    ) {
        let current = active_set(self, q, frag, st, msgs);
        if current.is_empty() {
            return;
        }
        ctx.note_effective(current.len() as u64);
        run_superstep(self, q, frag, st, current, ctx);
    }

    fn assemble(
        &self,
        _q: &P::Query,
        frags: &[Arc<Fragment<V, E>>],
        states: Vec<Self::State>,
    ) -> Vec<P::VState> {
        let n: usize = frags.iter().map(|f| f.owned_count()).sum();
        let mut out: Vec<Option<P::VState>> = vec![None; n];
        for (f, s) in frags.iter().zip(&states) {
            for l in f.owned_vertices() {
                out[f.global(l) as usize] = Some(self.0.output(&s.vstates[l as usize]));
            }
        }
        out.into_iter().map(|o| o.expect("all vertices owned somewhere")).collect()
    }

    fn val_bytes(&self, _v: &P::Msg) -> usize {
        std::mem::size_of::<P::Msg>()
    }
}

// ---------------------------------------------------------------------
// Baseline vertex programs.
// ---------------------------------------------------------------------

/// Vertex-centric SSSP (the Pregel paper's example): relax on message,
/// forward improved distances along out-edges.
#[derive(Debug, Default, Clone, Copy)]
pub struct VcSssp;

impl<V: Sync + Send> VertexProgram<V, u32> for VcSssp {
    type Query = VertexId;
    type VState = u64;
    type Msg = u64;

    fn init(&self, _q: &VertexId, _f: &Fragment<V, u32>, _l: LocalId) -> u64 {
        crate::common::INF
    }

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn compute(
        &self,
        q: &VertexId,
        frag: &Fragment<V, u32>,
        superstep: u32,
        l: LocalId,
        state: &mut u64,
        msg: Option<&u64>,
        send: &mut dyn FnMut(LocalId, u64),
    ) {
        let candidate = match msg {
            Some(&d) => d,
            None if superstep == 0 && frag.global(l) == *q => 0,
            None => return,
        };
        if candidate < *state {
            *state = candidate;
            for (v, &w) in frag.edges(l) {
                send(v, candidate + w as u64);
            }
        }
    }
}

/// Vertex-centric connected components by hash-min label propagation —
/// `O(diameter)` supersteps, the behaviour behind Giraph's 10⁴-round CC
/// runs on road networks in §7.
#[derive(Debug, Default, Clone, Copy)]
pub struct VcCc;

impl<V: Sync + Send, E: Sync + Send> VertexProgram<V, E> for VcCc {
    type Query = ();
    type VState = u32;
    type Msg = u32;

    fn init(&self, _q: &(), f: &Fragment<V, E>, l: LocalId) -> u32 {
        f.global(l)
    }

    fn combine(&self, a: &mut u32, b: u32) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn compute(
        &self,
        _q: &(),
        frag: &Fragment<V, E>,
        superstep: u32,
        l: LocalId,
        state: &mut u32,
        msg: Option<&u32>,
        send: &mut dyn FnMut(LocalId, u32),
    ) {
        let improved = match msg {
            Some(&m) if m < *state => {
                *state = m;
                true
            }
            Some(_) => false,
            None => superstep == 0,
        };
        if improved {
            let label = *state;
            for &v in frag.neighbors(l) {
                send(v, label);
            }
        }
    }
}

/// Vertex-centric PageRank for a fixed number of iterations (the classic
/// Pregel/Giraph formulation — full recomputation every superstep).
#[derive(Debug, Clone, Copy)]
pub struct VcPageRank {
    /// Damping factor.
    pub damping: f64,
    /// Number of supersteps.
    pub iterations: u32,
}

impl Default for VcPageRank {
    fn default() -> Self {
        VcPageRank { damping: 0.85, iterations: 30 }
    }
}

impl<V: Sync + Send, E: Sync + Send> VertexProgram<V, E> for VcPageRank {
    type Query = ();
    type VState = f64;
    type Msg = f64;

    fn init(&self, _q: &(), _f: &Fragment<V, E>, _l: LocalId) -> f64 {
        0.0
    }

    fn combine(&self, a: &mut f64, b: f64) -> bool {
        *a += b;
        true
    }

    fn active_without_messages(&self, _q: &(), superstep: u32) -> bool {
        superstep < self.iterations
    }

    fn compute(
        &self,
        _q: &(),
        frag: &Fragment<V, E>,
        superstep: u32,
        l: LocalId,
        state: &mut f64,
        msg: Option<&f64>,
        send: &mut dyn FnMut(LocalId, f64),
    ) {
        *state = (1.0 - self.damping) + msg.copied().unwrap_or(0.0);
        if superstep < self.iterations {
            let deg = frag.neighbors(l).len();
            if deg > 0 {
                let share = self.damping * *state / deg as f64;
                for &v in frag.neighbors(l) {
                    send(v, share);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use aap_core::{Engine, EngineOpts, Mode};
    use aap_graph::generate;
    use aap_graph::partition::{build_fragments, hash_partition};

    #[test]
    fn vc_sssp_matches_dijkstra() {
        let g = generate::small_world(150, 2, 0.1, 17);
        let expect = seq::dijkstra(&g, 4);
        for mode in [Mode::Bsp, Mode::Ap, Mode::aap()] {
            let frags = build_fragments(&g, &hash_partition(&g, 4));
            let engine =
                Engine::new(frags, EngineOpts { threads: 4, mode, max_rounds: Some(100_000) });
            assert_eq!(engine.run(&VertexCentric(VcSssp), &4).out, expect);
        }
    }

    #[test]
    fn vc_cc_matches_union_find() {
        let g = generate::small_world(120, 2, 0.05, 23);
        let expect = seq::connected_components(&g);
        let frags = build_fragments(&g, &hash_partition(&g, 4));
        let engine = Engine::new(frags, EngineOpts::default());
        assert_eq!(engine.run(&VertexCentric(VcCc), &()).out, expect);
    }

    #[test]
    fn vc_cc_needs_more_rounds_than_pie_cc() {
        // The paper's headline: PIE CC converges in far fewer rounds than
        // hash-min vertex-centric CC on high-diameter graphs.
        let g = generate::lattice2d(30, 30, 2);
        let mk = || build_fragments(&g, &hash_partition(&g, 4));
        let bsp = |frags| {
            Engine::new(
                frags,
                EngineOpts { threads: 4, mode: Mode::Bsp, max_rounds: Some(100_000) },
            )
        };
        let vc = bsp(mk()).run(&VertexCentric(VcCc), &()).stats.max_rounds();
        let pie = bsp(mk()).run(&crate::ConnectedComponents, &()).stats.max_rounds();
        assert!(vc > 4 * pie, "vertex-centric {vc} rounds vs PIE {pie} rounds");
    }

    #[test]
    fn vc_pagerank_close_to_delta_pagerank() {
        let g = generate::uniform(100, 500, true, 9);
        let frags = build_fragments(&g, &hash_partition(&g, 4));
        let engine =
            Engine::new(frags, EngineOpts { threads: 4, mode: Mode::Bsp, max_rounds: Some(1000) });
        let vc = engine.run(&VertexCentric(VcPageRank { damping: 0.85, iterations: 50 }), &()).out;
        let seq = seq::pagerank_delta(&g, 0.85, 1e-12);
        for (a, b) in vc.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-3, "vc {a} vs seq {b}");
        }
    }
}
