//! Graph connectivity (CC) as a PIE program — the running example of the
//! paper (§2 Figs 2–3, §3 Example 3, §4 correctness discussion).
//!
//! `PEval` computes the connected components of the local fragment
//! (including mirrors, i.e. the cut edges participate) and labels each with
//! the minimum global vertex id it contains (`cid`). Instead of the paper's
//! explicit "root node" trick we keep a component index per vertex and a
//! `cid` per component — the same information, one indirection flatter.
//! `IncEval` applies `min`-aggregated border cids: a message can only
//! *lower* a component's cid; lowered components re-announce their border
//! members. Local components never merge after `PEval` (messages add no
//! edges), so `IncEval` is bounded in the changed set, matching the paper's
//! claim that CC's `IncEval` is a bounded incremental algorithm.
//!
//! Conditions T1–T3 (§4): cids come from the finite set of vertex ids (T1);
//! `min` only decreases them (T2, contracting); and smaller inputs yield
//! smaller outputs (T3, monotonic) — so Theorem 2 applies and every
//! asynchronous run converges to `Q(G)`.

use crate::common::{gather_owned, owner_values};
use crate::forest::{EdgeRemoval, SpanningForest};
use aap_core::pie::{DeltaChanges, Messages, PieProgram, UpdateCtx, WarmStart, WarmStrategy};
use aap_core::PlanCache;
use aap_graph::mutate::{stored_directed, DeltaSummary, StateRemap};
use aap_graph::{Fragment, FxHashSet, LocalId, VertexId};
use std::sync::{Arc, Mutex};

/// The CC PIE program: connected components of undirected graphs, or
/// *weakly* connected components of directed ones. Supports edge-cut and
/// vertex-cut partitions.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConnectedComponents;

/// Which vertices announce their component's cid.
///
/// Mirrors always ship to their owner (the paper's `M(i,j) = {v.cid | v ∈
/// Fi.O ∩ Fj.I}`). For *undirected* edge-cut graphs that alone suffices:
/// the symmetric replicated cut edge carries information back. For
/// directed graphs (weak connectivity must flow against edge direction)
/// and for vertex-cut copies, owned border vertices additionally broadcast
/// to the fragments holding their copies.
fn cc_emits<V, E>(frag: &Fragment<V, E>, l: LocalId) -> bool {
    if frag.is_owned(l) {
        (frag.is_vertex_cut() || frag.local_graph().is_directed())
            && !frag.mirror_holders(l).is_empty()
    } else {
        true
    }
}

/// Per-fragment CC state.
#[derive(Debug)]
pub struct CcState {
    /// Local vertex -> local component index.
    comp_of: Vec<u32>,
    /// Component -> current cid (minimum known global id).
    comp_cid: Vec<VertexId>,
    /// Component -> its border members (emission targets).
    comp_border: Vec<Vec<LocalId>>,
    /// Cached local [`SpanningForest`], retained across batches so
    /// consecutive removal batches skip the O(E_i) rebuild in
    /// [`ConnectedComponents::plan_invalidation`]. Purely derivable
    /// acceleration state: excluded from `Clone`/`PartialEq` and from
    /// the snapshot `Codec` (rebuilt on demand after a restore), and
    /// interior-mutable because planning sees states by `&`.
    forest: Mutex<Option<SpanningForest>>,
}

impl Clone for CcState {
    fn clone(&self) -> Self {
        // Clones serve snapshot export (and test duplication) paths,
        // where the forest cache is derivable noise: start cold.
        CcState {
            comp_of: self.comp_of.clone(),
            comp_cid: self.comp_cid.clone(),
            comp_border: self.comp_border.clone(),
            forest: Mutex::new(None),
        }
    }
}

impl PartialEq for CcState {
    fn eq(&self, other: &Self) -> bool {
        self.comp_of == other.comp_of
            && self.comp_cid == other.comp_cid
            && self.comp_border == other.comp_border
    }
}

impl Eq for CcState {}

impl CcState {
    /// The current cid of local vertex `l`.
    pub fn cid(&self, l: LocalId) -> VertexId {
        self.comp_cid[self.comp_of[l as usize] as usize]
    }

    /// Rebuild a state from its component arrays — the decode hook for
    /// durable snapshots (`aap-snapshot`).
    ///
    /// # Panics
    /// Panics on inconsistent arrays — [`CcState::try_from_parts`] is
    /// the error-returning form decoders use; every check lives there.
    pub fn from_parts(
        comp_of: Vec<u32>,
        comp_cid: Vec<VertexId>,
        comp_border: Vec<Vec<LocalId>>,
    ) -> Self {
        CcState::try_from_parts(comp_of, comp_cid, comp_border)
            .unwrap_or_else(|e| panic!("inconsistent CcState parts: {e}"))
    }

    /// Fallible form of [`CcState::from_parts`] — the single home of
    /// the consistency checks, so snapshot decoders turn bad input into
    /// a tagged error instead of a panic.
    ///
    /// # Errors
    /// Describes the first inconsistency: a `comp_of` entry or border
    /// member out of range, or a border-list count mismatch.
    pub fn try_from_parts(
        comp_of: Vec<u32>,
        comp_cid: Vec<VertexId>,
        comp_border: Vec<Vec<LocalId>>,
    ) -> Result<Self, String> {
        let c = comp_cid.len();
        if comp_border.len() != c {
            return Err("one border list per component".into());
        }
        if comp_of.iter().any(|&i| (i as usize) >= c) {
            return Err("component index out of range".into());
        }
        let n = comp_of.len();
        if comp_border.iter().flatten().any(|&l| (l as usize) >= n) {
            return Err("border member out of range".into());
        }
        Ok(CcState { comp_of, comp_cid, comp_border, forest: Mutex::new(None) })
    }

    /// Take the cached spanning forest out of the cell (leaving it
    /// empty), if one was persisted by a previous batch's planning.
    fn take_forest(&self) -> Option<SpanningForest> {
        self.forest.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// Persist a (maintained) spanning forest for the next batch.
    fn put_forest(&self, f: SpanningForest) {
        *self.forest.lock().unwrap_or_else(|e| e.into_inner()) = Some(f);
    }

    /// Local vertex -> local component index (encode hook).
    pub fn comp_of(&self) -> &[u32] {
        &self.comp_of
    }

    /// Component -> current cid (encode hook).
    pub fn comp_cid(&self) -> &[VertexId] {
        &self.comp_cid
    }

    /// Component -> border members (encode hook).
    pub fn comp_border(&self) -> &[Vec<LocalId>] {
        &self.comp_border
    }
}

/// Union-find over the local edges, densified into a [`CcState`] with
/// min-global-id cids — the shared core of `PEval` and the warm-start
/// re-evaluation. Union through mirrors is deliberate: the fragment
/// includes its cut edges, so u — mirror(v) — u' chains are genuine local
/// connectivity (the paper's DFS does the same).
fn local_components<V, E>(frag: &Fragment<V, E>) -> CcState {
    let n = frag.local_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in frag.local_vertices() {
        for &v in frag.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }
    // Densify component indices and compute min-global-id cids.
    let mut comp_index: Vec<u32> = vec![u32::MAX; n];
    let mut comp_cid: Vec<VertexId> = Vec::new();
    let mut comp_of: Vec<u32> = vec![0; n];
    for l in 0..n as u32 {
        let root = find(&mut parent, l);
        let idx = if comp_index[root as usize] == u32::MAX {
            let idx = comp_cid.len() as u32;
            comp_index[root as usize] = idx;
            comp_cid.push(VertexId::MAX);
            idx
        } else {
            comp_index[root as usize]
        };
        comp_of[l as usize] = idx;
        let g = frag.global(l);
        if g < comp_cid[idx as usize] {
            comp_cid[idx as usize] = g;
        }
    }
    let mut comp_border: Vec<Vec<LocalId>> = vec![Vec::new(); comp_cid.len()];
    for l in 0..n as LocalId {
        if cc_emits(frag, l) {
            comp_border[comp_of[l as usize] as usize].push(l);
        }
    }
    CcState { comp_of, comp_cid, comp_border, forest: Mutex::new(None) }
}

impl<V: Sync + Send, E: Sync + Send> PieProgram<V, E> for ConnectedComponents {
    type Query = ();
    type Val = VertexId;
    type State = CcState;
    type Out = Vec<VertexId>;

    fn combine(&self, a: &mut VertexId, b: VertexId) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(&self, _q: &(), frag: &Fragment<V, E>, ctx: &mut UpdateCtx<VertexId>) -> CcState {
        let state = local_components(frag);
        // Message segment: cids of candidate border nodes (Fig 2).
        for (c, members) in state.comp_border.iter().enumerate() {
            for &l in members {
                ctx.send(l, state.comp_cid[c]);
            }
        }
        ctx.charge_work((frag.edge_count() + frag.local_count()) as u64);
        state
    }

    fn inceval(
        &self,
        _q: &(),
        _frag: &Fragment<V, E>,
        state: &mut CcState,
        msgs: &mut Messages<VertexId>,
        ctx: &mut UpdateCtx<VertexId>,
    ) {
        // "Merge" components by lowering their cids (Fig 3); propagate each
        // lowered cid to the component's border members.
        let mut changed: Vec<u32> = Vec::new();
        for (l, cid) in msgs.drain(..) {
            let c = state.comp_of[l as usize];
            if cid < state.comp_cid[c as usize] {
                state.comp_cid[c as usize] = cid;
                changed.push(c);
                ctx.note_effective(1);
            } else {
                ctx.note_redundant(1);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        let mut work = 0u64;
        for c in changed {
            let cid = state.comp_cid[c as usize];
            work += state.comp_border[c as usize].len() as u64;
            for &l in &state.comp_border[c as usize] {
                ctx.send(l, cid);
            }
        }
        ctx.charge_work(work + 1);
    }

    fn assemble(
        &self,
        _q: &(),
        frags: &[Arc<Fragment<V, E>>],
        states: Vec<CcState>,
    ) -> Vec<VertexId> {
        gather_owned(frags, &states, 0, |s, _, l| s.cid(l))
    }
}

/// Warm-start incremental CC — the dynamic-graph variant.
///
/// Edge/vertex insertions can only *merge* components. Crucially, every
/// inserted edge has both endpoints in the delta seed set, so instead of
/// re-running union-find over all of `Fi`'s edges, the warm round unions
/// the **prior** components along the seeds' incident edges only — a
/// bounded-incremental `O(Σ deg(seed) + |Fi|)` pass (the `O(|Fi|)` part
/// is id bookkeeping, not edge work). Previously learned cids carry over,
/// merged groups take the `min`, and only components that carry a seed or
/// whose cid changed re-announce their borders — untouched fragments stay
/// silent.
///
/// Removals can *split* components, which `min`-aggregation cannot undo
/// from stale values — so they run [`WarmStrategy::WarmIncrease`]:
/// [`ConnectedComponents::plan_invalidation`] classifies every removed
/// edge against a per-fragment [`SpanningForest`] (non-tree → no-op;
/// tree with a surviving replacement → no-op; genuine split → the whole
/// old component is re-labelled), the invalidated vertices restart as
/// singletons at **every** copy, and the warm round re-merges them along
/// their incident edges — a cold CC restricted to the split components,
/// warm everywhere else. Weight changes are ignored entirely (CC is
/// insensitive to them), so weight-only batches stay on the plain warm
/// path.
impl<V: Sync + Send, E: Sync + Send> WarmStart<V, E> for ConnectedComponents {
    fn warm_eval(
        &self,
        _q: &(),
        frag: &Fragment<V, E>,
        prior: CcState,
        remap: &StateRemap,
        seeds: &[LocalId],
        invalid: &[LocalId],
        ctx: &mut UpdateCtx<VertexId>,
    ) -> CcState {
        if remap.is_identity() && seeds.is_empty() && invalid.is_empty() {
            return prior; // untouched fragment: keep the fixpoint, emit nothing
        }
        let n = frag.local_count();
        let CcState { comp_of: old_comp_of, comp_cid: old_cid, comp_border: _, forest } = prior;
        // The persisted forest survives only while the local id space
        // does (identity remap). Planning already unlinked this batch's
        // removals; the seed loop below links seed-incident edges, so
        // insertions keep it maximal over the post-apply adjacency.
        let mut forest = if remap.is_identity() {
            forest.into_inner().unwrap_or_else(|e| e.into_inner())
        } else {
            None
        };
        // 1. Migrate vertex -> component across the mutation; fresh locals
        //    (new mirrors / added vertices) become singleton components,
        //    and so do the *invalidated* locals — their old component
        //    knowledge is exactly what the plan declared unsound.
        let mut comp_of: Vec<u32> = if remap.is_identity() {
            old_comp_of
        } else {
            let mut co = vec![u32::MAX; n];
            for old_l in 0..remap.old_local_count() as LocalId {
                if let Some(new_l) = remap.map(old_l) {
                    co[new_l as usize] = old_comp_of[old_l as usize];
                }
            }
            co
        };
        let mut cid: Vec<VertexId> = old_cid;
        let mut is_fresh = vec![false; n];
        for (l, c) in comp_of.iter_mut().enumerate() {
            if *c == u32::MAX {
                *c = cid.len() as u32;
                cid.push(frag.global(l as LocalId));
                is_fresh[l] = true;
            }
        }
        for &l in invalid {
            comp_of[l as usize] = cid.len() as u32;
            cid.push(frag.global(l));
        }
        let ncomp = cid.len();
        // Components emptied by the migration or the invalidation reset
        // must not survive the collapse: their (possibly stale-low) cids
        // have no members backing them.
        let mut live = vec![false; ncomp];
        for &c in &comp_of {
            live[c as usize] = true;
        }
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        // 2. Union prior components along the seeds' and invalidated
        //    vertices' incident edges. Every inserted edge is
        //    seed-incident; every edge of a split component is incident
        //    to an invalidated vertex (the plan resets whole components,
        //    so no surviving edge crosses the invalid/valid boundary);
        //    every other edge already has both endpoints in one component
        //    (the prior fixpoint), so its union is a no-op and can be
        //    skipped wholesale.
        let mut parent: Vec<u32> = (0..ncomp as u32).collect();
        let mut work = 1u64;
        for &s in seeds.iter().chain(invalid) {
            work += frag.neighbors(s).len() as u64 + 1;
            for &t in frag.neighbors(s) {
                let a = find(&mut parent, comp_of[s as usize]);
                let b = find(&mut parent, comp_of[t as usize]);
                if a != b {
                    parent[a.max(b) as usize] = a.min(b);
                }
            }
        }
        // Forest maintenance rides the same seed sweep: every inserted
        // edge is seed-incident, and linking a pre-existing edge is an
        // O(α) same-tree no-op.
        if let Some(f) = forest.as_mut() {
            for &s in seeds {
                for &t in frag.neighbors(s) {
                    f.link(s, t);
                }
            }
        }
        // 3. Collapse merge groups to dense components with min-cids.
        let mut dense: Vec<u32> = vec![u32::MAX; ncomp];
        let mut new_cid: Vec<VertexId> = Vec::new();
        for c in 0..ncomp as u32 {
            if !live[c as usize] {
                continue;
            }
            let r = find(&mut parent, c);
            let d = if dense[r as usize] == u32::MAX {
                let d = new_cid.len() as u32;
                dense[r as usize] = d;
                new_cid.push(cid[c as usize]);
                d
            } else {
                dense[r as usize]
            } as usize;
            if cid[c as usize] < new_cid[d] {
                new_cid[d] = cid[c as usize];
            }
        }
        // 4. Emit per *member*, not per component: a border vertex ships
        //    its value iff the value actually changed (its pre-merge comp
        //    cid differs from the group min) — merging a stale singleton
        //    into the giant component must not re-broadcast the giant's
        //    whole border. Peers' knowledge of unchanged members is
        //    intact. Then rebuild the border lists for later IncEval
        //    rounds (membership can change: fresh mirrors; owned vertices
        //    gaining their first holder on directed graphs).
        let mut comp_border: Vec<Vec<LocalId>> = vec![Vec::new(); new_cid.len()];
        for l in 0..n as LocalId {
            if !cc_emits(frag, l) {
                continue;
            }
            let old_c = comp_of[l as usize];
            let d = dense[find(&mut parent, old_c) as usize] as usize;
            if cid[old_c as usize] != new_cid[d] {
                ctx.send(l, new_cid[d]);
            }
            comp_border[d].push(l);
        }
        for c in comp_of.iter_mut() {
            *c = dense[find(&mut parent, *c) as usize];
        }
        // 5. Seed refresh: a peer may hold a fresh, uninitialised copy of
        //    a seed — re-announce its current value even when unchanged
        //    (routing dedups the overlap with step 4 per vertex). Only
        //    two classes can face a fresh peer copy: fresh locals (their
        //    owner must hear the singleton) and owned vertices (a peer
        //    may have just gained a mirror — owners can't see holder
        //    *growth* locally, so every owned seed announces). Under
        //    edge-cut a surviving mirror's peer is its owner, whose copy
        //    is never fresh (owned ids persist) — skipping it is what
        //    keeps a deletion-only batch at zero messages when nothing
        //    split. Vertex-cut re-partitions can *move* ownership, so
        //    there every surviving copy re-announces (the fresh owner
        //    may need an old copy's value).
        for &s in seeds {
            let peer_may_be_fresh =
                is_fresh[s as usize] || frag.is_owned(s) || frag.is_vertex_cut();
            if peer_may_be_fresh && cc_emits(frag, s) {
                ctx.send(s, new_cid[comp_of[s as usize] as usize]);
            }
        }
        ctx.charge_work(work + n as u64);
        CcState { comp_of, comp_cid: new_cid, comp_border, forest: Mutex::new(forest) }
    }

    fn assemble_ref(
        &self,
        _q: &(),
        frags: &[Arc<Fragment<V, E>>],
        states: &[CcState],
    ) -> Vec<VertexId> {
        gather_owned(frags, states, 0, |s, _, l| s.cid(l))
    }

    fn delta_strategy(&self, summary: &DeltaSummary) -> WarmStrategy {
        // CC ignores weights entirely; only removals break monotonicity,
        // and those are handled by the spanning-forest invalidation.
        if summary.vertices_removed == 0 && summary.edges_removed == 0 {
            WarmStrategy::WarmDecrease
        } else {
            WarmStrategy::WarmIncrease
        }
    }

    /// The assembled output *is* the global owner-cid gather the plan
    /// starts from; cache it so the next removal batch's
    /// [`ConnectedComponents::plan_invalidation`] skips the per-batch
    /// fragment sweep.
    fn refresh_plan_cache(&self, out: &Vec<VertexId>, cache: &mut PlanCache) {
        cache.put::<Vec<VertexId>>(out.clone());
    }

    /// The affected region of a removal batch, in two filters:
    ///
    /// 1. **Local spanning forests.** A removed stored edge that is
    ///    non-tree in its fragment's [`SpanningForest`] (or tree with a
    ///    surviving local replacement) leaves that fragment's local
    ///    connectivity — and therefore the global join — unchanged. Only
    ///    a genuine [`EdgeRemoval::Split`] (and every vertex removal,
    ///    which always splits its vertex off) marks the old component
    ///    *suspect*. Stored edge orientations are tracked across the
    ///    whole partition first: a removed directed edge whose
    ///    reciprocal survives in *any* fragment — typically the other
    ///    fragment of the pair under edge-cut — keeps its endpoints
    ///    weakly connected and is excluded before it can feed a forest
    ///    split. Random deletions on anything cyclic overwhelmingly
    ///    stop here, with an empty plan. On undirected graphs with a
    ///    stable vertex set the forests **persist** in the state
    ///    between batches (removals are unlinked here, insertions
    ///    linked by `warm_eval`), so consecutive batches skip the
    ///    O(E_i) per-fragment rebuild.
    /// 2. **Global re-connectivity of the suspect components only.** One
    ///    sequential union-find pass over the suspect components'
    ///    surviving stored edges computes their true new pieces; exactly
    ///    the vertices whose piece lost the old cid source (piece min ≠
    ///    old cid) are invalidated — the piece that keeps the old
    ///    minimum keeps its values. Cid values only ever flow within a
    ///    component, so untouched components need nothing.
    ///
    /// The result is minimal-by-piece: a split re-labels just the split
    /// region, not the surviving bulk of the component.
    fn plan_invalidation(
        &self,
        _q: &(),
        frags: &[&Fragment<V, E>],
        states: &[CcState],
        changes: &DeltaChanges<'_>,
        cache: &mut PlanCache,
    ) -> Vec<Vec<LocalId>> {
        let expected: usize = frags.iter().map(|f| f.owned_count()).sum();
        let cid_of: &Vec<VertexId> = cache.get_or_insert_with(
            |c: &Vec<VertexId>| c.len() == expected,
            || owner_values(frags, states, 0, |s, _, l| s.cid(l)),
        );
        let n_glob = cid_of.len();
        let removed_v: FxHashSet<VertexId> = changes.removed_vertices.iter().copied().collect();
        // Suspect components, as a bitmap over cid values (cids are
        // vertex ids, so `n_glob` bits suffice) — consulted per vertex
        // in the hot sweeps below.
        let mut suspect = vec![false; n_glob];
        let mut any_suspect = false;
        // A removed vertex always splits off (it loses every edge) and
        // may even be the component's cid source.
        for &w in changes.removed_vertices {
            suspect[cid_of[w as usize] as usize] = true;
            any_suspect = true;
        }

        let directed = stored_directed(frags);
        let removed_set: FxHashSet<(VertexId, VertexId)> =
            changes.removed_edges.iter().copied().collect();
        // A *stored* edge `(a, b)` dies iff its orientation is removed.
        // Undirected removals are expanded to both stored directions by
        // the apply layer; directed ones kill only the listed direction
        // — a surviving reciprocal `(b, a)` keeps the pair (weakly)
        // connected, so it must neither feed the forest removal nor be
        // filtered out of the replacement search.
        let edge_dies = |a: VertexId, b: VertexId| -> bool {
            removed_set.contains(&(a, b)) || (!directed && removed_set.contains(&(b, a)))
        };

        let pair_survives = if directed {
            reciprocal_survivors(frags, changes.removed_edges, &removed_v, &edge_dies)
        } else {
            FxHashSet::default()
        };

        // Filter 1: per-fragment forests classify the edge removals.
        // The forest persists in the state's cell across batches when
        // that is sound: undirected graphs (a directed forest overlays
        // remote-reciprocal knowledge — see `pair_survives` — that the
        // next batch cannot trust) and no removed vertices (those change
        // the local id space; the remap drops the cache anyway).
        let persist = !directed && changes.removed_vertices.is_empty();
        for (f, s) in frags.iter().zip(states) {
            // The removed logical edges that actually *disconnect* a
            // locally stored pair: some stored orientation dies and no
            // orientation survives. Edges of removed vertices are
            // skipped: their component is already suspect, and any split
            // they cause stays inside it. (Under edge-cut only owned
            // sources store edges, so fragments where both endpoints are
            // mirrors skip the degree scans outright.)
            let removed_local: Vec<(LocalId, LocalId)> = changes
                .removed_edges
                .iter()
                .filter(|(u, v)| !removed_v.contains(u) && !removed_v.contains(v))
                .filter_map(|&(u, v)| {
                    let (lu, lv) = f.local(u).zip(f.local(v))?;
                    if !f.is_vertex_cut() && !f.is_owned(lu) && !f.is_owned(lv) {
                        return None;
                    }
                    let stored_uv = f.neighbors(lu).contains(&lv);
                    let stored_vu = f.neighbors(lv).contains(&lu);
                    let any_dies = (stored_uv && edge_dies(u, v)) || (stored_vu && edge_dies(v, u));
                    let any_survives = (stored_uv && !edge_dies(u, v))
                        || (stored_vu && !edge_dies(v, u))
                        || pair_survives.contains(&(u, v));
                    (any_dies && !any_survives).then_some((lu, lv))
                })
                .collect();
            if removed_local.is_empty() {
                continue; // removed vertices alone pre-marked their components
            }
            let removed_here: Vec<LocalId> = removed_v.iter().filter_map(|&w| f.local(w)).collect();
            let mut forest = s
                .take_forest()
                .filter(|fo| fo.vertex_count() == f.local_count())
                .unwrap_or_else(|| {
                    SpanningForest::build(
                        f.local_count(),
                        f.local_vertices()
                            .flat_map(|u| f.neighbors(u).iter().map(move |&t| (u, t))),
                    )
                });
            // Replacement searches need the symmetric surviving
            // adjacency; pack it as a flat CSR (three linear passes, no
            // nested allocation) — but only once a removal actually hits
            // a tree edge. Dead pairs are the disconnecting pairs plus
            // every edge of a removed vertex (found by scanning just
            // those vertices' adjacency).
            type SurvivingCsr = (Vec<u32>, Vec<LocalId>, FxHashSet<(LocalId, LocalId)>);
            let mut csr: Option<SurvivingCsr> = None;
            let mut build_csr = || {
                let n = f.local_count();
                let mut offsets = vec![0u32; n + 1];
                for u in f.local_vertices() {
                    for &t in f.neighbors(u) {
                        offsets[u as usize + 1] += 1;
                        offsets[t as usize + 1] += 1;
                    }
                }
                for i in 0..n {
                    offsets[i + 1] += offsets[i];
                }
                let mut targets = vec![0 as LocalId; offsets[n] as usize];
                let mut cursor = offsets.clone();
                for u in f.local_vertices() {
                    for &t in f.neighbors(u) {
                        targets[cursor[u as usize] as usize] = t;
                        cursor[u as usize] += 1;
                        targets[cursor[t as usize] as usize] = u;
                        cursor[t as usize] += 1;
                    }
                }
                let mut dead_pairs: FxHashSet<(LocalId, LocalId)> = FxHashSet::default();
                for &(a, b) in &removed_local {
                    dead_pairs.insert((a, b));
                    dead_pairs.insert((b, a));
                }
                for &lw in &removed_here {
                    for &t in
                        &targets[offsets[lw as usize] as usize..offsets[lw as usize + 1] as usize]
                    {
                        dead_pairs.insert((lw, t));
                        dead_pairs.insert((t, lw));
                    }
                }
                (offsets, targets, dead_pairs)
            };
            for &(lu, lv) in &removed_local {
                // A component already suspect cannot get more suspect —
                // but a *persisted* forest must still process the
                // removal, or it would keep an edge the apply deletes.
                let already = suspect[cid_of[f.global(lu) as usize] as usize];
                if already && !persist {
                    continue;
                }
                if !forest.is_tree_edge(lu, lv) {
                    continue; // non-tree: connectivity untouched, no CSR needed
                }
                let (offsets, targets, dead_pairs) = csr.get_or_insert_with(&mut build_csr);
                let surviving = |x: u32, emit: &mut dyn FnMut(u32)| {
                    for &y in
                        &targets[offsets[x as usize] as usize..offsets[x as usize + 1] as usize]
                    {
                        if !dead_pairs.contains(&(x, y)) {
                            emit(y);
                        }
                    }
                };
                match forest.remove_edge(lu, lv, &surviving) {
                    EdgeRemoval::NonTree | EdgeRemoval::Replaced(..) => {}
                    EdgeRemoval::Split(side) => {
                        if !already {
                            suspect[cid_of[f.global(side[0]) as usize] as usize] = true;
                            any_suspect = true;
                        }
                    }
                }
            }
            if persist {
                s.put_forest(forest);
            }
        }

        let mut out: Vec<Vec<LocalId>> = vec![Vec::new(); frags.len()];
        if !any_suspect {
            return out;
        }

        // Filter 2: true new pieces of the suspect components, by one
        // union-find pass over their surviving stored edges. Per-edge
        // exclusion tests are bitmap-gated (`touches_dead`) so the sweep
        // is flat array reads, not hash lookups.
        let mut parent: Vec<u32> = (0..n_glob as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut touches_dead = vec![false; n_glob];
        for &(u, v) in changes.removed_edges {
            touches_dead[u as usize] = true;
            touches_dead[v as usize] = true;
        }
        for &w in changes.removed_vertices {
            touches_dead[w as usize] = true;
        }
        for f in frags {
            for lu in f.local_vertices() {
                let gu = f.global(lu);
                if !suspect[cid_of[gu as usize] as usize] {
                    continue;
                }
                if touches_dead[gu as usize] && removed_v.contains(&gu) {
                    continue;
                }
                for &lt in f.neighbors(lu) {
                    let gt = f.global(lt);
                    if touches_dead[gt as usize] && removed_v.contains(&gt) {
                        continue;
                    }
                    if touches_dead[gu as usize] && touches_dead[gt as usize] && edge_dies(gu, gt) {
                        continue;
                    }
                    let (a, b) = (find(&mut parent, gu), find(&mut parent, gt));
                    if a != b {
                        parent[a.max(b) as usize] = a.min(b);
                    }
                }
            }
        }
        // Piece minima: union-by-min keeps the root as the piece's
        // smallest id, so a vertex is invalidated iff its root differs
        // from its old cid — its piece lost the cid source.
        for v in 0..n_glob as VertexId {
            if !suspect[cid_of[v as usize] as usize] {
                continue;
            }
            if find(&mut parent, v) == cid_of[v as usize] {
                continue; // this piece kept the old minimum: values stand
            }
            for (i, f) in frags.iter().enumerate() {
                if let Some(l) = f.local(v) {
                    out[i].push(l);
                }
            }
        }
        for s in &mut out {
            s.sort_unstable();
        }
        out
    }
}

/// Removed directed pairs whose *logical* connection survives: some
/// fragment, anywhere in the partition, still stores a surviving
/// orientation of the pair — the reciprocal `(v, u)` lives at its own
/// source's fragment, which under edge-cut is usually a different
/// fragment from `(u, v)`'s. Such a removal leaves `u` and `v` weakly
/// connected, so it can never split anything: the invalidation plan
/// must not let it mark a component suspect, even when the fragment
/// whose local forest it hits has no locally visible replacement.
fn reciprocal_survivors<V, E>(
    frags: &[&Fragment<V, E>],
    removed_edges: &[(VertexId, VertexId)],
    removed_v: &FxHashSet<VertexId>,
    edge_dies: &dyn Fn(VertexId, VertexId) -> bool,
) -> FxHashSet<(VertexId, VertexId)> {
    // Only the reciprocal orientation can survive: `(u, v)` itself is in
    // `removed_edges`, so every stored copy of that orientation dies.
    removed_edges
        .iter()
        .filter(|(u, v)| !removed_v.contains(u) && !removed_v.contains(v))
        .filter(|&&(u, v)| {
            !edge_dies(v, u)
                && frags.iter().any(|f| {
                    f.local(u).zip(f.local(v)).is_some_and(|(lu, lv)| f.neighbors(lv).contains(&lu))
                })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use aap_core::{Engine, EngineOpts, Mode};
    use aap_graph::partition::{
        build_fragments, build_fragments_vertex_cut, hash_partition, skewed_partition,
        vertex_cut_partition,
    };
    use aap_graph::{generate, Graph};

    fn check_modes(g: &Graph<(), u32>, m: usize) {
        let expect = seq::connected_components(g);
        for mode in [Mode::Bsp, Mode::Ap, Mode::Ssp { c: 2 }, Mode::aap()] {
            let frags = build_fragments(g, &hash_partition(g, m));
            let engine = Engine::new(
                frags,
                EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
            );
            let out = engine.run(&ConnectedComponents, &());
            assert_eq!(out.out, expect, "mode {mode:?}");
            assert!(!out.stats.aborted);
        }
    }

    #[test]
    fn matches_sequential_on_small_world() {
        let g = generate::small_world(300, 2, 0.05, 11);
        check_modes(&g, 4);
    }

    #[test]
    fn matches_sequential_on_disconnected_graph() {
        // several components of different sizes
        let mut b = aap_graph::GraphBuilder::new_undirected(40);
        for v in 0..10u32 {
            b.add_edge(v, (v + 1) % 10, 1); // ring 0..10
        }
        for v in 20..25u32 {
            b.add_edge(v, v + 1, 1); // path 20..26
        }
        let g = b.build();
        check_modes(&g, 3);
    }

    #[test]
    fn works_on_skewed_partition() {
        let g = generate::small_world(400, 3, 0.1, 3);
        let expect = seq::connected_components(&g);
        let frags = build_fragments(&g, &skewed_partition(&g, 5, 4.0));
        let engine = Engine::new(frags, EngineOpts::default());
        assert_eq!(engine.run(&ConnectedComponents, &()).out, expect);
    }

    #[test]
    fn works_on_vertex_cut() {
        let g = generate::small_world(200, 2, 0.2, 9);
        let expect = seq::connected_components(&g);
        let frags = build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 4));
        for mode in [Mode::Bsp, Mode::aap()] {
            let engine = Engine::new(
                build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 4)),
                EngineOpts { threads: 4, mode, max_rounds: Some(100_000) },
            );
            assert_eq!(engine.run(&ConnectedComponents, &()).out, expect);
        }
        drop(frags);
    }

    /// The cross-fragment reciprocal case of the orientation tracking:
    /// `0 -> 1` is stored at fragment 0, its reciprocal `1 -> 0` at
    /// fragment 1. Removing only `(0, 1)` leaves the pair weakly
    /// connected through the *other* fragment's stored orientation, so
    /// the survivor set must contain the pair (no suspect marking) and
    /// the plan must invalidate nothing; removing both orientations is
    /// a genuine split and must invalidate vertex 1's copies.
    #[test]
    fn directed_reciprocal_across_fragments_never_suspects() {
        let mut b = aap_graph::GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 0, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let engine = Engine::new(build_fragments(&g, &[0, 1, 0, 1]), EngineOpts::default());
        let (_, state) = engine.run_retained(&ConnectedComponents, &());
        let view: Vec<&Fragment<(), u32>> = engine.fragments().iter().map(|a| &**a).collect();
        let removed_v = FxHashSet::default();
        let removed = [(0u32, 1u32)];
        let dies = |a: VertexId, b: VertexId| removed.contains(&(a, b));
        let survivors = reciprocal_survivors(&view, &removed, &removed_v, &dies);
        assert!(
            survivors.contains(&(0, 1)),
            "the reciprocal (1, 0) survives at fragment 1: {survivors:?}"
        );
        let mut cache = aap_core::PlanCache::default();
        let changes =
            DeltaChanges { removed_edges: &removed, removed_vertices: &[], increased_edges: &[] };
        let plan =
            ConnectedComponents.plan_invalidation(&(), &view, state.states(), &changes, &mut cache);
        assert!(plan.iter().all(|s| s.is_empty()), "nothing splits: {plan:?}");

        // Removing both orientations genuinely disconnects the pair:
        // the piece {1} loses its cid source 0 and must be invalidated
        // at every fragment holding a copy of 1.
        let removed_both = [(0u32, 1u32), (1u32, 0u32)];
        let dies_both = |a: VertexId, b: VertexId| removed_both.contains(&(a, b));
        assert!(reciprocal_survivors(&view, &removed_both, &removed_v, &dies_both).is_empty());
        let changes = DeltaChanges {
            removed_edges: &removed_both,
            removed_vertices: &[],
            increased_edges: &[],
        };
        let plan =
            ConnectedComponents.plan_invalidation(&(), &view, state.states(), &changes, &mut cache);
        let invalidated: Vec<Vec<VertexId>> =
            plan.iter().zip(&view).map(|(s, f)| s.iter().map(|&l| f.global(l)).collect()).collect();
        assert!(
            invalidated.iter().flatten().all(|&v| v == 1)
                && invalidated.iter().flatten().next().is_some(),
            "exactly vertex 1's copies are invalidated: {invalidated:?}"
        );
    }

    #[test]
    fn single_fragment_degenerates_to_sequential() {
        let g = generate::lattice2d(10, 10, 4);
        let expect = seq::connected_components(&g);
        let frags = build_fragments(&g, &vec![0u16; g.num_vertices()]);
        let engine = Engine::new(frags, EngineOpts::default());
        let out = engine.run(&ConnectedComponents, &());
        assert_eq!(out.out, expect);
        // one PEval round per worker, no messages
        assert_eq!(out.stats.total_updates(), 0);
    }
}
