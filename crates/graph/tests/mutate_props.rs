//! Direct property tests for `aap_graph::mutate` — the per-touched-
//! fragment CSR re-pack and the mirror-diff → holder-event machinery
//! were previously covered only transitively (through `aap-delta`'s
//! equivalence suites). Here [`apply_partition_edit`] is driven with
//! random resolved edits and compared, fragment by fragment, against a
//! from-scratch `build_fragments_n` of the edited global graph, plus
//! the structural invariants the routing layer relies on.

use aap_graph::mutate::{
    apply_partition_edit, apply_partition_edit_threads, EditBuffers, FragmentEdit, PartitionEdit,
};
use aap_graph::partition::{build_fragments_n, hash_partition};
use aap_graph::{generate, Fragment, FxHashMap, FxHashSet, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// A random resolved edit against `g` under `assignment`: edge inserts,
/// removals of existing edges, weight overwrites, at most one vertex
/// isolation and at most one (wired-in) vertex addition. Returns the
/// edit plus the expected edited global graph.
#[allow(clippy::type_complexity)]
fn random_edit(
    g: &Graph<(), u32>,
    assignment: &[u16],
    m: usize,
    seed: u64,
) -> (PartitionEdit<(), u32>, Graph<(), u32>) {
    let n = g.num_vertices() as u32;
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    // Pick the ops in global terms first.
    let removed_vertex: Option<u32> = (next() % 3 == 0).then(|| (next() % n as u64) as u32);
    let added_vertex: Option<u32> = (next() % 3 == 0).then_some(n);
    let dead = |v: u32| removed_vertex == Some(v);
    let mut removes: Vec<(u32, u32)> = Vec::new();
    for _ in 0..(next() % 4) {
        let u = (next() % n as u64) as u32;
        if let Some(&t) = g.neighbors(u).first() {
            if !dead(u) && !dead(t) {
                removes.push((u, t));
            }
        }
    }
    let mut inserts: Vec<(u32, u32, u32)> = Vec::new();
    for _ in 0..(1 + next() % 4) {
        let (u, v) = ((next() % n as u64) as u32, (next() % n as u64) as u32);
        let clashes = removes.iter().any(|&(a, b)| (a, b) == (u, v) || (b, a) == (u, v));
        if u != v && !dead(u) && !dead(v) && !clashes {
            inserts.push((u, v, 1 + (next() % 9) as u32));
        }
    }
    if let Some(a) = added_vertex {
        let mut x = (next() % n as u64) as u32;
        if dead(x) {
            x = (x + 1) % n;
        }
        inserts.push((a, x, 2));
    }
    let mut setw: Vec<(u32, u32, u32)> = Vec::new();
    for _ in 0..(next() % 3) {
        let u = (next() % n as u64) as u32;
        if let Some(&t) = g.neighbors(u).first() {
            let clashes = removes.iter().any(|&(a, b)| (a, b) == (u, t) || (b, a) == (u, t));
            if !dead(u) && !dead(t) && !clashes {
                setw.push((u, t, 1 + (next() % 30) as u32));
            }
        }
    }

    // Resolve to a PartitionEdit the way `aap-delta` would (undirected:
    // each logical op lands at both stored-source owners).
    let owner = |v: u32| -> u16 {
        if v < n {
            assignment[v as usize]
        } else {
            (v % m as u32) as u16
        }
    };
    let mut edit = PartitionEdit {
        frags: vec![FragmentEdit::default(); m],
        removed_vertices: FxHashSet::default(),
        owners: FxHashMap::default(),
        touched: vec![false; m],
    };
    let mention = |edit: &mut PartitionEdit<(), u32>, v: u32| {
        edit.owners.insert(v, owner(v));
    };
    for &(u, v, w) in &inserts {
        edit.frags[owner(u) as usize].insert_edges.push((u, v, w));
        edit.frags[owner(v) as usize].insert_edges.push((v, u, w));
        mention(&mut edit, u);
        mention(&mut edit, v);
    }
    for &(u, v) in &removes {
        edit.frags[owner(u) as usize].remove_edges.push((u, v));
        edit.frags[owner(v) as usize].remove_edges.push((v, u));
        mention(&mut edit, u);
        mention(&mut edit, v);
    }
    for &(u, v, w) in &setw {
        edit.frags[owner(u) as usize].set_weights.push((u, v, w));
        edit.frags[owner(v) as usize].set_weights.push((v, u, w));
        mention(&mut edit, u);
        mention(&mut edit, v);
    }
    if let Some(a) = added_vertex {
        edit.frags[owner(a) as usize].add_owned.push((a, ()));
        mention(&mut edit, a);
    }
    if let Some(w) = removed_vertex {
        edit.removed_vertices.insert(w);
        mention(&mut edit, w);
    }
    edit.touched = edit.frags.iter().map(|fe| !fe.is_empty()).collect();
    if let Some(w) = removed_vertex {
        // The holder fragments of `w` are resolved against the pre-apply
        // fragments by `touch_removed_vertex_holders`.
        edit.touched[owner(w) as usize] = true;
    }

    // Reference: the edited global graph.
    let n_new = if added_vertex.is_some() { n + 1 } else { n };
    let mut b = GraphBuilder::new_undirected(n_new as usize);
    let removed_pairs: FxHashSet<(u32, u32)> =
        removes.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
    let setw_map: FxHashMap<(u32, u32), u32> =
        setw.iter().flat_map(|&(u, v, w)| [((u, v), w), ((v, u), w)]).collect();
    for (u, v, d) in g.all_edges() {
        if u < v && !removed_pairs.contains(&(u, v)) && !dead(u) && !dead(v) {
            b.add_edge(u, v, *setw_map.get(&(u, v)).unwrap_or(d));
        }
    }
    for &(u, v, w) in &inserts {
        b.add_edge(u, v, w);
    }
    (edit, b.build())
}

/// Mark the holder fragments of a to-be-removed vertex as touched (needs
/// the pre-apply fragments, so it runs after `random_edit`).
fn touch_removed_vertex_holders(edit: &mut PartitionEdit<(), u32>, frags: &[Fragment<(), u32>]) {
    for &w in edit.removed_vertices.clone().iter() {
        let o = edit.owners[&w] as usize;
        edit.touched[o] = true;
        let f = &frags[o];
        let l = f.local(w).expect("removed vertex exists at its owner");
        for &h in f.mirror_holders(l) {
            edit.touched[h as usize] = true;
        }
    }
}

fn assert_fragments_match(got: &[Fragment<(), u32>], want: &[Fragment<(), u32>]) {
    for (f, e) in got.iter().zip(want) {
        assert_eq!(f.owned_count(), e.owned_count(), "frag {} owned", f.id());
        assert_eq!(f.globals(), e.globals(), "frag {} locals", f.id());
        assert_eq!(f.inner_in(), e.inner_in(), "frag {} inner_in", f.id());
        assert_eq!(f.inner_out(), e.inner_out(), "frag {} inner_out", f.id());
        assert_eq!(f.routing().dests(), e.routing().dests(), "frag {} dests", f.id());
        for l in f.local_vertices() {
            let mut a: Vec<_> = f.edges(l).map(|(t, d)| (f.global(t), *d)).collect();
            let mut bb: Vec<_> = e.edges(l).map(|(t, d)| (e.global(t), *d)).collect();
            a.sort_unstable();
            bb.sort_unstable();
            assert_eq!(a, bb, "frag {} vertex {} adjacency", f.id(), f.global(l));
            assert_eq!(f.routing().fanout(l), e.routing().fanout(l), "frag {} fanout", f.id());
            if f.is_owned(l) {
                assert_eq!(f.mirror_holders(l), e.mirror_holders(l), "frag {} holders", f.id());
            }
        }
    }
}

/// The routing symmetry invariant the engines rely on: `v` mirrored at
/// `Fj` ⟺ `Fj ∈ holders(v)` at the owner — checked directly, both ways.
fn assert_holder_symmetry(frags: &[Fragment<(), u32>]) {
    for f in frags {
        for l in f.local_vertices() {
            let g = f.global(l);
            if f.is_owned(l) {
                for &h in f.mirror_holders(l) {
                    let peer = &frags[h as usize];
                    let pl =
                        peer.local(g).unwrap_or_else(|| panic!("holder {h} lacks a copy of {g}"));
                    assert!(!peer.is_owned(pl), "holder copy of {g} must be a mirror");
                    assert_eq!(peer.owner(pl), f.id(), "mirror of {g} points at wrong owner");
                }
            } else {
                let owner = &frags[f.owner(l) as usize];
                let ol = owner.local(g).expect("owner holds the vertex");
                assert!(owner.is_owned(ol));
                assert!(
                    owner.mirror_holders(ol).contains(&f.id()),
                    "owner of {g} does not list fragment {} as holder",
                    f.id()
                );
            }
        }
    }
}

/// Exact structural equality — not the sorted-multiset comparison of
/// [`assert_fragments_match`]: the parallel apply promises a result
/// **byte-identical** to the serial one, so edge order, local id order,
/// border vectors, and routing tables must all agree verbatim.
fn assert_fragments_identical(got: &[Fragment<(), u32>], want: &[Fragment<(), u32>]) {
    for (f, e) in got.iter().zip(want) {
        assert_eq!(f.owned_count(), e.owned_count(), "frag {} owned", f.id());
        assert_eq!(f.globals(), e.globals(), "frag {} locals", f.id());
        assert_eq!(f.inner_in(), e.inner_in(), "frag {} inner_in", f.id());
        assert_eq!(f.inner_out(), e.inner_out(), "frag {} inner_out", f.id());
        assert_eq!(f.routing().dests(), e.routing().dests(), "frag {} dests", f.id());
        for l in f.local_vertices() {
            assert_eq!(f.neighbors(l), e.neighbors(l), "frag {} vertex {} targets", f.id(), l);
            assert_eq!(f.edge_data(l), e.edge_data(l), "frag {} vertex {} weights", f.id(), l);
            assert_eq!(f.routing().fanout(l), e.routing().fanout(l), "frag {} fanout", f.id());
            if f.is_owned(l) {
                assert_eq!(f.mirror_holders(l), e.mirror_holders(l), "frag {} holders", f.id());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32), ..ProptestConfig::default() })]

    /// The tentpole guarantee of the scoped-thread apply: at every
    /// thread count, the fragments *and* the `AppliedEdit` (remaps,
    /// seeds, weight counters) are byte-identical to the serial path.
    #[test]
    fn parallel_apply_is_byte_identical_to_serial(
        n in 16usize..90,
        k in 1usize..3,
        gseed in 0u64..100,
        m in 2usize..6,
        eseed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let g = generate::small_world(n, k, 0.2, gseed);
        let assignment = hash_partition(&g, m);
        let mut serial = build_fragments_n(&g, &assignment, m);
        let (mut edit, _) = random_edit(&g, &assignment, m, eseed);
        touch_removed_vertex_holders(&mut edit, &serial);
        let mut parallel = serial.clone();

        let mut bufs = EditBuffers::default();
        let a = {
            let mut refs: Vec<&mut Fragment<(), u32>> = serial.iter_mut().collect();
            apply_partition_edit(&mut refs, &edit, &mut bufs)
        };
        // Reuse the same buffer pool across both drivers — pooled state
        // must not leak one batch's contents into the next.
        let b = {
            let mut refs: Vec<&mut Fragment<(), u32>> = parallel.iter_mut().collect();
            apply_partition_edit_threads(&mut refs, &edit, &mut bufs, threads)
        };

        prop_assert_eq!(&a.remaps, &b.remaps);
        prop_assert_eq!(&a.seeds, &b.seeds);
        prop_assert_eq!(a.weights_decreased, b.weights_decreased);
        prop_assert_eq!(a.weights_increased, b.weights_increased);
        assert_fragments_identical(&parallel, &serial);
        assert_holder_symmetry(&parallel);
    }

    /// The weight-only fast path (no structural ops ⇒ in-place weight
    /// patching) must be indistinguishable from a full rebuild of the
    /// edited graph, including the direction counters.
    #[test]
    fn weight_only_fast_path_matches_full_rebuild(
        n in 16usize..90,
        gseed in 0u64..100,
        m in 2usize..5,
        wseed in 0u64..10_000,
    ) {
        let g = generate::small_world(n, 2, 0.2, gseed);
        let assignment = hash_partition(&g, m);
        let mut frags = build_fragments_n(&g, &assignment, m);

        let mut state = wseed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut edit = PartitionEdit {
            frags: vec![FragmentEdit::default(); m],
            removed_vertices: FxHashSet::default(),
            owners: FxHashMap::default(),
            touched: vec![false; m],
        };
        let mut setw: Vec<(u32, u32, u32)> = Vec::new();
        for _ in 0..(1 + next() % 6) {
            let u = (next() % n as u64) as u32;
            if let Some(&t) = g.neighbors(u).first() {
                setw.push((u, t, 1 + (next() % 30) as u32));
            }
        }
        if setw.is_empty() {
            return Ok(()); // isolated picks: nothing to overwrite
        }
        for &(u, v, w) in &setw {
            edit.frags[assignment[u as usize] as usize].set_weights.push((u, v, w));
            edit.frags[assignment[v as usize] as usize].set_weights.push((v, u, w));
        }
        edit.touched = edit.frags.iter().map(|fe| !fe.is_empty()).collect();

        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default())
        };
        // Weight-only: identity remaps everywhere, seeds only in
        // touched fragments.
        for (i, r) in applied.remaps.iter().enumerate() {
            prop_assert!(r.is_identity(), "frag {i} renumbered by a weight-only batch");
        }

        // Reference: rebuild from the edited global graph (last
        // overwrite of a pair wins, matching the apply's resolution).
        let setw_map: FxHashMap<(u32, u32), u32> =
            setw.iter().flat_map(|&(u, v, w)| [((u, v), w), ((v, u), w)]).collect();
        let mut b = GraphBuilder::new_undirected(n);
        for (u, v, d) in g.all_edges() {
            if u < v {
                b.add_edge(u, v, *setw_map.get(&(u, v)).unwrap_or(d));
            }
        }
        let expect = build_fragments_n(&b.build(), &assignment, m);
        assert_fragments_match(&frags, &expect);
        assert_holder_symmetry(&frags);
    }

    #[test]
    fn apply_partition_edit_matches_full_rebuild(
        n in 16usize..90,
        k in 1usize..3,
        gseed in 0u64..100,
        m in 2usize..5,
        eseed in 0u64..10_000,
    ) {
        let g = generate::small_world(n, k, 0.2, gseed);
        let assignment = hash_partition(&g, m);
        let mut frags = build_fragments_n(&g, &assignment, m);
        let (mut edit, g_expect) = random_edit(&g, &assignment, m, eseed);
        touch_removed_vertex_holders(&mut edit, &frags);

        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default())
        };

        // The assignment of surviving vertices is unchanged; fresh
        // vertices land at their resolved owner.
        let mut assignment2: Vec<u16> = assignment.clone();
        if g_expect.num_vertices() > g.num_vertices() {
            assignment2.push(edit.owners[&(g.num_vertices() as VertexId)]);
        }
        let expect = build_fragments_n(&g_expect, &assignment2, m);
        assert_fragments_match(&frags, &expect);
        assert_holder_symmetry(&frags);

        // Remaps are consistent with the surviving global ids, and seeds
        // are valid new locals.
        for (i, f) in frags.iter().enumerate() {
            prop_assert_eq!(applied.remaps[i].new_local_count(), f.local_count());
            for &s in &applied.seeds[i] {
                prop_assert!((s as usize) < f.local_count());
            }
        }
    }

    #[test]
    fn untouched_fragments_keep_identity_remaps(
        n in 30usize..90,
        gseed in 0u64..100,
        m in 3usize..6,
    ) {
        // A purely local insert inside fragment 0's owned set touches
        // only fragment 0 (plus renumber-dependent routing peers).
        let g = generate::small_world(n, 2, 0.1, gseed);
        let assignment = hash_partition(&g, m);
        let mut frags = build_fragments_n(&g, &assignment, m);
        let owned0: Vec<u32> =
            (0..n as u32).filter(|&v| assignment[v as usize] == 0).collect();
        if owned0.len() < 2 {
            return Ok(()); // degenerate assignment: nothing to check
        }
        let (u, v) = (owned0[0], owned0[1]);

        let mut edit = PartitionEdit {
            frags: vec![FragmentEdit::default(); m],
            removed_vertices: FxHashSet::default(),
            owners: FxHashMap::default(),
            touched: vec![false; m],
        };
        edit.frags[0].insert_edges.push((u, v, 3));
        edit.frags[0].insert_edges.push((v, u, 3));
        edit.owners.insert(u, 0);
        edit.owners.insert(v, 0);
        edit.touched[0] = true;

        let before: Vec<Vec<VertexId>> = frags.iter().map(|f| f.globals().to_vec()).collect();
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default())
        };
        for i in 1..m {
            prop_assert!(applied.remaps[i].is_identity(), "frag {i} should be untouched");
            prop_assert!(applied.seeds[i].is_empty(), "frag {i} should have no seeds");
            prop_assert_eq!(&frags[i].globals().to_vec(), &before[i]);
        }
        assert_holder_symmetry(&frags);
    }
}
