//! Deterministic workload generators.
//!
//! The paper evaluates on five real-life graphs plus GTgraph-generated
//! synthetic graphs "following the power law and the small world property"
//! (§7). Those datasets are not redistributable here, so each generator
//! below produces a synthetic stand-in with the *shape* that drives the
//! experiments (see DESIGN.md "Substitutions"):
//!
//! * [`rmat`] — R-MAT power-law graphs (Friendster / UKWeb / GTgraph
//!   stand-in);
//! * [`lattice2d`] — 2-D grid with uniform random weights, high diameter and
//!   near-uniform degree (US road network `traffic` stand-in);
//! * [`small_world`] — Watts–Strogatz rewired ring;
//! * [`uniform`] — Erdős–Rényi `G(n, m)`;
//! * [`bipartite_ratings`] — user × item rating graphs (movieLens / Netflix
//!   stand-in) with planted latent factors so CF has signal to recover.
//!
//! All generators are deterministic functions of their seed.

use crate::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random positive edge weight in `1..=100`, the shape used for SSSP
/// ("we randomly assigned weights" to Friendster, §7).
fn weight(rng: &mut SmallRng) -> u32 {
    rng.gen_range(1..=100)
}

/// Erdős–Rényi style `G(n, m)` multigraph with random weights.
pub fn uniform(n: usize, m: usize, directed: bool, seed: u64) -> Graph<(), u32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0001);
    let mut b = GraphBuilder::with_node_data(directed, vec![(); n]);
    b.reserve_edges(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.add_edge(u, v, weight(&mut rng));
    }
    b.build()
}

/// R-MAT power-law generator (Chakrabarti et al.), the standard model behind
/// GTgraph. `n = 2^scale` vertices and `n * edge_factor` edges with
/// partition probabilities `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
pub fn rmat(scale: u32, edge_factor: usize, directed: bool, seed: u64) -> Graph<(), u32> {
    rmat_with(scale, edge_factor, directed, seed, (0.57, 0.19, 0.19, 0.05))
}

/// R-MAT with explicit quadrant probabilities.
pub fn rmat_with(
    scale: u32,
    edge_factor: usize,
    directed: bool,
    seed: u64,
    (a, b, c, _d): (f64, f64, f64, f64),
) -> Graph<(), u32> {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0002);
    let mut builder = GraphBuilder::with_node_data(directed, vec![(); n]);
    builder.reserve_edges(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            // Slightly perturb probabilities per level, as GTgraph does, to
            // avoid exact self-similar striping.
            let noise = 0.05 * (rng.gen::<f64>() - 0.5);
            let (pa, pb, pc) = (a + noise, b, c);
            if r < pa {
                // top-left: no bits set
            } else if r < pa + pb {
                v |= 1 << level;
            } else if r < pa + pb + pc {
                u |= 1 << level;
            } else {
                u |= 1 << level;
                v |= 1 << level;
            }
        }
        builder.add_edge(u as VertexId, v as VertexId, weight(&mut rng));
    }
    builder.build()
}

/// Watts–Strogatz small world: ring of `n` vertices, each linked to its `k`
/// nearest clockwise neighbours, each edge rewired with probability `p`.
/// Undirected.
pub fn small_world(n: usize, k: usize, p: f64, seed: u64) -> Graph<(), u32> {
    assert!(k >= 1 && k < n);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0003);
    let mut b = GraphBuilder::with_node_data(false, vec![(); n]);
    b.reserve_edges(n * k);
    for v in 0..n {
        for j in 1..=k {
            let mut t = (v + j) % n;
            if rng.gen::<f64>() < p {
                t = rng.gen_range(0..n);
                if t == v {
                    t = (v + 1) % n;
                }
            }
            b.add_edge(v as VertexId, t as VertexId, weight(&mut rng));
        }
    }
    b.build()
}

/// `rows × cols` 2-D lattice with uniform random weights; undirected. High
/// diameter and degree ≤ 4, like a road network.
pub fn lattice2d(rows: usize, cols: usize, seed: u64) -> Graph<(), u32> {
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0004);
    let mut b = GraphBuilder::with_node_data(false, vec![(); n]);
    b.reserve_edges(2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), weight(&mut rng));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), weight(&mut rng));
            }
        }
    }
    b.build()
}

/// A bipartite rating graph for collaborative filtering.
///
/// Vertices `0..num_users` are users; `num_users..num_users + num_items`
/// are items. Directed edges run user → item carrying a rating.
#[derive(Debug, Clone)]
pub struct RatingsGraph {
    /// The directed user → item graph with ratings as edge data.
    pub graph: Graph<(), f32>,
    /// Number of user vertices (ids `0..num_users`).
    pub num_users: usize,
    /// Number of item vertices (ids `num_users..num_users+num_items`).
    pub num_items: usize,
    /// Latent dimensionality used to plant the ratings.
    pub planted_dim: usize,
}

impl RatingsGraph {
    /// First item vertex id.
    pub fn item_base(&self) -> VertexId {
        self.num_users as VertexId
    }

    /// Whether vertex `v` is an item.
    pub fn is_item(&self, v: VertexId) -> bool {
        v as usize >= self.num_users
    }
}

/// Generate ratings from planted latent factors plus noise, so SGD-based CF
/// has recoverable structure: `r(u, p) = fu · fp + ε`, clamped to `[1, 5]`.
pub fn bipartite_ratings(
    num_users: usize,
    num_items: usize,
    ratings_per_user: usize,
    dim: usize,
    seed: u64,
) -> RatingsGraph {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0005);
    let fac =
        |rng: &mut SmallRng| -> Vec<f32> { (0..dim).map(|_| rng.gen_range(0.2f32..1.0)).collect() };
    let user_f: Vec<Vec<f32>> = (0..num_users).map(|_| fac(&mut rng)).collect();
    let item_f: Vec<Vec<f32>> = (0..num_items).map(|_| fac(&mut rng)).collect();
    let n = num_users + num_items;
    let mut b = GraphBuilder::with_node_data(true, vec![(); n]);
    b.reserve_edges(num_users * ratings_per_user);
    for (u, uf) in user_f.iter().enumerate() {
        for _ in 0..ratings_per_user {
            let p = rng.gen_range(0..num_items);
            let dot: f32 = uf.iter().zip(&item_f[p]).map(|(a, b)| a * b).sum();
            let noise: f32 = rng.gen_range(-0.1..0.1);
            let r = (dot + noise).clamp(0.2, 5.0);
            b.add_edge(u as VertexId, (num_users + p) as VertexId, r);
        }
    }
    RatingsGraph { graph: b.build(), num_users, num_items, planted_dim: dim }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(8, 8, true, 42);
        let b = rmat(8, 8, true, 42);
        let c = rmat(8, 8, true, 43);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        // Different seeds should differ somewhere.
        let differs = a.vertices().any(|v| a.neighbors(v) != c.neighbors(v));
        assert!(differs);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 16, true, 1);
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top = degs[..10].iter().sum::<usize>() as f64;
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(top / 10.0 > 4.0 * avg, "top-10 avg degree {} vs mean {avg}", top / 10.0);
    }

    #[test]
    fn lattice_shape() {
        let g = lattice2d(5, 7, 9);
        assert_eq!(g.num_vertices(), 35);
        // interior vertex has degree 4
        let interior = (2 * 7 + 3) as VertexId;
        assert_eq!(g.degree(interior), 4);
        // corner has degree 2
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn small_world_degree() {
        let g = small_world(100, 3, 0.1, 5);
        // every vertex initiated exactly k edges; undirected doubling means
        // total stored edges = 2 * n * k
        assert_eq!(g.num_edges(), 2 * 100 * 3);
    }

    #[test]
    fn ratings_in_range() {
        let r = bipartite_ratings(50, 20, 10, 4, 3);
        assert_eq!(r.graph.num_vertices(), 70);
        assert_eq!(r.graph.num_edges(), 500);
        for (u, v, &w) in r.graph.all_edges() {
            assert!(!r.is_item(u));
            assert!(r.is_item(v));
            assert!((0.2..=5.0).contains(&w));
        }
    }

    #[test]
    fn uniform_counts() {
        let g = uniform(100, 400, true, 11);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 400);
    }
}
