//! # aap-graph
//!
//! Graph substrate for the AAP/GRAPE+ reproduction: compressed sparse row
//! property graphs, deterministic workload generators, partitioning
//! strategies (edge-cut and vertex-cut), and GRAPE *fragments* with the
//! border-node sets `Fi.I`, `Fi.O`, `Fi.I'`, `Fi.O'` of the paper (§2).
//!
//! The types here are shared by both runtimes (the multithreaded engine in
//! `aap-core` and the discrete-event simulator in `aap-sim`) and by every
//! PIE program in `aap-algos`.
//!
//! ## Quick tour
//!
//! ```
//! use aap_graph::{GraphBuilder, partition::{hash_partition, build_fragments}};
//!
//! // A 5-cycle, undirected.
//! let mut b = GraphBuilder::new_undirected(5);
//! for v in 0..5u32 {
//!     b.add_edge(v, (v + 1) % 5, 1u32);
//! }
//! let g = b.build();
//! let assignment = hash_partition(&g, 2);
//! let frags = build_fragments(&g, &assignment);
//! assert_eq!(frags.len(), 2);
//! let owned: usize = frags.iter().map(|f| f.owned_count()).sum();
//! assert_eq!(owned, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod fragment;
pub mod fxhash;
pub mod generate;
pub mod graph;
pub mod io;
pub mod mutate;
pub mod partition;

pub use builder::GraphBuilder;
pub use fragment::{Fragment, Route, RoutingTable};
pub use graph::Graph;
pub use mutate::{DeltaSummary, StateRemap};

/// Global vertex identifier. Graphs are dense: vertices are `0..n`.
pub type VertexId = u32;

/// Vertex identifier local to one [`Fragment`].
pub type LocalId = u32;

/// Fragment (virtual worker) identifier.
pub type FragId = u16;

/// A hash map keyed with the fast Fx hasher (see [`fxhash`]).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, fxhash::FxBuildHasher>;

/// A hash set keyed with the fast Fx hasher (see [`fxhash`]).
pub type FxHashSet<K> = std::collections::HashSet<K, fxhash::FxBuildHasher>;
