//! Partitioning strategies `P` and fragment construction.
//!
//! The paper lets users pick an edge-cut or vertex-cut strategy (§2). We
//! provide:
//!
//! * [`hash_partition`] — pseudo-random balanced edge-cut (the default);
//! * [`range_partition`] — contiguous id ranges (locality for lattices);
//! * [`ldg_partition`] — greedy Linear Deterministic Greedy edge-cut that
//!   minimises cut edges under a capacity constraint (XtraPuLP stand-in);
//! * [`skewed_partition`] — deliberately unbalanced edge-cut with a dial for
//!   the straggler experiments of §7 (Fig 6(k), Fig 7);
//! * [`vertex_cut_partition`] — hash-based vertex-cut over logical edges.
//!
//! [`build_fragments`] / [`build_fragments_vertex_cut`] turn an assignment
//! into [`Fragment`]s in a single sweep over the edges.

use crate::fragment::{Fragment, RoutingTable};
use crate::fxhash::hash_u64;
use crate::{FragId, FxHashMap, Graph, LocalId, VertexId};

/// Build the dense [`RoutingTable`] of one fragment. `peer_local` resolves
/// a global id to its local id at a destination fragment (the only hash
/// lookups on the routing path, and they happen once, here).
pub(crate) fn routing_table_for<V, E>(
    f: &Fragment<V, E>,
    peer_local: &dyn Fn(FragId, VertexId) -> Option<LocalId>,
) -> RoutingTable {
    let n = f.local_count();
    // Destination set: owners of our mirrors + holders of our owned
    // border vertices.
    let mut dests: Vec<FragId> = Vec::new();
    for l in f.local_vertices() {
        match f.route(l) {
            crate::Route::Owner(o) => dests.push(o),
            crate::Route::Mirrors(ms) => dests.extend_from_slice(ms),
        }
    }
    dests.sort_unstable();
    dests.dedup();
    let mut slot_of = vec![u16::MAX; f.num_frags() as usize];
    for (s, &d) in dests.iter().enumerate() {
        slot_of[d as usize] = s as u16;
    }
    // CSR fan-out with receiver-local ids resolved through the peers.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut dest_slot: Vec<u16> = Vec::new();
    let mut remote: Vec<LocalId> = Vec::new();
    for l in f.local_vertices() {
        let g = f.global(l);
        let mut push = |d: FragId| {
            let r = peer_local(d, g).expect("routing destination holds a copy of the vertex");
            dest_slot.push(slot_of[d as usize]);
            remote.push(r);
        };
        match f.route(l) {
            crate::Route::Owner(o) => push(o),
            crate::Route::Mirrors(ms) => ms.iter().for_each(|&m| push(m)),
        }
        offsets.push(dest_slot.len() as u32);
    }
    RoutingTable::from_parts(dests, offsets, dest_slot, remote)
}

/// Precompute every fragment's dense [`RoutingTable`] (owner/holder
/// destinations with *destination-local* ids). Runs once per partition;
/// the per-round message path then never consults `g2l` maps again.
fn attach_routing_tables<V, E>(frags: &mut [Fragment<V, E>]) {
    let tables: Vec<RoutingTable> =
        frags.iter().map(|f| routing_table_for(f, &|d, g| frags[d as usize].local(g))).collect();
    for (f, t) in frags.iter_mut().zip(tables) {
        f.set_routing(t);
    }
}

/// Re-derive every fragment's dense [`RoutingTable`] from the border
/// sets and holder lists — the load half of the durable snapshot story
/// (`aap-snapshot` persists the partition but not the derivable routing;
/// see [`Fragment::from_saved_parts`]). Must be called with the complete
/// fragment set of one partition: tables resolve destination-local ids
/// through the peers.
pub fn rebuild_routing_tables<V, E>(frags: &mut [Fragment<V, E>]) {
    attach_routing_tables(frags);
}

/// Re-derive the routing tables of the fragments marked in `need`,
/// resolving destination-local ids through the complete peer set.
///
/// The incremental patch and migration paths use this to keep routing
/// cost proportional to the touched fragments: a fragment needs a fresh
/// table iff its own structure changed *or* one of its destinations was
/// renumbered. `frags` must be the complete partition.
pub fn rebuild_routing_tables_where<V, E>(frags: &mut [&mut Fragment<V, E>], need: &[bool]) {
    assert_eq!(frags.len(), need.len());
    let tables: Vec<Option<RoutingTable>> = frags
        .iter()
        .zip(need)
        .map(|(f, &n)| {
            n.then(|| routing_table_for(f, &|d, g| frags[d as usize].local(g)))
        })
        .collect();
    for (f, t) in frags.iter_mut().zip(tables) {
        if let Some(t) = t {
            f.set_routing(t);
        }
    }
}

/// The fragment a (stored or logical) edge `u -> v` lives at under the
/// hash vertex-cut assignment: the hash of the canonical endpoint pair,
/// so both stored directions of an undirected edge land together.
///
/// This is the single assignment rule shared by [`vertex_cut_partition`]
/// (initial build) and the in-place vertex-cut patch (delta apply):
/// because the rule depends only on the endpoints, edges never migrate
/// when *other* edges change, which is what makes the patch local.
#[inline]
pub fn vertex_cut_edge_frag(u: VertexId, v: VertexId, m: usize) -> FragId {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    let h = hash_u64(((a as u64) << 32) | b as u64);
    (h % m as u64) as FragId
}

/// Home fragment for a vertex with no incident edges under the hash
/// vertex-cut assignment (shared by the initial build and the patch).
#[inline]
pub fn vertex_cut_isolated_home(v: VertexId, m: usize) -> FragId {
    (hash_u64(v as u64) % m as u64) as FragId
}

/// Balanced pseudo-random edge-cut: vertex `v` goes to `hash(v) % m`.
pub fn hash_partition<V, E>(g: &Graph<V, E>, m: usize) -> Vec<FragId> {
    assert!(m > 0 && m <= FragId::MAX as usize + 1);
    g.vertices().map(|v| (hash_u64(v as u64) % m as u64) as FragId).collect()
}

/// Contiguous ranges of vertex ids: vertex `v` goes to `v * m / n`.
///
/// For generators that lay vertices out with locality (e.g. the 2-D lattice)
/// this produces low cut ratios, mimicking a good offline partitioner.
pub fn range_partition<V, E>(g: &Graph<V, E>, m: usize) -> Vec<FragId> {
    assert!(m > 0 && m <= FragId::MAX as usize + 1);
    let n = g.num_vertices().max(1);
    g.vertices().map(|v| ((v as usize * m) / n) as FragId).collect()
}

/// Linear Deterministic Greedy (LDG) streaming edge-cut.
///
/// Vertices are streamed in id order; each goes to the fragment with the
/// most already-placed neighbours, discounted by fullness:
/// `score(i) = |N(v) ∩ Vi| · (1 − |Vi| / C)` with capacity `C = α·n/m`.
pub fn ldg_partition<V, E>(g: &Graph<V, E>, m: usize, slack: f64) -> Vec<FragId> {
    assert!(m > 0 && m <= FragId::MAX as usize + 1);
    let n = g.num_vertices();
    let cap = ((n as f64 / m as f64) * slack).max(1.0);
    let mut assignment = vec![FragId::MAX; n];
    let mut sizes = vec![0usize; m];
    let mut neigh_count = vec![0u32; m];
    for v in g.vertices() {
        neigh_count.fill(0);
        for &t in g.neighbors(v) {
            let a = assignment[t as usize];
            if a != FragId::MAX {
                neigh_count[a as usize] += 1;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..m {
            let penalty = 1.0 - sizes[i] as f64 / cap;
            let score = neigh_count[i] as f64 * penalty.max(0.0)
                + penalty * 1e-9 // tie-break toward emptier fragments
                - if sizes[i] as f64 >= cap { 1e9 } else { 0.0 };
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        assignment[v as usize] = best as FragId;
        sizes[best] += 1;
    }
    assignment
}

/// Deliberately skewed edge-cut: fragment 0 receives `straggler_factor`
/// times as many vertices as each remaining fragment; the rest are spread
/// by hash. `straggler_factor = 1.0` degenerates to a balanced partition.
///
/// This reproduces the §7 methodology of "randomly reshuffling a small
/// portion of each partitioned input graph ... making the graphs skewed",
/// with an explicit dial for the skew measure `r` of Fig 6(k).
pub fn skewed_partition<V, E>(g: &Graph<V, E>, m: usize, straggler_factor: f64) -> Vec<FragId> {
    assert!(m > 1 && m <= FragId::MAX as usize + 1);
    assert!(straggler_factor >= 1.0);
    let n = g.num_vertices();
    // n = s·x + (m-1)·x  =>  x = n / (s + m - 1)
    let x = n as f64 / (straggler_factor + (m - 1) as f64);
    let big = (straggler_factor * x).round() as usize;
    let mut assignment = Vec::with_capacity(n);
    for v in g.vertices() {
        // Spread vertex ids pseudo-randomly so the big fragment is not one
        // contiguous (and perhaps low-diameter) region.
        let h = hash_u64(v as u64);
        let slot = (h % n.max(1) as u64) as usize;
        if slot < big {
            assignment.push(0);
        } else {
            assignment.push((1 + (h >> 32) as usize % (m - 1)) as FragId);
        }
    }
    assignment
}

/// Hash-based vertex-cut: each logical edge goes to a fragment by the hash
/// of its canonical endpoint pair, so both stored directions of an
/// undirected edge land together. Returns one `FragId` per *stored* edge in
/// CSR order.
pub fn vertex_cut_partition<V, E>(g: &Graph<V, E>, m: usize) -> Vec<FragId> {
    assert!(m > 0 && m <= FragId::MAX as usize + 1);
    let mut out = Vec::with_capacity(g.num_edges());
    for (u, v, _) in g.all_edges() {
        out.push(vertex_cut_edge_frag(u, v, m));
    }
    out
}

/// Build edge-cut fragments from a per-vertex assignment.
///
/// The number of fragments is `max(assignment) + 1`; use
/// [`build_fragments_n`] to force a fragment count (empty fragments are
/// allowed and participate in the run as immediately-inactive workers).
pub fn build_fragments<V: Clone, E: Clone>(
    g: &Graph<V, E>,
    assignment: &[FragId],
) -> Vec<Fragment<V, E>> {
    let m = assignment.iter().copied().max().map_or(1, |x| x as usize + 1);
    build_fragments_n(g, assignment, m)
}

/// Build exactly `m` edge-cut fragments from a per-vertex assignment.
pub fn build_fragments_n<V: Clone, E: Clone>(
    g: &Graph<V, E>,
    assignment: &[FragId],
    m: usize,
) -> Vec<Fragment<V, E>> {
    assert_eq!(assignment.len(), g.num_vertices());
    assert!(m > 0 && m <= FragId::MAX as usize + 1);
    debug_assert!(assignment.iter().all(|&a| (a as usize) < m));

    // Owned vertices per fragment, ascending global order.
    let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); m];
    for v in g.vertices() {
        owned[assignment[v as usize] as usize].push(v);
    }

    // Sweep cut edges once to find mirrors, border sets and holders.
    let mut mirrors: Vec<Vec<VertexId>> = vec![Vec::new(); m]; // at frag i: targets owned elsewhere
    let mut inner_in_g: Vec<Vec<VertexId>> = vec![Vec::new(); m]; // at owner: has in cut edge
    let mut inner_out_g: Vec<Vec<VertexId>> = vec![Vec::new(); m];
    let mut holder_pairs: Vec<Vec<(VertexId, FragId)>> = vec![Vec::new(); m]; // at owner of v: (v, mirror frag)
    for (u, v, _) in g.all_edges() {
        let (fu, fv) = (assignment[u as usize], assignment[v as usize]);
        if fu != fv {
            mirrors[fu as usize].push(v);
            inner_out_g[fu as usize].push(u);
            inner_in_g[fv as usize].push(v);
            holder_pairs[fv as usize].push((v, fu));
        }
    }

    let mut frags = Vec::with_capacity(m);
    for i in 0..m {
        let own = &owned[i];
        let mut mir = std::mem::take(&mut mirrors[i]);
        mir.sort_unstable();
        mir.dedup();
        // Local id map: owned first, mirrors after.
        let mut g2l: FxHashMap<VertexId, LocalId> = FxHashMap::default();
        g2l.reserve(own.len() + mir.len());
        for (l, &v) in own.iter().chain(mir.iter()).enumerate() {
            g2l.insert(v, l as LocalId);
        }
        // Local CSR: every out-edge of an owned vertex is stored locally.
        let n_local = own.len() + mir.len();
        let mut offsets = vec![0usize; n_local + 1];
        for (l, &v) in own.iter().enumerate() {
            offsets[l + 1] = g.degree(v);
        }
        for l in 1..=n_local {
            offsets[l] += offsets[l - 1];
        }
        let m_local = offsets[n_local];
        let mut targets = Vec::with_capacity(m_local);
        let mut edge_data = Vec::with_capacity(m_local);
        for &v in own.iter() {
            for (t, d) in g.edges(v) {
                targets.push(g2l[&t]);
                edge_data.push(d.clone());
            }
        }
        let node_data: Vec<V> = own.iter().chain(mir.iter()).map(|&v| g.node(v).clone()).collect();
        let globals: Vec<VertexId> = own.iter().chain(mir.iter()).copied().collect();
        let local_graph =
            Graph::from_parts(g.is_directed(), node_data, offsets, targets, edge_data);

        let mut inner_in: Vec<LocalId> = {
            let mut s = std::mem::take(&mut inner_in_g[i]);
            s.sort_unstable();
            s.dedup();
            s.iter().map(|v| g2l[v]).collect()
        };
        inner_in.sort_unstable();
        let mut inner_out: Vec<LocalId> = {
            let mut s = std::mem::take(&mut inner_out_g[i]);
            s.sort_unstable();
            s.dedup();
            s.iter().map(|v| g2l[v]).collect()
        };
        inner_out.sort_unstable();
        let mirror_owner: Vec<FragId> = mir.iter().map(|&v| assignment[v as usize]).collect();

        // Holder CSR over owned locals.
        let mut pairs = std::mem::take(&mut holder_pairs[i]);
        pairs.sort_unstable();
        pairs.dedup();
        let mut holder_offsets = vec![0u32; own.len() + 1];
        let mut holders = Vec::with_capacity(pairs.len());
        for &(v, f) in &pairs {
            let l = g2l[&v] as usize;
            debug_assert!(l < own.len());
            holder_offsets[l + 1] += 1;
            holders.push(f);
        }
        for l in 1..=own.len() {
            holder_offsets[l] += holder_offsets[l - 1];
        }

        frags.push(Fragment::from_parts(
            i as FragId,
            m as u16,
            false,
            local_graph,
            globals,
            own.len(),
            inner_in,
            inner_out,
            mirror_owner,
            holder_offsets,
            holders,
        ));
    }
    attach_routing_tables(&mut frags);
    frags
}

/// Build vertex-cut fragments from a per-stored-edge assignment (as produced
/// by [`vertex_cut_partition`]; edges are indexed in CSR order).
///
/// Every endpoint of an edge assigned to fragment `i` has a *copy* at `i`.
/// Among the fragments holding copies of `v`, the owner is chosen
/// deterministically as `holders[v % |holders|]`. Copies (unlike edge-cut
/// mirrors) carry their incident edges, so computation can proceed at every
/// copy; updates are routed copy -> owner -> copies.
pub fn build_fragments_vertex_cut<V: Clone, E: Clone>(
    g: &Graph<V, E>,
    edge_assignment: &[FragId],
) -> Vec<Fragment<V, E>> {
    let m = edge_assignment.iter().copied().max().map_or(1, |x| x as usize + 1);
    build_fragments_vertex_cut_n(g, edge_assignment, m)
}

/// Build exactly `m` vertex-cut fragments from a per-stored-edge
/// assignment (empty fragments participate as immediately-inactive
/// workers, mirroring [`build_fragments_n`]).
pub fn build_fragments_vertex_cut_n<V: Clone, E: Clone>(
    g: &Graph<V, E>,
    edge_assignment: &[FragId],
    m: usize,
) -> Vec<Fragment<V, E>> {
    assert_eq!(edge_assignment.len(), g.num_edges());
    assert!(m > 0 && m <= FragId::MAX as usize + 1);
    debug_assert!(edge_assignment.iter().all(|&a| (a as usize) < m));

    // Which fragments hold a copy of each vertex.
    let mut holder_sets: Vec<Vec<FragId>> = vec![Vec::new(); g.num_vertices()];
    for (idx, (u, v, _)) in g.all_edges().enumerate() {
        let f = edge_assignment[idx];
        holder_sets[u as usize].push(f);
        holder_sets[v as usize].push(f);
    }
    for hs in &mut holder_sets {
        hs.sort_unstable();
        hs.dedup();
    }
    // Isolated vertices still need a home.
    for (v, hs) in holder_sets.iter_mut().enumerate() {
        if hs.is_empty() {
            hs.push(vertex_cut_isolated_home(v as VertexId, m));
        }
    }
    let owner_of: Vec<FragId> =
        holder_sets.iter().enumerate().map(|(v, hs)| hs[v % hs.len()]).collect();

    // Vertex copies per fragment, split owned / non-owned.
    let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); m];
    let mut copies: Vec<Vec<VertexId>> = vec![Vec::new(); m];
    for v in g.vertices() {
        for &f in &holder_sets[v as usize] {
            if owner_of[v as usize] == f {
                owned[f as usize].push(v);
            } else {
                copies[f as usize].push(v);
            }
        }
    }

    // Edges per fragment.
    let mut frag_edges: Vec<Vec<(VertexId, VertexId, E)>> = vec![Vec::new(); m];
    for (idx, (u, v, d)) in g.all_edges().enumerate() {
        frag_edges[edge_assignment[idx] as usize].push((u, v, d.clone()));
    }

    let mut frags = Vec::with_capacity(m);
    for i in 0..m {
        let own = &owned[i];
        let cop = &copies[i];
        let mut g2l: FxHashMap<VertexId, LocalId> = FxHashMap::default();
        for (l, &v) in own.iter().chain(cop.iter()).enumerate() {
            g2l.insert(v, l as LocalId);
        }
        let n_local = own.len() + cop.len();
        let mut deg = vec![0usize; n_local + 1];
        for (u, _, _) in &frag_edges[i] {
            deg[g2l[u] as usize + 1] += 1;
        }
        for l in 1..=n_local {
            deg[l] += deg[l - 1];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let mut targets = vec![0 as LocalId; frag_edges[i].len()];
        let mut slots: Vec<Option<E>> = vec![None; frag_edges[i].len()];
        for (u, v, d) in frag_edges[i].drain(..) {
            let s = cursor[g2l[&u] as usize];
            cursor[g2l[&u] as usize] += 1;
            targets[s] = g2l[&v];
            slots[s] = Some(d);
        }
        let edge_data: Vec<E> = slots.into_iter().map(|s| s.expect("filled")).collect();
        let node_data: Vec<V> = own.iter().chain(cop.iter()).map(|&v| g.node(v).clone()).collect();
        let globals: Vec<VertexId> = own.iter().chain(cop.iter()).copied().collect();
        let local_graph =
            Graph::from_parts(g.is_directed(), node_data, offsets, targets, edge_data);

        // Border sets: owned vertices replicated elsewhere.
        let mut border: Vec<LocalId> = own
            .iter()
            .enumerate()
            .filter(|(_, &v)| holder_sets[v as usize].len() > 1)
            .map(|(l, _)| l as LocalId)
            .collect();
        border.sort_unstable();
        let mirror_owner: Vec<FragId> = cop.iter().map(|&v| owner_of[v as usize]).collect();
        let mut holder_offsets = vec![0u32; own.len() + 1];
        let mut holders = Vec::new();
        for (l, &v) in own.iter().enumerate() {
            for &f in &holder_sets[v as usize] {
                if f != i as FragId {
                    holders.push(f);
                    holder_offsets[l + 1] += 1;
                }
            }
        }
        for l in 1..=own.len() {
            holder_offsets[l] += holder_offsets[l - 1];
        }

        frags.push(Fragment::from_parts(
            i as FragId,
            m as u16,
            true,
            local_graph,
            globals,
            own.len(),
            border.clone(),
            border,
            mirror_owner,
            holder_offsets,
            holders,
        ));
    }
    attach_routing_tables(&mut frags);
    frags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn ring(n: usize) -> Graph<(), u32> {
        let mut b = crate::GraphBuilder::new_undirected(n);
        for v in 0..n as VertexId {
            b.add_edge(v, (v + 1) % n as VertexId, 1);
        }
        b.build()
    }

    #[test]
    fn hash_partition_balanced() {
        let g = ring(1000);
        let a = hash_partition(&g, 8);
        let mut sizes = vec![0usize; 8];
        for &f in &a {
            sizes[f as usize] += 1;
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min < 200, "sizes {sizes:?}");
    }

    #[test]
    fn range_partition_contiguous() {
        let g = ring(100);
        let a = range_partition(&g, 4);
        assert_eq!(a[0], 0);
        assert_eq!(a[99], 3);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ldg_cuts_fewer_edges_than_hash() {
        let g = generate::lattice2d(20, 20, 7);
        let hash = build_fragments(&g, &hash_partition(&g, 4));
        let ldg = build_fragments(&g, &ldg_partition(&g, 4, 1.1));
        let cut = |frags: &[Fragment<(), u32>]| crate::fragment::partition_stats(frags).cut_edges;
        assert!(cut(&ldg) < cut(&hash), "ldg {} vs hash {}", cut(&ldg), cut(&hash));
    }

    #[test]
    fn skewed_partition_hits_dial() {
        let g = ring(10_000);
        let a = skewed_partition(&g, 8, 4.0);
        let mut sizes = vec![0usize; 8];
        for &f in &a {
            sizes[f as usize] += 1;
        }
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let r = sizes[0] as f64 / median;
        assert!((3.0..5.5).contains(&r), "r = {r}, sizes {sizes:?}");
    }

    #[test]
    fn vertex_cut_pairs_stay_together() {
        let g = ring(50);
        let a = vertex_cut_partition(&g, 4);
        // stored edges come in (u,v) and (v,u); both must share a fragment.
        let mut seen: std::collections::HashMap<(u32, u32), FragId> =
            std::collections::HashMap::new();
        for (idx, (u, v, _)) in g.all_edges().enumerate() {
            let key = (u.min(v), u.max(v));
            let f = a[idx];
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(prev, f);
            } else {
                seen.insert(key, f);
            }
        }
    }

    #[test]
    fn vertex_cut_fragments_cover_edges_and_own_each_vertex_once() {
        let g = ring(64);
        let a = vertex_cut_partition(&g, 4);
        let frags = build_fragments_vertex_cut(&g, &a);
        let total_edges: usize = frags.iter().map(|f| f.edge_count()).sum();
        assert_eq!(total_edges, g.num_edges());
        let mut owned = vec![0u32; 64];
        for f in &frags {
            for l in f.owned_vertices() {
                owned[f.global(l) as usize] += 1;
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "{owned:?}");
    }

    #[test]
    fn empty_fragment_allowed() {
        let g = ring(4);
        // Force all vertices to fragment 0 of 3.
        let frags = build_fragments_n(&g, &[0, 0, 0, 0], 3);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[1].owned_count(), 0);
        assert_eq!(frags[1].local_count(), 0);
    }
}
