//! Plain-text edge-list I/O.
//!
//! Format: one edge per line, `src dst [weight]`, `#`-prefixed comments
//! ignored — the format used by SNAP datasets such as Friendster, so real
//! datasets can be dropped in when available.

use crate::{Graph, GraphBuilder, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, s) => write!(f, "parse error at line {line}: {s:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read a weighted edge list from any reader. Missing weights default to 1.
/// The vertex count is `max id + 1`.
///
/// Comment lines (`#` or `%` prefixed, as in SNAP and Matrix-Market edge
/// dumps), blank lines, and Windows line endings are tolerated; any other
/// malformed line — bad numbers, trailing tokens — is reported with its
/// 1-based line number.
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph<(), u32>, IoError> {
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::new();
    let mut max_id: u64 = 0;
    let buf = BufReader::new(reader);
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        let (u, v) = match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => (u, v),
            _ => return Err(IoError::Parse(i + 1, line.clone())),
        };
        let w = match it.next() {
            None => 1u32,
            Some(s) => s.parse().map_err(|_| IoError::Parse(i + 1, line.clone()))?,
        };
        if it.next().is_some() {
            return Err(IoError::Parse(i + 1, line.clone()));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    let mut b = GraphBuilder::with_node_data(directed, vec![(); n]);
    b.reserve_edges(edges.len());
    for (u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

/// Load an edge list from a file path; I/O errors carry the path.
pub fn load_edge_list<P: AsRef<Path>>(path: P, directed: bool) -> Result<Graph<(), u32>, IoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| {
        IoError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    })?;
    read_edge_list(file, directed)
}

/// Write a graph as an edge list (one stored directed edge per line).
pub fn write_edge_list<W: Write, V, E: std::fmt::Display>(
    g: &Graph<V, E>,
    writer: W,
) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} vertices, {} stored edges", g.num_vertices(), g.num_edges())?;
    for (u, v, d) in g.all_edges() {
        writeln!(w, "{u} {v} {d}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let input = "# comment\n0 1 5\n1 2 7\n\n2 0 9\n";
        let g = read_edge_list(input.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_data(0), &[5]);

        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(&out[..], true).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn default_weight_is_one() {
        let g = read_edge_list("0 1\n".as_bytes(), true).unwrap();
        assert_eq!(g.edge_data(0), &[1]);
    }

    #[test]
    fn reports_bad_line() {
        let err = read_edge_list("0 x\n".as_bytes(), true).unwrap_err();
        match err {
            IoError::Parse(1, _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn tolerates_crlf_and_percent_comments() {
        let input = "% matrix-market style comment\r\n0 1 3\r\n\r\n1 2\r\n";
        let g = read_edge_list(input.as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_data(0), &[3]);
        assert_eq!(g.edge_data(1), &[1]);
    }

    #[test]
    fn rejects_trailing_tokens_with_line_number() {
        let err = read_edge_list("0 1 2\n# ok\n1 2 3 junk\n".as_bytes(), true).unwrap_err();
        match err {
            IoError::Parse(3, line) => assert!(line.contains("junk")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_preserves_weights() {
        let g0 = crate::generate::small_world(30, 2, 0.2, 3);
        let path =
            std::env::temp_dir().join(format!("aap_io_roundtrip_{}.txt", std::process::id()));
        write_edge_list(&g0, std::fs::File::create(&path).unwrap()).unwrap();
        // Written edges are the *stored* (doubled) form, so read back as
        // directed to avoid re-doubling, then compare adjacency.
        let g1 = load_edge_list(&path, true).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g1.num_vertices(), g0.num_vertices());
        assert_eq!(g1.num_edges(), g0.num_edges());
        for v in g0.vertices() {
            assert_eq!(g0.neighbors(v), g1.neighbors(v));
            assert_eq!(g0.edge_data(v), g1.edge_data(v));
        }
    }

    #[test]
    fn load_error_names_the_path() {
        let err = load_edge_list("/definitely/not/a/file", true).unwrap_err();
        assert!(err.to_string().contains("/definitely/not/a/file"));
    }
}
